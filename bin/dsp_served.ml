(* dsp_served — the DSP scheduler service.

   [daemon] runs the NDJSON server from {!Dsp_serve.Server} on a
   Unix-domain socket (or stdin/stdout with --stdio), recovering every
   WAL-backed session found in --wal-dir on startup.  [client] drives
   a running daemon with {!Dsp_serve.Client.rpc} — the retrying,
   backoff-with-jitter client — one request line per argument (or per
   stdin line), one response line printed each. *)

open Cmdliner
module Server = Dsp_serve.Server
module Client = Dsp_serve.Client
module Wal = Dsp_serve.Wal
module Protocol = Dsp_serve.Protocol

let fsync_conv =
  let parse s =
    match Wal.fsync_policy_of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Wal.fsync_policy_to_string p))

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to serve on (daemon) or connect to \
              (client).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for stateless solves (default: DSP_JOBS or the \
              hardware).")

let daemon socket stdio wal_dir fsync queue compact_every retry_after jobs =
  if (not stdio) && socket = None then begin
    prerr_endline "error: daemon needs --socket PATH or --stdio";
    exit 2
  end;
  if queue < 1 then begin
    prerr_endline "error: --queue must be >= 1";
    exit 2
  end;
  (* a client vanishing mid-reply must surface as EPIPE on the write,
     not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
    wal_dir;
  let cfg =
    {
      Server.wal_dir;
      fsync;
      queue_limit = queue;
      compact_every;
      retry_after_ms = retry_after;
    }
  in
  let jobs = match jobs with Some j -> j | None -> Dsp_util.Pool.default_jobs () in
  Dsp_util.Pool.with_pool ~jobs (fun pool ->
      let t = Server.create ~pool cfg in
      List.iter
        (fun (name, outcome) ->
          match outcome with
          | Ok n -> Printf.eprintf "recovered session %s (%d records)\n%!" name n
          | Error m ->
              Printf.eprintf "failed to recover session %s: %s\n%!" name m)
        (Server.recover_sessions t);
      let status =
        if stdio then begin
          Server.run_pipe t stdin Stdlib.stdout;
          0
        end
        else
          let path = Option.get socket in
          let stop = Atomic.make false in
          let quit _ = Atomic.set stop true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
          Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
          match Server.run_socket t ~path ~stop () with
          | Ok () -> 0
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              1
      in
      Server.close t;
      exit status)

let client socket retries seed requests =
  match socket with
  | None ->
      prerr_endline "error: client needs --socket PATH";
      exit 2
  | Some path ->
      let lines =
        match requests with
        | [] -> In_channel.input_lines In_channel.stdin
        | rs -> rs
      in
      let rng = Dsp_util.Rng.create seed in
      let failed = ref false in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Client.rpc ~retries ~rng ~path line with
            | Error m ->
                Printf.eprintf "error: %s\n" m;
                exit 2
            | Ok resp ->
                (match resp.Protocol.body with
                | Ok _ -> ()
                | Error _ -> failed := true);
                (* responses echo back verbatim: re-render the line we
                   decoded so output is exactly one line per request *)
                print_endline
                  (match resp.Protocol.body with
                  | Ok result -> Protocol.ok_response ~id:resp.Protocol.rid result
                  | Error kind ->
                      Protocol.error_response ~id:resp.Protocol.rid kind))
        lines;
      exit (if !failed then 3 else 0)

let daemon_cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ] ~doc:"Serve stdin/stdout instead of a socket.")
  in
  let wal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:"Directory of per-session write-ahead logs; created if \
                missing.  Sessions recovered from it on startup.")
  in
  let fsync =
    Arg.(
      value
      & opt fsync_conv Wal.Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"WAL durability: always, never, or every:N.")
  in
  let queue =
    Arg.(
      value & opt int Server.default_config.Server.queue_limit
      & info [ "queue" ] ~docv:"N"
          ~doc:"Max in-flight solves before shedding with 'overloaded'.")
  in
  let compact_every =
    Arg.(
      value & opt int Server.default_config.Server.compact_every
      & info [ "compact-every" ] ~docv:"N"
          ~doc:"WAL appends between snapshot compactions; 0 disables.")
  in
  let retry_after =
    Arg.(
      value & opt int Server.default_config.Server.retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Backoff hint attached to 'overloaded' responses.")
  in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Run the NDJSON scheduler service")
    Term.(
      const daemon $ socket_arg $ stdio $ wal_dir $ fsync $ queue
      $ compact_every $ retry_after $ jobs_arg)

let client_cmd =
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget for connection failures and shed requests.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Seed of the backoff jitter (deterministic).")
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"NDJSON request lines; read from stdin when absent.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send requests to a running daemon")
    Term.(const client $ socket_arg $ retries $ seed $ requests)

let () =
  let info =
    Cmd.info "dsp_served" ~version:"%%VERSION%%"
      ~doc:"Demand Strip Packing as a service"
  in
  exit (Cmd.eval (Cmd.group info [ daemon_cmd; client_cmd ]))
