(* dsp — command-line front end for the Demand Strip Packing library.

   Subcommands: list, generate, solve, compare, tune, exact, gap,
   transform, smartgrid, trace, online.  Instances travel as the plain-text
   format of {!Dsp_instance.Io}; event traces as the format of
   {!Dsp_instance.Trace}.  Every algorithm the CLI knows about comes
   from the central solver registry ({!Dsp_engine.Registry}): solvers
   registered there appear in [list], [solve --algo], and [compare]
   automatically.  Every subcommand that draws randomness takes the
   same deterministic [--seed]. *)

open Cmdliner
open Dsp_core
module Registry = Dsp_engine.Registry
module Solver = Dsp_engine.Solver
module Report = Dsp_engine.Report
module Runner = Dsp_engine.Runner

let read_instance path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else Dsp_instance.Io.read_file path
  in
  match Dsp_instance.Io.instance_of_string text with
  | Ok inst -> inst
  | Error e ->
      Printf.eprintf "error: %s: %s\n"
        (if path = "-" then "<stdin>" else path)
        (Dsp_instance.Io.error_to_string e);
      exit 2

(* Pre-registry CLI spellings, kept so documented invocations survive
   the rename; the registry stays the only table defining solvers. *)
let aliases = [ ("bfd", "bfd-height"); ("steinberg", "steinberg2") ]

let solver_conv =
  let parse s =
    let s = Option.value (List.assoc_opt s aliases) ~default:s in
    match Registry.find s with
    | Some solver -> Ok solver
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown algorithm %S (expected %s)" s
               (String.concat "|" (Registry.names ()))))
  in
  Arg.conv
    (parse, fun fmt (s : Solver.t) -> Format.pp_print_string fmt s.Solver.name)

(* One spelling of determinism for every randomized subcommand: equal
   seeds replay generators and traces bit-identically (Dsp_util.Rng). *)
let seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ]
        ~doc:"Random seed; equal seeds replay generators bit-identically.")

let budget_nodes_arg =
  Arg.(
    value
    & opt int Solver.default_node_budget
    & info [ "budget-nodes" ]
        ~doc:
          "Node cap for exponential (exact) solvers; 0 excludes them \
           entirely.")

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ]
        ~doc:
          "Wall-clock deadline per solve, in milliseconds (cooperative \
           cancellation: solvers notice at their next checkpoint).")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for parallel paths (exact-bb-par, --race); 0 = \
           auto (DSP_JOBS, else the hardware's recommended domain count).")

(* --jobs also steers every implicit pool (the registry's exact-bb-par
   spawns its own), so apply it globally before solving. *)
let apply_jobs jobs =
  if jobs < 0 then begin
    Printf.eprintf "error: --jobs must be >= 0\n";
    exit 2
  end
  else if jobs > 0 then Dsp_util.Pool.set_default_jobs jobs

let autotune_arg =
  Arg.(
    value
    & flag
    & info [ "autotune" ]
        ~doc:
          "Pick the solver chain and per-stage deadline split from instance \
           features (the portfolio tuner; inspect its choice with $(b,dsp \
           tune)).  With $(b,--race), races the tuned chain under the shared \
           deadline instead.  Set DSP_TUNER_FEEDBACK to a file to let \
           recorded outcomes sharpen future plans.")

let race_arg =
  Arg.(
    value
    & flag
    & info [ "race" ]
        ~doc:
          "Run the fallback chain (or the solver set, for $(b,compare)) \
           concurrently on a domain pool under one shared wall-clock \
           deadline; the first validated report wins and the losers are \
           cancelled cooperatively.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ]
        ~doc:
          "Arm a deterministic fault before solving: \
           $(i,SITE:ACTION[:AFTER]) where SITE is an instrumentation \
           counter name, ACTION is raise|stall[MS]|corrupt, and AFTER is \
           the 1-based hit that fires (e.g. bb.nodes:raise:100).")

let with_injection spec f =
  match spec with
  | None -> f ()
  | Some spec -> (
      match Dsp_util.Fault.parse_spec spec with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
      | Ok plan ->
          Dsp_util.Fault.arm plan;
          Fun.protect ~finally:Dsp_util.Fault.disarm f)

let print_counters (r : Report.t) =
  Printf.printf "counters:\n";
  List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) r.Report.counters

(* list *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-10s %-12s %s\n" "name" "family" "complexity"
      "description";
    List.iter
      (fun (s : Solver.t) ->
        Printf.printf "%-14s %-10s %-12s %s\n" s.Solver.name
          (Solver.family_name s.Solver.family)
          (Solver.complexity_name s.Solver.complexity)
          s.Solver.doc)
      (Registry.all ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every solver in the registry")
    Term.(const run $ const ())

(* generate *)

let generate_cmd =
  let run kind n width seed =
    let rng = Dsp_util.Rng.create seed in
    let inst =
      match kind with
      | "uniform" ->
          Dsp_instance.Generators.uniform rng ~n ~width ~max_w:(max 1 (width / 2))
            ~max_h:20
      | "correlated" ->
          Dsp_instance.Generators.correlated rng ~n ~width
            ~max_w:(max 1 (width / 2)) ~max_h:20
      | "tallflat" ->
          Dsp_instance.Generators.tall_and_flat rng ~n ~width ~max_h:20
      | "perfect" ->
          Dsp_instance.Generators.perfect_fit rng ~width ~height:20 ~cuts:n
      | "smartgrid" ->
          Dsp_smartgrid.Smartgrid.to_instance
            (Dsp_smartgrid.Smartgrid.simulate_day rng ~households:(max 1 (n / 4)))
      | other ->
          Printf.eprintf "unknown kind %S\n" other;
          exit 2
    in
    print_string (Dsp_instance.Io.instance_to_string inst)
  in
  let kind =
    Arg.(value & opt string "uniform" & info [ "kind" ] ~doc:"uniform|correlated|tallflat|perfect|smartgrid")
  in
  let n = Arg.(value & opt int 20 & info [ "n" ] ~doc:"number of items") in
  let width = Arg.(value & opt int 50 & info [ "width"; "W" ] ~doc:"strip width") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random DSP instance")
    Term.(const run $ kind $ n $ width $ seed_arg)

(* solve *)

let solve_cmd =
  let print_report show stats (r : Report.t) =
    Printf.printf
      "algorithm: %s\npeak: %d\nlower bound: %d\nratio vs LB: %.3f\ntime: \
       %.4fs\n"
      r.Report.solver r.Report.peak r.Report.lower_bound r.Report.ratio
      r.Report.seconds;
    if stats then print_counters r;
    if show then print_endline (Profile.render (Packing.profile r.Report.packing))
  in
  let print_resolution ~label show stats (res : Runner.resolution) =
    List.iter
      (fun f ->
        Printf.printf "%s: %s\n" label
          (Format.asprintf "%a" Runner.pp_failure f))
      res.Runner.failures;
    if res.Runner.safety_net then
      Printf.printf "%s: chain exhausted, degraded to safety net\n" label;
    print_report show stats res.Runner.report
  in
  let run solver path show stats budget_nodes timeout_ms fallback jobs race
      autotune inject =
    let inst = read_instance path in
    apply_jobs jobs;
    if autotune && fallback <> None then begin
      Printf.eprintf
        "error: --autotune picks the chain itself; drop --fallback\n";
      exit 2
    end;
    let explicit_chain () =
      Option.map
        (fun spec ->
          match Runner.parse_chain spec with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 2
          | Ok chain -> chain)
        fallback
    in
    let tuned () =
      let plan = Dsp_engine.Tuner.plan inst in
      Printf.printf "autotune: bucket %s -> %s\n" plan.Dsp_engine.Tuner.bucket
        (Runner.chain_to_string plan.Dsp_engine.Tuner.chain);
      plan
    in
    (* Close the tuner's feedback loop: one line per stage of an
       autotuned resolution (winner and fall-throughs alike), so the
       next [Tuner.plan] for this bucket can re-rank on observed win
       rates.  No-op unless DSP_TUNER_FEEDBACK is set. *)
    let record_tuned (plan : Dsp_engine.Tuner.plan) (res : Runner.resolution) =
      let bucket = plan.Dsp_engine.Tuner.bucket in
      List.iter
        (fun (f : Runner.failure) ->
          Dsp_engine.Tuner.record_outcome
            {
              Dsp_engine.Tuner.bucket;
              solver = f.Runner.solver;
              won = false;
              ms = f.Runner.seconds *. 1000.;
            })
        res.Runner.failures;
      if not res.Runner.safety_net then
        Dsp_engine.Tuner.record_outcome
          {
            Dsp_engine.Tuner.bucket;
            solver = res.Runner.winner;
            won = true;
            ms = res.Runner.report.Report.seconds *. 1000.;
          }
    in
    with_injection inject (fun () ->
        if race then begin
          let plan = if autotune then Some (tuned ()) else None in
          let chain =
            match plan with
            | Some p -> p.Dsp_engine.Tuner.chain
            | None -> (
                match explicit_chain () with
                | Some c -> c
                | None -> Runner.default_chain ())
          in
          (* One worker per racing stage unless --jobs caps it. *)
          let pool_jobs = if jobs > 0 then jobs else List.length chain in
          let res =
            Dsp_util.Pool.with_pool ~jobs:pool_jobs (fun pool ->
                Runner.race ?timeout_ms ~node_budget:budget_nodes ~chain ~pool
                  inst)
          in
          Printf.printf "race: winner %s of %s\n" res.Runner.winner
            (Runner.chain_to_string chain);
          Option.iter (fun p -> record_tuned p res) plan;
          print_resolution ~label:"race" show stats res
        end
        else if autotune then begin
          let plan = tuned () in
          let res =
            Runner.solve ?timeout_ms ~node_budget:budget_nodes
              ~chain:plan.Dsp_engine.Tuner.chain
              ~weights:plan.Dsp_engine.Tuner.weights inst
          in
          record_tuned plan res;
          print_resolution ~label:"autotune" show stats res
        end
        else
          match explicit_chain () with
          | Some chain ->
              let res =
                Runner.solve ?timeout_ms ~node_budget:budget_nodes ~chain inst
              in
              print_resolution ~label:"fallback" show stats res
          | None -> (
              match
                Runner.run_one ?timeout_ms ~node_budget:budget_nodes solver inst
              with
              | Error f ->
                  Printf.eprintf "error: %s\n"
                    (Format.asprintf "%a" Runner.pp_failure f);
                  exit 3
              | Ok r -> print_report show stats r))
  in
  let solver =
    Arg.(
      value
      & opt solver_conv (Registry.find_exn "approx54")
      & info [ "algo"; "a" ] ~doc:"algorithm (see $(b,dsp list))")
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  let show = Arg.(value & flag & info [ "render" ] ~doc:"render the profile") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"dump the per-solve counters")
  in
  let fallback =
    Arg.(
      value
      & opt (some string) None
      & info [ "fallback" ]
          ~doc:
            "Comma-separated fallback chain of solver names (e.g. \
             exact-bb,approx54,bfd-height).  Each stage gets an equal slice \
             of the remaining deadline; failures degrade to the next stage, \
             so a packing always comes back.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a DSP instance with one algorithm")
    Term.(
      const run $ solver $ path $ show $ stats $ budget_nodes_arg $ timeout_arg
      $ fallback $ jobs_arg $ race_arg $ autotune_arg $ inject_arg)

(* compare *)

let compare_cmd =
  let run path stats budget_nodes timeout_ms jobs race autotune inject =
    let inst = read_instance path in
    apply_jobs jobs;
    let solvers =
      (* --autotune narrows the comparison to the tuner's chain for
         this instance; the default is the whole registry. *)
      let all =
        if autotune then begin
          let plan = Dsp_engine.Tuner.plan inst in
          Printf.printf "autotune: bucket %s -> %s\n"
            plan.Dsp_engine.Tuner.bucket
            (Runner.chain_to_string plan.Dsp_engine.Tuner.chain);
          plan.Dsp_engine.Tuner.chain
        end
        else Registry.all ()
      in
      List.filter
        (fun (s : Solver.t) ->
          budget_nodes > 0 || s.Solver.complexity <> Solver.Exponential)
        all
    in
    if race then begin
      (* Race the whole eligible set: one shared deadline, first
         validated report wins. *)
      let chain =
        (* exact-bb-par spawns its own pool; racing it inside another
           pool's worker would nest domains pointlessly on small
           machines, so the race sticks to the serial solvers. *)
        List.filter
          (fun (s : Solver.t) -> s.Solver.name <> "exact-bb-par")
          solvers
      in
      let pool_jobs = if jobs > 0 then jobs else List.length chain in
      let res =
        with_injection inject (fun () ->
            Dsp_util.Pool.with_pool ~jobs:pool_jobs (fun pool ->
                Runner.race ?timeout_ms ~node_budget:(max 1 budget_nodes) ~chain
                  ~pool inst))
      in
      Printf.printf "race: winner %s of %s\n" res.Runner.winner
        (Runner.chain_to_string chain);
      List.iter
        (fun f ->
          Printf.printf "race: %s\n" (Format.asprintf "%a" Runner.pp_failure f))
        res.Runner.failures;
      let r = res.Runner.report in
      Printf.printf "peak: %d\nratio vs LB: %.3f\ntime: %.4fs\n" r.Report.peak
        r.Report.ratio r.Report.seconds;
      if stats then print_counters r
    end
    else begin
    let outcomes =
      if jobs > 1 then
        (* Budget each solver concurrently; rows still print in
           registry order once everything lands. *)
        Dsp_util.Pool.with_pool ~jobs (fun pool ->
            Dsp_util.Pool.map pool
              (fun (s : Solver.t) ->
                with_injection inject (fun () ->
                    Runner.run_one ?timeout_ms ~node_budget:(max 1 budget_nodes)
                      s inst))
              solvers)
      else
        List.map
          (fun s ->
            with_injection inject (fun () ->
                Runner.run_one ?timeout_ms ~node_budget:(max 1 budget_nodes) s
                  inst))
          solvers
    in
    Printf.printf "%-14s %-10s %6s %8s %10s\n" "algorithm" "family" "peak"
      "vs LB" "seconds";
    let reports =
      List.filter_map
        (fun ((s : Solver.t), outcome) ->
          match outcome with
          | Ok r ->
              Printf.printf "%-14s %-10s %6d %8.3f %10.4f\n" s.Solver.name
                (Solver.family_name s.Solver.family)
                r.Report.peak r.Report.ratio r.Report.seconds;
              Some r
          | Error f ->
              Printf.printf "%-14s %-10s %6s %8s %10s [%s after %.1fms]\n"
                s.Solver.name
                (Solver.family_name s.Solver.family)
                "-" "-" "-"
                (Runner.kind_name f.Runner.kind)
                (f.Runner.seconds *. 1000.);
              None)
        (List.combine solvers outcomes)
    in
    (* When the exact solver finished, re-express every ratio against
       the true optimum. *)
    (match
       List.find_opt
         (fun (r : Report.t) -> (Registry.find_exn r.Report.solver).Solver.family = Solver.Exact)
         reports
     with
    | Some exact when exact.Report.peak > 0 ->
        Printf.printf "\nvs true OPT = %d:\n" exact.Report.peak;
        List.iter
          (fun (r : Report.t) ->
            Printf.printf "%-14s %8.3f\n" r.Report.solver
              (float_of_int r.Report.peak /. float_of_int exact.Report.peak))
          reports
    | _ -> ());
    if stats then
      List.iter
        (fun r ->
          print_newline ();
          print_counters r)
        reports
    end
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"dump per-solver counters")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run every registered solver on an instance (exact solvers under the \
          --budget-nodes cap; per-solver --timeout-ms deadline; --jobs runs \
          the solvers concurrently, --race returns only the first validated \
          report, --autotune narrows the set to the tuner's chain)")
    Term.(
      const run $ path $ stats $ budget_nodes_arg $ timeout_arg $ jobs_arg
      $ race_arg $ autotune_arg $ inject_arg)

(* tune *)

let tune_cmd =
  let run path timeout_ms =
    let inst = read_instance path in
    let plan = Dsp_engine.Tuner.plan inst in
    Format.printf "%a@." Dsp_engine.Tuner.pp_plan plan;
    (match timeout_ms with
    | None -> ()
    | Some ms ->
        (* The nominal split of --timeout-ms under Runner.solve's
           weighted remaining-deadline policy, assuming every stage
           burns its whole slice (in reality an early finisher donates
           its leftover downstream). *)
        Printf.printf "nominal split of %dms:\n" ms;
        let remaining = ref (float_of_int ms) in
        let rec go chain weights =
          match (chain, weights) with
          | (s : Solver.t) :: rest, w :: rest_ws ->
              let total = List.fold_left ( +. ) w rest_ws in
              let slice = !remaining *. w /. total in
              Printf.printf "  %-14s %6.0fms\n" s.Solver.name slice;
              remaining := !remaining -. slice;
              go rest rest_ws
          | _ -> ()
        in
        go plan.Dsp_engine.Tuner.chain plan.Dsp_engine.Tuner.weights);
    match Dsp_engine.Tuner.default_feedback_path () with
    | None -> ()
    | Some p ->
        let outcomes = Dsp_engine.Tuner.load_feedback p in
        let in_bucket =
          List.length
            (List.filter
               (fun (o : Dsp_engine.Tuner.outcome) ->
                 o.Dsp_engine.Tuner.bucket = plan.Dsp_engine.Tuner.bucket)
               outcomes)
        in
        Printf.printf "feedback: %s (%d outcomes, %d in this bucket)\n" p
          (List.length outcomes) in_bucket
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Show the portfolio tuner's view of an instance: extracted \
          features, bucket, chosen solver chain, per-stage deadline weights \
          (and the nominal split of --timeout-ms), plus the state of the \
          DSP_TUNER_FEEDBACK outcome store")
    Term.(const run $ path $ timeout_arg)

(* exact *)

let exact_cmd =
  let run path nodes =
    let inst = read_instance path in
    match Solver.run ~node_budget:nodes (Registry.find_exn "exact-bb") inst with
    | Ok r ->
        Printf.printf "optimal peak: %d (explored %d nodes)\n" r.Report.peak
          (Report.counter r "bb.nodes")
    | Error _ -> Printf.printf "node budget exhausted (limit %d)\n" nodes
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  let nodes =
    Arg.(value & opt int 20_000_000 & info [ "nodes" ] ~doc:"node budget")
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact branch-and-bound optimum (small instances)")
    Term.(const run $ path $ nodes)

(* gap *)

let gap_cmd =
  let run path =
    let inst = read_instance path in
    match
      ( Dsp_exact.Dsp_bb.optimal_height inst,
        Dsp_exact.Sp_exact.optimal_height inst )
    with
    | Some dsp, Some sp ->
        Printf.printf "OPT_DSP=%d OPT_SP=%d gap=%.4f\n" dsp sp
          (float_of_int sp /. float_of_int dsp)
    | _ -> print_endline "node budget exhausted"
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "gap" ~doc:"Exact sliced-vs-unsliced gap of a small instance")
    Term.(const run $ path)

(* transform *)

let transform_cmd =
  let run path machines =
    let inst = read_instance path in
    let pk = Dsp_algo.Approx53.solve inst in
    let m = if machines = 0 then Packing.height pk else machines in
    match Dsp_transform.Transform.packing_to_schedule pk ~machines:m with
    | Ok (sched, stats) ->
        Printf.printf
          "packing height %d -> schedule on %d machines, makespan %d (%d events)\n"
          (Packing.height pk) m
          (Pts.Schedule.makespan sched)
          stats.Dsp_transform.Transform.events;
        print_endline (Pts.Schedule.render sched)
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  let machines =
    Arg.(value & opt int 0 & info [ "machines"; "m" ] ~doc:"machine count (0 = packing height)")
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Pack, then transform into a PTS schedule (Theorem 1)")
    Term.(const run $ path $ machines)

(* rotate *)

let rotate_cmd =
  let run path =
    let inst = read_instance path in
    let pk, orientations = Dsp_algo.Rotations.best_fit_rotating inst in
    let rotated =
      Array.to_list orientations
      |> List.filter (fun o -> o = Dsp_algo.Rotations.Rotated)
      |> List.length
    in
    let fixed = Dsp_algo.Approx54.solve inst in
    Printf.printf
      "fixed-orientation peak: %d\nrotating greedy peak:   %d (%d of %d items rotated)\n"
      (Packing.height fixed) (Packing.height pk) rotated (Instance.n_items inst)
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "rotate" ~doc:"Pack with 90-degree rotations allowed (paper conclusion)")
    Term.(const run $ path)

(* stats *)

let stats_cmd =
  let run path =
    let inst = read_instance path in
    let pk = Dsp_algo.Approx54.solve inst in
    let target = Packing.height pk in
    let params =
      Dsp_algo.Classify.choose_params inst ~target ~eps:(Dsp_util.Rat.make 1 4)
    in
    let cls = Dsp_algo.Classify.classify inst params in
    Printf.printf "peak: %d  delta=%s mu=%s\nclasses:\n" target
      (Dsp_util.Rat.to_string params.Dsp_algo.Classify.delta)
      (Dsp_util.Rat.to_string params.Dsp_algo.Classify.mu);
    List.iter
      (fun (name, count) -> Printf.printf "  %-16s %d\n" name count)
      (Dsp_algo.Classify.class_sizes cls);
    let s = Dsp_algo.Boxes.partition_stats pk params in
    Format.printf "Lemma 4/5 partition:@.%a@." Dsp_algo.Boxes.pp_stats s
  in
  let path = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "stats" ~doc:"Classification and structural statistics of an instance")
    Term.(const run $ path)

(* smartgrid *)

let smartgrid_cmd =
  let run households seed =
    let rng = Dsp_util.Rng.create seed in
    let runs = Dsp_smartgrid.Smartgrid.simulate_day rng ~households in
    let report =
      Dsp_smartgrid.Smartgrid.evaluate runs ~scheduler:(fun i ->
          Dsp_algo.Approx54.solve i)
    in
    Printf.printf
      "runs: %d\nnaive peak: %d\nscheduled peak: %d\nlower bound: %d\n\
       peak reduction: %.1f%%\nnaive cost: %d\nscheduled cost: %d\n"
      report.Dsp_smartgrid.Smartgrid.runs report.naive_peak report.scheduled_peak
      report.lower_bound report.reduction_percent report.naive_cost
      report.scheduled_cost
  in
  let households =
    Arg.(value & opt int 25 & info [ "households" ] ~doc:"number of households")
  in
  Cmd.v
    (Cmd.info "smartgrid" ~doc:"Simulate a smart-grid day and minimize its peak")
    Term.(const run $ households $ seed_arg)

(* trace *)

let trace_cmd =
  let run kind n width seed households arrivals_only scale =
    let rng = Dsp_util.Rng.create seed in
    let trace =
      match kind with
      | "smartgrid" ->
          Dsp_instance.Trace.smartgrid rng ~households
            ~departures:(not arrivals_only)
      | "gap" -> Dsp_instance.Trace.gap_arrivals rng ~scale
      | "churn" -> Dsp_instance.Trace.churn rng ~width ~n
      | "uniform" ->
          Dsp_instance.Trace.of_instance ~shuffle:rng
            (Dsp_instance.Generators.uniform rng ~n ~width
               ~max_w:(max 1 (width / 2)) ~max_h:20)
      | other ->
          Printf.eprintf "unknown kind %S\n" other;
          exit 2
    in
    print_string (Dsp_instance.Trace.to_string trace)
  in
  let kind =
    Arg.(
      value
      & opt string "smartgrid"
      & info [ "kind" ] ~doc:"smartgrid|gap|churn|uniform")
  in
  let n =
    Arg.(value & opt int 40 & info [ "n" ] ~doc:"arrivals (churn, uniform)")
  in
  let width =
    Arg.(
      value & opt int 50 & info [ "width"; "W" ] ~doc:"strip width (churn, uniform)")
  in
  let households =
    Arg.(
      value & opt int 25 & info [ "households" ] ~doc:"households (smartgrid)")
  in
  let arrivals_only =
    Arg.(
      value
      & flag
      & info [ "arrivals-only" ]
          ~doc:"suppress departures (smartgrid kind only)")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"height scale (gap)")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Generate an arrival/departure trace for $(b,dsp online)")
    Term.(
      const run $ kind $ n $ width $ seed_arg $ households $ arrivals_only
      $ scale)

(* online *)

let online_cmd =
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
  in
  let run trace_path policy_name k stats show =
    let text =
      if trace_path = "-" then In_channel.input_all In_channel.stdin
      else Dsp_instance.Io.read_file trace_path
    in
    let trace =
      match Dsp_instance.Trace.of_string text with
      | Ok t -> t
      | Error e ->
          Printf.eprintf "error: %s: %s\n"
            (if trace_path = "-" then "<stdin>" else trace_path)
            (Dsp_instance.Trace.error_to_string e);
          exit 2
    in
    let policy =
      match Dsp_engine.Session.find_policy ~k policy_name with
      | Some p -> p
      | None ->
          Printf.eprintf
            "error: unknown policy %S (expected first-fit|best-fit|migrate)\n"
            policy_name;
          exit 2
    in
    let before = Dsp_util.Instr.snapshot () in
    let session =
      Dsp_engine.Session.create ~policy ~width:trace.Dsp_instance.Trace.width ()
    in
    let events = Array.of_list trace.Dsp_instance.Trace.events in
    let lats = Array.make (max 1 (Array.length events)) 0.0 in
    let max_peak = ref 0 in
    Array.iteri
      (fun i ev ->
        let (), dt =
          Dsp_util.Xutil.timeit (fun () ->
              Dsp_engine.Session.apply session ev)
        in
        lats.(i) <- dt;
        let pk = Dsp_engine.Session.peak session in
        if pk > !max_peak then max_peak := pk)
      events;
    let s = Dsp_engine.Session.stats session in
    let packing = Dsp_engine.Session.snapshot session in
    let valid =
      match Packing.validate packing with Ok () -> "valid" | Error e -> e
    in
    Printf.printf
      "policy: %s\nevents: %d (%d arrivals, %d departures)\nmigrations: %d\n\
       final peak: %d\nmax peak: %d\nfinal packing: %s\n"
      policy.Dsp_engine.Session.pname (Array.length events)
      s.Dsp_engine.Session.arrivals s.Dsp_engine.Session.departures
      s.Dsp_engine.Session.migrations s.Dsp_engine.Session.peak_now !max_peak
      valid;
    (* Offline yardsticks on the final live set: what a batch solver
       achieves given the whole remaining workload at once. *)
    let live_inst = Packing.instance packing in
    if Instance.n_items live_inst > 0 then begin
      Printf.printf "offline (final live set, lower bound %d):\n"
        (Instance.lower_bound live_inst);
      List.iter
        (fun name ->
          let solver = Registry.find_exn name in
          let pk = Packing.height (solver.Solver.solve
                                     ~budget:(Dsp_util.Budget.unlimited ())
                                     live_inst) in
          Printf.printf "  %-12s peak %4d  ratio %.3f\n" name pk
            (float_of_int s.Dsp_engine.Session.peak_now /. float_of_int (max 1 pk)))
        [ "bfd-height"; "approx54" ]
    end;
    let sorted = Array.copy lats in
    Array.sort compare sorted;
    Printf.printf
      "per-event latency: p50 %.1fus  p95 %.1fus  p99 %.1fus  max %.1fus\n"
      (percentile sorted 0.50 *. 1e6)
      (percentile sorted 0.95 *. 1e6)
      (percentile sorted 0.99 *. 1e6)
      (sorted.(Array.length sorted - 1) *. 1e6);
    if stats then begin
      let after = Dsp_util.Instr.snapshot () in
      Printf.printf "counters:\n";
      List.iter
        (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
        (Dsp_util.Instr.delta ~before ~after)
    end;
    if show then
      print_endline (Profile.render (Dsp_engine.Session.profile session))
  in
  let trace_path =
    Arg.(
      value
      & opt string "-"
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Trace file (see $(b,dsp trace)); - reads stdin.")
  in
  let policy_name =
    Arg.(
      value
      & opt string "best-fit"
      & info [ "policy" ] ~doc:"first-fit|best-fit|migrate")
  in
  let k =
    Arg.(
      value
      & opt int 1
      & info [ "migration-k" ]
          ~doc:"Max re-placements of existing items per arrival (migrate).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"dump the session counters")
  in
  let show =
    Arg.(value & flag & info [ "render" ] ~doc:"render the final profile")
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Replay an arrival/departure trace through an incremental session \
          and compare against offline solvers")
    Term.(const run $ trace_path $ policy_name $ k $ stats $ show)

let () =
  let doc = "Demand Strip Packing: algorithms from Jansen, Rau & Tutas (SPAA 2024)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dsp" ~doc)
          [
            list_cmd;
            generate_cmd;
            solve_cmd;
            compare_cmd;
            tune_cmd;
            exact_cmd;
            gap_cmd;
            transform_cmd;
            rotate_cmd;
            stats_cmd;
            smartgrid_cmd;
            trace_cmd;
            online_cmd;
          ]))
