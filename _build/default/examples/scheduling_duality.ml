(* The Theorem 1 duality between Parallel Task Scheduling and DSP.

   A PTS schedule on m machines with makespan T is "the same thing"
   as a DSP packing of height m in a strip of width T — this example
   walks the transformation in both directions, including the repair
   procedures of Figures 2 and 3.

   Run with: dune exec examples/scheduling_duality.exe *)

open Dsp_core
module Transform = Dsp_transform.Transform

let () =
  (* A scheduling instance: (processing time, machines needed). *)
  let pts =
    Pts.Inst.of_dims ~machines:5
      [ (4, 2); (3, 3); (2, 1); (5, 2); (1, 5); (3, 1); (2, 2); (4, 1) ]
  in
  Format.printf "%a@.@." Pts.Inst.pp pts;

  let sched = Dsp_pts.List_scheduling.schedule pts in
  Printf.printf "list schedule, makespan %d:\n%s\n\n"
    (Pts.Schedule.makespan sched)
    (Pts.Schedule.render sched);

  (* Schedule -> packing: forget machine assignments.  The peak is at
     most the machine count. *)
  let pk = Transform.schedule_to_packing sched in
  Printf.printf "as a DSP packing: height %d in a strip of width %d\n"
    (Packing.height pk)
    (Packing.instance pk).Instance.width;

  (* The Figure 2 procedure: keep explicit vertical positions and
     count how often the repair had to re-sort a column. *)
  let layout, stats = Transform.schedule_to_layout sched in
  Printf.printf "explicit sliced layout (%d events, %d repairs, %d slice points):\n%s\n\n"
    stats.Transform.events stats.Transform.repairs
    (Slice_layout.slice_points layout)
    (Slice_layout.render layout);

  (* Packing -> schedule: the Figure 3 sweep re-assigns machines. *)
  match Transform.packing_to_schedule pk ~machines:5 with
  | Error e -> Printf.printf "unexpected: %s\n" e
  | Ok (back, _) ->
      Printf.printf "transformed back to a schedule, makespan %d (validates: %b):\n%s\n"
        (Pts.Schedule.makespan back)
        (Result.is_ok (Pts.Schedule.validate back))
        (Pts.Schedule.render back)
