(* Quickstart: build an instance, pack it, inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Dsp_core

let () =
  (* A strip of width 12 and a handful of demands, exactly as in the
     paper's model: width = duration, height = power. *)
  let inst =
    Instance.of_dims ~width:12
      [ (5, 4); (1, 7); (4, 5); (2, 7); (3, 3); (6, 2); (2, 2) ]
  in
  Format.printf "%a@.@." Instance.pp inst;

  (* Pack with the (5/4+eps) algorithm... *)
  let packing, stats = Dsp_algo.Approx54.solve_with_stats inst in
  Printf.printf "peak demand: %d (lower bound %d, binary-search guesses %d)\n\n"
    (Packing.height packing)
    (Instance.lower_bound inst)
    stats.Dsp_algo.Approx54.guesses;

  (* ... and draw the demand profile. *)
  print_endline (Profile.render (Packing.profile packing));

  (* A packing is just start columns; the explicit sliced layout shows
     where each item's slices sit vertically. *)
  print_newline ();
  print_endline (Slice_layout.render (Slice_layout.stacked packing));

  (* Compare against the exact optimum (the instance is small). *)
  match Dsp_exact.Dsp_bb.optimal_height inst with
  | Some opt -> Printf.printf "\nexact optimum: %d\n" opt
  | None -> print_endline "\nexact optimum: (node budget exhausted)"
