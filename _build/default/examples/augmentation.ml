(* Resource augmentation (Corollaries 2-4): optimal objectives at the
   price of extra resource.

   Run with: dune exec examples/augmentation.exe *)

open Dsp_core
module Augment = Dsp_augment.Augment

let () =
  let rng = Dsp_util.Rng.create 11 in

  (* Corollary 2: an optimal-height DSP packing inside a widened
     strip. *)
  let inst =
    Dsp_instance.Generators.uniform rng ~n:25 ~width:30 ~max_w:12 ~max_h:10
  in
  let r = Augment.dsp_with_width_augmentation inst in
  Printf.printf
    "Corollary 2 (DSP, width augmentation):\n\
    \  strip width %d -> used width %d (factor %.3f), height %d (lower bound %d)\n\n"
    inst.Instance.width r.Augment.width_used r.Augment.width_factor
    r.Augment.height
    (Instance.lower_bound inst);

  (* Corollary 3: optimal-makespan PTS with (5/3)-augmented machines,
     via the polynomial (5/3)-style DSP algorithm. *)
  let pts = Dsp_instance.Generators.uniform_pts rng ~n:18 ~machines:6 ~max_p:9 in
  let r53 = Augment.pts_53 pts in
  Printf.printf
    "Corollary 3 (PTS, machine augmentation, polynomial inner solver):\n\
    \  %d machines -> %d used (factor %.3f), makespan %d (lower bound %d)\n\n"
    pts.Pts.Inst.machines r53.Augment.machines_used r53.Augment.machine_factor
    r53.Augment.makespan
    (Pts.Inst.lower_bound pts);

  (* Corollary 4: the pseudo-polynomial (5/4+eps) inner solver brings
     the augmentation down. *)
  let r54 = Augment.pts_54 pts in
  Printf.printf
    "Corollary 4 (PTS, machine augmentation, pseudo-polynomial inner solver):\n\
    \  %d machines -> %d used (factor %.3f), makespan %d\n%s\n"
    pts.Pts.Inst.machines r54.Augment.machines_used r54.Augment.machine_factor
    r54.Augment.makespan
    (Pts.Schedule.render r54.Augment.schedule)
