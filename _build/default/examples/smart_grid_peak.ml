(* Smart-grid peak shaving: the paper's motivating application.

   A neighbourhood of households runs appliances whenever convenient
   (the "naive" schedule); a demand-side scheduler may shift each run
   within the day.  Peak demand is the DSP objective.

   Run with: dune exec examples/smart_grid_peak.exe *)

open Dsp_core
module Sg = Dsp_smartgrid.Smartgrid

let () =
  let rng = Dsp_util.Rng.create 2024 in
  let runs = Sg.simulate_day rng ~households:20 in
  Printf.printf "simulated %d appliance runs across 20 households\n\n"
    (List.length runs);

  let naive = Sg.naive_packing runs in
  print_endline "naive demand profile (everyone presses start at will):";
  print_endline (Profile.render ~max_rows:12 (Packing.profile naive));

  let report = Sg.evaluate runs ~scheduler:(fun i -> Dsp_algo.Approx54.solve i) in
  let scheduled = Dsp_algo.Approx54.solve (Sg.to_instance runs) in
  Printf.printf "\nscheduled demand profile ((5/4+eps) algorithm):\n";
  print_endline (Profile.render ~max_rows:12 (Packing.profile scheduled));

  Printf.printf
    "\nnaive peak %d -> scheduled peak %d (lower bound %d): %.1f%% reduction\n"
    report.Sg.naive_peak report.Sg.scheduled_peak report.Sg.lower_bound
    report.Sg.reduction_percent;
  Printf.printf "congestion cost %d -> %d\n" report.Sg.naive_cost
    report.Sg.scheduled_cost
