examples/smart_grid_peak.ml: Dsp_algo Dsp_core Dsp_smartgrid Dsp_util List Packing Printf Profile
