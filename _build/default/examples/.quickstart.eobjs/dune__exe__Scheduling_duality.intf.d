examples/scheduling_duality.mli:
