examples/structural_lemmas.ml: Dsp_algo Dsp_core Dsp_exact Dsp_util Format Instance Item List Packing Printf Result String
