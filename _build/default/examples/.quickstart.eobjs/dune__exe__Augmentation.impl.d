examples/augmentation.ml: Dsp_augment Dsp_core Dsp_instance Dsp_util Instance Printf Pts
