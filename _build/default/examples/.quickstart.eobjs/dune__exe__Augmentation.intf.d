examples/augmentation.mli:
