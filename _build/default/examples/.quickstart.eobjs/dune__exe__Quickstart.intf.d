examples/quickstart.mli:
