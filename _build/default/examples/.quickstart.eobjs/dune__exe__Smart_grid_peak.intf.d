examples/smart_grid_peak.mli:
