examples/hardness_gap.ml: Array Dsp_core Dsp_exact Dsp_instance Dsp_util Instance Printf Pts String
