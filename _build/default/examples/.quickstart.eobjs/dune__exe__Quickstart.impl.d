examples/quickstart.ml: Dsp_algo Dsp_core Dsp_exact Format Instance Packing Printf Profile Slice_layout
