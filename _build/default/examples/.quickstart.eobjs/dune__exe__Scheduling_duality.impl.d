examples/scheduling_duality.ml: Dsp_core Dsp_pts Dsp_transform Format Instance Packing Printf Pts Result Slice_layout
