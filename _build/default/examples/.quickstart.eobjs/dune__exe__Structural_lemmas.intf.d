examples/structural_lemmas.mli:
