(* The structure theorems behind the (5/4+eps) algorithm, run on a
   real optimal packing: Lemma 4 (start-point reduction), Lemma 5
   (box partition), Lemma 6 (low-box sorting) and Lemma 8 (three-line
   tall assignment).

   Run with: dune exec examples/structural_lemmas.exe *)

open Dsp_core
module Rat = Dsp_util.Rat

let () =
  (* Towers plus flat wide items: a shape with all item classes. *)
  let inst =
    Instance.of_dims ~width:24
      ([ (2, 70); (3, 66); (2, 68); (4, 30); (2, 18) ]
      @ List.init 4 (fun _ -> (14, 1)))
  in
  let pk =
    match Dsp_exact.Dsp_bb.solve ~node_limit:5_000_000 inst with
    | Some pk -> pk
    | None -> Dsp_algo.Baselines.best_fit_decreasing inst
  in
  Printf.printf "packing peak: %d (lower bound %d)\n\n" (Packing.height pk)
    (Instance.lower_bound inst);

  (* Lemmas 4 and 5. *)
  let params =
    Dsp_algo.Classify.choose_params inst ~target:(Packing.height pk)
      ~eps:(Rat.make 1 4)
  in
  let stats = Dsp_algo.Boxes.partition_stats pk params in
  Format.printf "Lemma 4/5 partition of the optimal packing:@.%a@.@."
    Dsp_algo.Boxes.pp_stats stats;

  (* Lemma 6: sort a low box of tall items. *)
  let low_items =
    [ (Item.make ~id:0 ~w:3 ~h:5, 2); (Item.make ~id:1 ~w:2 ~h:8, 6);
      (Item.make ~id:2 ~w:4 ~h:5, 9) ]
  in
  let low = Dsp_algo.Restructure.sort_low_box ~box_len:14 ~items:low_items in
  Printf.printf "Lemma 6 low-box sort: %d tall boxes; verified: %b\n"
    low.Dsp_algo.Restructure.tall_boxes
    (Result.is_ok
       (Dsp_algo.Restructure.verify_low ~box_len:14 ~box_height:10
          ~items:low_items low));

  (* Lemma 8: assign stacked tall items to the three lines. *)
  let tall_items =
    [ (Item.make ~id:0 ~w:4 ~h:4, 0); (Item.make ~id:1 ~w:3 ~h:3, 0);
      (Item.make ~id:2 ~w:5 ~h:3, 0); (Item.make ~id:3 ~w:4 ~h:6, 4) ]
  in
  let a = Dsp_algo.Tall_assignment.assign ~box_height:10 ~quarter:3 ~items:tall_items in
  Printf.printf "Lemma 8 assignment (%d repair swaps):\n"
    a.Dsp_algo.Tall_assignment.repairs;
  List.iter
    (fun (id, lines) ->
      Printf.printf "  item %d -> %s\n" id
        (String.concat "+"
           (List.map
              (function
                | Dsp_algo.Tall_assignment.Bottom_line -> "bottom"
                | Dsp_algo.Tall_assignment.Middle_line -> "middle"
                | Dsp_algo.Tall_assignment.Top_line -> "top")
              lines)))
    a.Dsp_algo.Tall_assignment.lines;
  Printf.printf "verified: %b\n"
    (Result.is_ok
       (Dsp_algo.Tall_assignment.verify ~box_height:10 ~quarter:3
          ~items:tall_items a))
