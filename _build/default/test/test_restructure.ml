(* Tests for the Lemma 6/7 box restructuring. *)

open Dsp_core
module R = Dsp_algo.Restructure

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

(* Random feasible low box: tall items pairwise disjoint. *)
let random_low_box rng ~box_len =
  let items = ref [] in
  let x = ref 0 and id = ref 0 in
  while !x < box_len - 1 do
    let w = Dsp_util.Rng.int_in rng 1 (max 1 (box_len / 3)) in
    if !x + w <= box_len then begin
      if Dsp_util.Rng.bool rng then begin
        items := (Item.make ~id:!id ~w ~h:(Dsp_util.Rng.int_in rng 3 8), !x) :: !items;
        incr id
      end;
      x := !x + w
    end
    else x := box_len
  done;
  !items

(* Random feasible mid box: at most two tall items per column. *)
let random_mid_box rng ~box_len ~box_height =
  let cap = Array.make box_len 0 in
  let load = Array.make box_len 0 in
  let items = ref [] and id = ref 0 in
  for _ = 1 to 7 do
    let w = Dsp_util.Rng.int_in rng 1 (max 1 (box_len / 2)) in
    let h = Dsp_util.Rng.int_in rng (1 + (box_height / 4)) (box_height - 1) in
    let rec try_start s =
      if s + w > box_len then ()
      else begin
        let ok = ref true in
        for x = s to s + w - 1 do
          if cap.(x) + 1 > 2 || load.(x) + h > box_height then ok := false
        done;
        if !ok then begin
          for x = s to s + w - 1 do
            cap.(x) <- cap.(x) + 1;
            load.(x) <- load.(x) + h
          done;
          items := (Item.make ~id:!id ~w ~h, s) :: !items;
          incr id
        end
        else try_start (s + 1)
      end
    in
    try_start 0
  done;
  !items

let suite =
  [
    Helpers.qtest ~count:150 "Lemma 6 sorting verifies on random low boxes"
      seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let box_len = Dsp_util.Rng.int_in rng 6 24 in
        let items = random_low_box rng ~box_len in
        match items with
        | [] -> true
        | items ->
            let r = R.sort_low_box ~box_len ~items in
            Result.is_ok (R.verify_low ~box_len ~box_height:10 ~items r));
    Helpers.qtest ~count:150 "Lemma 6 sorting groups equal heights"
      seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let box_len = Dsp_util.Rng.int_in rng 6 24 in
        let items = random_low_box rng ~box_len in
        match items with
        | [] -> true
        | items ->
            let r = R.sort_low_box ~box_len ~items in
            let distinct =
              List.map (fun ((it : Item.t), _) -> it.Item.h) items
              |> List.sort_uniq compare |> List.length
            in
            r.R.tall_boxes = distinct);
    Helpers.qtest ~count:150 "Lemma 7 sorting verifies on random mid boxes"
      seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let box_len = Dsp_util.Rng.int_in rng 6 20 in
        let box_height = Dsp_util.Rng.int_in rng 8 16 in
        let quarter = box_height / 3 in
        let items = random_mid_box rng ~box_len ~box_height in
        match items with
        | [] -> true
        | items -> (
            match R.sort_mid_box ~box_len ~box_height ~quarter ~items with
            | r -> Result.is_ok (R.verify_mid ~box_len ~box_height ~items r)
            | exception Invalid_argument _ -> false));
    Alcotest.test_case "Lemma 7 rejects triple stacking" `Quick (fun () ->
        let items =
          [ (Item.make ~id:0 ~w:2 ~h:2, 0); (Item.make ~id:1 ~w:2 ~h:2, 0);
            (Item.make ~id:2 ~w:2 ~h:2, 0) ]
        in
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (R.sort_mid_box ~box_len:4 ~box_height:9 ~quarter:3 ~items);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "Lemma 6 on a hand-built box" `Quick (fun () ->
        (* Heights 5, 3, 5 with gaps: sorted arrangement is 5,5,3 from
           the left; two height-runs. *)
        let items =
          [ (Item.make ~id:0 ~w:2 ~h:5, 1); (Item.make ~id:1 ~w:3 ~h:3, 4);
            (Item.make ~id:2 ~w:1 ~h:5, 9) ]
        in
        let r = R.sort_low_box ~box_len:12 ~items in
        Alcotest.check Alcotest.int "two runs" 2 r.R.tall_boxes;
        Alcotest.check (Alcotest.option Alcotest.int) "tallest leftmost" (Some 0)
          (List.assoc_opt 0 r.R.starts));
  ]
