(* Tests for the Lemma 8 three-line assignment. *)

open Dsp_core
module Ta = Dsp_algo.Tall_assignment

(* Fill a box of [box_height] with random tall items by first fit;
   returns items with start columns (a feasible box content). *)
let random_box rng ~quarter ~box_height ~len =
  let profile = Array.make len 0 in
  let items = ref [] in
  let id = ref 0 in
  for _ = 1 to 8 do
    let w = Dsp_util.Rng.int_in rng 1 (max 1 (len / 2)) in
    let h = Dsp_util.Rng.int_in rng (quarter + 1) box_height in
    let rec try_start s =
      if s + w > len then ()
      else begin
        let ok = ref true in
        for x = s to s + w - 1 do
          if profile.(x) + h > box_height then ok := false
        done;
        if !ok then begin
          for x = s to s + w - 1 do
            profile.(x) <- profile.(x) + h
          done;
          items := (Item.make ~id:!id ~w ~h, s) :: !items;
          incr id
        end
        else try_start (s + 1)
      end
    in
    try_start 0
  done;
  !items

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let suite =
  [
    Alcotest.test_case "simple three-stack box" `Quick (fun () ->
        (* Three items stacked in one column: heights 3+3+3 in a box
           of height 9 with quarter 2 -> bottom/middle/top. *)
        let items =
          [ (Item.make ~id:0 ~w:2 ~h:3, 0); (Item.make ~id:1 ~w:2 ~h:3, 0);
            (Item.make ~id:2 ~w:2 ~h:3, 0) ]
        in
        let a = Ta.assign ~box_height:9 ~quarter:2 ~items in
        (match Ta.verify ~box_height:9 ~quarter:2 ~items a with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* All three lines are used. *)
        let used = List.concat_map snd a.Ta.lines in
        Alcotest.check Alcotest.bool "bottom used" true
          (List.mem Ta.Bottom_line used);
        Alcotest.check Alcotest.bool "top used" true (List.mem Ta.Top_line used));
    Alcotest.test_case "full-height item takes every line" `Quick (fun () ->
        let items = [ (Item.make ~id:0 ~w:3 ~h:10, 1) ] in
        let a = Ta.assign ~box_height:10 ~quarter:3 ~items in
        Alcotest.check Alcotest.int "three lines" 3
          (List.length (List.assoc 0 a.Ta.lines)));
    Alcotest.test_case "too-tall item rejected" `Quick (fun () ->
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore
               (Ta.assign ~box_height:8 ~quarter:2
                  ~items:[ (Item.make ~id:0 ~w:1 ~h:11, 0) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "assignments verify on at least 95% of random boxes"
      `Quick (fun () ->
        let rng = Dsp_util.Rng.create 2024 in
        let failures = ref 0 and runs = ref 0 in
        for _ = 1 to 400 do
          let quarter = Dsp_util.Rng.int_in rng 2 5 in
          let box_height = (3 * quarter) + Dsp_util.Rng.int_in rng 1 quarter in
          let len = Dsp_util.Rng.int_in rng 6 16 in
          let items = random_box rng ~quarter ~box_height ~len in
          match items with
          | [] -> ()
          | items -> (
              incr runs;
              let a = Ta.assign ~box_height ~quarter ~items in
              match Ta.verify ~box_height ~quarter ~items a with
              | Ok () -> ()
              | Error _ -> incr failures)
        done;
        (* The simplified normalization may miss rare multi-conflict
           corners the paper's full marking handles; see the module
           documentation. *)
        Alcotest.check Alcotest.bool
          (Printf.sprintf "%d/%d failures within 5%%" !failures !runs)
          true
          (!failures * 20 <= !runs));
  ]
