module Rng = Dsp_util.Rng
module Xutil = Dsp_util.Xutil

let rng_tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let a = Rng.create 17 and b = Rng.create 17 in
        for _ = 1 to 100 do
          Alcotest.check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        Alcotest.check Alcotest.bool "streams differ" true (xs <> ys));
    Alcotest.test_case "split independence" `Quick (fun () ->
        let a = Rng.create 5 in
        let b = Rng.split a in
        let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
        Alcotest.check Alcotest.bool "streams differ" true (xs <> ys));
    Helpers.qtest "int respects bound" (QCheck.int_range 1 10_000) (fun bound ->
        let rng = Rng.create bound in
        let x = Rng.int rng bound in
        x >= 0 && x < bound);
    Helpers.qtest "int_in respects range"
      (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range 0 100))
      (fun (lo, extent) ->
        let rng = Rng.create (lo + extent) in
        let x = Rng.int_in rng lo (lo + extent) in
        x >= lo && x <= lo + extent);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = Rng.create 9 in
        let arr = Array.init 50 Fun.id in
        Rng.shuffle rng arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.check (Alcotest.array Alcotest.int) "permutation"
          (Array.init 50 Fun.id) sorted);
  ]

let xutil_tests =
  [
    Alcotest.test_case "ceil_div" `Quick (fun () ->
        Alcotest.check Alcotest.int "7/2" 4 (Xutil.ceil_div 7 2);
        Alcotest.check Alcotest.int "8/2" 4 (Xutil.ceil_div 8 2);
        Alcotest.check Alcotest.int "0/5" 0 (Xutil.ceil_div 0 5));
    Helpers.qtest "ceil_div is minimal"
      (QCheck.pair (QCheck.int_range 0 10_000) (QCheck.int_range 1 100))
      (fun (a, b) ->
        let k = Xutil.ceil_div a b in
        k * b >= a && (k = 0 || (k - 1) * b < a));
    Alcotest.test_case "group_sorted" `Quick (fun () ->
        Alcotest.check
          (Alcotest.list (Alcotest.list Alcotest.int))
          "groups"
          [ [ 1; 1 ]; [ 2 ]; [ 3; 3; 3 ] ]
          (Xutil.group_sorted ( = ) [ 1; 1; 2; 3; 3; 3 ]));
    Alcotest.test_case "take and drop" `Quick (fun () ->
        Alcotest.check (Alcotest.list Alcotest.int) "take" [ 1; 2 ]
          (Xutil.take 2 [ 1; 2; 3 ]);
        Alcotest.check (Alcotest.list Alcotest.int) "drop" [ 3 ]
          (Xutil.drop 2 [ 1; 2; 3 ]);
        Alcotest.check (Alcotest.list Alcotest.int) "take too many" [ 1 ]
          (Xutil.take 5 [ 1 ]));
    Helpers.qtest "take @ drop = original"
      (QCheck.pair (QCheck.list QCheck.small_int) (QCheck.int_range 0 20))
      (fun (xs, n) -> Xutil.take n xs @ Xutil.drop n xs = xs);
    Alcotest.test_case "binary_search_min" `Quick (fun () ->
        Alcotest.check (Alcotest.option Alcotest.int) "min x >= 42" (Some 42)
          (Xutil.binary_search_min 0 100 (fun x -> x >= 42));
        Alcotest.check (Alcotest.option Alcotest.int) "none" None
          (Xutil.binary_search_min 0 100 (fun _ -> false));
        Alcotest.check (Alcotest.option Alcotest.int) "all" (Some 5)
          (Xutil.binary_search_min 5 100 (fun _ -> true)));
    Helpers.qtest "binary_search_min finds the threshold"
      (QCheck.pair (QCheck.int_range 0 1000) (QCheck.int_range 0 1000))
      (fun (lo, t) ->
        let hi = lo + 1000 in
        let threshold = lo + t in
        Xutil.binary_search_min lo hi (fun x -> x >= threshold) = Some threshold);
    Alcotest.test_case "range" `Quick (fun () ->
        Alcotest.check (Alcotest.list Alcotest.int) "range" [ 2; 3; 4 ]
          (Xutil.range 2 5);
        Alcotest.check (Alcotest.list Alcotest.int) "empty" [] (Xutil.range 5 5));
  ]

let suite = rng_tests @ xutil_tests
