(* Tests for the future-work extensions: 90-degree rotations and
   moldable jobs (paper conclusion). *)

open Dsp_core
module Rot = Dsp_algo.Rotations
module Mold = Dsp_pts.Moldable

let rotation_tests =
  [
    Helpers.qtest "greedy rotating packings are valid"
      (Helpers.instance_arb ~max_width:12 ~max_n:10 ~max_h:10 ()) (fun inst ->
        let pk, orientations = Rot.best_fit_rotating inst in
        Result.is_ok (Packing.validate pk)
        && Array.length orientations = Instance.n_items inst);
    Helpers.qtest "orientations preserve area"
      (Helpers.instance_arb ~max_width:12 ~max_n:10 ~max_h:10 ()) (fun inst ->
        let _, orientations = Rot.best_fit_rotating inst in
        Instance.total_area (Rot.apply inst orientations)
        = Instance.total_area inst);
    Helpers.qtest ~count:25 "rotations never hurt the exact optimum"
      (Helpers.instance_arb ~max_width:8 ~max_n:5 ~max_h:6 ()) (fun inst ->
        match Rot.rotation_gain ~node_limit:400_000 inst with
        | Some (fixed, rotated) -> rotated <= fixed
        | None -> true);
    Alcotest.test_case "rotation strictly helps a crafted instance" `Quick
      (fun () ->
        (* Width 4: two 1x4 towers; rotated they become 4x1 flats:
           fixed optimum stacks towers side by side (peak 4), rotated
           lays both flat (peak 2). *)
        let inst = Instance.of_dims ~width:4 [ (1, 4); (1, 4) ] in
        match Rot.rotation_gain inst with
        | Some (fixed, rotated) ->
            Alcotest.check Alcotest.int "fixed" 4 fixed;
            Alcotest.check Alcotest.int "rotated" 2 rotated
        | None -> Alcotest.fail "exact solver exhausted");
    Alcotest.test_case "inadmissible rotation rejected" `Quick (fun () ->
        (* Height 7 cannot become a width inside a strip of width 5. *)
        let inst = Instance.of_dims ~width:5 [ (2, 7) ] in
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (Rot.apply inst [| Rot.Rotated |]);
             false
           with Invalid_argument _ -> true));
  ]

let moldable_arb =
  QCheck.make
    ~print:(fun (m, works) ->
      Printf.sprintf "m=%d works=%s" m
        (String.concat ";" (List.map string_of_int works)))
    QCheck.Gen.(
      let* m = int_range 2 5 in
      let* n = int_range 1 6 in
      let* works = list_repeat n (int_range 1 20) in
      return (m, works))

let moldable_tests =
  [
    Alcotest.test_case "work-based tables are monotone" `Quick (fun () ->
        let t = Mold.make_work_based ~machines:4 ~work:[ 10; 7 ] in
        let j = t.Mold.jobs.(0) in
        Alcotest.check (Alcotest.array Alcotest.int) "10 work"
          [| 10; 5; 4; 3 |] j.Mold.times);
    Alcotest.test_case "increasing tables rejected" `Quick (fun () ->
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (Mold.make ~machines:2 [ [| 3; 4 |] ]);
             false
           with Invalid_argument _ -> true));
    Helpers.qtest "two-phase schedules are valid" moldable_arb (fun (m, works) ->
        let t = Mold.make_work_based ~machines:m ~work:works in
        let sched, allotment = Mold.schedule t in
        Result.is_ok (Pts.Schedule.validate sched)
        && Array.for_all (fun q -> q >= 1 && q <= m) allotment);
    Helpers.qtest ~count:30 "two-phase within 2x of the exact optimum"
      moldable_arb (fun (m, works) ->
        QCheck.assume (List.length works <= 5);
        let t = Mold.make_work_based ~machines:m ~work:works in
        match Mold.optimal_makespan ~node_limit:300_000 t with
        | Some (opt, _) -> Mold.makespan t <= 2 * opt
        | None -> true);
    Helpers.qtest ~count:30 "molding never hurts vs the rigid q=1 instance"
      moldable_arb (fun (m, works) ->
        QCheck.assume (List.length works <= 5);
        let t = Mold.make_work_based ~machines:m ~work:works in
        let rigid = Mold.allot t (Array.make (List.length works) 1) in
        match
          ( Mold.optimal_makespan ~node_limit:300_000 t,
            Dsp_exact.Pts_exact.optimal_makespan ~node_limit:300_000 rigid )
        with
        | Some (mold_opt, _), Some rigid_opt -> mold_opt <= rigid_opt
        | _ -> true);
  ]

let suite = rotation_tests @ moldable_tests
