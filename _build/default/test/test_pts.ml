open Dsp_core

let schedule_tests =
  [
    Alcotest.test_case "valid schedule accepted" `Quick (fun () ->
        let inst = Pts.Inst.of_dims ~machines:2 [ (2, 1); (2, 1); (1, 2) ] in
        let sched =
          Pts.Schedule.make inst ~sigma:[| 0; 0; 2 |]
            ~rho:[| [ 0 ]; [ 1 ]; [ 0; 1 ] |]
        in
        Alcotest.check Alcotest.int "makespan" 3 (Pts.Schedule.makespan sched));
    Alcotest.test_case "machine conflict rejected" `Quick (fun () ->
        let inst = Pts.Inst.of_dims ~machines:2 [ (2, 1); (2, 1) ] in
        Alcotest.check Alcotest.bool "overlap on machine 0" true
          (Pts.Schedule.error inst ~sigma:[| 0; 1 |] ~rho:[| [ 0 ]; [ 0 ] |]
          <> None));
    Alcotest.test_case "wrong machine count rejected" `Quick (fun () ->
        let inst = Pts.Inst.of_dims ~machines:3 [ (1, 2) ] in
        Alcotest.check Alcotest.bool "one machine for q=2" true
          (Pts.Schedule.error inst ~sigma:[| 0 |] ~rho:[| [ 0 ] |] <> None);
        Alcotest.check Alcotest.bool "duplicate machines" true
          (Pts.Schedule.error inst ~sigma:[| 0 |] ~rho:[| [ 1; 1 ] |] <> None));
    Alcotest.test_case "lower bounds on known instance" `Quick (fun () ->
        (* 3 machines; work = 2*3 + 4 = 10 -> ceil 10/3 = 4; longest
           job 4; stacking: q=2 job (2q > 3) alone -> 3. *)
        let inst = Pts.Inst.of_dims ~machines:3 [ (3, 2); (4, 1) ] in
        Alcotest.check Alcotest.int "work bound" 4 (Pts.Inst.work_lower_bound inst);
        Alcotest.check Alcotest.int "lower bound" 4 (Pts.Inst.lower_bound inst));
  ]

let list_scheduling_tests =
  [
    Helpers.qtest "list schedules are valid" (Helpers.pts_arb ()) (fun inst ->
        let sched = Dsp_pts.List_scheduling.schedule inst in
        Result.is_ok (Pts.Schedule.validate sched));
    Helpers.qtest ~count:40 "list schedule within 2x the exact optimum"
      (Helpers.pts_arb ~max_m:4 ~max_n:7 ~max_p:5 ()) (fun inst ->
        let mk = Dsp_pts.List_scheduling.makespan inst in
        match Dsp_exact.Pts_exact.optimal_makespan ~node_limit:500_000 inst with
        | Some opt -> mk <= 2 * opt
        | None -> true);
    Helpers.qtest "all orders produce valid schedules" (Helpers.pts_arb ())
      (fun inst ->
        List.for_all
          (fun order ->
            Result.is_ok
              (Pts.Schedule.validate (Dsp_pts.List_scheduling.schedule ~order inst)))
          Dsp_pts.List_scheduling.
            [ Input; Longest_first; Widest_first; Work_first ]);
  ]

let exact_small_tests =
  [
    Alcotest.test_case "m=1 is the serial sum" `Quick (fun () ->
        let inst = Pts.Inst.of_dims ~machines:1 [ (3, 1); (4, 1); (2, 1) ] in
        Alcotest.check (Alcotest.option Alcotest.int) "makespan" (Some 9)
          (Dsp_pts.Exact_small.optimal_makespan inst));
    Alcotest.test_case "m=2 partitions singles" `Quick (fun () ->
        (* q=2 block of 3, singles 4+3+3+2 = 12 -> balanced 6/6;
           optimum 3 + 6 = 9. *)
        let inst =
          Pts.Inst.of_dims ~machines:2 [ (3, 2); (4, 1); (3, 1); (3, 1); (2, 1) ]
        in
        Alcotest.check (Alcotest.option Alcotest.int) "makespan" (Some 9)
          (Dsp_pts.Exact_small.optimal_makespan inst));
    Helpers.qtest "m=2 DP matches branch and bound"
      (Helpers.pts_arb ~max_m:2 ~max_n:7 ~max_p:5 ()) (fun inst ->
        QCheck.assume (inst.Pts.Inst.machines = 2);
        match
          ( Dsp_pts.Exact_small.optimal_makespan inst,
            Dsp_exact.Pts_exact.optimal_makespan inst )
        with
        | Some a, Some b -> a = b
        | _ -> true);
    Helpers.qtest "m=2 DP schedules are valid and optimal"
      (Helpers.pts_arb ~max_m:2 ~max_n:8 ()) (fun inst ->
        QCheck.assume (Dsp_pts.Exact_small.supported inst);
        match Dsp_pts.Exact_small.solve inst with
        | Some sched ->
            Result.is_ok (Pts.Schedule.validate sched)
            && Pts.Schedule.makespan sched >= Pts.Inst.lower_bound inst
        | None -> false);
  ]

let suite = schedule_tests @ list_scheduling_tests @ exact_small_tests
