open Dsp_core

let shelf_tests =
  [
    Helpers.qtest "NFDH packings are valid"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Result.is_ok (Rect_packing.validate (Dsp_sp.Shelf.nfdh inst)));
    Helpers.qtest "FFDH packings are valid"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Result.is_ok (Rect_packing.validate (Dsp_sp.Shelf.ffdh inst)));
    Helpers.qtest "NFDH respects its proven bound"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Rect_packing.height (Dsp_sp.Shelf.nfdh inst)
        <= Dsp_sp.Shelf.nfdh_height_bound inst);
    Helpers.qtest "FFDH never worse than NFDH"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Rect_packing.height (Dsp_sp.Shelf.ffdh inst)
        <= Rect_packing.height (Dsp_sp.Shelf.nfdh inst));
    Alcotest.test_case "nfdh_into splits placed and leftover" `Quick (fun () ->
        let items =
          [ Item.make ~id:0 ~w:2 ~h:3; Item.make ~id:1 ~w:2 ~h:2;
            Item.make ~id:2 ~w:2 ~h:2 ]
        in
        (* Box 4x4: shelf 1 holds the 3-tall and a 2-tall; the second
           2-tall opens a shelf at y=3 and does not fit. *)
        let placed, leftover = Dsp_sp.Shelf.nfdh_into ~width:4 ~height:4 items in
        Alcotest.check Alcotest.int "placed" 2 (List.length placed);
        Alcotest.check Alcotest.int "leftover" 1 (List.length leftover));
    Helpers.qtest "nfdh_into conserves items"
      (Helpers.instance_arb ~max_width:10 ~max_n:10 ()) (fun inst ->
        let items = Array.to_list inst.Instance.items in
        let placed, leftover =
          Dsp_sp.Shelf.nfdh_into ~width:inst.Instance.width ~height:6 items
        in
        List.length placed + List.length leftover = List.length items);
  ]

let bottom_left_tests =
  [
    Helpers.qtest "bottom-left packings are valid"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Result.is_ok (Rect_packing.validate (Dsp_sp.Bottom_left.pack inst)));
    Helpers.qtest "bottom-left height between the bounds"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        let h = Dsp_sp.Bottom_left.height inst in
        h >= Instance.lower_bound inst
        && h
           <= Dsp_util.Xutil.sum_by
                (fun (it : Item.t) -> it.Item.h)
                (Array.to_list inst.Instance.items));
    Helpers.qtest "forgetting y coordinates never raises the peak"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        let pk = Dsp_sp.Bottom_left.pack inst in
        Packing.height (Rect_packing.to_dsp pk) <= Rect_packing.height pk);
  ]

let steinberg_tests =
  [
    Alcotest.test_case "region bound formula" `Quick (fun () ->
        (* Area 8 in width 4 with small items: v = 4 gives
           2*8 = 16 <= 16. *)
        Alcotest.check Alcotest.int "bound" 4
          (Dsp_sp.Steinberg.region_bound ~u:4 ~w_max:2 ~h_max:2 ~area:8));
    Helpers.qtest "steinberg packings are valid"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Result.is_ok (Rect_packing.validate (Dsp_sp.Steinberg.pack inst)));
    Helpers.qtest "steinberg within the NFDH guarantee"
      (Helpers.instance_arb ~max_width:15 ~max_n:12 ()) (fun inst ->
        Dsp_sp.Steinberg.height inst <= Dsp_sp.Shelf.nfdh_height_bound inst);
    Helpers.qtest ~count:200 "steinberg within 2.1x of max(area, h) bound"
      (Helpers.instance_arb ~max_width:15 ~max_n:14 ()) (fun inst ->
        (* The Steinberg guarantee is <= 2 * max(S/W, h_max) up to
           rounding; we allow integer slack of h_max. *)
        let lb = max (Instance.area_lower_bound inst) (Instance.max_height inst) in
        Dsp_sp.Steinberg.height inst <= (2 * lb) + Instance.max_height inst);
    Helpers.qtest "pack_region respects the region"
      (Helpers.instance_arb ~max_width:12 ~max_n:8 ~max_h:5 ()) (fun inst ->
        let v = Dsp_sp.Steinberg.height_bound inst in
        match
          Dsp_sp.Steinberg.pack_region ~u:inst.Instance.width ~v
            (Array.to_list inst.Instance.items)
        with
        | None -> true
        | Some placements ->
            List.for_all
              (fun ((it : Item.t), { Rect_packing.x; y }) ->
                x >= 0 && y >= 0
                && x + it.Item.w <= inst.Instance.width
                && y + it.Item.h <= v)
              placements
            && List.length placements = Instance.n_items inst);
  ]

let suite = shelf_tests @ bottom_left_tests @ steinberg_tests
