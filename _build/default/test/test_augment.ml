open Dsp_core
module Augment = Dsp_augment.Augment

let dsp_augment_tests =
  [
    Helpers.qtest ~count:40 "corollary 2 result is valid and height-optimal"
      (Helpers.instance_arb ~max_width:10 ~max_n:6 ~max_h:5 ()) (fun inst ->
        let r = Augment.dsp_with_width_augmentation inst in
        Result.is_ok (Packing.validate r.Augment.packing)
        && r.Augment.width_used >= inst.Instance.width
        &&
        (* The certified height never exceeds the width-W optimum. *)
        match Dsp_exact.Dsp_bb.optimal_height ~node_limit:500_000 inst with
        | Some opt -> r.Augment.height <= opt
        | None -> true);
    Helpers.qtest ~count:40 "corollary 2 width stays within the 2x certificate"
      (Helpers.instance_arb ~max_width:12 ~max_n:10 ()) (fun inst ->
        let r = Augment.dsp_with_width_augmentation inst in
        r.Augment.width_factor <= 2.0 +. 1e-9);
  ]

let pts_augment_tests =
  [
    Helpers.qtest ~count:30 "corollary 3 result is valid and makespan-optimal"
      (Helpers.pts_arb ~max_m:4 ~max_n:6 ~max_p:4 ()) (fun inst ->
        let r = Augment.pts_53 inst in
        Result.is_ok (Pts.Schedule.validate r.Augment.schedule)
        &&
        match Dsp_exact.Pts_exact.optimal_makespan ~node_limit:500_000 inst with
        | Some opt -> r.Augment.makespan <= opt
        | None -> true);
    Helpers.qtest ~count:30 "corollary 3 machine factor within 5/3"
      (Helpers.pts_arb ~max_m:6 ~max_n:8 ()) (fun inst ->
        let r = Augment.pts_53 inst in
        r.Augment.machines_used <= max inst.Pts.Inst.machines
                                     (5 * inst.Pts.Inst.machines / 3));
    Helpers.qtest ~count:20 "corollary 4 machine factor within 5/4"
      (Helpers.pts_arb ~max_m:5 ~max_n:7 ~max_p:5 ()) (fun inst ->
        let r = Augment.pts_54 inst in
        Result.is_ok (Pts.Schedule.validate r.Augment.schedule)
        && r.Augment.machines_used
           <= max inst.Pts.Inst.machines (5 * inst.Pts.Inst.machines / 4));
    Helpers.qtest ~count:20 "corollary 4 result is makespan-optimal"
      (Helpers.pts_arb ~max_m:4 ~max_n:6 ~max_p:4 ()) (fun inst ->
        let r = Augment.pts_54 inst in
        match Dsp_exact.Pts_exact.optimal_makespan ~node_limit:500_000 inst with
        | Some opt -> r.Augment.makespan <= opt
        | None -> true);
  ]

let suite = dsp_augment_tests @ pts_augment_tests
