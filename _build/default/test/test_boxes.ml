(* Tests for the executable structural lemmas (Boxes). *)

open Dsp_core
module Rat = Dsp_util.Rat

let with_params inst f =
  let target = max 1 (Instance.lower_bound inst) in
  let p = Dsp_algo.Classify.choose_params inst ~target ~eps:(Rat.make 1 4) in
  f target p

let suite =
  [
    Helpers.qtest "snapping keeps packings valid"
      (Helpers.instance_arb ~max_width:20 ~max_n:12 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        with_params inst (fun _ p ->
            let snapped, _ = Dsp_algo.Boxes.snap_horizontal_starts pk p in
            Result.is_ok (Packing.validate snapped)));
    Helpers.qtest "snapping respects the start-point bound"
      (Helpers.instance_arb ~max_width:30 ~max_n:15 ~max_h:4 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        with_params inst (fun _ p ->
            let _, points = Dsp_algo.Boxes.snap_horizontal_starts pk p in
            let s = Dsp_algo.Boxes.partition_stats pk p in
            points <= s.Dsp_algo.Boxes.horizontal_start_bound
            || (* the bound counts grid points; items can never use
                  more grid points than exist *)
            points
               <= (inst.Instance.width
                  / max 1
                      (Rat.floor
                         Rat.(
                           mul
                             (mul p.Dsp_algo.Classify.eps p.Dsp_algo.Classify.delta)
                             (of_int inst.Instance.width))))
                  + 1));
    Helpers.qtest "partition stats are internally consistent"
      (Helpers.instance_arb ~max_width:20 ~max_n:12 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        with_params inst (fun _ p ->
            let s = Dsp_algo.Boxes.partition_stats pk p in
            s.Dsp_algo.Boxes.peak_after >= Instance.lower_bound inst
            && s.Dsp_algo.Boxes.n_tall_vertical_boxes >= 1
            && s.Dsp_algo.Boxes.n_large_boxes >= 0
            && s.Dsp_algo.Boxes.tv_box_bound > 0));
    Alcotest.test_case "horizontal boxes cover all horizontal items" `Quick
      (fun () ->
        (* Tall towers make the optimum large so the flats classify
           as horizontal; every flat must land in some box. *)
        let inst =
          Instance.of_dims ~width:24
            ([ (2, 70); (3, 66); (2, 68) ] @ List.init 5 (fun _ -> (14, 1)))
        in
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        with_params inst (fun _ p ->
            let cls = Dsp_algo.Classify.classify inst p in
            let n_horizontal = List.length cls.Dsp_algo.Classify.horizontal in
            let s = Dsp_algo.Boxes.partition_stats pk p in
            Alcotest.check Alcotest.bool "flats are horizontal" true
              (n_horizontal >= 1);
            Alcotest.check Alcotest.bool "boxes exist" true
              (s.Dsp_algo.Boxes.n_horizontal_boxes >= 1
              && s.Dsp_algo.Boxes.n_horizontal_boxes <= n_horizontal)));
  ]
