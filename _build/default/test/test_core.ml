open Dsp_core

let item_tests =
  [
    Alcotest.test_case "make validates dimensions" `Quick (fun () ->
        Alcotest.check_raises "zero width"
          (Invalid_argument "Item.make: width must be >= 1") (fun () ->
            ignore (Item.make ~id:0 ~w:0 ~h:1));
        Alcotest.check_raises "zero height"
          (Invalid_argument "Item.make: height must be >= 1") (fun () ->
            ignore (Item.make ~id:0 ~w:1 ~h:0)));
    Alcotest.test_case "area and scaling" `Quick (fun () ->
        let it = Item.make ~id:3 ~w:4 ~h:5 in
        Alcotest.check Alcotest.int "area" 20 (Item.area it);
        Alcotest.check Alcotest.int "scaled height" 15
          (Item.scale_height 3 it).Item.h;
        Alcotest.check Alcotest.int "scaled width" 8 (Item.scale_width 2 it).Item.w);
    Alcotest.test_case "orderings" `Quick (fun () ->
        let a = Item.make ~id:0 ~w:2 ~h:5 and b = Item.make ~id:1 ~w:3 ~h:4 in
        Alcotest.check Alcotest.bool "height desc puts a first" true
          (Item.compare_by_height_desc a b < 0);
        Alcotest.check Alcotest.bool "width desc puts b first" true
          (Item.compare_by_width_desc b a < 0);
        Alcotest.check Alcotest.bool "area desc puts b(12) after a(10)? no" true
          (Item.compare_by_area_desc b a < 0));
  ]

let instance_tests =
  [
    Alcotest.test_case "make re-ids items" `Quick (fun () ->
        let items = [| Item.make ~id:9 ~w:1 ~h:1; Item.make ~id:9 ~w:2 ~h:2 |] in
        let inst = Instance.make ~width:4 items in
        Alcotest.check Alcotest.int "first id" 0 (Instance.item inst 0).Item.id;
        Alcotest.check Alcotest.int "second id" 1 (Instance.item inst 1).Item.id);
    Alcotest.test_case "rejects too-wide items" `Quick (fun () ->
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (Instance.of_dims ~width:3 [ (4, 1) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "bounds on a known instance" `Quick (fun () ->
        (* width 4; items 2x2, 2x2, 4x1: area 12 -> area bound 3;
           max height 2; column bound: only the 4-wide item crosses
           the middle -> 1. *)
        let inst = Instance.of_dims ~width:4 [ (2, 2); (2, 2); (4, 1) ] in
        Alcotest.check Alcotest.int "area bound" 3 (Instance.area_lower_bound inst);
        Alcotest.check Alcotest.int "max height" 2 (Instance.max_height inst);
        Alcotest.check Alcotest.int "column bound" 1
          (Instance.column_lower_bound inst);
        Alcotest.check Alcotest.int "lower bound" 3 (Instance.lower_bound inst));
    Helpers.qtest "lower bound is sound vs exact optimum"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        match Dsp_exact.Dsp_bb.optimal_height inst with
        | Some opt -> Instance.lower_bound inst <= opt
        | None -> true);
    Helpers.qtest "scale_heights scales area"
      (Helpers.instance_arb ~max_width:10 ~max_n:6 ()) (fun inst ->
        Instance.total_area (Instance.scale_heights 3 inst)
        = 3 * Instance.total_area inst);
  ]

let suite = item_tests @ instance_tests
