(* Tests for the shared placement primitives (Budget_fit). *)

open Dsp_core
module B = Dsp_algo.Budget_fit

let suite =
  [
    Helpers.qtest "free boxes tile the space between profile and cap"
      (Helpers.instance_arb ~max_width:20 ~max_n:10 ()) (fun inst ->
        let st = B.create inst in
        Array.iter
          (fun (it : Item.t) ->
            ignore (B.best_fit st it ~budget:max_int))
          inst.Instance.items;
        let cap = B.peak st + 3 in
        let boxes = B.free_boxes st ~cap in
        (* Sum of box areas equals cap*width - occupied area, boxes
           are disjoint and left-to-right, and every box base matches
           the profile. *)
        let profile = B.profile st in
        let free_area =
          (cap * inst.Instance.width)
          - Array.fold_left ( + ) 0 (Profile.to_array profile)
        in
        let box_area =
          Dsp_util.Xutil.sum_by (fun (b : B.free_box) -> b.B.len * b.B.height) boxes
        in
        let bases_ok =
          List.for_all
            (fun (b : B.free_box) ->
              b.B.base = Profile.load profile b.B.x
              && b.B.base + b.B.height = cap
              && Profile.peak_in profile ~start:b.B.x ~len:b.B.len = b.B.base)
            boxes
        in
        let ordered =
          let rec go = function
            | (a : B.free_box) :: (b : B.free_box) :: rest ->
                a.B.x + a.B.len <= b.B.x && go (b :: rest)
            | _ -> true
          in
          go boxes
        in
        box_area = free_area && bases_ok && ordered);
    Helpers.qtest "place then unplace restores the profile"
      (Helpers.instance_arb ~max_width:15 ~max_n:8 ()) (fun inst ->
        let st = B.create inst in
        let before = Profile.to_array (B.profile st) in
        let it = Instance.item inst 0 in
        B.place st it ~start:0;
        B.unplace st it;
        Profile.to_array (B.profile st) = before);
    Helpers.qtest "first fit never places beyond the budget"
      (Helpers.instance_arb ~max_width:15 ~max_n:10 ~max_h:5 ()) (fun inst ->
        let st = B.create inst in
        let budget = Instance.lower_bound inst + 2 in
        Array.iter
          (fun (it : Item.t) -> ignore (B.first_fit st it ~budget))
          inst.Instance.items;
        B.peak st <= budget);
    Helpers.qtest "best fit places at a window of minimal peak"
      (Helpers.instance_arb ~max_width:12 ~max_n:6 ()) (fun inst ->
        let st = B.create inst in
        (* Place all but the last item arbitrarily, then check the
           best-fit position of the last. *)
        let n = Instance.n_items inst in
        QCheck.assume (n >= 2);
        for i = 0 to n - 2 do
          ignore (B.best_fit st (Instance.item inst i) ~budget:max_int)
        done;
        let it = Instance.item inst (n - 1) in
        let profile_before = B.profile st in
        let best = ref max_int in
        for s = 0 to inst.Instance.width - it.Item.w do
          best := min !best (Profile.peak_in profile_before ~start:s ~len:it.Item.w)
        done;
        let expected = !best in
        ignore (B.best_fit st it ~budget:max_int);
        let s = (B.starts st).(n - 1) in
        (* The profile now includes the item, which raised its own
           window uniformly by its height. *)
        Profile.peak_in profile_before ~start:s ~len:it.Item.w - it.Item.h
        = expected);
    Alcotest.test_case "to_packing rejects unplaced items" `Quick (fun () ->
        let inst = Instance.of_dims ~width:4 [ (2, 2); (2, 2) ] in
        let st = B.create inst in
        B.place st (Instance.item inst 0) ~start:0;
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (B.to_packing st);
             false
           with Invalid_argument _ -> true));
  ]
