test/test_sp.ml: Alcotest Array Dsp_core Dsp_sp Dsp_util Helpers Instance Item List Packing Rect_packing Result
