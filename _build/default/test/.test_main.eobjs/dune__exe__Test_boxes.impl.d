test/test_boxes.ml: Alcotest Dsp_algo Dsp_core Dsp_util Helpers Instance List Packing Result
