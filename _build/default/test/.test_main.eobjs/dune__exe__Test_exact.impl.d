test/test_exact.ml: Alcotest Array Dsp_core Dsp_exact Dsp_instance Dsp_pts Dsp_util Helpers Instance Item List Packing Profile Pts QCheck Rect_packing Result
