test/test_util.ml: Alcotest Array Dsp_util Fun Helpers List QCheck
