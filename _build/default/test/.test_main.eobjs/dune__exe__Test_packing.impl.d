test/test_packing.ml: Alcotest Array Dsp_algo Dsp_core Dsp_util Helpers Instance Item List Packing Result Slice_layout String
