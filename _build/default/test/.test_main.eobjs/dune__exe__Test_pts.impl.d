test/test_pts.ml: Alcotest Dsp_core Dsp_exact Dsp_pts Helpers List Pts QCheck Result
