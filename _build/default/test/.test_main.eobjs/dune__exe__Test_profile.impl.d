test/test_profile.ml: Alcotest Array Dsp_core Helpers Instance Item List Printf Profile QCheck Segtree String
