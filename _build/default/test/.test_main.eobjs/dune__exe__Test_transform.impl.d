test/test_transform.ml: Array Dsp_algo Dsp_core Dsp_exact Dsp_pts Dsp_transform Helpers Instance Packing Pts QCheck Result Slice_layout
