test/test_lp.ml: Alcotest Array Dsp_lp Dsp_util Helpers List Printf QCheck String
