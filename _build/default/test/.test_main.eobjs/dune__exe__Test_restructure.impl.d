test/test_restructure.ml: Alcotest Array Dsp_algo Dsp_core Dsp_util Helpers Item List QCheck Result
