test/helpers.ml: Alcotest Dsp_core Dsp_pts Format Instance Packing Pts QCheck QCheck_alcotest
