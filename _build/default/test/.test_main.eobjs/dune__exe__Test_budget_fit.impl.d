test/test_budget_fit.ml: Alcotest Array Dsp_algo Dsp_core Dsp_util Helpers Instance Item List Profile QCheck
