test/test_algo.ml: Alcotest Array Dsp_algo Dsp_core Dsp_exact Dsp_instance Dsp_util Helpers Instance Item List Packing Profile Result
