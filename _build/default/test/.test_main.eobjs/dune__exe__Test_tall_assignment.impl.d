test/test_tall_assignment.ml: Alcotest Array Dsp_algo Dsp_core Dsp_util Item List Printf QCheck
