test/test_core.ml: Alcotest Dsp_core Dsp_exact Helpers Instance Item
