test/test_augment.ml: Dsp_augment Dsp_core Dsp_exact Helpers Instance Packing Pts Result
