test/test_instance.ml: Alcotest Array Dsp_core Dsp_exact Dsp_instance Dsp_util Helpers Instance Item List Pts QCheck Result
