test/test_smartgrid.ml: Alcotest Array Dsp_algo Dsp_core Dsp_smartgrid Dsp_util Helpers List Packing Profile QCheck Result
