test/test_extensions.ml: Alcotest Array Dsp_algo Dsp_core Dsp_exact Dsp_pts Helpers Instance List Packing Printf Pts QCheck Result String
