test/test_rat.ml: Alcotest Dsp_util Helpers QCheck
