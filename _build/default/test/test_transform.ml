open Dsp_core
module Transform = Dsp_transform.Transform

let transform_tests =
  [
    Helpers.qtest "schedule -> packing keeps the objective"
      (Helpers.pts_arb ()) (fun inst ->
        let sched = Dsp_pts.List_scheduling.schedule inst in
        let pk = Transform.schedule_to_packing sched in
        Result.is_ok (Packing.validate pk)
        && Packing.height pk <= inst.Pts.Inst.machines
        && (Packing.instance pk).Instance.width = Pts.Schedule.makespan sched);
    Helpers.qtest "packing -> schedule assigns concrete machines"
      (Helpers.instance_arb ~max_width:12 ~max_n:10 ~max_h:5 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        let m = Packing.height pk in
        match Transform.packing_to_schedule pk ~machines:m with
        | Error e -> QCheck.Test.fail_reportf "unexpected failure: %s" e
        | Ok (sched, _) ->
            Result.is_ok (Pts.Schedule.validate sched)
            && Pts.Schedule.makespan sched <= inst.Instance.width);
    Helpers.qtest "packing -> schedule fails above the machine budget"
      (Helpers.instance_arb ~max_width:10 ~max_n:6 ~max_h:5 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        let m = Packing.height pk in
        QCheck.assume (m > 1);
        Result.is_error (Transform.packing_to_schedule pk ~machines:(m - 1)));
    Helpers.qtest "round trip preserves makespan and validity"
      (Helpers.pts_arb ()) (fun inst ->
        let sched = Dsp_pts.List_scheduling.schedule inst in
        match Transform.roundtrip_schedule sched with
        | Error e -> QCheck.Test.fail_reportf "roundtrip failed: %s" e
        | Ok back ->
            Result.is_ok (Pts.Schedule.validate back)
            && Pts.Schedule.makespan back <= Pts.Schedule.makespan sched);
    Helpers.qtest "layout transformation is feasible and height-preserving"
      (Helpers.pts_arb ~max_m:5 ~max_n:9 ()) (fun inst ->
        let sched = Dsp_pts.List_scheduling.schedule inst in
        let layout, stats = Transform.schedule_to_layout sched in
        Result.is_ok (Slice_layout.validate layout)
        && Slice_layout.height layout <= inst.Pts.Inst.machines
        && stats.Transform.repairs <= stats.Transform.events);
    Helpers.qtest "instance transformations are mutually inverse"
      (Helpers.pts_arb ()) (fun inst ->
        let width = 1 + Pts.Inst.max_time inst in
        let dsp = Transform.pts_to_dsp_instance inst ~width in
        let back = Transform.dsp_to_pts_instance dsp ~machines:inst.Pts.Inst.machines in
        Array.for_all2
          (fun (a : Pts.Job.t) (b : Pts.Job.t) -> a.p = b.p && a.q = b.q)
          inst.Pts.Inst.jobs back.Pts.Inst.jobs);
  ]

let duality_tests =
  [
    (* The heart of Theorem 1: feasibility transfers exactly between
       the two problems on small instances. *)
    Helpers.qtest ~count:40 "optimal makespan equals optimal dual height"
      (Helpers.pts_arb ~max_m:4 ~max_n:6 ~max_p:4 ()) (fun inst ->
        match Dsp_exact.Pts_exact.solve ~node_limit:500_000 inst with
        | None -> true
        | Some sched ->
            let t = Pts.Schedule.makespan sched in
            (* A strip of width t and height budget m must be feasible,
               and width t-1 must not admit height <= m (optimality). *)
            let dual = Transform.pts_to_dsp_instance inst ~width:t in
            (match Dsp_exact.Dsp_bb.decide ~node_limit:500_000 dual
                     ~height:inst.Pts.Inst.machines with
            | Dsp_exact.Dsp_bb.Feasible _ -> true
            | _ -> false)
            &&
            (t <= Pts.Inst.max_time inst
            ||
            let dual' = Transform.pts_to_dsp_instance inst ~width:(t - 1) in
            match
              Dsp_exact.Dsp_bb.decide ~node_limit:500_000 dual'
                ~height:inst.Pts.Inst.machines
            with
            | Dsp_exact.Dsp_bb.Infeasible -> true
            | Dsp_exact.Dsp_bb.Node_budget_exhausted -> true
            | Dsp_exact.Dsp_bb.Feasible _ -> false));
  ]

let suite = transform_tests @ duality_tests
