module Sg = Dsp_smartgrid.Smartgrid
open Dsp_core

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10_000)

let suite =
  [
    Alcotest.test_case "catalogue fits the day" `Quick (fun () ->
        List.iter
          (fun (a : Sg.appliance) ->
            Alcotest.check Alcotest.bool a.Sg.name true
              (a.Sg.duration >= 1
              && a.Sg.duration <= Sg.slots_per_day
              && a.Sg.power >= 1
              && a.Sg.preferred_slot >= 0
              && a.Sg.preferred_slot < Sg.slots_per_day))
          Sg.catalogue);
    Helpers.qtest "simulation is deterministic in the seed" seed_arb (fun seed ->
        let runs1 = Sg.simulate_day (Dsp_util.Rng.create seed) ~households:8 in
        let runs2 = Sg.simulate_day (Dsp_util.Rng.create seed) ~households:8 in
        List.length runs1 = List.length runs2
        && List.for_all2
             (fun (a : Sg.run) (b : Sg.run) ->
               a.Sg.arrival = b.Sg.arrival
               && a.Sg.appliance.Sg.name = b.Sg.appliance.Sg.name)
             runs1 runs2);
    Helpers.qtest "naive packing is valid" seed_arb (fun seed ->
        let runs = Sg.simulate_day (Dsp_util.Rng.create seed) ~households:6 in
        QCheck.assume (runs <> []);
        Result.is_ok (Packing.validate (Sg.naive_packing runs)));
    Helpers.qtest "scheduler never loses to the naive schedule" seed_arb
      (fun seed ->
        let runs = Sg.simulate_day (Dsp_util.Rng.create seed) ~households:6 in
        QCheck.assume (runs <> []);
        let report =
          Sg.evaluate runs ~scheduler:Dsp_algo.Baselines.first_fit_doubling
        in
        report.Sg.scheduled_peak <= report.Sg.naive_peak
        && report.Sg.scheduled_peak >= report.Sg.lower_bound);
    Helpers.qtest "quadratic cost is the sum of squared loads" seed_arb
      (fun seed ->
        let runs = Sg.simulate_day (Dsp_util.Rng.create seed) ~households:3 in
        QCheck.assume (runs <> []);
        let p = Packing.profile (Sg.naive_packing runs) in
        Sg.quadratic_cost p
        = Array.fold_left (fun acc v -> acc + (v * v)) 0 (Profile.to_array p));
  ]
