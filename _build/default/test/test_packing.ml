open Dsp_core

let left_starts inst =
  Array.map (fun (_ : Item.t) -> 0) inst.Instance.items

let packing_tests =
  [
    Alcotest.test_case "make validates overhang" `Quick (fun () ->
        let inst = Instance.of_dims ~width:4 [ (3, 1) ] in
        Alcotest.check Alcotest.bool "raises" true
          (try
             ignore (Packing.make inst [| 2 |]);
             false
           with Invalid_argument _ -> true);
        Alcotest.check Alcotest.bool "negative raises" true
          (try
             ignore (Packing.make inst [| -1 |]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "height is the profile peak" `Quick (fun () ->
        let inst = Instance.of_dims ~width:4 [ (2, 2); (2, 3); (4, 1) ] in
        let pk = Packing.make inst [| 0; 2; 0 |] in
        Alcotest.check Alcotest.int "height" 4 (Packing.height pk));
    Alcotest.test_case "shift re-places an item" `Quick (fun () ->
        let inst = Instance.of_dims ~width:4 [ (2, 2); (2, 3) ] in
        let pk = Packing.make inst [| 0; 0 |] in
        Alcotest.check Alcotest.int "stacked" 5 (Packing.height pk);
        let pk' = Packing.shift pk 1 2 in
        Alcotest.check Alcotest.int "side by side" 3 (Packing.height pk'));
    Helpers.qtest "all-left packing is valid and peak = stacked sum"
      (Helpers.instance_arb ~max_width:10 ~max_n:8 ()) (fun inst ->
        let pk = Packing.make inst (left_starts inst) in
        Result.is_ok (Packing.validate pk)
        && Packing.height pk
           = Dsp_util.Xutil.sum_by
               (fun (it : Item.t) -> it.Item.h)
               (Array.to_list inst.Instance.items
               |> List.filter (fun (it : Item.t) -> it.Item.w > 0)));
  ]

let layout_tests =
  [
    Helpers.qtest "stacked layout is valid with the packing's height"
      (Helpers.instance_arb ~max_width:12 ~max_n:8 ()) (fun inst ->
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst in
        let layout = Slice_layout.stacked pk in
        Result.is_ok (Slice_layout.validate layout)
        && Slice_layout.height layout = Packing.height pk);
    Alcotest.test_case "overlapping layout rejected" `Quick (fun () ->
        let inst = Instance.of_dims ~width:2 [ (2, 2); (2, 2) ] in
        let pk = Packing.make inst [| 0; 0 |] in
        (* Both items at y = 0: columns overlap. *)
        let ys = [| [| 0; 0 |]; [| 0; 0 |] |] in
        Alcotest.check Alcotest.bool "error reported" true
          (Slice_layout.error pk ys <> None));
    Alcotest.test_case "slice points count vertical cuts" `Quick (fun () ->
        let inst = Instance.of_dims ~width:3 [ (3, 1) ] in
        let pk = Packing.make inst [| 0 |] in
        let layout = Slice_layout.make pk [| [| 0; 2; 2 |] |] in
        Alcotest.check Alcotest.int "one cut" 1 (Slice_layout.slice_points layout);
        Alcotest.check Alcotest.int "height counts the slice top" 3
          (Slice_layout.height layout));
    Alcotest.test_case "render shows every item" `Quick (fun () ->
        let inst = Instance.of_dims ~width:4 [ (2, 1); (2, 1) ] in
        let pk = Packing.make inst [| 0; 2 |] in
        let s = Slice_layout.render (Slice_layout.stacked pk) in
        Alcotest.check Alcotest.bool "has A" true (String.contains s 'A');
        Alcotest.check Alcotest.bool "has B" true (String.contains s 'B'));
  ]

let suite = packing_tests @ layout_tests
