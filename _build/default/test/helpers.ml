(* Shared generators and assertions for the test suites. *)

open Dsp_core

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* QCheck generator for a small DSP instance: width in [2, max_width],
   items with dims bounded by the width / max_h. *)
let instance_gen ?(max_width = 16) ?(max_n = 10) ?(max_h = 8) () =
  let open QCheck.Gen in
  let* width = int_range 2 max_width in
  let* n = int_range 1 max_n in
  let* dims =
    list_repeat n (pair (int_range 1 width) (int_range 1 max_h))
  in
  return (Instance.of_dims ~width dims)

let instance_arb ?max_width ?max_n ?max_h () =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Instance.pp i)
    (instance_gen ?max_width ?max_n ?max_h ())

(* Small instances where the exact solver is fast. *)
let tiny_instance_arb () = instance_arb ~max_width:8 ~max_n:6 ~max_h:5 ()

let pts_gen ?(max_m = 6) ?(max_n = 10) ?(max_p = 8) () =
  let open QCheck.Gen in
  let* machines = int_range 1 max_m in
  let* n = int_range 1 max_n in
  let* dims = list_repeat n (pair (int_range 1 max_p) (int_range 1 machines)) in
  return (Pts.Inst.of_dims ~machines dims)

let pts_arb ?max_m ?max_n ?max_p () =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Pts.Inst.pp i)
    (pts_gen ?max_m ?max_n ?max_p ())

(* A random valid schedule: place jobs with the list scheduler after a
   random shuffle of priorities. *)
let schedule_of_pts seed inst =
  let _ = seed in
  Dsp_pts.List_scheduling.schedule ~order:Dsp_pts.List_scheduling.Input inst

let check_packing_valid name pk =
  match Packing.validate pk with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid packing: %s" name e

let check_schedule_valid name sched =
  match Pts.Schedule.validate sched with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid schedule: %s" name e
