open Dsp_core

let pos x y = { Rect_packing.x; y }

let region_bound ~u ~w_max ~h_max ~area =
  (* Smallest v >= h_max with 2*area <= u*v - (2w-u)+(2h-v)+. *)
  let cond v =
    let a = max 0 ((2 * w_max) - u) and b = max 0 ((2 * h_max) - v) in
    2 * area <= (u * v) - (a * b)
  in
  match
    Dsp_util.Xutil.binary_search_min h_max
      (max h_max (Dsp_util.Xutil.ceil_div (2 * area) (max 1 u) + (2 * h_max)))
      cond
  with
  | Some v -> v
  | None -> assert false (* cond holds for v large enough *)

let height_bound (inst : Instance.t) =
  region_bound ~u:inst.Instance.width ~w_max:(Instance.max_width inst)
    ~h_max:(Instance.max_height inst) ~area:(Instance.total_area inst)

let total_area items = Dsp_util.Xutil.sum_by Item.area items
let max_h items = Dsp_util.Xutil.max_by (fun (it : Item.t) -> it.Item.h) items
let max_w items = Dsp_util.Xutil.max_by (fun (it : Item.t) -> it.Item.w) items

let shift dx dy placements =
  List.map (fun (it, { Rect_packing.x; y }) -> (it, pos (x + dx) (y + dy))) placements

(* Each strategy returns [None] if not applicable or if its recursive
   subproblem fails; [pack_region] tries them in order. *)
let rec pack_region ~u ~v items =
  match items with
  | [] -> Some []
  | [ it ] -> if it.Item.w <= u && it.Item.h <= v then Some [ (it, pos 0 0) ] else None
  | _ ->
      if max_w items > u || max_h items > v then None
      else begin
        match wide_stack ~u ~v items with
        | Some r -> Some r
        | None -> (
            match tall_stack ~u ~v items with
            | Some r -> Some r
            | None -> (
                match split_vertical ~u ~v items with
                | Some r -> Some r
                | None -> (
                    match split_horizontal ~u ~v items with
                    | Some r -> Some r
                    | None -> nfdh_fallback ~u ~v items)))
      end

(* Stack all rectangles with 2w >= u at the bottom (widest first) and
   recurse on the strip above them. *)
and wide_stack ~u ~v items =
  let wide, rest = List.partition (fun (it : Item.t) -> 2 * it.w >= u) items in
  if wide = [] then None
  else begin
    let sorted = List.sort Item.compare_by_width_desc wide in
    let y = ref 0 in
    let placed =
      List.map
        (fun (it : Item.t) ->
          let p = (it, pos 0 !y) in
          y := !y + it.h;
          p)
        sorted
    in
    let h1 = !y in
    if h1 > v then None
    else if rest = [] then Some placed
    else if max_h rest <= v - h1 && 2 * total_area rest <= u * (v - h1) then
      match pack_region ~u ~v:(v - h1) rest with
      | Some sub -> Some (placed @ shift 0 h1 sub)
      | None -> None
    else None
  end

(* Mirror of [wide_stack]: rectangles with 2h >= v go to the left. *)
and tall_stack ~u ~v items =
  let tall, rest = List.partition (fun (it : Item.t) -> 2 * it.h >= v) items in
  if tall = [] then None
  else begin
    let sorted = List.sort Item.compare_by_height_desc tall in
    let x = ref 0 in
    let placed =
      List.map
        (fun (it : Item.t) ->
          let p = (it, pos !x 0) in
          x := !x + it.w;
          p)
        sorted
    in
    let w1 = !x in
    if w1 > u then None
    else if rest = [] then Some placed
    else if max_w rest <= u - w1 && 2 * total_area rest <= (u - w1) * v then
      match pack_region ~u:(u - w1) ~v rest with
      | Some sub -> Some (placed @ shift w1 0 sub)
      | None -> None
    else None
  end

(* All rectangles small in both dimensions: split the region in half
   vertically and distribute the items greedily by decreasing width,
   keeping Steinberg's area condition in both halves. *)
and split_vertical ~u ~v items =
  if u < 2 then None
  else begin
    let u1 = u / 2 in
    let u2 = u - u1 in
    let sorted = List.sort Item.compare_by_width_desc items in
    if max_w items > min u1 u2 then None
    else begin
      let s1 = ref 0 and l1 = ref [] and s2 = ref 0 and l2 = ref [] in
      List.iter
        (fun (it : Item.t) ->
          if 2 * (!s1 + Item.area it) <= u1 * v then begin
            s1 := !s1 + Item.area it;
            l1 := it :: !l1
          end
          else begin
            s2 := !s2 + Item.area it;
            l2 := it :: !l2
          end)
        sorted;
      if !l1 = [] || !l2 = [] then None
      else if 2 * !s2 > u2 * v then None
      else
        match (pack_region ~u:u1 ~v !l1, pack_region ~u:u2 ~v !l2) with
        | Some a, Some b -> Some (a @ shift u1 0 b)
        | _ -> None
    end
  end

and split_horizontal ~u ~v items =
  if v < 2 then None
  else begin
    let v1 = v / 2 in
    let v2 = v - v1 in
    let sorted = List.sort Item.compare_by_height_desc items in
    if max_h items > min v1 v2 then None
    else begin
      let s1 = ref 0 and l1 = ref [] and s2 = ref 0 and l2 = ref [] in
      List.iter
        (fun (it : Item.t) ->
          if 2 * (!s1 + Item.area it) <= u * v1 then begin
            s1 := !s1 + Item.area it;
            l1 := it :: !l1
          end
          else begin
            s2 := !s2 + Item.area it;
            l2 := it :: !l2
          end)
        sorted;
      if !l1 = [] || !l2 = [] then None
      else if 2 * !s2 > u * v2 then None
      else
        match (pack_region ~u ~v:v1 !l1, pack_region ~u ~v:v2 !l2) with
        | Some a, Some b -> Some (a @ shift 0 v1 b)
        | _ -> None
    end
  end

and nfdh_fallback ~u ~v items =
  match Shelf.nfdh_into ~width:u ~height:v items with
  | placed, [] -> Some placed
  | _, _ :: _ -> None

let pack (inst : Instance.t) =
  let items = Array.to_list inst.Instance.items in
  let u = inst.Instance.width in
  let of_placements placements =
    let positions = Array.make (Instance.n_items inst) (pos 0 0) in
    List.iter (fun ((it : Item.t), p) -> positions.(it.Item.id) <- p) placements;
    Rect_packing.make inst positions
  in
  let nfdh_pk = Shelf.nfdh inst in
  let upper = Rect_packing.height nfdh_pk in
  let rec try_heights v =
    if v >= upper then nfdh_pk
    else
      match pack_region ~u ~v items with
      | Some placements -> of_placements placements
      | None -> try_heights (v + 1 + ((upper - v) / 8))
  in
  if Instance.n_items inst = 0 then Rect_packing.make inst [||]
  else try_heights (height_bound inst)

let height inst = Rect_packing.height (pack inst)
