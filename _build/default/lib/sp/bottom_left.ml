open Dsp_core

let pack ?(order = Item.compare_by_height_desc) (inst : Instance.t) =
  let width = inst.Instance.width in
  let top = Array.make width 0 in
  let positions = Array.make (Instance.n_items inst) { Rect_packing.x = 0; y = 0 } in
  let items = Array.to_list inst.Instance.items |> List.sort order in
  List.iter
    (fun (it : Item.t) ->
      let best_x = ref 0 and best_y = ref max_int in
      for x = 0 to width - it.w do
        let y = ref 0 in
        for c = x to x + it.w - 1 do
          if top.(c) > !y then y := top.(c)
        done;
        if !y < !best_y then begin
          best_y := !y;
          best_x := x
        end
      done;
      positions.(it.id) <- { Rect_packing.x = !best_x; y = !best_y };
      for c = !best_x to !best_x + it.w - 1 do
        top.(c) <- !best_y + it.h
      done)
    items;
  Rect_packing.make inst positions

let height inst = Rect_packing.height (pack inst)
