(** Steinberg-bound packer.

    Steinberg's theorem (SIAM J. Comput. 1997): rectangles with
    [w_max <= u], [h_max <= v] and
    [2·S <= u·v − (2·w_max − u)₊·(2·h_max − v)₊] pack into a [u x v]
    region, which gives the classical 2-approximation for Strip
    Packing based only on the area and max-height lower bounds.  The
    paper uses exactly this bound: for the Step 1 upper bound of the
    (5/4+ε) algorithm and to place leftover items (Lemmas 13/14).

    Substitution note (see DESIGN.md §3): the original's full
    case-analysis is reproduced here as a portfolio of its main
    reductions — stacking the wide rectangles at the bottom, stacking
    the tall ones at the left, recursively splitting when everything
    is small — with an NFDH fallback, and the resulting height is
    *verified* against the Steinberg bound by the E11 experiment and
    the property tests rather than by the original's induction.  All
    produced packings are validated, so the module is always correct;
    only the tightness of the height is empirical. *)

open Dsp_core

val region_bound : u:int -> w_max:int -> h_max:int -> area:int -> int
(** Smallest height [v >= h_max] satisfying Steinberg's condition C3
    for a region of width [u]. *)

val height_bound : Instance.t -> int
(** {!region_bound} for the instance's strip. *)

val pack_region :
  u:int -> v:int -> Item.t list -> (Item.t * Rect_packing.pos) list option
(** Try to pack the items into a [u x v] region; positions relative to
    the region origin.  Guaranteed non-overlapping when [Some]. *)

val pack : Instance.t -> Rect_packing.t
(** Pack the whole instance into its strip: first at
    {!height_bound}, then increasing heights, with the NFDH result as
    a sure fallback.  The result height is therefore at most
    [2·S/W + h_max] and usually the Steinberg bound
    [≈ 2·max(S/W, h_max)]. *)

val height : Instance.t -> int
