(** Shelf algorithms for classical Strip Packing.

    The historical baselines of the related-work section: Next-Fit
    Decreasing Height and First-Fit Decreasing Height (Coffman, Garey,
    Johnson & Tarjan 1980).  Both sort items by non-increasing height
    and fill horizontal shelves; NFDH only ever appends to the newest
    shelf, FFDH revisits all open shelves first.

    Guarantees (with [S] the total item area, [W] the strip width and
    [h_max] the tallest item):  NFDH ≤ 2·S/W + h_max and
    FFDH ≤ 1.7·S/W + h_max.  The paper uses NFDH to place small and
    medium items (Lemmas 13 and 14). *)

open Dsp_core

val nfdh : Instance.t -> Rect_packing.t
val ffdh : Instance.t -> Rect_packing.t

val nfdh_height_bound : Instance.t -> int
(** The proven bound ⌈2·S/W⌉ + h_max, used by tests and by the Step 1
    upper bound of the (5/4+ε) algorithm. *)

val nfdh_into :
  width:int ->
  height:int ->
  Item.t list ->
  (Item.t * Rect_packing.pos) list * Item.t list
(** Pack items (sorted internally by decreasing height) into a
    [width x height] box with NFDH; returns the placed items with
    their positions (relative to the box origin) and the leftover
    items that did not fit. *)
