open Dsp_core

let sorted_by_height (inst : Instance.t) =
  Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc

let nfdh_into ~width ~height items =
  let sorted = List.sort Item.compare_by_height_desc items in
  let placed = ref [] and leftover = ref [] in
  let shelf_y = ref 0 and shelf_h = ref 0 and x = ref 0 in
  List.iter
    (fun (it : Item.t) ->
      if it.w > width then leftover := it :: !leftover
      else begin
        (* Open a new shelf when the item does not fit horizontally. *)
        if !x + it.w > width then begin
          shelf_y := !shelf_y + !shelf_h;
          shelf_h := 0;
          x := 0
        end;
        if !shelf_y + it.h <= height then begin
          if !shelf_h = 0 then shelf_h := it.h;
          placed := (it, { Rect_packing.x = !x; y = !shelf_y }) :: !placed;
          x := !x + it.w
        end
        else leftover := it :: !leftover
      end)
    sorted;
  (List.rev !placed, List.rev !leftover)

let of_placements (inst : Instance.t) placements =
  let positions = Array.make (Instance.n_items inst) { Rect_packing.x = 0; y = 0 } in
  List.iter (fun ((it : Item.t), pos) -> positions.(it.id) <- pos) placements;
  Rect_packing.make inst positions

let nfdh (inst : Instance.t) =
  let items = sorted_by_height inst in
  let placed, leftover =
    nfdh_into ~width:inst.Instance.width ~height:max_int items
  in
  assert (leftover = []);
  of_placements inst placed

type open_shelf = { y : int; h : int; mutable used : int }

let ffdh (inst : Instance.t) =
  let width = inst.Instance.width in
  let shelves = ref [] in
  let top = ref 0 in
  let placements = ref [] in
  List.iter
    (fun (it : Item.t) ->
      let rec fit = function
        | [] ->
            let shelf = { y = !top; h = it.h; used = 0 } in
            top := !top + it.h;
            shelves := !shelves @ [ shelf ];
            shelf
        | s :: rest ->
            (* Heights are non-increasing, so [it] fits vertically in
               every open shelf; only the width can reject it. *)
            if s.used + it.w <= width then s else fit rest
      in
      let s = fit !shelves in
      placements := (it, { Rect_packing.x = s.used; y = s.y }) :: !placements;
      s.used <- s.used + it.w)
    (sorted_by_height inst);
  of_placements inst !placements

let nfdh_height_bound (inst : Instance.t) =
  Dsp_util.Xutil.ceil_div (2 * Instance.total_area inst) inst.Instance.width
  + Instance.max_height inst
