(** Skyline bottom-left heuristic for classical Strip Packing.

    Items are processed in non-increasing height order; each item is
    placed at the position minimizing (support height, x) over all
    start columns, where the support height of a window is the highest
    column top inside it.  Because items always rest on the skyline,
    no floating placements are produced and validity is immediate.  A
    strong practical baseline for experiments E8 and E12. *)

open Dsp_core

val pack : ?order:(Item.t -> Item.t -> int) -> Instance.t -> Rect_packing.t
(** Default order is {!Item.compare_by_height_desc}. *)

val height : Instance.t -> int
