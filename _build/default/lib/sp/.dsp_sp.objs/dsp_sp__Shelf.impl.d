lib/sp/shelf.ml: Array Dsp_core Dsp_util Instance Item List Rect_packing
