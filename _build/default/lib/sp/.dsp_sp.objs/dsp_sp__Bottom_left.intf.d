lib/sp/bottom_left.mli: Dsp_core Instance Item Rect_packing
