lib/sp/shelf.mli: Dsp_core Instance Item Rect_packing
