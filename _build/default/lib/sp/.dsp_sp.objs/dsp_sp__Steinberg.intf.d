lib/sp/steinberg.mli: Dsp_core Instance Item Rect_packing
