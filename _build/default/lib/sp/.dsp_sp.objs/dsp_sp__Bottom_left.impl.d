lib/sp/bottom_left.ml: Array Dsp_core Instance Item List Rect_packing
