(** Smart-grid workload model (the paper's §1 motivation).

    The paper has no dataset — smart grids are its application story —
    so this module provides the synthetic substrate for experiment
    E10: a day of [slots_per_day] 15-minute slots, households drawing
    appliances from a catalogue with realistic duration/power mixes,
    a naive schedule (every appliance starts when its owner presses
    the button), and the DSP view of the same demands where a
    scheduler may shift each run anywhere in the day.

    Power is in units of 100 W, durations in slots; an appliance run
    of duration [d] and power [p] is exactly a DSP item of width [d]
    and height [p]. *)

open Dsp_core

val slots_per_day : int
(** 96 (15-minute slots). *)

type appliance = {
  name : string;
  duration : int;  (** slots *)
  power : int;  (** units of 100 W *)
  daily_probability : float;  (** chance a household runs it on a day *)
  preferred_slot : int;  (** centre of the naive arrival distribution *)
}

val catalogue : appliance list
(** Washing machine, dryer, dishwasher, EV charger, oven, water
    heater, heat pump. *)

type run = { appliance : appliance; arrival : int }
(** One requested appliance run and the slot its owner started it. *)

val simulate_day : Dsp_util.Rng.t -> households:int -> run list
(** Draw a day of demands: each household rolls every catalogue entry
    independently; arrivals are normal-ish around the appliance's
    preferred slot. *)

val to_instance : run list -> Instance.t
(** Forget arrivals: the DSP instance of the day. *)

val naive_packing : run list -> Packing.t
(** Every run starts at its arrival slot (clamped to fit the day). *)

type report = {
  runs : int;
  naive_peak : int;
  scheduled_peak : int;
  lower_bound : int;
  reduction_percent : float;
  naive_cost : int;
  scheduled_cost : int;
}

val evaluate : run list -> scheduler:(Instance.t -> Packing.t) -> report
(** Compare the naive schedule with the given DSP scheduler.  Cost is
    the quadratic congestion proxy Σₜ load(t)² — convex, so peak
    shaving lowers it. *)

val quadratic_cost : Profile.t -> int
