lib/smartgrid/smartgrid.mli: Dsp_core Dsp_util Instance Packing Profile
