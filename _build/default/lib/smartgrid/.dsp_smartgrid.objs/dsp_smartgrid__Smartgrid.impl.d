lib/smartgrid/smartgrid.ml: Array Dsp_core Dsp_util Instance List Packing Profile
