open Dsp_core
module Rng = Dsp_util.Rng

let slots_per_day = 96

type appliance = {
  name : string;
  duration : int;
  power : int;
  daily_probability : float;
  preferred_slot : int;
}

(* Durations in 15-minute slots, power in units of 100 W, preferred
   slots on the 96-slot day (slot 0 = midnight): evening peaks for
   cooking and media, late-evening for EVs, flexible daytime for white
   goods. *)
let catalogue =
  [
    { name = "washing-machine"; duration = 8; power = 20; daily_probability = 0.5; preferred_slot = 40 };
    { name = "tumble-dryer"; duration = 6; power = 25; daily_probability = 0.35; preferred_slot = 48 };
    { name = "dishwasher"; duration = 7; power = 18; daily_probability = 0.6; preferred_slot = 78 };
    { name = "ev-charger"; duration = 16; power = 74; daily_probability = 0.4; preferred_slot = 72 };
    { name = "oven"; duration = 4; power = 30; daily_probability = 0.55; preferred_slot = 70 };
    { name = "water-heater"; duration = 10; power = 35; daily_probability = 0.7; preferred_slot = 26 };
    { name = "heat-pump"; duration = 12; power = 28; daily_probability = 0.45; preferred_slot = 60 };
  ]

type run = { appliance : appliance; arrival : int }

let simulate_day rng ~households =
  let runs = ref [] in
  for _ = 1 to households do
    List.iter
      (fun app ->
        if Rng.float rng 1.0 < app.daily_probability then begin
          (* Triangular-ish arrival noise around the preferred slot. *)
          let noise = Rng.int_in rng (-8) 8 + Rng.int_in rng (-8) 8 in
          let arrival =
            max 0 (min (slots_per_day - app.duration) (app.preferred_slot + noise))
          in
          runs := { appliance = app; arrival } :: !runs
        end)
      catalogue
  done;
  List.rev !runs

let to_instance runs =
  Instance.of_dims ~width:slots_per_day
    (List.map (fun r -> (r.appliance.duration, r.appliance.power)) runs)

let naive_packing runs =
  let inst = to_instance runs in
  let starts = Array.of_list (List.map (fun r -> r.arrival) runs) in
  Packing.make inst starts

let quadratic_cost profile =
  Array.fold_left (fun acc v -> acc + (v * v)) 0 (Profile.to_array profile)

type report = {
  runs : int;
  naive_peak : int;
  scheduled_peak : int;
  lower_bound : int;
  reduction_percent : float;
  naive_cost : int;
  scheduled_cost : int;
}

let evaluate runs ~scheduler =
  let inst = to_instance runs in
  let naive = naive_packing runs in
  let scheduled = scheduler inst in
  let naive_peak = Packing.height naive in
  let scheduled_peak = Packing.height scheduled in
  {
    runs = List.length runs;
    naive_peak;
    scheduled_peak;
    lower_bound = Instance.lower_bound inst;
    reduction_percent =
      (if naive_peak = 0 then 0.0
       else
         100.0
         *. float_of_int (naive_peak - scheduled_peak)
         /. float_of_int naive_peak);
    naive_cost = quadratic_cost (Packing.profile naive);
    scheduled_cost = quadratic_cost (Packing.profile scheduled);
  }
