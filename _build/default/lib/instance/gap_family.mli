(** Instances separating sliced (DSP) from unsliced (SP) optima.

    Bladek et al. exhibit a family where the classical strip-packing
    optimum exceeds the demand (sliced) optimum by a factor of 5/4 —
    the integrality gap this paper's Figure 1 illustrates, matched by
    the 5/4 hardness.  The concrete witnesses here were found with
    this repository's exact solvers (an exhaustive scan over small
    multisets plus local search; see DESIGN.md §3): {!instance} is a
    width-7, 9-item instance with OPT_DSP = 6 and OPT_SP = 7 (gap
    7/6 ≈ 1.167), the largest exactly-verified gap our search found
    at exhaustively checkable sizes.  Experiment E1 verifies both
    optima with the exact solvers and reports the measured gap next
    to the 5/4 bound of the literature.

    Height scaling preserves both optima proportionally, so the family
    is closed under [scale]. *)

open Dsp_core

val instance : scale:int -> Instance.t
(** The base gap instance with all heights multiplied by [scale].
    OPT_DSP = 6·scale, OPT_SP = 7·scale. *)

val expected_dsp_opt : scale:int -> int
val expected_sp_opt : scale:int -> int

val slicing_wins : Instance.t list
(** Small instances (verified by the exact solvers in the test suite)
    where slicing strictly lowers the optimum, for tests and demos;
    includes {!instance}[ ~scale:1] and smaller 9/8- and 8/7-gap
    witnesses. *)
