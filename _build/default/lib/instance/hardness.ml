open Dsp_core
module Rng = Dsp_util.Rng

type three_partition = { k : int; bound : int; numbers : int array }

let make_three_partition ~k ~bound numbers =
  if k < 1 then invalid_arg "Hardness: k must be >= 1";
  if Array.length numbers <> 3 * k then
    invalid_arg "Hardness: need exactly 3k numbers";
  let sum = Array.fold_left ( + ) 0 numbers in
  if sum <> k * bound then
    invalid_arg
      (Printf.sprintf "Hardness: numbers sum to %d, expected %d" sum (k * bound));
  Array.iter
    (fun a ->
      if 4 * a <= bound || 2 * a >= bound then
        invalid_arg
          (Printf.sprintf "Hardness: number %d outside (B/4, B/2) for B=%d" a bound))
    numbers;
  { k; bound; numbers }

let yes_instance rng ~k ~bound =
  if bound < 8 || bound mod 4 <> 0 then
    invalid_arg "Hardness.yes_instance: bound must be >= 8 and divisible by 4";
  let lo = (bound / 4) + 1 and hi = (bound / 2) - 1 in
  let numbers = Array.make (3 * k) 0 in
  for t = 0 to k - 1 do
    (* Draw a1 such that a2 + a3 = bound - a1 stays reachable with
       both inside the window, then a2 likewise. *)
    let a1 = Rng.int_in rng (max lo (bound - (2 * hi))) (min hi (bound - (2 * lo))) in
    let lo2 = max lo (bound - a1 - hi) and hi2 = min hi (bound - a1 - lo) in
    let a2 = Rng.int_in rng lo2 hi2 in
    let a3 = bound - a1 - a2 in
    numbers.((3 * t) + 0) <- a1;
    numbers.((3 * t) + 1) <- a2;
    numbers.((3 * t) + 2) <- a3
  done;
  make_three_partition ~k ~bound numbers

let perturbed_instance rng ~k ~bound =
  if k < 2 then invalid_arg "Hardness.perturbed_instance: k must be >= 2";
  let inst = yes_instance rng ~k ~bound in
  let numbers = Array.copy inst.numbers in
  (* Move one unit of mass from a number of triple 0 to one of
     triple 1; totals are preserved, triple sums are not. *)
  let i = Rng.int_in rng 0 2 and j = 3 + Rng.int_in rng 0 2 in
  let lo = (bound / 4) + 1 and hi = (bound / 2) - 1 in
  if numbers.(i) - 1 < lo || numbers.(j) + 1 > hi then None
  else begin
    numbers.(i) <- numbers.(i) - 1;
    numbers.(j) <- numbers.(j) + 1;
    Some { inst with numbers }
  end

let no_instance ~k =
  if k < 3 || k mod 3 <> 0 then
    invalid_arg "Hardness.no_instance: k must be a positive multiple of 3";
  (* All numbers are 1 (mod 3); every triple sums to 0 (mod 3) while
     the bound 26 is 2 (mod 3), so no triple can hit it.  The counts
     solve 7a + 10b = 26k with a + b = 3k. *)
  let sevens = 4 * k / 3 and tens = 5 * k / 3 in
  let numbers =
    Array.init (3 * k) (fun i -> if i < sevens then 7 else 10)
  in
  ignore tens;
  make_three_partition ~k ~bound:26 numbers

let target_makespan t = (t.k * t.bound) + t.k - 1

let to_pts t =
  let separators = List.init (t.k - 1) (fun _ -> (1, 4)) in
  let blockers = List.init t.k (fun _ -> (t.bound, 3)) in
  let numbers = Array.to_list (Array.map (fun a -> (a, 1)) t.numbers) in
  Pts.Inst.of_dims ~machines:4 (separators @ blockers @ numbers)

let to_dsp t = Generators.dsp_of_pts (to_pts t) ~horizon:(target_makespan t)

let schedule_of_partition t ~triples =
  if Array.length triples <> t.k then
    invalid_arg "Hardness.schedule_of_partition: need k triples";
  let seen = Array.make (3 * t.k) false in
  Array.iter
    (fun (a, b, c) ->
      List.iter
        (fun i ->
          if i < 0 || i >= 3 * t.k || seen.(i) then
            invalid_arg "Hardness.schedule_of_partition: not a partition";
          seen.(i) <- true)
        [ a; b; c ];
      if t.numbers.(a) + t.numbers.(b) + t.numbers.(c) <> t.bound then
        invalid_arg "Hardness.schedule_of_partition: triple sum mismatch")
    triples;
  let pts = to_pts t in
  let n = Pts.Inst.n_jobs pts in
  let sigma = Array.make n 0 and rho = Array.make n [] in
  let slot_start s = s * (t.bound + 1) in
  (* Separators: job ids 0 .. k-2. *)
  for s = 0 to t.k - 2 do
    sigma.(s) <- slot_start s + t.bound;
    rho.(s) <- [ 0; 1; 2; 3 ]
  done;
  (* Blockers: job ids k-1 .. 2k-2, one per slot on machines 0-2. *)
  for s = 0 to t.k - 1 do
    let id = t.k - 1 + s in
    sigma.(id) <- slot_start s;
    rho.(id) <- [ 0; 1; 2 ]
  done;
  (* Numbers: job ids 2k-1 + i for number index i; triple s runs
     sequentially on machine 3 inside slot s. *)
  Array.iteri
    (fun s (a, b, c) ->
      let offset = ref (slot_start s) in
      List.iter
        (fun i ->
          let id = (2 * t.k) - 1 + i in
          sigma.(id) <- !offset;
          rho.(id) <- [ 3 ];
          offset := !offset + t.numbers.(i))
        [ a; b; c ])
    triples;
  Pts.Schedule.make pts ~sigma ~rho
