open Dsp_core

let instance_to_string (inst : Instance.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dsp %d\n" inst.Instance.width);
  Array.iter
    (fun (it : Item.t) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" it.w it.h))
    inst.Instance.items;
  Buffer.contents buf

let pts_to_string (inst : Pts.Inst.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pts %d\n" inst.Pts.Inst.machines);
  Array.iter
    (fun (j : Pts.Job.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" j.Pts.Job.p j.Pts.Job.q))
    inst.Pts.Inst.jobs;
  Buffer.contents buf

let relevant_lines s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let parse_pairs lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> go ((a, b) :: acc) rest
            | _ -> Error (Printf.sprintf "bad pair line %S" line))
        | _ -> Error (Printf.sprintf "bad pair line %S" line))
  in
  go [] lines

let parse_header keyword s =
  match relevant_lines s with
  | [] -> Error "empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header |> List.filter (( <> ) "") with
      | [ kw; v ] when kw = keyword -> (
          match int_of_string_opt v with
          | Some v -> Ok (v, rest)
          | None -> Error (Printf.sprintf "bad header %S" header))
      | _ -> Error (Printf.sprintf "expected %S header, got %S" keyword header))

let instance_of_string s =
  match parse_header "dsp" s with
  | Error e -> Error e
  | Ok (width, rest) -> (
      match parse_pairs rest with
      | Error e -> Error e
      | Ok dims -> (
          try Ok (Instance.of_dims ~width dims)
          with Invalid_argument msg -> Error msg))

let pts_of_string s =
  match parse_header "pts" s with
  | Error e -> Error e
  | Ok (machines, rest) -> (
      match parse_pairs rest with
      | Error e -> Error e
      | Ok dims -> (
          try Ok (Pts.Inst.of_dims ~machines dims)
          with Invalid_argument msg -> Error msg))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
