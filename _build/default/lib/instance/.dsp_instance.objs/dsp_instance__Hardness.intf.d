lib/instance/hardness.mli: Dsp_core Dsp_util Instance Pts
