lib/instance/io.mli: Dsp_core Instance Pts
