lib/instance/generators.mli: Dsp_core Dsp_util Instance Pts
