lib/instance/hardness.ml: Array Dsp_core Dsp_util Generators List Printf Pts
