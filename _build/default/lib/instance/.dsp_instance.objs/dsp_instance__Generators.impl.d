lib/instance/generators.ml: Array Dsp_core Dsp_util Instance Item List Pts
