lib/instance/gap_family.ml: Dsp_core Instance List
