lib/instance/gap_family.mli: Dsp_core Instance
