lib/instance/io.ml: Array Buffer Dsp_core Fun Instance Item List Printf Pts String
