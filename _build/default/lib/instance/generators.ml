open Dsp_core
module Rng = Dsp_util.Rng

let uniform rng ~n ~width ~max_w ~max_h =
  if max_w > width then invalid_arg "Generators.uniform: max_w exceeds width";
  let items =
    Array.init n (fun id ->
        Item.make ~id ~w:(Rng.int_in rng 1 max_w) ~h:(Rng.int_in rng 1 max_h))
  in
  Instance.make ~width items

let correlated rng ~n ~width ~max_w ~max_h =
  if max_w > width then invalid_arg "Generators.correlated: max_w exceeds width";
  let items =
    Array.init n (fun id ->
        (* Draw a common "size" factor, then jitter both dimensions. *)
        let s = Rng.float rng 1.0 in
        let jitter hi =
          let fhi = float_of_int hi in
          let base = 1.0 +. (s *. (fhi -. 1.0)) in
          let j = Rng.float rng (0.3 *. fhi) in
          max 1 (min hi (int_of_float (base +. j -. (0.15 *. fhi))))
        in
        Item.make ~id ~w:(jitter max_w) ~h:(jitter max_h))
  in
  Instance.make ~width items

let tall_and_flat rng ~n ~width ~max_h =
  let items =
    Array.init n (fun id ->
        if Rng.bool rng then
          (* Narrow and tall. *)
          Item.make ~id
            ~w:(Rng.int_in rng 1 (max 1 (width / 8)))
            ~h:(Rng.int_in rng (max 1 (max_h / 2)) max_h)
        else
          (* Wide and flat. *)
          Item.make ~id
            ~w:(Rng.int_in rng (max 1 (width / 4)) (max 1 (width / 2)))
            ~h:(Rng.int_in rng 1 (max 1 (max_h / 4))))
  in
  Instance.make ~width items

let perfect_fit rng ~width ~height ~cuts =
  (* Guillotine-cut the full rectangle. Each cut picks the piece with
     the largest area and splits it on the longer axis at a random
     interior coordinate. *)
  let pieces = ref [ (width, height) ] in
  for _ = 1 to cuts do
    let best =
      List.fold_left
        (fun acc (w, h) ->
          match acc with
          | Some (bw, bh) when bw * bh >= w * h -> acc
          | _ -> Some (w, h))
        None !pieces
    in
    match best with
    | None -> ()
    | Some (w, h) ->
        let rest = ref !pieces in
        (* Remove one occurrence of the chosen piece. *)
        let removed = ref false in
        rest :=
          List.filter
            (fun p ->
              if (not !removed) && p = (w, h) then begin
                removed := true;
                false
              end
              else true)
            !rest;
        let split_w = w >= h in
        if (split_w && w >= 2) || ((not split_w) && h >= 2) then
          if split_w then begin
            let c = Rng.int_in rng 1 (w - 1) in
            rest := (c, h) :: (w - c, h) :: !rest
          end
          else begin
            let c = Rng.int_in rng 1 (h - 1) in
            rest := (w, c) :: (w, h - c) :: !rest
          end
        else rest := (w, h) :: !rest;
        pieces := !rest
  done;
  Instance.of_dims ~width !pieces

let uniform_pts rng ~n ~machines ~max_p =
  let jobs =
    Array.init n (fun id ->
        Pts.Job.make ~id ~p:(Rng.int_in rng 1 max_p) ~q:(Rng.int_in rng 1 machines))
  in
  Pts.Inst.make ~machines jobs

let pts_of_dsp (inst : Instance.t) ~height =
  let jobs =
    Array.map
      (fun (it : Item.t) -> Pts.Job.make ~id:it.Item.id ~p:it.Item.w ~q:it.Item.h)
      inst.Instance.items
  in
  Pts.Inst.make ~machines:height jobs

let dsp_of_pts (inst : Pts.Inst.t) ~horizon =
  let items =
    Array.map
      (fun (j : Pts.Job.t) -> Item.make ~id:j.Pts.Job.id ~w:j.Pts.Job.p ~h:j.Pts.Job.q)
      inst.Pts.Inst.jobs
  in
  Instance.make ~width:horizon items
