(** Plain-text serialization of DSP and PTS instances.

    Format (line oriented; [#] starts a comment):
    {v
    dsp <width>
    <w> <h>        one line per item
    v}
    and analogously [pts <machines>] with [<p> <q>] lines. *)

open Dsp_core

val instance_to_string : Instance.t -> string
val instance_of_string : string -> (Instance.t, string) result
val pts_to_string : Pts.Inst.t -> string
val pts_of_string : string -> (Pts.Inst.t, string) result
val write_file : string -> string -> unit
val read_file : string -> string
