(** Random workload generators.

    All generators are deterministic functions of the supplied
    {!Dsp_util.Rng.t}, so every experiment is reproducible from its
    seed. *)

open Dsp_core

val uniform :
  Dsp_util.Rng.t ->
  n:int ->
  width:int ->
  max_w:int ->
  max_h:int ->
  Instance.t
(** [n] items with widths uniform in [1, max_w] and heights uniform in
    [1, max_h]. *)

val correlated :
  Dsp_util.Rng.t -> n:int -> width:int -> max_w:int -> max_h:int -> Instance.t
(** Widths and heights positively correlated (tall items tend to be
    wide), which produces harder packing instances than {!uniform}. *)

val tall_and_flat :
  Dsp_util.Rng.t -> n:int -> width:int -> max_h:int -> Instance.t
(** A mix of narrow/tall and wide/flat items, exercising the item
    classification of the (5/4+ε) algorithm. *)

val perfect_fit : Dsp_util.Rng.t -> width:int -> height:int -> cuts:int -> Instance.t
(** Recursively slices the [width x height] rectangle with [cuts]
    guillotine cuts into items; by construction the instance has a
    perfect (zero-waste) classical packing of height [height], hence
    OPT_SP = OPT_DSP = [height].  Ideal for ratio experiments because
    OPT is known without search. *)

val uniform_pts :
  Dsp_util.Rng.t -> n:int -> machines:int -> max_p:int -> Pts.Inst.t
(** Random PTS instance: processing times in [1, max_p], machine
    requirements in [1, machines]. *)

val pts_of_dsp : Instance.t -> height:int -> Pts.Inst.t
(** The paper's instance transformation DSP → PTS: item (w, h) becomes
    job (p = w, q = h); the given strip height budget becomes the
    machine count. *)

val dsp_of_pts : Pts.Inst.t -> horizon:int -> Instance.t
(** The reverse transformation: job (p, q) becomes item (w = p,
    h = q); the makespan budget becomes the strip width. *)
