(** The Theorem 1 hardness pipeline: 3-Partition → PTS(m = 4) → DSP.

    A 3-Partition instance consists of [3k] positive integers, each
    strictly between B/4 and B/2, with total [k * B]; it is a
    yes-instance iff the numbers split into [k] triples each summing to
    [B].  Henning et al. encode 3-Partition into Parallel Task
    Scheduling on four machines; composing with the paper's DSP ↔ PTS
    transformation yields DSP instances for which any pseudo-polynomial
    algorithm with ratio < 5/4 would decide 3-Partition.

    The encoding used here: with [k] slots of length [B] separated by
    [k - 1] unit-length full-width separator jobs (q = 4), plus one
    blocker job (q = 3, p = B) per slot, the remaining machine-time is
    exactly [k] gaps of one machine × B time; the 3k numbers (q = 1,
    p = aᵢ) fill them with makespan [T = k*B + k - 1] when the
    3-Partition instance is a yes-instance.  The instance is
    area-tight: total work equals [4T].

    Substitution note (DESIGN.md §3): this simplified frame is a
    *relaxation* of the Henning et al. gadget — the forward direction
    (3P yes ⟹ makespan T / DSP peak 4) is exact and witnessed by
    {!schedule_of_partition}, but the converse can fail: separators
    may clump, merging slots into longer channels that sometimes
    admit height-4 packings even for 3P no-instances (their full
    construction pins the frame with an interlocking structure the
    paper only cites).  Experiment E4 therefore reports 3P
    solvability next to the exact DSP optimum rather than assuming
    equivalence. *)

open Dsp_core

type three_partition = { k : int; bound : int; numbers : int array }
(** [numbers] has length [3 * k] and sums to [k * bound]. *)

val make_three_partition : k:int -> bound:int -> int array -> three_partition
(** Validates the size constraints (length, sum, B/4 < aᵢ < B/2).
    @raise Invalid_argument on violation. *)

val yes_instance : Dsp_util.Rng.t -> k:int -> bound:int -> three_partition
(** Random yes-instance: each triple is drawn to sum to [bound]
    within the (B/4, B/2) window; [bound] must be divisible by 4 and
    at least 8. *)

val perturbed_instance :
  Dsp_util.Rng.t -> k:int -> bound:int -> three_partition option
(** A perturbation of a yes-instance that keeps the total sum but
    moves mass between two triples; usually (not provably) a
    no-instance.  [None] if the perturbation would leave the (B/4,
    B/2) window. *)

val no_instance : k:int -> three_partition
(** A provably unsolvable instance: [bound = 26 ≡ 2 (mod 3)] with all
    numbers from {7, 10} ≡ 1 (mod 3), so every triple sums to
    0 (mod 3) ≠ 26 (mod 3).  Requires [k] divisible by 3 (the counts
    4k/3 sevens and 5k/3 tens must be integral).
    @raise Invalid_argument otherwise. *)

val target_makespan : three_partition -> int
(** [T = k * bound + k - 1], the yes-instance makespan. *)

val to_pts : three_partition -> Pts.Inst.t
(** The PTS encoding on 4 machines described above.  The first
    [k - 1] jobs are separators, the next [k] blockers, the final
    [3k] the numbers. *)

val to_dsp : three_partition -> Instance.t
(** The PTS encoding pushed through the paper's transformation: strip
    width [target_makespan], desired height 4. *)

val schedule_of_partition :
  three_partition -> triples:(int * int * int) array -> Pts.Schedule.t
(** Builds the witness schedule of makespan [target_makespan] from a
    solution of the 3-Partition instance ([triples] indexes into
    [numbers]).
    @raise Invalid_argument if the triples are not a partition with
    correct sums. *)
