open Dsp_core

(* Found by exhaustive search + hill climbing with the exact solvers
   of dsp_exact (see DESIGN.md §3): OPT_DSP = 6, OPT_SP = 7. *)
let base_dims =
  [ (2, 1); (3, 3); (1, 1); (2, 3); (2, 2); (1, 4); (3, 2); (3, 2); (1, 4) ]

let base_width = 7

let instance ~scale =
  if scale < 1 then invalid_arg "Gap_family.instance: scale must be >= 1";
  Instance.of_dims ~width:base_width
    (List.map (fun (w, h) -> (w, h * scale)) base_dims)

let expected_dsp_opt ~scale = 6 * scale
let expected_sp_opt ~scale = 7 * scale

(* Smaller verified witnesses: (width, dims, dsp_opt, sp_opt). *)
let small_witnesses =
  [
    (* gap 8/7 *)
    (7, [ (3, 6); (1, 2); (3, 1); (1, 3); (3, 2); (1, 3); (5, 1); (4, 2) ]);
    (* gap 9/8 *)
    (5, [ (2, 3); (2, 1); (1, 6); (2, 4); (1, 4); (2, 2); (3, 3) ]);
  ]

let slicing_wins =
  instance ~scale:1
  :: List.map (fun (width, dims) -> Instance.of_dims ~width dims) small_witnesses
