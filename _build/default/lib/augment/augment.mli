(** Resource-augmentation frameworks (Corollaries 2–4).

    All three corollaries share one skeleton, which this module
    implements generically: treat DSP and PTS as duals via the
    Theorem 1 transformation, binary-search the optimum of the
    primal objective (dual approximation, Hochbaum–Shmoys), and
    answer each decision question with an approximation algorithm for
    the *other* problem, paying the approximation factor in the
    augmented resource instead of the objective:

    - Corollary 2: optimal-height DSP packing inside a strip widened
      by the inner PTS solver's factor.
    - Corollary 3: optimal-makespan PTS schedule using machines
      multiplied by a polynomial DSP solver's factor (paper: the
      (5/3+ε) algorithms).
    - Corollary 4: the same with the pseudo-polynomial (5/4+ε) DSP
      algorithm, reducing the augmentation to (5/4+ε).

    Substitution note (DESIGN.md §3): the inner solvers are this
    repository's implementable algorithms (list scheduling for
    Corollary 2; {!Dsp_algo.Approx53} / {!Dsp_algo.Approx54} for
    Corollaries 3/4); the achieved augmentation factors are measured
    by experiments E5–E7. *)

open Dsp_core

type dsp_result = {
  packing : Packing.t;  (** height = the certified optimal bound *)
  height : int;
  width_used : int;  (** actual width of the augmented strip *)
  width_factor : float;  (** width_used / original width *)
}

val dsp_with_width_augmentation :
  ?inner:(Pts.Inst.t -> Pts.Schedule.t) -> Instance.t -> dsp_result
(** Corollary 2.  Binary-search the height H; for each guess,
    transform to PTS on H machines and run the inner scheduler; a
    makespan within the augmented width certifies the guess.  The
    returned packing has the smallest certifiable height and lives in
    a strip of width [width_used >= width]. *)

type pts_result = {
  schedule : Pts.Schedule.t;
  makespan : int;  (** = the certified optimal bound *)
  machines_used : int;
  machine_factor : float;
}

val pts_with_machine_augmentation :
  ?solver:(Instance.t -> Packing.t) -> Pts.Inst.t -> pts_result
(** Corollaries 3 and 4.  Binary-search the makespan T; for each
    guess, transform to DSP with strip width T and run the DSP
    solver; the packing height becomes the number of machines used.
    Default solver is {!Dsp_algo.Approx53.solve} (Corollary 3); pass
    [Dsp_algo.Approx54.solve] for Corollary 4. *)

val pts_53 : Pts.Inst.t -> pts_result
(** Corollary 3 instantiation. *)

val pts_54 : Pts.Inst.t -> pts_result
(** Corollary 4 instantiation (pseudo-polynomial inner solver). *)
