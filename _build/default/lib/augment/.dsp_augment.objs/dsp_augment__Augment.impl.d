lib/augment/augment.ml: Array Dsp_algo Dsp_core Dsp_pts Dsp_sp Dsp_transform Dsp_util Fun Instance List Option Packing Pts Rect_packing
