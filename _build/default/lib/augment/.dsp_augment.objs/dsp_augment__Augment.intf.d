lib/augment/augment.mli: Dsp_core Instance Packing Pts
