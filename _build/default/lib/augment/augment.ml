open Dsp_core
module Transform = Dsp_transform.Transform

type dsp_result = {
  packing : Packing.t;
  height : int;
  width_used : int;
  width_factor : float;
}

let dsp_with_width_augmentation ?inner (inst : Instance.t) =
  let inner =
    match inner with
    | Some f -> f
    | None -> Dsp_pts.List_scheduling.schedule ~order:Dsp_pts.List_scheduling.Work_first
  in
  let width = inst.Instance.width in
  (* Reject a height guess H only when the inner scheduler exceeds
     twice the strip width: list scheduling is a 2-approximation, so
     a schedule longer than 2W proves no width-W packing of height H
     exists. *)
  let acceptance = 2 * width in
  let lo = Instance.max_height inst in
  let hi = max lo (Dsp_sp.Shelf.nfdh_height_bound inst) in
  let best = ref None in
  let ok h =
    let dual = Transform.dsp_to_pts_instance inst ~machines:h in
    let sched = inner dual in
    let t = Pts.Schedule.makespan sched in
    if t <= acceptance then begin
      (match !best with
      | Some (_, bh, bt) when (bh, bt) <= (h, t) -> ()
      | _ -> best := Some (sched, h, t));
      true
    end
    else false
  in
  match Dsp_util.Xutil.binary_search_min lo hi ok with
  | None ->
      (* Unreachable in practice: NFDH height admits a trivial
         schedule.  Fall back to the NFDH packing itself. *)
      let pk = Rect_packing.to_dsp (Dsp_sp.Shelf.nfdh inst) in
      {
        packing = pk;
        height = Packing.height pk;
        width_used = width;
        width_factor = 1.0;
      }
  | Some _ ->
      let sched, h, t = Option.get !best in
      (* The schedule on h machines, read as a packing in a strip of
         width max(W, t). *)
      let aug_width = max width t in
      let aug_inst =
        Instance.make ~width:aug_width (Array.copy inst.Instance.items)
      in
      let pk = Packing.make aug_inst sched.Pts.Schedule.sigma in
      assert (Packing.height pk <= h);
      {
        packing = pk;
        height = Packing.height pk;
        width_used = aug_width;
        width_factor = float_of_int aug_width /. float_of_int width;
      }

type pts_result = {
  schedule : Pts.Schedule.t;
  makespan : int;
  machines_used : int;
  machine_factor : float;
}

let pts_with_machine_augmentation ?solver ~factor_num ~factor_den
    (inst : Pts.Inst.t) =
  let solver = match solver with Some f -> f | None -> Dsp_algo.Approx53.solve in
  let m = inst.Pts.Inst.machines in
  let acceptance = factor_num * m / factor_den in
  let lo = Pts.Inst.max_time inst in
  let hi =
    Array.fold_left (fun acc (j : Pts.Job.t) -> acc + j.p) 0 inst.Pts.Inst.jobs
  in
  let best = ref None in
  let ok t =
    let dual = Transform.pts_to_dsp_instance inst ~width:t in
    let pk = solver dual in
    let h = Packing.height pk in
    if h <= acceptance then begin
      (match !best with
      | Some (_, bt, bh) when (bt, bh) <= (t, h) -> ()
      | _ -> best := Some (pk, t, h));
      true
    end
    else false
  in
  match Dsp_util.Xutil.binary_search_min lo hi ok with
  | None ->
      (* Unreachable in practice: at the sequential horizon every job
         can run alone.  Schedule sequentially as a last resort. *)
      let n = Pts.Inst.n_jobs inst in
      let sigma = Array.make n 0 and rho = Array.make n [] in
      let time = ref 0 in
      Array.iter
        (fun (j : Pts.Job.t) ->
          sigma.(j.id) <- !time;
          rho.(j.id) <- List.init j.q Fun.id;
          time := !time + j.p)
        inst.Pts.Inst.jobs;
      let sched = Pts.Schedule.make inst ~sigma ~rho in
      {
        schedule = sched;
        makespan = Pts.Schedule.makespan sched;
        machines_used = m;
        machine_factor = 1.0;
      }
  | Some _ ->
      let pk, t, h = Option.get !best in
      let machines_used = max m h in
      let aug_inst =
        Pts.Inst.make ~machines:machines_used (Array.copy inst.Pts.Inst.jobs)
      in
      (match Transform.packing_to_schedule pk ~machines:machines_used with
      | Error msg -> invalid_arg ("Augment.pts_with_machine_augmentation: " ^ msg)
      | Ok (sched, _) ->
          let sched =
            Pts.Schedule.make aug_inst ~sigma:sched.Pts.Schedule.sigma
              ~rho:sched.Pts.Schedule.rho
          in
          assert (Pts.Schedule.makespan sched <= t);
          {
            schedule = sched;
            makespan = Pts.Schedule.makespan sched;
            machines_used;
            machine_factor = float_of_int machines_used /. float_of_int m;
          })

let pts_53 inst =
  pts_with_machine_augmentation ~solver:Dsp_algo.Approx53.solve ~factor_num:5
    ~factor_den:3 inst

let pts_54 inst =
  pts_with_machine_augmentation
    ~solver:(fun i -> Dsp_algo.Approx54.solve i)
    ~factor_num:5 ~factor_den:4 inst

let pts_with_machine_augmentation ?solver inst =
  pts_with_machine_augmentation ?solver ~factor_num:5 ~factor_den:3 inst
