open Dsp_core

type outcome = Feasible of Packing.t | Infeasible | Node_budget_exhausted

exception Out_of_nodes

(* Greedy best-fit by descending height: place each item at the start
   column minimizing the resulting window peak. Used only as an upper
   bound for the binary search. *)
let greedy_height (inst : Instance.t) =
  let width = inst.Instance.width in
  let profile = Profile.create width in
  let order =
    Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc
  in
  List.iter
    (fun (it : Item.t) ->
      let best = ref 0 and best_peak = ref max_int in
      for s = 0 to width - it.w do
        let p = Profile.peak_in profile ~start:s ~len:it.w in
        if p < !best_peak then begin
          best_peak := p;
          best := s
        end
      done;
      Profile.add_item profile it ~start:!best)
    order;
  Profile.peak profile

let decide_internal ~nodes ~node_limit (inst : Instance.t) ~height =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if Instance.total_area inst > height * width then Infeasible
  else if Instance.max_height inst > height then Infeasible
  else begin
    let order = Array.copy inst.Instance.items in
    Array.sort Item.compare_by_area_desc order;
    let loads = Array.make width 0 in
    let starts = Array.make n (-1) in
    (* remaining.(k) = total area of items order.(k..). *)
    let remaining = Array.make (n + 1) 0 in
    for k = n - 1 downto 0 do
      remaining.(k) <- remaining.(k + 1) + Item.area order.(k)
    done;
    let free_capacity = ref (height * width) in
    let place (it : Item.t) s =
      for x = s to s + it.w - 1 do
        loads.(x) <- loads.(x) + it.h
      done;
      free_capacity := !free_capacity - Item.area it;
      starts.(it.id) <- s
    in
    let unplace (it : Item.t) s =
      for x = s to s + it.w - 1 do
        loads.(x) <- loads.(x) - it.h
      done;
      free_capacity := !free_capacity + Item.area it;
      starts.(it.id) <- -1
    in
    let fits (it : Item.t) s =
      let ok = ref true in
      let x = ref s in
      while !ok && !x < s + it.w do
        if loads.(!x) + it.h > height then ok := false;
        incr x
      done;
      !ok
    in
    let rec go k =
      incr nodes;
      if !nodes > node_limit then raise Out_of_nodes;
      if k = n then true
      else begin
        let it = order.(k) in
        if remaining.(k) > !free_capacity then false
        else begin
          let max_start =
            (* Mirror symmetry: confine the first item to the left
               half of the strip. *)
            if k = 0 then (width - it.w) / 2 else width - it.w
          in
          let min_start =
            (* Identical items in non-decreasing start order. *)
            if k > 0 && order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
            then starts.(order.(k - 1).Item.id)
            else 0
          in
          let rec try_start s =
            if s > max_start then false
            else if fits it s then begin
              place it s;
              if go (k + 1) then true
              else begin
                unplace it s;
                try_start (s + 1)
              end
            end
            else try_start (s + 1)
          in
          try_start (max 0 min_start)
        end
      end
    in
    match go 0 with
    | true -> Feasible (Packing.make inst starts)
    | false -> Infeasible
    | exception Out_of_nodes -> Node_budget_exhausted
  end

let default_node_limit = 20_000_000

let decide ?(node_limit = default_node_limit) inst ~height =
  let nodes = ref 0 in
  decide_internal ~nodes ~node_limit inst ~height

let solve_with_stats ?(node_limit = default_node_limit) inst =
  let lo = Instance.lower_bound inst and hi = greedy_height inst in
  let nodes = ref 0 in
  let best = ref None in
  (* Binary search on the peak: decision is monotone in [height]. *)
  let rec search lo hi =
    if lo > hi then true
    else
      let mid = lo + ((hi - lo) / 2) in
      match decide_internal ~nodes ~node_limit inst ~height:mid with
      | Feasible pk ->
          best := Some pk;
          search lo (mid - 1)
      | Infeasible -> search (mid + 1) hi
      | Node_budget_exhausted -> false
  in
  if Instance.n_items inst = 0 then Some (Packing.make inst [||], 0)
  else if search lo hi then
    match !best with Some pk -> Some (pk, !nodes) | None -> None
  else None

let solve ?node_limit inst = Option.map fst (solve_with_stats ?node_limit inst)
let optimal_height ?node_limit inst =
  Option.map (fun pk -> Packing.height pk) (solve ?node_limit inst)
