lib/exact/three_partition.mli:
