lib/exact/three_partition.ml: Array List Printf
