lib/exact/dsp_bb.ml: Array Dsp_core Instance Item List Option Packing Profile
