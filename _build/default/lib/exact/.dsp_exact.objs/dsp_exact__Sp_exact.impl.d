lib/exact/sp_exact.ml: Array Dsp_core Instance Item List Option Rect_packing
