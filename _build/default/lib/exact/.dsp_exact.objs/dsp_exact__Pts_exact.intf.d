lib/exact/pts_exact.mli: Dsp_core Pts
