lib/exact/sp_exact.mli: Dsp_core Instance Rect_packing
