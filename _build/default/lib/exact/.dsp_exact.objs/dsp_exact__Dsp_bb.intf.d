lib/exact/dsp_bb.mli: Dsp_core Instance Packing
