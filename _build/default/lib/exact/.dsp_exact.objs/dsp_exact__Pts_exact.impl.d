lib/exact/pts_exact.ml: Array Dsp_bb Dsp_core Dsp_transform Dsp_util Option Pts
