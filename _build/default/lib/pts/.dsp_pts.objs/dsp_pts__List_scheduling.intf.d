lib/pts/list_scheduling.mli: Dsp_core Pts
