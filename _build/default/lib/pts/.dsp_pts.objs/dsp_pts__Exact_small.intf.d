lib/pts/exact_small.mli: Dsp_core Pts
