lib/pts/moldable.ml: Array Dsp_core Dsp_exact Dsp_util List List_scheduling Pts
