lib/pts/moldable.mli: Dsp_core Pts
