lib/pts/exact_small.ml: Array Dsp_core Dsp_util List Option Pts
