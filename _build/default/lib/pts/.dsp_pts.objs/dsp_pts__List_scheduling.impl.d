lib/pts/list_scheduling.ml: Array Dsp_core Dsp_transform List Packing Pts Segtree
