(** Moldable parallel tasks (the paper's conclusion, future work).

    A moldable job may run on any number of machines q ∈ [1, m], with
    a processing time p(q) fixed before execution (no dynamic
    reshaping).  The paper suggests these model running the same task
    on several coordinated machines.  Processing-time tables must be
    non-increasing in q; work q·p(q) is typically non-decreasing
    (Turek et al.'s monotony assumption), which {!make_work_based}
    produces exactly.

    Algorithms: the classical two-phase approach — choose an
    allotment (a q per job), then schedule the resulting rigid jobs
    with list scheduling — with the allotment chosen to balance the
    work bound against the critical path; and an exact solver for
    small instances that enumerates allotments over the exact rigid
    solver. *)

open Dsp_core

type job = private { id : int; times : int array }
(** [times.(q-1)] = processing time on [q] machines; length = the
    machine count of the instance, non-increasing. *)

type t = private { machines : int; jobs : job array }

val make : machines:int -> int array list -> t
(** One time-table per job.
    @raise Invalid_argument on wrong lengths, non-positive times or
    increasing tables. *)

val make_work_based : machines:int -> work:int list -> t
(** p(q) = ⌈work/q⌉ for each job — the perfectly parallelizable
    profile. *)

val allot : t -> int array -> Pts.Inst.t
(** The rigid PTS instance for an allotment (a machine count per
    job).
    @raise Invalid_argument if an allotment entry is out of
    [1, machines]. *)

val balanced_allotment : t -> int array
(** Phase 1: start every job at q = 1 and repeatedly widen the job
    whose processing time dominates the critical-path bound while the
    work bound stays below it — a variant of Turek et al.'s allotment
    selection. *)

val schedule : t -> Pts.Schedule.t * int array
(** Two-phase moldable scheduling: {!balanced_allotment} + list
    scheduling.  Returns the schedule (over the alloted rigid
    instance) and the allotment. *)

val makespan : t -> int

val optimal_makespan : ?node_limit:int -> t -> (int * int array) option
(** Exact: enumerate allotments (exponential; n ≤ 8) over the exact
    rigid solver.  Returns the best makespan and its allotment. *)
