open Dsp_core

let supported (inst : Pts.Inst.t) = inst.Pts.Inst.machines <= 2

(* m = 2: serial blocks for q = 2 jobs; the q = 1 jobs split into two
   machines, and a subset-sum DP finds the most balanced split of
   their total time [s] — makespan = blocks + (s - best), where best
   is the largest reachable sum <= s/2. *)
let solve_m2 (inst : Pts.Inst.t) =
  let jobs = Array.to_list inst.Pts.Inst.jobs in
  let blocks, singles = List.partition (fun (j : Pts.Job.t) -> j.q = 2) jobs in
  let block_time = Dsp_util.Xutil.sum_by (fun (j : Pts.Job.t) -> j.p) blocks in
  let s = Dsp_util.Xutil.sum_by (fun (j : Pts.Job.t) -> j.p) singles in
  (* reachable.(v) = Some job-id-list achieving load v on machine 0. *)
  let reachable = Array.make (s + 1) None in
  reachable.(0) <- Some [];
  List.iter
    (fun (j : Pts.Job.t) ->
      for v = s - j.p downto 0 do
        match (reachable.(v), reachable.(v + j.p)) with
        | Some ids, None -> reachable.(v + j.p) <- Some (j.id :: ids)
        | _ -> ()
      done)
    singles;
  let rec best v = if v < 0 then 0 else if reachable.(v) <> None then v else best (v - 1) in
  let half = best (s / 2) in
  let on_m0 = match reachable.(half) with Some ids -> ids | None -> assert false in
  let makespan = block_time + (s - half) in
  let n = Pts.Inst.n_jobs inst in
  let sigma = Array.make n 0 and rho = Array.make n [] in
  (* q = 2 blocks first, sequentially on both machines. *)
  let t = ref 0 in
  List.iter
    (fun (j : Pts.Job.t) ->
      sigma.(j.id) <- !t;
      rho.(j.id) <- [ 0; 1 ];
      t := !t + j.p)
    blocks;
  let t0 = ref block_time and t1 = ref block_time in
  List.iter
    (fun (j : Pts.Job.t) ->
      if List.mem j.id on_m0 then begin
        sigma.(j.id) <- !t0;
        rho.(j.id) <- [ 0 ];
        t0 := !t0 + j.p
      end
      else begin
        sigma.(j.id) <- !t1;
        rho.(j.id) <- [ 1 ];
        t1 := !t1 + j.p
      end)
    singles;
  let sched = Pts.Schedule.make inst ~sigma ~rho in
  assert (Pts.Schedule.makespan sched = makespan);
  sched

let solve (inst : Pts.Inst.t) =
  match inst.Pts.Inst.machines with
  | 1 ->
      let n = Pts.Inst.n_jobs inst in
      let sigma = Array.make n 0 and rho = Array.make n [ 0 ] in
      let t = ref 0 in
      Array.iter
        (fun (j : Pts.Job.t) ->
          sigma.(j.id) <- !t;
          t := !t + j.p)
        inst.Pts.Inst.jobs;
      Some (Pts.Schedule.make inst ~sigma ~rho)
  | 2 -> Some (solve_m2 inst)
  | _ -> None

let optimal_makespan inst = Option.map Pts.Schedule.makespan (solve inst)
