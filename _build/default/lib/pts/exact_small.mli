(** Pseudo-polynomial exact PTS for few machines.

    Du and Leung proved PTS solvable in pseudo-polynomial time for
    m ≤ 3 and strongly NP-hard from m = 4 on — the dividing line the
    paper's Theorem 1 rides on.  Here:

    - [m = 1]: trivial (sum of processing times).
    - [m = 2]: exact subset-sum dynamic program — jobs with q = 2 are
      serial blocks, jobs with q = 1 split into two machine loads
      whose imbalance the DP minimizes.
    - [m = 3]: delegated to the branch-and-bound solver
      ({!Dsp_exact.Pts_exact} lives above this library, so the
      delegation happens in {!solve}'s caller); this module exposes
      only the DP cases and {!supported}. *)

open Dsp_core

val supported : Pts.Inst.t -> bool
(** True when this module solves the instance exactly (m ≤ 2). *)

val optimal_makespan : Pts.Inst.t -> int option
(** [Some makespan] when {!supported}; [None] otherwise. *)

val solve : Pts.Inst.t -> Pts.Schedule.t option
(** Witness schedule for the {!optimal_makespan} cases. *)
