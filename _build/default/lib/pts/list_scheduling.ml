open Dsp_core

type order = Input | Longest_first | Widest_first | Work_first

let comparator = function
  | Input -> fun (a : Pts.Job.t) (b : Pts.Job.t) -> compare a.id b.id
  | Longest_first ->
      fun (a : Pts.Job.t) (b : Pts.Job.t) ->
        (match compare b.p a.p with 0 -> compare a.id b.id | c -> c)
  | Widest_first ->
      fun (a : Pts.Job.t) (b : Pts.Job.t) ->
        (match compare b.q a.q with 0 -> compare a.id b.id | c -> c)
  | Work_first ->
      fun (a : Pts.Job.t) (b : Pts.Job.t) ->
        (match compare (Pts.Job.work b) (Pts.Job.work a) with
        | 0 -> compare a.id b.id
        | c -> c)

let makespan_bound (inst : Pts.Inst.t) =
  Pts.Inst.work_lower_bound inst + Pts.Inst.max_time inst

let schedule ?(order = Work_first) (inst : Pts.Inst.t) =
  let m = inst.Pts.Inst.machines in
  let n = Pts.Inst.n_jobs inst in
  if n = 0 then Pts.Schedule.make inst ~sigma:[||] ~rho:[||]
  else begin
    (* The sequential horizon always admits a first-fit slot. *)
    let horizon =
      Array.fold_left (fun acc (j : Pts.Job.t) -> acc + j.p) 1 inst.Pts.Inst.jobs
    in
    let profile = Segtree.create horizon in
    let sigma = Array.make n 0 in
    let jobs = Array.to_list inst.Pts.Inst.jobs |> List.sort (comparator order) in
    List.iter
      (fun (j : Pts.Job.t) ->
        match
          Segtree.min_peak_start profile ~len:j.p ~height:j.q ~limit:m
        with
        | Some t ->
            sigma.(j.id) <- t;
            Segtree.range_add profile ~lo:t ~hi:(t + j.p) j.q
        | None -> assert false (* the horizon bound guarantees a slot *))
      jobs;
    (* Recover machine sets via the Figure 3 sweep on the dual
       packing. *)
    let finish = ref 1 in
    Array.iteri
      (fun i s ->
        let j = Pts.Inst.job inst i in
        if s + j.Pts.Job.p > !finish then finish := s + j.Pts.Job.p)
      sigma;
    let dual = Dsp_transform.Transform.pts_to_dsp_instance inst ~width:!finish in
    let pk = Packing.make dual sigma in
    match Dsp_transform.Transform.packing_to_schedule pk ~machines:m with
    | Ok (sched, _) ->
        Pts.Schedule.make inst ~sigma:sched.Pts.Schedule.sigma
          ~rho:sched.Pts.Schedule.rho
    | Error msg -> invalid_arg ("List_scheduling.schedule: " ^ msg)
  end

let makespan ?order inst = Pts.Schedule.makespan (schedule ?order inst)
