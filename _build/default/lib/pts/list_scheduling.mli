(** Greedy list scheduling for Parallel Task Scheduling.

    Jobs are taken in a configurable order; each is started at the
    earliest time at which enough machines are simultaneously free for
    its whole duration (first fit on the machine-availability
    profile).  Machine sets are then recovered with the paper's
    Figure 3 procedure.  This is the classical resource-constrained
    list scheduling of Garey–Graham, a 2-approximation for parallel
    tasks; the order only changes the constant in practice.  Used as
    the implementable stand-in for the Jansen–Thöle (3/2+ε) inner
    solver of Corollary 2 (DESIGN.md §3). *)

open Dsp_core

type order = Input | Longest_first | Widest_first | Work_first

val schedule : ?order:order -> Pts.Inst.t -> Pts.Schedule.t
(** @raise Invalid_argument never; always succeeds. *)

val makespan : ?order:order -> Pts.Inst.t -> int

val makespan_bound : Pts.Inst.t -> int
(** ⌈work/m⌉ + max p: a lower bound on twice the optimum and in
    practice an upper bound on the greedy's makespan for jobs needing
    a single machine; the greedy itself is always correct regardless
    (it schedules within the sequential horizon Σp). *)
