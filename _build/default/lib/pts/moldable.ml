open Dsp_core

type job = { id : int; times : int array }
type t = { machines : int; jobs : job array }

let make ~machines tables =
  if machines < 1 then invalid_arg "Moldable.make: machines must be >= 1";
  let jobs =
    List.mapi
      (fun id times ->
        if Array.length times <> machines then
          invalid_arg "Moldable.make: table length must equal machine count";
        Array.iteri
          (fun q p ->
            if p < 1 then invalid_arg "Moldable.make: times must be positive";
            if q > 0 && p > times.(q - 1) then
              invalid_arg "Moldable.make: times must be non-increasing in q")
          times;
        { id; times })
      tables
    |> Array.of_list
  in
  { machines; jobs }

let make_work_based ~machines ~work =
  make ~machines
    (List.map
       (fun w ->
         if w < 1 then invalid_arg "Moldable.make_work_based: work must be >= 1";
         Array.init machines (fun q -> Dsp_util.Xutil.ceil_div w (q + 1)))
       work)

let allot t allotment =
  if Array.length allotment <> Array.length t.jobs then
    invalid_arg "Moldable.allot: allotment length mismatch";
  let dims =
    Array.to_list
      (Array.mapi
         (fun i q ->
           if q < 1 || q > t.machines then
             invalid_arg "Moldable.allot: machine count out of range";
           (t.jobs.(i).times.(q - 1), q))
         allotment)
  in
  Pts.Inst.of_dims ~machines:t.machines dims

let work_of t allotment =
  Array.to_list
    (Array.mapi (fun i q -> q * t.jobs.(i).times.(q - 1)) allotment)
  |> List.fold_left ( + ) 0

let critical_path t allotment =
  Array.to_list (Array.mapi (fun i q -> t.jobs.(i).times.(q - 1)) allotment)
  |> List.fold_left max 0

let balanced_allotment t =
  let n = Array.length t.jobs in
  let allotment = Array.make n 1 in
  let eval a = Pts.Schedule.makespan (List_scheduling.schedule (allot t a)) in
  let bound a =
    max (Dsp_util.Xutil.ceil_div (work_of t a) t.machines) (critical_path t a)
  in
  let best = ref (Array.copy allotment) and best_mk = ref (eval allotment) in
  (* Widen the critical job while the lower-bound proxy does not
     increase, keeping the allotment whose actual list schedule is
     shortest.  Allotments grow monotonically, so at most n*(m-1)
     steps. *)
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let crit = ref (-1) and crit_p = ref (-1) in
    Array.iteri
      (fun i q ->
        let p = t.jobs.(i).times.(q - 1) in
        if p > !crit_p && q < t.machines then begin
          crit_p := p;
          crit := i
        end)
      allotment;
    if !crit >= 0 then begin
      let before = bound allotment in
      allotment.(!crit) <- allotment.(!crit) + 1;
      if bound allotment <= before then begin
        continue_ := true;
        let mk = eval allotment in
        if mk < !best_mk then begin
          best_mk := mk;
          best := Array.copy allotment
        end
      end
      else allotment.(!crit) <- allotment.(!crit) - 1
    end
  done;
  !best

let schedule t =
  let allotment = balanced_allotment t in
  let rigid = allot t allotment in
  (List_scheduling.schedule rigid, allotment)

let makespan t = Pts.Schedule.makespan (fst (schedule t))

let optimal_makespan ?node_limit t =
  let n = Array.length t.jobs in
  if n > 8 then None
  else begin
    let best = ref None in
    let allotment = Array.make n 1 in
    let rec go i =
      if i = n then begin
        let rigid = allot t allotment in
        match Dsp_exact.Pts_exact.optimal_makespan ?node_limit rigid with
        | Some mk -> (
            match !best with
            | Some (b, _) when b <= mk -> ()
            | _ -> best := Some (mk, Array.copy allotment))
        | None -> ()
      end
      else
        for q = 1 to t.machines do
          allotment.(i) <- q;
          go (i + 1)
        done
    in
    go 0;
    !best
  end
