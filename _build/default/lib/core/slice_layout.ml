type t = { packing : Packing.t; ys : int array array }

let error (pk : Packing.t) ys =
  let inst = Packing.instance pk in
  let n = Instance.n_items inst in
  if Array.length ys <> n then Some "ys length mismatch"
  else begin
    let err = ref None in
    let set e = if !err = None then err := Some e in
    for i = 0 to n - 1 do
      let it = Instance.item inst i in
      if Array.length ys.(i) <> it.Item.w then
        set (Printf.sprintf "item %d has %d slice rows for width %d" i
               (Array.length ys.(i)) it.Item.w);
      Array.iter (fun y -> if y < 0 then set (Printf.sprintf "item %d below floor" i)) ys.(i)
    done;
    if !err = None then begin
      (* Per-column overlap check via interval sorting. *)
      let width = inst.Instance.width in
      let columns = Array.make width [] in
      for i = 0 to n - 1 do
        let it = Instance.item inst i in
        let s = Packing.start pk i in
        for dx = 0 to it.Item.w - 1 do
          columns.(s + dx) <- (ys.(i).(dx), ys.(i).(dx) + it.Item.h, i) :: columns.(s + dx)
        done
      done;
      Array.iteri
        (fun x intervals ->
          let sorted = List.sort compare intervals in
          let rec sweep = function
            | (_, hi1, i1) :: ((lo2, _, i2) :: _ as rest) ->
                if hi1 > lo2 then
                  set
                    (Printf.sprintf "items %d and %d overlap in column %d" i1 i2 x)
                else sweep rest
            | [ _ ] | [] -> ()
          in
          sweep sorted)
        columns
    end;
    !err
  end

let make pk ys =
  match error pk ys with
  | Some msg -> invalid_arg ("Slice_layout.make: " ^ msg)
  | None -> { packing = pk; ys = Array.map Array.copy ys }

let stacked (pk : Packing.t) =
  let inst = Packing.instance pk in
  let n = Instance.n_items inst in
  let width = inst.Instance.width in
  let ys = Array.init n (fun i -> Array.make (Instance.item inst i).Item.w 0) in
  (* Cumulative load per column, filled in id order. *)
  let top = Array.make width 0 in
  for i = 0 to n - 1 do
    let it = Instance.item inst i in
    let s = Packing.start pk i in
    for dx = 0 to it.Item.w - 1 do
      ys.(i).(dx) <- top.(s + dx);
      top.(s + dx) <- top.(s + dx) + it.Item.h
    done
  done;
  { packing = pk; ys }

let packing t = t.packing

let height t =
  let inst = Packing.instance t.packing in
  let m = ref 0 in
  Array.iteri
    (fun i row ->
      let h = (Instance.item inst i).Item.h in
      Array.iter (fun y -> if y + h > !m then m := y + h) row)
    t.ys;
  !m

let slice_points t =
  Array.fold_left
    (fun acc row ->
      let cuts = ref 0 in
      for dx = 1 to Array.length row - 1 do
        if row.(dx) <> row.(dx - 1) then incr cuts
      done;
      acc + !cuts)
    0 t.ys

let validate t =
  match error t.packing t.ys with Some msg -> Error msg | None -> Ok ()

let render t =
  let inst = Packing.instance t.packing in
  let width = inst.Instance.width in
  let h = max 1 (height t) in
  let grid = Array.make_matrix h width '.' in
  Array.iteri
    (fun i row ->
      let it = Instance.item inst i in
      let s = Packing.start t.packing i in
      let c = Char.chr (Char.code 'A' + (i mod 26)) in
      Array.iteri
        (fun dx y ->
          for dy = 0 to it.Item.h - 1 do
            grid.(y + dy).(s + dx) <- c
          done)
        row)
    t.ys;
  let buf = Buffer.create ((width + 1) * h) in
  for r = h - 1 downto 0 do
    Buffer.add_string buf (String.init width (fun x -> grid.(r).(x)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make width '-');
  Buffer.contents buf
