type pos = { x : int; y : int }
type t = { instance : Instance.t; positions : pos array }

let overlap_error (inst : Instance.t) positions =
  if Array.length positions <> Instance.n_items inst then
    Some
      (Printf.sprintf "positions has %d entries for %d items"
         (Array.length positions) (Instance.n_items inst))
  else begin
    let n = Instance.n_items inst in
    let err = ref None in
    let set e = if !err = None then err := Some e in
    for i = 0 to n - 1 do
      let it = Instance.item inst i and p = positions.(i) in
      if p.x < 0 || p.x + it.Item.w > inst.Instance.width then
        set (Printf.sprintf "item %d overhangs the strip horizontally" i);
      if p.y < 0 then set (Printf.sprintf "item %d below the strip floor" i)
    done;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = Instance.item inst i and b = Instance.item inst j in
        let pa = positions.(i) and pb = positions.(j) in
        let disjoint =
          pa.x + a.Item.w <= pb.x
          || pb.x + b.Item.w <= pa.x
          || pa.y + a.Item.h <= pb.y
          || pb.y + b.Item.h <= pa.y
        in
        if not disjoint then set (Printf.sprintf "items %d and %d overlap" i j)
      done
    done;
    !err
  end

let make inst positions =
  (match overlap_error inst positions with
  | Some msg -> invalid_arg ("Rect_packing.make: " ^ msg)
  | None -> ());
  { instance = inst; positions = Array.copy positions }

let instance t = t.instance
let position t i = t.positions.(i)

let height t =
  let m = ref 0 in
  Array.iteri
    (fun i p ->
      let it = Instance.item t.instance i in
      if p.y + it.Item.h > !m then m := p.y + it.Item.h)
    t.positions;
  !m

let validate t =
  match overlap_error t.instance t.positions with
  | Some msg -> Error msg
  | None -> Ok ()

let to_dsp t = Packing.make t.instance (Array.map (fun p -> p.x) t.positions)

let pp fmt t =
  Format.fprintf fmt "@[<v>rect packing height=%d@,%a@]" (height t)
    (Format.pp_print_seq ~pp_sep:Format.pp_print_space (fun f (i, p) ->
         Format.fprintf f "#%d@(%d,%d)" i p.x p.y))
    (Array.to_seqi t.positions)
