(** Demand profiles (skylines) over the discrete strip [0, width).

    A profile records, for every unit column of the strip, the total
    height of items covering it.  It is the central object of Demand
    Strip Packing: the objective value of a packing is exactly the peak
    of its profile.  This implementation keeps the per-column loads in
    a plain array with O(1) amortized range updates via a difference
    array that is flushed lazily; for algorithms needing range-max
    queries under updates see {!Segtree}. *)

type t

val create : int -> t
(** [create width] is the all-zero profile over [0, width). *)

val width : t -> int

val add : t -> start:int -> len:int -> height:int -> unit
(** Add [height] to all columns in [start, start + len); [height] may
    be negative (removal).
    @raise Invalid_argument if the range leaves the strip. *)

val add_item : t -> Item.t -> start:int -> unit
val remove_item : t -> Item.t -> start:int -> unit

val load : t -> int -> int
(** Load of one column. *)

val peak : t -> int
(** Maximum load over all columns; 0 for an empty strip. *)

val peak_in : t -> start:int -> len:int -> int
(** Maximum load over the window [start, start + len). *)

val copy : t -> t
val to_array : t -> int array

val of_starts : Instance.t -> int array -> t
(** Profile of the packing that starts item [i] at [starts.(i)]. *)

val pp : Format.formatter -> t -> unit

val render : ?max_rows:int -> t -> string
(** ASCII skyline, one character column per strip column, for the
    examples and the CLI. *)
