type t = { id : int; w : int; h : int }

let make ~id ~w ~h =
  if w < 1 then invalid_arg "Item.make: width must be >= 1";
  if h < 1 then invalid_arg "Item.make: height must be >= 1";
  { id; w; h }

let area t = t.w * t.h
let scale_height k t = { t with h = t.h * k }
let scale_width k t = { t with w = t.w * k }
let equal a b = a.id = b.id && a.w = b.w && a.h = b.h
let compare a b = Stdlib.compare (a.id, a.w, a.h) (b.id, b.w, b.h)

let compare_by_height_desc a b =
  match Stdlib.compare b.h a.h with
  | 0 -> ( match Stdlib.compare b.w a.w with 0 -> Stdlib.compare a.id b.id | c -> c)
  | c -> c

let compare_by_width_desc a b =
  match Stdlib.compare b.w a.w with
  | 0 -> ( match Stdlib.compare b.h a.h with 0 -> Stdlib.compare a.id b.id | c -> c)
  | c -> c

let compare_by_area_desc a b =
  match Stdlib.compare (area b) (area a) with
  | 0 -> Stdlib.compare a.id b.id
  | c -> c

let pp fmt t = Format.fprintf fmt "item#%d(%dx%d)" t.id t.w t.h
