module Job = struct
  type t = { id : int; p : int; q : int }

  let make ~id ~p ~q =
    if p < 1 then invalid_arg "Job.make: processing time must be >= 1";
    if q < 1 then invalid_arg "Job.make: machine requirement must be >= 1";
    { id; p; q }

  let work t = t.p * t.q
  let equal a b = a.id = b.id && a.p = b.p && a.q = b.q
  let pp fmt t = Format.fprintf fmt "job#%d(p=%d,q=%d)" t.id t.p t.q
end

module Inst = struct
  type t = { machines : int; jobs : Job.t array }

  let make ~machines jobs =
    if machines < 1 then invalid_arg "Pts.Inst.make: machines must be >= 1";
    Array.iter
      (fun (j : Job.t) ->
        if j.q > machines then
          invalid_arg
            (Printf.sprintf "Pts.Inst.make: job needs %d of %d machines" j.q
               machines))
      jobs;
    { machines; jobs = Array.mapi (fun i (j : Job.t) -> { j with Job.id = i }) jobs }

  let of_dims ~machines dims =
    let jobs =
      List.mapi (fun i (p, q) -> Job.make ~id:i ~p ~q) dims |> Array.of_list
    in
    make ~machines jobs

  let n_jobs t = Array.length t.jobs
  let job t i = t.jobs.(i)
  let total_work t = Array.fold_left (fun acc j -> acc + Job.work j) 0 t.jobs
  let work_lower_bound t = Dsp_util.Xutil.ceil_div (total_work t) t.machines
  let max_time t = Array.fold_left (fun acc (j : Job.t) -> max acc j.p) 0 t.jobs

  let stacking_bound t =
    Array.fold_left
      (fun acc (j : Job.t) -> if 2 * j.q > t.machines then acc + j.p else acc)
      0 t.jobs

  let lower_bound t = max (work_lower_bound t) (max (max_time t) (stacking_bound t))

  let pp fmt t =
    Format.fprintf fmt "@[<v>pts: m=%d jobs=%d work=%d@,%a@]" t.machines
      (n_jobs t) (total_work t)
      (Format.pp_print_seq ~pp_sep:Format.pp_print_space Job.pp)
      (Array.to_seq t.jobs)
end

module Schedule = struct
  type t = { inst : Inst.t; sigma : int array; rho : int list array }

  let error (inst : Inst.t) ~sigma ~rho =
    let n = Inst.n_jobs inst and m = inst.Inst.machines in
    if Array.length sigma <> n then Some "sigma length mismatch"
    else if Array.length rho <> n then Some "rho length mismatch"
    else begin
      let err = ref None in
      let set e = if !err = None then err := Some e in
      for i = 0 to n - 1 do
        let j = Inst.job inst i in
        if sigma.(i) < 0 then set (Printf.sprintf "job %d starts before 0" i);
        let ms = List.sort_uniq compare rho.(i) in
        if List.length ms <> j.Job.q then
          set
            (Printf.sprintf "job %d assigned %d distinct machines, needs %d" i
               (List.length ms) j.Job.q);
        List.iter
          (fun k -> if k < 0 || k >= m then set (Printf.sprintf "job %d uses machine %d out of range" i k))
          rho.(i)
      done;
      (* Machine conflicts: sweep each machine's jobs sorted by start. *)
      if !err = None then begin
        let per_machine = Array.make m [] in
        for i = 0 to n - 1 do
          List.iter (fun k -> per_machine.(k) <- i :: per_machine.(k)) rho.(i)
        done;
        Array.iteri
          (fun k jobs ->
            let sorted =
              List.sort (fun a b -> compare sigma.(a) sigma.(b)) jobs
            in
            let rec sweep = function
              | a :: (b :: _ as rest) ->
                  let ja = Inst.job inst a in
                  if sigma.(a) + ja.Job.p > sigma.(b) then
                    set
                      (Printf.sprintf "machine %d runs jobs %d and %d concurrently"
                         k a b)
                  else sweep rest
              | [ _ ] | [] -> ()
            in
            sweep sorted)
          per_machine
      end;
      !err
    end

  let make inst ~sigma ~rho =
    (match error inst ~sigma ~rho with
    | Some msg -> invalid_arg ("Pts.Schedule.make: " ^ msg)
    | None -> ());
    { inst; sigma = Array.copy sigma; rho = Array.map (List.sort_uniq compare) rho }

  let makespan t =
    let m = ref 0 in
    Array.iteri
      (fun i s ->
        let j = Inst.job t.inst i in
        if s + j.Job.p > !m then m := s + j.Job.p)
      t.sigma;
    !m

  let validate t =
    match error t.inst ~sigma:t.sigma ~rho:t.rho with
    | Some msg -> Error msg
    | None -> Ok ()

  let machine_timeline t k =
    let acc = ref [] in
    Array.iteri
      (fun i ms ->
        if List.mem k ms then
          let j = Inst.job t.inst i in
          acc := (t.sigma.(i), t.sigma.(i) + j.Job.p, i) :: !acc)
      t.rho;
    List.sort compare !acc

  let render t =
    let horizon = makespan t in
    let m = t.inst.Inst.machines in
    let buf = Buffer.create ((horizon + 8) * m) in
    for k = m - 1 downto 0 do
      Buffer.add_string buf (Printf.sprintf "m%-2d|" k);
      let row = Bytes.make horizon '.' in
      List.iter
        (fun (s, f, i) ->
          let c =
            (* Letters cycle through jobs for readability. *)
            Char.chr (Char.code 'A' + (i mod 26))
          in
          for x = s to f - 1 do
            Bytes.set row x c
          done)
        (machine_timeline t k);
      Buffer.add_bytes buf row;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("    " ^ String.make horizon '-');
    Buffer.add_string buf (Printf.sprintf "\nmakespan = %d" horizon);
    Buffer.contents buf

  let pp fmt t =
    Format.fprintf fmt "@[<v>schedule makespan=%d@,sigma=%a@]" (makespan t)
      Dsp_util.Xutil.pp_int_list
      (Array.to_list t.sigma)
end
