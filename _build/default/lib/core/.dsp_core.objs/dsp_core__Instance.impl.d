lib/core/instance.ml: Array Dsp_util Format Item List Printf
