lib/core/slice_layout.ml: Array Buffer Char Instance Item List Packing Printf String
