lib/core/rect_packing.ml: Array Format Instance Item Packing Printf
