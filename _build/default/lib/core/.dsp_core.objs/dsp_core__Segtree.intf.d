lib/core/segtree.mli:
