lib/core/item.ml: Format Stdlib
