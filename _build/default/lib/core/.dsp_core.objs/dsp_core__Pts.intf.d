lib/core/pts.mli: Format
