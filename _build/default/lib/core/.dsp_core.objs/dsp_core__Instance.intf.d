lib/core/instance.mli: Format Item
