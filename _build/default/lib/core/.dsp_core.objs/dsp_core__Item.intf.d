lib/core/item.mli: Format
