lib/core/pts.ml: Array Buffer Bytes Char Dsp_util Format List Printf String
