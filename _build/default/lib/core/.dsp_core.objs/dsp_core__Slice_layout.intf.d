lib/core/slice_layout.mli: Packing
