lib/core/segtree.ml: Array
