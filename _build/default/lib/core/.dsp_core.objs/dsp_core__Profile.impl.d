lib/core/profile.ml: Array Buffer Dsp_util Format Instance Item Printf String
