lib/core/rect_packing.mli: Format Instance Packing
