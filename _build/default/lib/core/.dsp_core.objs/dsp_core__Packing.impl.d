lib/core/packing.ml: Array Dsp_util Format Instance Item Printf Profile
