lib/core/packing.mli: Format Instance Profile
