lib/core/profile.mli: Format Instance Item
