type t = { instance : Instance.t; starts : int array }

let feasibility_error (inst : Instance.t) starts =
  if Array.length starts <> Instance.n_items inst then
    Some
      (Printf.sprintf "starts has %d entries for %d items" (Array.length starts)
         (Instance.n_items inst))
  else
    let err = ref None in
    Array.iteri
      (fun i s ->
        if !err = None then
          let it = Instance.item inst i in
          if s < 0 || s + it.Item.w > inst.Instance.width then
            err :=
              Some
                (Printf.sprintf "item %d (w=%d) at start %d leaves strip of width %d"
                   i it.Item.w s inst.Instance.width))
      starts;
    !err

let make inst starts =
  (match feasibility_error inst starts with
  | Some msg -> invalid_arg ("Packing.make: " ^ msg)
  | None -> ());
  { instance = inst; starts = Array.copy starts }

let instance t = t.instance
let start t i = t.starts.(i)
let starts t = Array.copy t.starts
let profile t = Profile.of_starts t.instance t.starts
let height t = Profile.peak (profile t)
let is_valid inst starts = feasibility_error inst starts = None

let validate t =
  match feasibility_error t.instance t.starts with
  | Some msg -> Error msg
  | None -> Ok ()

let ratio_to t ~lower_bound =
  if lower_bound <= 0 then invalid_arg "Packing.ratio_to: bound must be positive";
  float_of_int (height t) /. float_of_int lower_bound

let shift t i s =
  let starts = Array.copy t.starts in
  starts.(i) <- s;
  make t.instance starts

let pp fmt t =
  Format.fprintf fmt "@[<v>packing height=%d@,starts=%a@]" (height t)
    Dsp_util.Xutil.pp_int_list (Array.to_list t.starts)
