type t = {
  n : int;
  size : int; (* smallest power of two >= n *)
  tree : int array; (* max of subtree, including pending adds below *)
  lazy_ : int array; (* pending add for the whole subtree *)
}

let create n =
  if n < 1 then invalid_arg "Segtree.create: size must be >= 1";
  let size = ref 1 in
  while !size < n do
    size := !size * 2
  done;
  { n; size = !size; tree = Array.make (2 * !size) 0; lazy_ = Array.make (2 * !size) 0 }

let size t = t.n

(* Node [v] covers columns [node_lo, node_hi). The displayed value of a
   node is tree.(v) + sum of lazy_ on its ancestors; we keep tree.(v)
   inclusive of the node's own lazy, which makes queries top-down
   accumulate only strictly-above lazies. *)

let rec add_rec t v node_lo node_hi lo hi value =
  if hi <= node_lo || node_hi <= lo then ()
  else if lo <= node_lo && node_hi <= hi then begin
    t.tree.(v) <- t.tree.(v) + value;
    t.lazy_.(v) <- t.lazy_.(v) + value
  end
  else begin
    let mid = (node_lo + node_hi) / 2 in
    add_rec t (2 * v) node_lo mid lo hi value;
    add_rec t ((2 * v) + 1) mid node_hi lo hi value;
    t.tree.(v) <- t.lazy_.(v) + max t.tree.(2 * v) t.tree.((2 * v) + 1)
  end

let range_add t ~lo ~hi value =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_add: bad range";
  if lo < hi then add_rec t 1 0 t.size lo hi value

let rec max_rec t v node_lo node_hi lo hi acc_lazy =
  if hi <= node_lo || node_hi <= lo then min_int
  else if lo <= node_lo && node_hi <= hi then acc_lazy + t.tree.(v)
  else
    let mid = (node_lo + node_hi) / 2 in
    let acc = acc_lazy + t.lazy_.(v) in
    max
      (max_rec t (2 * v) node_lo mid lo hi acc)
      (max_rec t ((2 * v) + 1) mid node_hi lo hi acc)

let range_max t ~lo ~hi =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_max: bad range";
  if lo >= hi then 0 else max_rec t 1 0 t.size lo hi 0

let max_all t = range_max t ~lo:0 ~hi:t.n
let get t i = range_max t ~lo:i ~hi:(i + 1)

let of_array arr =
  let t = create (Array.length arr) in
  Array.iteri (fun i v -> range_add t ~lo:i ~hi:(i + 1) v) arr;
  t

let to_array t = Array.init t.n (get t)

let min_peak_start t ~len ~height ~limit =
  if len < 1 || len > t.n then None
  else
    let rec go s =
      if s + len > t.n then None
      else if range_max t ~lo:s ~hi:(s + len) + height <= limit then Some s
      else go (s + 1)
    in
    go 0
