(** Parallel Task Scheduling (PTS).

    Jobs require a number of machines for a processing time; a schedule
    assigns each job a start (σ) and a concrete machine set (ρ).  The
    makespan is the latest finishing time.  Theorem 1 of the paper
    shows PTS and DSP are duals: jobs correspond to items with
    [w = p] and [h = q], machines to strip height, makespan to strip
    width. *)

module Job : sig
  type t = { id : int; p : int; q : int }
  (** [p >= 1] processing time, [q >= 1] required machines. *)

  val make : id:int -> p:int -> q:int -> t
  val work : t -> int
  (** [p * q]. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Inst : sig
  type t = private { machines : int; jobs : Job.t array }

  val make : machines:int -> Job.t array -> t
  (** Re-ids jobs to array positions.
      @raise Invalid_argument if a job needs more machines than
      available. *)

  val of_dims : machines:int -> (int * int) list -> t
  (** [(p, q)] pairs. *)

  val n_jobs : t -> int
  val job : t -> int -> Job.t
  val total_work : t -> int

  val work_lower_bound : t -> int
  (** ⌈total work / machines⌉. *)

  val max_time : t -> int

  val lower_bound : t -> int
  (** max of work bound, longest job, and the stacking bound for jobs
      with [2q > m]. *)

  val pp : Format.formatter -> t -> unit
end

module Schedule : sig
  type t = private {
    inst : Inst.t;
    sigma : int array; (* start time per job *)
    rho : int list array; (* machine set per job, machines in 0..m-1 *)
  }

  val make : Inst.t -> sigma:int array -> rho:int list array -> t
  (** @raise Invalid_argument if any validity condition fails (see
      {!error}). *)

  val error : Inst.t -> sigma:int array -> rho:int list array -> string option
  (** [None] iff: each job gets exactly [q] distinct machines in
      range, starts are non-negative, and no machine runs two
      overlapping jobs. *)

  val makespan : t -> int
  val validate : t -> (unit, string) result

  val machine_timeline : t -> int -> (int * int * int) list
  (** [machine_timeline s m] lists [(start, finish, job)] triples on
      machine [m], sorted by start. *)

  val render : t -> string
  (** ASCII Gantt chart, one text row per machine. *)

  val pp : Format.formatter -> t -> unit
end
