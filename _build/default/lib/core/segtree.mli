(** Lazy segment tree with range-add updates and range-max queries.

    The incremental DSP algorithms (first-fit placement, branch and
    bound) repeatedly ask "what is the peak load in this window?" and
    "add h to this window"; both are O(log width) here versus O(width)
    on the flat {!Profile}.  The ablation benchmark E-micro compares
    the two structures. *)

type t

val create : int -> t
(** [create n] is the all-zero tree over columns [0, n). *)

val size : t -> int

val range_add : t -> lo:int -> hi:int -> int -> unit
(** Add a value to all columns in [lo, hi) — [hi] exclusive. *)

val range_max : t -> lo:int -> hi:int -> int
(** Maximum over [lo, hi); 0 when the range is empty. *)

val max_all : t -> int
val get : t -> int -> int
val of_array : int array -> t
val to_array : t -> int array

val min_peak_start : t -> len:int -> height:int -> limit:int -> int option
(** [min_peak_start t ~len ~height ~limit] finds the smallest start
    [s] such that placing an item of the given [len] and [height] at
    [s] keeps the window peak at most [limit], i.e.
    [range_max t s (s+len) + height <= limit].  Linear scan over
    candidate starts with O(log n) window queries. *)
