type t = { width : int; items : Item.t array }

let reindex items = Array.mapi (fun i (it : Item.t) -> { it with Item.id = i }) items

let make ~width items =
  if width < 1 then invalid_arg "Instance.make: width must be >= 1";
  Array.iter
    (fun (it : Item.t) ->
      if it.Item.w > width then
        invalid_arg
          (Printf.sprintf "Instance.make: item of width %d exceeds strip width %d"
             it.Item.w width))
    items;
  { width; items = reindex items }

let of_dims ~width dims =
  let items =
    List.mapi (fun i (w, h) -> Item.make ~id:i ~w ~h) dims |> Array.of_list
  in
  make ~width items

let n_items t = Array.length t.items
let item t i = t.items.(i)
let total_area t = Array.fold_left (fun acc it -> acc + Item.area it) 0 t.items
let max_height t = Array.fold_left (fun acc (it : Item.t) -> max acc it.h) 0 t.items
let max_width t = Array.fold_left (fun acc (it : Item.t) -> max acc it.w) 0 t.items
let area_lower_bound t = Dsp_util.Xutil.ceil_div (total_area t) t.width

let column_lower_bound t =
  Array.fold_left
    (fun acc (it : Item.t) -> if 2 * it.w > t.width then acc + it.h else acc)
    0 t.items

let lower_bound t =
  max (area_lower_bound t) (max (max_height t) (column_lower_bound t))

let scale_heights k t =
  if k < 1 then invalid_arg "Instance.scale_heights";
  { t with items = Array.map (Item.scale_height k) t.items }

let map_items f t = make ~width:t.width (Array.map f t.items)
let sub_instance t items = make ~width:t.width (Array.of_list items)

let equal a b =
  a.width = b.width
  && Array.length a.items = Array.length b.items
  && Array.for_all2 Item.equal a.items b.items

let pp fmt t =
  Format.fprintf fmt "@[<v>instance: width=%d items=%d area=%d@,%a@]" t.width
    (n_items t) (total_area t)
    (Format.pp_print_seq ~pp_sep:Format.pp_print_space Item.pp)
    (Array.to_seq t.items)
