(** Demand Strip Packing instances.

    An instance is a strip of width [width] together with a set of
    items to be packed.  Items are stored in an array and their [id]
    field always equals their array index, an invariant established by
    the constructors and relied upon throughout the code base. *)

type t = private { width : int; items : Item.t array }

val make : width:int -> Item.t array -> t
(** Re-ids the items to their array positions.
    @raise Invalid_argument if [width < 1] or any item is wider than
    the strip. *)

val of_dims : width:int -> (int * int) list -> t
(** [of_dims ~width [(w0, h0); ...]] builds an instance from raw
    dimension pairs. *)

val n_items : t -> int
val item : t -> int -> Item.t
val total_area : t -> int
val max_height : t -> int
val max_width : t -> int

val area_lower_bound : t -> int
(** ⌈total area / width⌉ — every packing has at least this peak. *)

val lower_bound : t -> int
(** The best combinatorial lower bound available without search:
    max of {!area_lower_bound}, {!max_height}, and the
    {!column_lower_bound}. *)

val column_lower_bound : t -> int
(** Items wider than half the strip all overlap the middle column, so
    their heights stack; this bound is the sum of heights of items with
    [2 * w > width]. *)

val scale_heights : int -> t -> t

val map_items : (Item.t -> Item.t) -> t -> t
(** Applies [f] to every item; the results are re-ided to their array
    positions (which [f] must not rely on changing). *)

val sub_instance : t -> Item.t list -> t
(** New re-ided instance with the given items and the same width. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
