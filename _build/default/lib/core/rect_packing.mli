(** Classical (unsliced) Strip Packing solutions.

    Unlike DSP packings, classical strip packings place each item as a
    solid axis-aligned rectangle: every item has an x and a y
    coordinate and no two rectangles may overlap.  These are used by
    the Steinberg substrate, the SP baselines, and the integrality-gap
    experiment E1/E12.

    A classical packing induces a valid DSP packing of the same height
    by forgetting the y coordinates (slicing can only help), see
    {!to_dsp}. *)

type pos = { x : int; y : int }

type t = private { instance : Instance.t; positions : pos array }

val make : Instance.t -> pos array -> t
(** @raise Invalid_argument on overlap or overhang. *)

val instance : t -> Instance.t
val position : t -> int -> pos
val height : t -> int

val overlap_error : Instance.t -> pos array -> string option
(** [None] iff the placement is feasible (no overlaps, all rectangles
    inside the strip horizontally, y >= 0). *)

val validate : t -> (unit, string) result

val to_dsp : t -> Packing.t
(** Forget y coordinates; the DSP height is at most {!height}. *)

val pp : Format.formatter -> t -> unit
