(** Explicit sliced layouts of DSP packings.

    A {!Packing.t} only records start columns; a slice layout
    additionally fixes, for every item and every column it covers, the
    vertical position of the item's slice there.  This is the object
    the paper's Figure 1–3 draw: slicing means the vertical position
    may change from column to column, but within one column each item
    must occupy one contiguous interval [y, y + h).

    Layouts are produced by the PTS ↔ DSP transformation (machine
    indices become vertical positions) and by the stacking rule; the
    {!slice_points} statistic counts how often items are actually cut,
    reproducing the paper's claim that the repair procedure slices
    each item O(1) times per event. *)

type t = private {
  packing : Packing.t;
  ys : int array array; (* ys.(i).(dx) = bottom of item i at column start+dx *)
}

val make : Packing.t -> int array array -> t
(** @raise Invalid_argument if dimensions mismatch or two slices
    overlap in some column. *)

val error : Packing.t -> int array array -> string option

val stacked : Packing.t -> t
(** The canonical layout: in every column, active items are stacked
    bottom-up in order of increasing id.  Always feasible and of the
    same height as the packing's profile peak. *)

val packing : t -> Packing.t
val height : t -> int
(** Max over columns of the top of the highest slice. *)

val slice_points : t -> int
(** Number of positions where an item's vertical position differs from
    its position one column earlier — i.e. the number of vertical cuts
    the layout actually uses. *)

val validate : t -> (unit, string) result
val render : t -> string
(** ASCII picture, one letter per item. *)
