(** Demand Strip Packing solutions.

    Because items may be sliced vertically (any horizontal segment of
    an item can sit at any height), a DSP solution is fully described
    by the placement function λ assigning each item its start column;
    the peak of the induced demand profile is the objective. *)

type t = private { instance : Instance.t; starts : int array }

val make : Instance.t -> int array -> t
(** @raise Invalid_argument if the array length does not match or any
    item overhangs the strip. *)

val instance : t -> Instance.t
val start : t -> int -> int
val starts : t -> int array
val profile : t -> Profile.t
val height : t -> int
(** Peak of the demand profile — the DSP objective. *)

val is_valid : Instance.t -> int array -> bool
(** Check feasibility without constructing. *)

val validate : t -> (unit, string) result
(** Re-checks all invariants, for tests and for packings produced by
    transformation pipelines. *)

val ratio_to : t -> lower_bound:int -> float
(** [height / lower_bound] as a float; [lower_bound] must be
    positive. *)

val shift : t -> int -> int -> t
(** [shift p i s] re-places item [i] at start [s]. *)

val pp : Format.formatter -> t -> unit
