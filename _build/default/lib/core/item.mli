(** Items of the Demand Strip Packing problem.

    An item models one power-demanding task: its width is the duration
    for which it runs and its height the amount of power it draws.  In
    the demand (sliced) setting the vertical position of an item is
    irrelevant — only the set of time points it covers matters — so an
    item is fully described by its two dimensions. *)

type t = { id : int; w : int; h : int }
(** [id] is the item's index inside its instance, [w >= 1] its width
    (duration) and [h >= 1] its height (demand). *)

val make : id:int -> w:int -> h:int -> t
(** @raise Invalid_argument if [w < 1] or [h < 1]. *)

val area : t -> int

val scale_height : int -> t -> t
(** [scale_height k item] multiplies the height by [k]. *)

val scale_width : int -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val compare_by_height_desc : t -> t -> int
(** Descending height, ties by descending width, then by id — a total
    order used by shelf algorithms. *)

val compare_by_width_desc : t -> t -> int
val compare_by_area_desc : t -> t -> int
val pp : Format.formatter -> t -> unit
