lib/transform/transform.ml: Array Dsp_core Dsp_util Fun Instance Item List Option Packing Printf Pts Slice_layout
