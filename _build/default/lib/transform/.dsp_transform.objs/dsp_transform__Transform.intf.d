lib/transform/transform.mli: Dsp_core Instance Packing Pts Slice_layout
