open Dsp_core

type stats = { events : int; repairs : int }

let schedule_to_packing (sched : Pts.Schedule.t) =
  let pts = sched.Pts.Schedule.inst in
  let width = max 1 (Pts.Schedule.makespan sched) in
  let items =
    Array.map
      (fun (j : Pts.Job.t) -> Item.make ~id:j.Pts.Job.id ~w:j.Pts.Job.p ~h:j.Pts.Job.q)
      pts.Pts.Inst.jobs
  in
  let inst = Instance.make ~width items in
  Packing.make inst sched.Pts.Schedule.sigma

let dsp_to_pts_instance (inst : Instance.t) ~machines =
  let jobs =
    Array.map
      (fun (it : Item.t) -> Pts.Job.make ~id:it.Item.id ~p:it.Item.w ~q:it.Item.h)
      inst.Instance.items
  in
  Pts.Inst.make ~machines jobs

let pts_to_dsp_instance (inst : Pts.Inst.t) ~width =
  let items =
    Array.map
      (fun (j : Pts.Job.t) -> Item.make ~id:j.Pts.Job.id ~w:j.Pts.Job.p ~h:j.Pts.Job.q)
      inst.Pts.Inst.jobs
  in
  Instance.make ~width items

(* Contiguity of a sorted machine list. *)
let rec contiguous = function
  | a :: (b :: _ as rest) -> b = a + 1 && contiguous rest
  | [ _ ] | [] -> true

let schedule_to_layout (sched : Pts.Schedule.t) =
  let pk = schedule_to_packing sched in
  let inst = Packing.instance pk in
  let n = Instance.n_items inst in
  let width = inst.Instance.width in
  let machines = sched.Pts.Schedule.inst.Pts.Inst.machines in
  let ys = Array.init n (fun i -> Array.make (Instance.item inst i).Item.w 0) in
  let sigma = sched.Pts.Schedule.sigma and rho = sched.Pts.Schedule.rho in
  let finish i = sigma.(i) + (Instance.item inst i).Item.w in
  (* Events: distinct start times, ascending. *)
  let events = Array.to_list sigma |> List.sort_uniq compare in
  let current_y = Array.make n (-1) in
  let repairs = ref 0 in
  let set_range i t until y =
    (* Fill only up to the item's own finish: the next event may lie
       beyond it. *)
    for x = t to min until (finish i) - 1 do
      ys.(i).(x - sigma.(i)) <- y
    done;
    current_y.(i) <- y
  in
  let next_event_after t =
    List.fold_left (fun acc e -> if e > t && e < acc then e else acc) width events
  in
  List.iter
    (fun t ->
      let until = next_event_after t in
      let actives =
        List.filter (fun i -> sigma.(i) <= t && t < finish i) (List.init n Fun.id)
      in
      let old_items = List.filter (fun i -> sigma.(i) < t) actives in
      let new_items = List.filter (fun i -> sigma.(i) = t) actives in
      (* Occupied intervals of items we keep in place. *)
      let occupied =
        List.map
          (fun i -> (current_y.(i), current_y.(i) + (Instance.item inst i).Item.h))
          old_items
        |> List.sort compare
      in
      (* Lowest contiguous free gap of size [h] below [machines]. *)
      let find_gap occupied h =
        let rec go y = function
          | [] -> if y + h <= machines then Some y else None
          | (lo, hi) :: rest ->
              if y + h <= lo then Some y else go (max y hi) rest
        in
        go 0 occupied
      in
      (* First try to keep old items fixed, inserting each new item at
         its machine position when contiguous and free, otherwise into
         the lowest fitting gap. *)
      let try_incremental () =
        let occ = ref occupied in
        let placements =
          List.map
            (fun i ->
              let ms = rho.(i) in
              let h = (Instance.item inst i).Item.h in
              let desired =
                match ms with
                | m0 :: _ when contiguous ms -> Some m0
                | _ -> None
              in
              let fits y =
                y + h <= machines
                && List.for_all (fun (lo, hi) -> y + h <= lo || hi <= y) !occ
              in
              let y =
                match desired with
                | Some y when fits y -> Some y
                | _ -> find_gap !occ h
              in
              match y with
              | Some y ->
                  occ := List.sort compare ((y, y + h) :: !occ);
                  Some (i, y)
              | None -> None)
            new_items
        in
        if List.for_all Option.is_some placements then
          Some (List.map Option.get placements)
        else None
      in
      match try_incremental () with
      | Some placements ->
          List.iter (fun i -> set_range i t until current_y.(i)) old_items;
          List.iter (fun (i, y) -> set_range i t until y) placements
      | None ->
          (* The paper's repair: sort all active items ascending by
             height and stack them from the bottom. *)
          incr repairs;
          let sorted =
            List.sort
              (fun a b ->
                compare (Instance.item inst a).Item.h (Instance.item inst b).Item.h)
              actives
          in
          let y = ref 0 in
          List.iter
            (fun i ->
              set_range i t until !y;
              y := !y + (Instance.item inst i).Item.h)
            sorted)
    events;
  let layout = Slice_layout.make pk ys in
  (layout, { events = List.length events; repairs = !repairs })

let packing_to_schedule (pk : Packing.t) ~machines =
  let inst = Packing.instance pk in
  let peak = Packing.height pk in
  if peak > machines then
    Error
      (Printf.sprintf "packing height %d exceeds machine count %d" peak machines)
  else begin
    let n = Instance.n_items inst in
    let pts = dsp_to_pts_instance inst ~machines in
    let sigma = Packing.starts pk in
    let rho = Array.make n [] in
    let busy_until = Array.make machines 0 in
    (* Jobs in order of start time; ties by id for determinism. *)
    let order =
      List.init n Fun.id
      |> List.sort (fun a b ->
             match compare sigma.(a) sigma.(b) with 0 -> compare a b | c -> c)
    in
    let events = ref 0 and last_event = ref min_int in
    List.iter
      (fun i ->
        let t = sigma.(i) in
        if t <> !last_event then begin
          incr events;
          last_event := t
        end;
        let q = (Instance.item inst i).Item.h in
        let free = ref [] in
        for m = machines - 1 downto 0 do
          if busy_until.(m) <= t then free := m :: !free
        done;
        let chosen = Dsp_util.Xutil.take q !free in
        assert (List.length chosen = q);
        List.iter
          (fun m -> busy_until.(m) <- t + (Instance.item inst i).Item.w)
          chosen;
        rho.(i) <- chosen)
      order;
    let sched = Pts.Schedule.make pts ~sigma ~rho in
    Ok (sched, { events = !events; repairs = 0 })
  end

let roundtrip_schedule sched =
  let pk = schedule_to_packing sched in
  let machines = sched.Pts.Schedule.inst.Pts.Inst.machines in
  match packing_to_schedule pk ~machines with
  | Ok (s, _) -> Ok s
  | Error e -> Error e
