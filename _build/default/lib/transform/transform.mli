(** The Theorem 1 transformations between PTS schedules and DSP
    packings.

    Both directions preserve the objective exactly: a schedule on [m]
    machines with makespan [T] becomes a packing of height at most [m]
    in a strip of width [T], and vice versa.  The interesting content
    is the two repair procedures (Figures 2 and 3 of the paper):

    - PTS → DSP: items inherit the vertical positions of their
      machines; a job on a non-contiguous machine set has a horizontal
      gap, which the sweep repairs by re-stacking the affected columns
      (sorting active items by height, as in the paper).
    - DSP → PTS: a packing fixes only start columns; the sweep assigns
      each job a concrete machine set at its start, which is always
      possible because at most [m] machines are busy at any time. *)

open Dsp_core

type stats = { events : int; repairs : int }
(** [events] — start-time events swept; [repairs] — events at which
    the full re-sort of the paper's procedure was needed. *)

val schedule_to_packing : Pts.Schedule.t -> Packing.t
(** Forget machine assignments; the packing's height is at most the
    number of machines. *)

val schedule_to_layout : Pts.Schedule.t -> Slice_layout.t * stats
(** The Figure 2 procedure: start from machine positions, repair
    horizontal gaps left by non-contiguous machine sets.  The layout
    height is at most the machine count. *)

val packing_to_schedule :
  Packing.t -> machines:int -> (Pts.Schedule.t * stats, string) result
(** The Figure 3 procedure: greedily assign machine sets at start
    events.  Fails with a diagnostic iff the packing's height exceeds
    [machines]. *)

val dsp_to_pts_instance : Instance.t -> machines:int -> Pts.Inst.t
(** Item (w, h) ↦ job (p = w, q = h). *)

val pts_to_dsp_instance : Pts.Inst.t -> width:int -> Instance.t
(** Job (p, q) ↦ item (w = p, h = q). *)

val roundtrip_schedule : Pts.Schedule.t -> (Pts.Schedule.t, string) result
(** Schedule → packing → schedule; used by the E3 experiment to show
    the transformations compose without objective loss. *)
