type t = { mutable state : int64 }

(* SplitMix64 constants (Steele, Lea & Flood 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next_int64 t) }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  let u = Stdlib.max 1e-12 (float t 1.0) in
  1 + int_of_float (Float.floor (log u /. log (1.0 -. p)))
