(** Deterministic, splittable pseudo-random number generator.

    Every experiment in the benchmark harness must be reproducible from
    a single integer seed, independent of evaluation order.  This is a
    small splittable generator built on the SplitMix64 finalizer: each
    draw advances an internal 64-bit counter through a strong mixing
    function, and {!split} derives an independent stream, so workload
    generators can be composed without sharing mutable state across
    modules. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of
    the remaining stream of [t]; [t] itself advances by one step. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range
    [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] draws from the geometric distribution with success
    probability [p]; result is >= 1. *)
