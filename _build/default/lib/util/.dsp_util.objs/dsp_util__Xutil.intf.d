lib/util/xutil.mli: Format
