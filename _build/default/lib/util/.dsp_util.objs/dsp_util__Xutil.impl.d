lib/util/xutil.ml: Array Format List Unix
