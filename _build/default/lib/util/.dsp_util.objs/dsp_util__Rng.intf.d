lib/util/rng.mli:
