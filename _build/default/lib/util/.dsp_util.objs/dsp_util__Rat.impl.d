lib/util/rat.ml: Float Format Stdlib
