(** Exact rational arithmetic over native integers.

    The sealed build environment has no [zarith]; this module provides
    exact rationals with overflow detection on multiplication.  All
    quantities appearing in the experiments (item dimensions, strip
    widths, LP coefficients) are small integers, so 63-bit numerators
    and denominators are ample.  Any overflow raises {!Overflow} rather
    than silently wrapping. *)

type t
(** A rational number, always kept in lowest terms with a positive
    denominator. *)

exception Overflow
(** Raised when an intermediate product would exceed the native integer
    range. *)

exception Division_by_zero
(** Raised when constructing a rational with denominator zero or when
    dividing by zero. *)

val make : int -> int -> t
(** [make num den] is the rational [num/den] in lowest terms.
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
(** Numerator of the canonical representation. *)

val den : t -> int
(** Denominator of the canonical representation; always positive. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val is_integer : t -> bool

val floor : t -> int
(** Largest integer [k] with [k <= t]. *)

val ceil : t -> int
(** Smallest integer [k] with [k >= t]. *)

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default 1_000_000), via continued fractions. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
