lib/lp/simplex.ml: Array Dsp_util
