lib/lp/simplex.mli: Dsp_util
