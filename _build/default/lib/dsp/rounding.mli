(** Lemma 3 height rounding.

    Every item with height above δ·H' gets its height rounded up to a
    multiple of the grid ε^(ℓ+1)·H', where ℓ is the geometric scale
    with ε^ℓ·H' ≤ h ≤ ε^(ℓ-1)·H'.  After rounding, each scale has at
    most 1/ε² distinct heights, which is what bounds the number of
    boxes in Lemmas 6–9.  The paper proves the rounded instance still
    packs into (1+2ε)·H'.

    Item dimensions are integers, so the grid is floored to an
    integer (a grid below one unit means the scale needs no rounding —
    the instance is already at least as fine as the analysis
    requires). *)

open Dsp_core
module Rat = Dsp_util.Rat

type t = private {
  original : Instance.t;
  rounded : Instance.t;  (** same ids, heights rounded up *)
}

val round_heights : Instance.t -> Classify.params -> t

val restore : t -> Packing.t -> Packing.t
(** Reinterpret a packing of the rounded instance on the original
    one (same starts); the peak can only decrease.
    @raise Invalid_argument if the packing is not over [rounded]. *)

val distinct_heights : Instance.t -> above:int -> int
(** Number of distinct heights among items strictly taller than
    [above]; the quantity the rounding is meant to compress. *)
