(** Executable versions of the box-restructuring lemmas 6 and 7.

    Lemma 6 (boxes of height at most H'/2): no two tall items can
    stack, so every tall item slides to the floor; vertical lines at
    tall-item borders cut the box into movable slices, which are
    sorted by the height of their tall item, descending.  After the
    sort the tall items of equal (rounded) height are adjacent —
    O(1/ε) boxes — and the multiset of per-column free capacities is
    unchanged, so the vertical items repack fractionally as before.

    Lemma 7 (boxes of height in (H'/2, 3/4·H']): at most two tall
    items stack; items crossing both guide lines go to the floor,
    the rest touch either the floor or the ceiling; sorting floor
    items ascending and ceiling items descending left-to-right
    produces a non-overlapping arrangement with O_ε(1) boxes.

    Both functions take the tall items of a feasible box (at most
    one/two per column respectively) and return the restructured
    starts together with box-count statistics; [verify_*] re-checks
    feasibility and capacity preservation, and the property tests run
    them on randomly generated feasible boxes. *)

open Dsp_core

type low_result = {
  starts : (int * int) list;  (** item id → new start *)
  tall_boxes : int;  (** runs of equal tall height after sorting *)
}

val sort_low_box :
  box_len:int -> items:(Item.t * int) list -> low_result
(** Lemma 6.  [items] are the tall items of the box with their
    original starts, all fully inside the box (the lemma's
    border-crossing immovables are the caller's concern: exclude them
    and shrink [box_len] accordingly, which is how the paper counts
    their two extra boxes). *)

val verify_low :
  box_len:int -> box_height:int -> items:(Item.t * int) list -> low_result ->
  (unit, string) result
(** No overlap among tall items, all inside the box, and the multiset
    of per-column free capacities is preserved. *)

type mid_side = Floor | Ceiling

type mid_result = {
  placement : (int * int * mid_side) list;  (** id, start, side *)
  boxes : int;  (** height-runs on both sides *)
}

val sort_mid_box :
  box_len:int -> box_height:int -> quarter:int -> items:(Item.t * int) list ->
  mid_result
(** Lemma 7.  Items crossing both guide lines (quarter and
    box_height − quarter) are floored; remaining items keep the side
    (floor/ceiling) nearer to their canonical position; floor items
    are sorted ascending, ceiling items descending. *)

val verify_mid :
  box_len:int -> box_height:int -> items:(Item.t * int) list -> mid_result ->
  (unit, string) result
(** Per-column: at most one floor and one ceiling item, and their
    heights sum within the box height. *)
