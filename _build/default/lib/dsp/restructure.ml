open Dsp_core

type low_result = { starts : (int * int) list; tall_boxes : int }

let runs_of_heights heights =
  match heights with
  | [] -> 0
  | h :: rest ->
      let _, runs =
        List.fold_left
          (fun (prev, runs) h -> if h = prev then (h, runs) else (h, runs + 1))
          (h, 1) rest
      in
      runs

let sort_low_box ~box_len ~items =
  let sorted =
    List.sort (fun ((a : Item.t), _) ((b : Item.t), _) -> Item.compare_by_height_desc a b)
      items
  in
  let total_w = Dsp_util.Xutil.sum_by (fun ((it : Item.t), _) -> it.Item.w) items in
  if total_w > box_len then
    invalid_arg "Restructure.sort_low_box: tall items wider than the box";
  let x = ref 0 in
  let starts =
    List.map
      (fun ((it : Item.t), _) ->
        let s = !x in
        x := !x + it.Item.w;
        (it.Item.id, s))
      sorted
  in
  {
    starts;
    tall_boxes = runs_of_heights (List.map (fun ((it : Item.t), _) -> it.Item.h) sorted);
  }

let capacity_multiset ~box_len ~box_height placements =
  let cap = Array.make box_len box_height in
  List.iter
    (fun ((it : Item.t), s) ->
      for xx = s to s + it.Item.w - 1 do
        cap.(xx) <- cap.(xx) - it.Item.h
      done)
    placements;
  List.sort compare (Array.to_list cap)

let verify_low ~box_len ~box_height ~items result =
  let placed =
    List.filter_map
      (fun ((it : Item.t), _) ->
        Option.map (fun s -> (it, s)) (List.assoc_opt it.Item.id result.starts))
      items
  in
  if List.length placed <> List.length items then Error "an item lost its start"
  else begin
    (* No overlap: at most one tall item per column before and after,
       checked via the occupancy count. *)
    let occupancy = Array.make box_len 0 in
    let err = ref None in
    List.iter
      (fun ((it : Item.t), s) ->
        if s < 0 || s + it.Item.w > box_len then
          err := Some (Printf.sprintf "item %d leaves the box" it.Item.id)
        else
          for x = s to s + it.Item.w - 1 do
            occupancy.(x) <- occupancy.(x) + 1
          done)
      placed;
    Array.iteri
      (fun x c ->
        if c > 1 && !err = None then
          err := Some (Printf.sprintf "column %d has %d tall items" x c))
      occupancy;
    match !err with
    | Some e -> Error e
    | None ->
        if
          capacity_multiset ~box_len ~box_height items
          = capacity_multiset ~box_len ~box_height placed
        then Ok ()
        else Error "free-capacity multiset changed"
  end

type mid_side = Floor | Ceiling

type mid_result = { placement : (int * int * mid_side) list; boxes : int }

let sort_mid_box ~box_len ~box_height ~quarter ~items =
  ignore quarter;
  List.iter
    (fun ((it : Item.t), _) ->
      if it.Item.h > box_height then
        invalid_arg "Restructure.sort_mid_box: item taller than the box")
    items;
  (* Side assignment = 2-coloring of the overlap graph: two tall
     items sharing a column must take opposite sides.  With at most
     two tall items per column the graph has no triangle, and overlap
     graphs of intervals without triangles are acyclic up to chords,
     so a BFS coloring always succeeds; items crossing both guide
     lines have no neighbours and default to the floor. *)
  let arr = Array.of_list items in
  let n = Array.length arr in
  let overlap i j =
    let (a : Item.t), sa = arr.(i) and (b : Item.t), sb = arr.(j) in
    i <> j && sa < sb + b.Item.w && sb < sa + a.Item.w
  in
  let colour = Array.make n None in
  for i = 0 to n - 1 do
    if colour.(i) = None then begin
      let queue = Queue.create () in
      Queue.add i queue;
      colour.(i) <- Some Floor;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let cu = match colour.(u) with Some c -> c | None -> Floor in
        for v = 0 to n - 1 do
          if overlap u v then
            match colour.(v) with
            | None ->
                colour.(v) <- Some (if cu = Floor then Ceiling else Floor);
                Queue.add v queue
            | Some cv ->
                if cv = cu then
                  invalid_arg
                    "Restructure.sort_mid_box: three tall items share a column"
        done
      done
    end
  done;
  (* Group items by connected component, keeping the two colour
     classes separate; then pick an orientation per component so both
     sides fit in the box width.  The original packing witnesses that
     some orientation works, and components are few, so enumeration
     is cheap. *)
  let comp = Array.make n (-1) in
  let n_comp = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) = -1 then begin
      let c = !n_comp in
      incr n_comp;
      let queue = Queue.create () in
      Queue.add i queue;
      comp.(i) <- c;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        for v = 0 to n - 1 do
          if overlap u v && comp.(v) = -1 then begin
            comp.(v) <- c;
            Queue.add v queue
          end
        done
      done
    end
  done;
  let class_a = Array.make !n_comp [] and class_b = Array.make !n_comp [] in
  Array.iteri
    (fun i entry ->
      match colour.(i) with
      | Some Floor | None -> class_a.(comp.(i)) <- entry :: class_a.(comp.(i))
      | Some Ceiling -> class_b.(comp.(i)) <- entry :: class_b.(comp.(i)))
    arr;
  let width_of entries =
    Dsp_util.Xutil.sum_by (fun ((it : Item.t), _) -> it.Item.w) entries
  in
  let rec orientations c wf wc acc =
    if c = !n_comp then
      if wf <= box_len && wc <= box_len then [ List.rev acc ] else []
    else begin
      let wa = width_of class_a.(c) and wb = width_of class_b.(c) in
      orientations (c + 1) (wf + wa) (wc + wb) (true :: acc)
      @ orientations (c + 1) (wf + wb) (wc + wa) (false :: acc)
    end
  in
  let build orientation =
    let orientation = Array.of_list orientation in
    let floors = ref [] and ceilings = ref [] in
    for c = 0 to !n_comp - 1 do
      if orientation.(c) then begin
        floors := class_a.(c) @ !floors;
        ceilings := class_b.(c) @ !ceilings
      end
      else begin
        floors := class_b.(c) @ !floors;
        ceilings := class_a.(c) @ !ceilings
      end
    done;
    let floors =
      List.sort
        (fun ((a : Item.t), _) ((b : Item.t), _) -> compare a.Item.h b.Item.h)
        !floors
    in
    let ceilings =
      List.sort
        (fun ((a : Item.t), _) ((b : Item.t), _) -> compare b.Item.h a.Item.h)
        !ceilings
    in
    let place side entries =
      let x = ref 0 in
      List.map
        (fun ((it : Item.t), _) ->
          let s = !x in
          x := !x + it.Item.w;
          (it.Item.id, s, side))
        entries
    in
    let placement = place Floor floors @ place Ceiling ceilings in
    let boxes =
      runs_of_heights (List.map (fun ((it : Item.t), _) -> it.Item.h) floors)
      + runs_of_heights (List.map (fun ((it : Item.t), _) -> it.Item.h) ceilings)
    in
    { placement; boxes }
  in
  (* The width check alone does not pin the right orientation: the
     ascending/descending interleaving must also clear the box
     height, so try every fitting orientation and keep the first
     whose arrangement verifies (the original packing guarantees one
     exists for true Lemma 7 boxes). *)
  let candidates = orientations 0 0 0 [] in
  let verify_result r =
    let floor_h = Array.make box_len 0 and ceil_h = Array.make box_len 0 in
    let ok = ref true in
    List.iter
      (fun (id, s, side) ->
        match List.find_opt (fun ((it : Item.t), _) -> it.Item.id = id) items with
        | None -> ok := false
        | Some (it, _) ->
            if s < 0 || s + it.Item.w > box_len then ok := false
            else
              for x = s to s + it.Item.w - 1 do
                let a = match side with Floor -> floor_h | Ceiling -> ceil_h in
                if a.(x) > 0 then ok := false else a.(x) <- it.Item.h
              done)
      r.placement;
    for x = 0 to box_len - 1 do
      if floor_h.(x) + ceil_h.(x) > box_height then ok := false
    done;
    !ok
  in
  let rec first_valid = function
    | [] -> (
        match candidates with
        | o :: _ -> build o (* fall back: verify_mid will report *)
        | [] ->
            invalid_arg "Restructure.sort_mid_box: no orientation fits the box")
    | o :: rest ->
        let r = build o in
        if verify_result r then r else first_valid rest
  in
  first_valid candidates

let verify_mid ~box_len ~box_height ~items result =
  let floor_h = Array.make box_len 0 and ceil_h = Array.make box_len 0 in
  let err = ref None in
  let set e = if !err = None then err := Some e in
  List.iter
    (fun (id, s, side) ->
      match List.find_opt (fun ((it : Item.t), _) -> it.Item.id = id) items with
      | None -> set (Printf.sprintf "unknown item %d placed" id)
      | Some (it, _) ->
          if s < 0 || s + it.Item.w > box_len then
            set (Printf.sprintf "item %d leaves the box" id)
          else
            for x = s to s + it.Item.w - 1 do
              let arr = match side with Floor -> floor_h | Ceiling -> ceil_h in
              if arr.(x) > 0 then
                set (Printf.sprintf "column %d has two items on one side" x)
              else arr.(x) <- it.Item.h
            done)
    result.placement;
  if List.length result.placement <> List.length items then
    set "item count changed";
  for x = 0 to box_len - 1 do
    if floor_h.(x) + ceil_h.(x) > box_height then
      set (Printf.sprintf "column %d overflows the box height" x)
  done;
  match !err with Some e -> Error e | None -> Ok ()
