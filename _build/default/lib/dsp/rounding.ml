open Dsp_core
module Rat = Dsp_util.Rat

type t = { original : Instance.t; rounded : Instance.t }

let round_heights (inst : Instance.t) (p : Classify.params) =
  let tgt = Rat.of_int p.Classify.target in
  let threshold = Rat.mul p.Classify.delta tgt in
  let round_item (it : Item.t) =
    if Rat.(of_int it.Item.h <= threshold) then it
    else begin
      (* Scale ℓ: smallest ℓ >= 1 with h >= eps^ℓ · H'; the grid for
         that scale is eps^(ℓ+1) · H'. *)
      let rec find_scale level bound =
        let bound = Rat.mul bound p.Classify.eps in
        if Rat.(of_int it.Item.h >= bound) || level > 62 then (level, bound)
        else find_scale (level + 1) bound
      in
      let _, scale_bound = find_scale 1 tgt in
      let grid_rat = Rat.mul scale_bound p.Classify.eps in
      let grid = max 1 (Rat.floor grid_rat) in
      { it with Item.h = Dsp_util.Xutil.ceil_div it.Item.h grid * grid }
    end
  in
  { original = inst; rounded = Instance.map_items round_item inst }

let restore t (pk : Packing.t) =
  if not (Instance.equal (Packing.instance pk) t.rounded) then
    invalid_arg "Rounding.restore: packing is not over the rounded instance";
  Packing.make t.original (Packing.starts pk)

let distinct_heights (inst : Instance.t) ~above =
  Array.to_list inst.Instance.items
  |> List.filter_map (fun (it : Item.t) ->
         if it.Item.h > above then Some it.Item.h else None)
  |> List.sort_uniq compare |> List.length
