open Dsp_core
module Rat = Dsp_util.Rat

type params = { eps : Rat.t; delta : Rat.t; mu : Rat.t; target : int }

type classes = {
  large : Item.t list;
  tall : Item.t list;
  vertical : Item.t list;
  medium_vertical : Item.t list;
  horizontal : Item.t list;
  small : Item.t list;
  medium : Item.t list;
}

(* h > delta * target, etc.: exact rational comparisons against the
   integer dimensions. *)
let gt_frac value frac scale = Rat.(of_int value > mul frac (of_int scale))
let ge_frac value frac scale = Rat.(of_int value >= mul frac (of_int scale))
let le_frac value frac scale = Rat.(of_int value <= mul frac (of_int scale))
let lt_frac value frac scale = Rat.(of_int value < mul frac (of_int scale))

let tall_threshold eps = Rat.(add (make 1 4) eps)

let category (p : params) (inst : Instance.t) (it : Item.t) =
  let w = it.Item.w and h = it.Item.h in
  let tgt = p.target and width = inst.Instance.width in
  let thr = tall_threshold p.eps in
  if ge_frac h thr tgt && lt_frac w p.delta width then `Tall
  else if gt_frac h p.delta tgt && ge_frac w p.delta width then `Large
  else if gt_frac h p.delta tgt && lt_frac h thr tgt && le_frac w p.mu width then
    `Vertical
  else if
    ge_frac h p.eps tgt && lt_frac h thr tgt
    && gt_frac w p.mu width && lt_frac w p.delta width
  then `Medium_vertical
  else if le_frac h p.mu tgt && ge_frac w p.delta width then `Horizontal
  else if le_frac h p.mu tgt && le_frac w p.mu width then `Small
  else `Medium

let classify inst p =
  let push cls it acc =
    match cls with
    | `Large -> { acc with large = it :: acc.large }
    | `Tall -> { acc with tall = it :: acc.tall }
    | `Vertical -> { acc with vertical = it :: acc.vertical }
    | `Medium_vertical -> { acc with medium_vertical = it :: acc.medium_vertical }
    | `Horizontal -> { acc with horizontal = it :: acc.horizontal }
    | `Small -> { acc with small = it :: acc.small }
    | `Medium -> { acc with medium = it :: acc.medium }
  in
  let empty =
    {
      large = [];
      tall = [];
      vertical = [];
      medium_vertical = [];
      horizontal = [];
      small = [];
      medium = [];
    }
  in
  Array.fold_left
    (fun acc it -> push (category p inst it) it acc)
    empty inst.Instance.items

let medium_area inst p =
  let cls = classify inst p in
  Dsp_util.Xutil.sum_by Item.area cls.medium
  + Dsp_util.Xutil.sum_by Item.area cls.medium_vertical

let choose_params ?(f = Fun.id) (inst : Instance.t) ~target ~eps =
  let feps = f eps in
  if Rat.(feps <= zero) || Rat.(feps >= one) then
    invalid_arg "Classify.choose_params: f(eps) must be in (0, 1)";
  let area_scale = inst.Instance.width * target in
  (* f(eps) * W * target as a rational bound on the medium area. *)
  let budget = Rat.mul feps (Rat.of_int area_scale) in
  let max_steps =
    min 30 (2 * Rat.ceil (Rat.inv feps))
    (* the pigeonhole guarantees success within 2/f(eps) steps; the
       extra cap only guards against pathological eps *)
  in
  let rec go delta step =
    let mu = Rat.(mul (mul delta delta) feps) in
    let p = { eps; delta; mu; target } in
    if step >= max_steps then p
    else if Rat.(of_int (medium_area inst p) <= budget) then p
    else go mu (step + 1)
  in
  go feps 0

let class_sizes c =
  [
    ("large", List.length c.large);
    ("tall", List.length c.tall);
    ("vertical", List.length c.vertical);
    ("medium-vertical", List.length c.medium_vertical);
    ("horizontal", List.length c.horizontal);
    ("small", List.length c.small);
    ("medium", List.length c.medium);
  ]

let total_items c = Dsp_util.Xutil.sum_by snd (class_sizes c)
