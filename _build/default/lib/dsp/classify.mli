(** Step 3 of the (5/4+ε) algorithm: δ/μ selection and item
    classification.

    Lemma 2 of the paper picks thresholds δ > μ out of the sequence
    σ₀ = f(ε), σᵢ₊₁ = σᵢ²·f(ε) such that the "medium" items falling
    between the thresholds have total area at most f(ε)·W·OPT — a
    pigeonhole over ⌈2/f(ε)⌉ candidate pairs.  The paper needs
    f(ε) = ε¹³/k for its analysis; those constants are astronomically
    impractical, so this implementation uses f(ε) = ε by default
    (substitution documented in DESIGN.md §3) — the pigeonhole
    argument is identical, only the guaranteed medium area changes
    from ε¹³·W·OPT to ε·W·OPT.

    Classification (w, h relative to the strip width W and the
    guessed optimum H'):
    - large:            h > δH' and w ≥ δW
    - tall:             h ≥ (1/4+ε)H' and w < δW
    - vertical:         δH' < h < (1/4+ε)H' and w ≤ μW
    - medium-vertical:  εH' ≤ h < (1/4+ε)H' and μW < w < δW
    - horizontal:       h ≤ μH' and w ≥ δW
    - small:            h ≤ μH' and w ≤ μW
    - medium:           everything else. *)

open Dsp_core
module Rat = Dsp_util.Rat

type params = { eps : Rat.t; delta : Rat.t; mu : Rat.t; target : int }

type classes = {
  large : Item.t list;
  tall : Item.t list;
  vertical : Item.t list;
  medium_vertical : Item.t list;
  horizontal : Item.t list;
  small : Item.t list;
  medium : Item.t list;
}

val choose_params :
  ?f:(Rat.t -> Rat.t) -> Instance.t -> target:int -> eps:Rat.t -> params
(** Runs the Lemma 2 pigeonhole: returns the first (δ, μ) pair in the
    σ sequence whose medium class has area at most [f eps · W ·
    target].  Such a pair always exists after at most ⌈2/f(ε)⌉ steps;
    the search is capped there and the last pair returned. *)

val classify : Instance.t -> params -> classes

val medium_area : Instance.t -> params -> int
(** Total area of the classes [medium ∪ medium_vertical] under the
    given thresholds (the quantity Lemma 2 bounds). *)

val class_sizes : classes -> (string * int) list
(** For logging and tests. *)

val total_items : classes -> int
