lib/dsp/restructure.mli: Dsp_core Item
