lib/dsp/classify.ml: Array Dsp_core Dsp_util Fun Instance Item List
