lib/dsp/rounding.ml: Array Classify Dsp_core Dsp_util Instance Item List Packing
