lib/dsp/approx53.mli: Dsp_core Instance Packing
