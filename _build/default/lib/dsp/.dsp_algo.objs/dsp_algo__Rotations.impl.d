lib/dsp/rotations.ml: Array Dsp_core Dsp_exact Fun Instance Item List Packing Profile
