lib/dsp/boxes.mli: Classify Dsp_core Dsp_util Format Packing
