lib/dsp/approx54.mli: Dsp_core Dsp_util Instance Packing
