lib/dsp/classify.mli: Dsp_core Dsp_util Instance Item
