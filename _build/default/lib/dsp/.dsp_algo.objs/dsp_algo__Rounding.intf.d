lib/dsp/rounding.mli: Classify Dsp_core Dsp_util Instance Packing
