lib/dsp/boxes.ml: Array Classify Dsp_core Dsp_util Format Instance Item List Packing
