lib/dsp/tall_assignment.mli: Dsp_core Item
