lib/dsp/baselines.mli: Dsp_core Instance Packing
