lib/dsp/budget_fit.mli: Dsp_core Instance Item Packing Profile
