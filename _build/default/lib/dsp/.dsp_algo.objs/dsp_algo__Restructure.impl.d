lib/dsp/restructure.ml: Array Dsp_core Dsp_util Item List Option Printf Queue
