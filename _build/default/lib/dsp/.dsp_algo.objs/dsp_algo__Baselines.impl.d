lib/dsp/baselines.ml: Array Budget_fit Dsp_core Dsp_sp Dsp_util Instance Item List Rect_packing
