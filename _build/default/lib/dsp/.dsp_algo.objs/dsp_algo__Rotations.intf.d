lib/dsp/rotations.mli: Dsp_core Instance Item Packing
