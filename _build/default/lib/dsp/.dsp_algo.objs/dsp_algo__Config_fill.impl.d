lib/dsp/config_fill.ml: Array Budget_fit Dsp_core Dsp_lp Dsp_util Item List
