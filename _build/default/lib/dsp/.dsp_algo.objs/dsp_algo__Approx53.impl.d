lib/dsp/approx53.ml: Array Baselines Budget_fit Dsp_core Dsp_sp Dsp_util Instance Item List Option Packing Rect_packing
