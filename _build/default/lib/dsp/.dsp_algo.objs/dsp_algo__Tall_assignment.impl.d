lib/dsp/tall_assignment.ml: Dsp_core Item List Printf
