lib/dsp/config_fill.mli: Budget_fit Dsp_core Item
