lib/dsp/approx54.ml: Baselines Budget_fit Classify Config_fill Dsp_core Dsp_util Instance Item List Option Packing Profile Rounding
