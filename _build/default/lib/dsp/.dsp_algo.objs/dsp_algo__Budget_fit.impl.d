lib/dsp/budget_fit.ml: Array Dsp_core Instance Item List Packing Printf Profile
