(** Executable versions of the structural lemmas 4 and 5.

    Lemma 4 reduces the number of distinct start points of horizontal
    items to O(1/(εδ)) at a loss of O(ε)·OPT in the peak; Lemma 5
    partitions a (rounded) optimal packing into O_ε(1) boxes — one
    per large/medium-vertical item, O_ε(1) boxes of height εδ·OPT for
    horizontal items, and the strips between the induced vertical
    lines for tall/vertical items.

    These procedures are proofs-turned-code: they take an *actual*
    packing (e.g. an exact optimum from {!Dsp_exact.Dsp_bb}), apply
    the restructuring, and report the quantities the lemmas bound, so
    experiment E14 can check the structure theorem empirically. *)

open Dsp_core
module Rat = Dsp_util.Rat

val snap_horizontal_starts :
  Packing.t -> Classify.params -> Packing.t * int
(** Lemma 4: move every horizontal item's start to the previous
    multiple of ⌊εδW⌋ (at least 1).  Returns the snapped packing and
    the number of distinct horizontal start points afterwards.  The
    peak increase is the quantity Lemma 4 bounds by O(ε)·OPT. *)

type stats = {
  horizontal_start_points : int;  (** after snapping *)
  horizontal_start_bound : int;  (** ⌈1/(εδ)⌉ + 1 *)
  peak_before : int;
  peak_after : int;  (** after snapping; Lemma 4 bounds the delta *)
  n_large_boxes : int;  (** = |L| + |Mv| *)
  n_horizontal_boxes : int;  (** greedy boxes of height εδ·OPT *)
  n_tall_vertical_boxes : int;  (** strips between induced lines *)
  tv_box_bound : int;  (** 2(1+2ε)/(εδ²), Lemma 5 *)
}

val partition_stats : Packing.t -> Classify.params -> stats
(** Runs the Lemma 5 construction on the packing: personal boxes for
    large/medium-vertical items, greedy height-εδ·OPT boxes for
    horizontal items (widest-first, as in the proof), and vertical
    lines at every box border for the tall/vertical strips. *)

val pp_stats : Format.formatter -> stats -> unit
