open Dsp_core

type orientation = Fixed | Rotated

let dims (it : Item.t) = function
  | Fixed -> (it.Item.w, it.Item.h)
  | Rotated -> (it.Item.h, it.Item.w)

let admissible (inst : Instance.t) it o = fst (dims it o) <= inst.Instance.width

let apply (inst : Instance.t) orientations =
  if Array.length orientations <> Instance.n_items inst then
    invalid_arg "Rotations.apply: orientation array length mismatch";
  let items =
    Array.mapi
      (fun i o ->
        let it = Instance.item inst i in
        if not (admissible inst it o) then
          invalid_arg "Rotations.apply: inadmissible orientation";
        let w, h = dims it o in
        Item.make ~id:i ~w ~h)
      orientations
  in
  Instance.make ~width:inst.Instance.width items

let best_fit_rotating (inst : Instance.t) =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  let orientations = Array.make n Fixed in
  let starts = Array.make n 0 in
  let profile = Profile.create width in
  let order =
    Array.to_list inst.Instance.items
    |> List.sort (fun (a : Item.t) (b : Item.t) ->
           compare (max b.Item.w b.Item.h) (max a.Item.w a.Item.h))
  in
  List.iter
    (fun (it : Item.t) ->
      (* Best (resulting peak, start) over both admissible
         orientations; ties prefer the flatter orientation. *)
      let candidates =
        List.filter_map
          (fun o ->
            if admissible inst it o then begin
              let w, h = dims it o in
              let best = ref 0 and best_peak = ref max_int in
              for s = 0 to width - w do
                let p = Profile.peak_in profile ~start:s ~len:w in
                if p < !best_peak then begin
                  best_peak := p;
                  best := s
                end
              done;
              Some (!best_peak + h, h, o, !best)
            end
            else None)
          [ Fixed; Rotated ]
      in
      match List.sort compare candidates with
      | (_, _, o, s) :: _ ->
          orientations.(it.Item.id) <- o;
          starts.(it.Item.id) <- s;
          let w, h = dims it o in
          Profile.add profile ~start:s ~len:w ~height:h
      | [] -> assert false (* Fixed is always admissible *))
    order;
  let oriented = apply inst orientations in
  (Packing.make oriented starts, orientations)

let optimal_height ?(node_limit = 20_000_000) (inst : Instance.t) =
  let n = Instance.n_items inst in
  (* Items whose two orientations genuinely differ and are both
     admissible. *)
  let rotatable =
    List.filter
      (fun i ->
        let it = Instance.item inst i in
        it.Item.w <> it.Item.h && admissible inst it Rotated)
      (List.init n Fun.id)
  in
  let best = ref None in
  let orientations = Array.make n Fixed in
  let rec go = function
    | [] -> (
        let candidate = apply inst orientations in
        match Dsp_exact.Dsp_bb.optimal_height ~node_limit candidate with
        | Some h -> (
            match !best with
            | Some (bh, _) when bh <= h -> ()
            | _ -> best := Some (h, Array.copy orientations))
        | None -> ())
    | i :: rest ->
        orientations.(i) <- Fixed;
        go rest;
        orientations.(i) <- Rotated;
        go rest;
        orientations.(i) <- Fixed
  in
  if List.length rotatable > 12 then None
  else begin
    go rotatable;
    !best
  end

let rotation_gain ?node_limit (inst : Instance.t) =
  match (Dsp_exact.Dsp_bb.optimal_height ?node_limit inst, optimal_height ?node_limit inst) with
  | Some fixed, Some (rotated, _) -> Some (fixed, rotated)
  | _ -> None
