(** A (5/3)-flavoured structured DSP algorithm.

    Stand-in for the polynomial-time (5/3+ε)-approximations of
    Deppert et al. and Gálvez et al. (see DESIGN.md §3): for a guessed
    optimum [T], items taller than T/2 — of which no two can overlap
    in any packing of height T, so their total width is at most W —
    are lined up side by side on the floor; everything else is
    best-fit under the peak budget ⌊5T/3⌋.  The smallest feasible [T]
    is found by binary search.  The achieved ratio is measured against
    exact optima in experiment E8. *)

open Dsp_core

val attempt : Instance.t -> target:int -> Packing.t option
(** One decision round at guess [target]. *)

val solve : Instance.t -> Packing.t
val height : Instance.t -> int
