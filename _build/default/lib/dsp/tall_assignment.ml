open Dsp_core

type line = Bottom_line | Middle_line | Top_line

type assignment = { lines : (int * line list) list; repairs : int }

let all_lines = [ Bottom_line; Middle_line; Top_line ]

(* Consecutive machine sets, the only shapes an interval can cross. *)
let consecutive = function
  | [ _ ] | [ Bottom_line; Middle_line ] | [ Middle_line; Top_line ]
  | [ Bottom_line; Middle_line; Top_line ] ->
      true
  | _ -> false

let sort_lines ls =
  let rank = function Bottom_line -> 0 | Middle_line -> 1 | Top_line -> 2 in
  List.sort_uniq (fun a b -> compare (rank a) (rank b)) ls

(* Canonical sorted stacking: per column, active items tallest first
   from the floor; returns the bottom y (doubled units) of [item] at
   column [x]. *)
let canonical_y items x (item : Item.t) =
  let taller (a : Item.t) (b : Item.t) =
    a.Item.h > b.Item.h || (a.Item.h = b.Item.h && a.Item.id < b.Item.id)
  in
  List.fold_left
    (fun acc ((other : Item.t), s) ->
      if
        other.Item.id <> item.Item.id
        && s <= x
        && x < s + other.Item.w
        && taller other item
      then acc + (2 * other.Item.h)
      else acc)
    0 items

let crossings ~hb2 ~q2 y2 h2 =
  List.filter_map
    (fun (coord, l) -> if y2 < coord && coord < y2 + h2 then Some l else None)
    [ (q2, Bottom_line); (hb2 / 2, Middle_line); (hb2 - q2, Top_line) ]

(* Nearest line when the canonical position crosses none (degenerate
   short-item case the lemma's preconditions exclude). *)
let nearest_line ~hb2 ~q2 y2 h2 =
  let mid = y2 + (h2 / 2) in
  let candidates =
    [ (abs (mid - q2), Bottom_line); (abs (mid - (hb2 / 2)), Middle_line);
      (abs (mid - (hb2 - q2)), Top_line) ]
  in
  snd (List.hd (List.sort compare candidates))

let assign ~box_height ~quarter ~items =
  let hb2 = 2 * box_height and q2 = 2 * quarter in
  List.iter
    (fun ((it : Item.t), _) ->
      if it.Item.h > box_height + quarter then
        invalid_arg "Tall_assignment.assign: item taller than the extended box")
    items;
  (* Initial machine sets from the canonical layout at each item's
     start column. *)
  let initial =
    List.map
      (fun ((it : Item.t), s) ->
        let y2 = canonical_y items s it in
        let cs = crossings ~hb2 ~q2 y2 (2 * it.Item.h) in
        let cs = if cs = [] then [ nearest_line ~hb2 ~q2 y2 (2 * it.Item.h) ] else cs in
        (it, s, sort_lines cs))
      items
  in
  (* Normalization sweep: keep earlier-starting items fixed, move a
     conflicting later item to a free consecutive set of its size. *)
  let by_start =
    List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2) initial
  in
  let repairs = ref 0 in
  let assigned : (Item.t * int * line list) list ref = ref [] in
  let overlap s w (other : Item.t) s' = s < s' + other.Item.w && s' < s + w in
  let conflicts ?exclude s w ls =
    List.filter
      (fun ((other : Item.t), s', ls') ->
        (match exclude with Some id -> other.Item.id <> id | None -> true)
        && overlap s w other s'
        && List.exists (fun l -> List.mem l ls') ls)
      !assigned
  in
  let sets_of_size = function
    | 1 -> [ [ Bottom_line ]; [ Top_line ]; [ Middle_line ] ]
    | 2 -> [ [ Bottom_line; Middle_line ]; [ Middle_line; Top_line ] ]
    | _ -> [ all_lines ]
  in
  List.iter
    (fun ((it : Item.t), s, ls) ->
      let size = List.length ls in
      let candidate_sets = ls :: sets_of_size size in
      let rec pick = function
        | [] -> None
        | c :: rest ->
            let c = sort_lines c in
            if conflicts s it.Item.w c = [] then Some c else pick rest
      in
      match pick candidate_sets with
      | Some chosen ->
          if chosen <> ls then incr repairs;
          assigned := (it, s, chosen) :: !assigned
      | None ->
          (* The paper's swap: when every set of the right size is
             blocked, move one blocking earlier item to an alternative
             set so the current item can take its place. *)
          let try_swap () =
            let rec over_c = function
              | [] -> false
              | c :: rest -> (
                  let c = sort_lines c in
                  match conflicts s it.Item.w c with
                  | [ ((e : Item.t), es, els) ] ->
                      let e_alts =
                        List.map sort_lines (sets_of_size (List.length els))
                      in
                      let ok_e alt =
                        (not (List.exists (fun l -> List.mem l c) alt))
                        && conflicts ~exclude:e.Item.id es e.Item.w alt = []
                        (* the current item is not in [assigned] yet,
                           so check against its prospective set too *)
                        && not
                             (overlap es e.Item.w it s
                             && List.exists (fun l -> List.mem l c) alt)
                      in
                      (match List.find_opt ok_e e_alts with
                      | Some alt ->
                          assigned :=
                            List.map
                              (fun ((o : Item.t), os, ols) ->
                                if o.Item.id = e.Item.id then (o, os, alt)
                                else (o, os, ols))
                              !assigned;
                          repairs := !repairs + 2;
                          assigned := (it, s, c) :: !assigned;
                          true
                      | None -> over_c rest)
                  | _ -> over_c rest)
            in
            over_c candidate_sets
          in
          if not (try_swap ()) then begin
            (* Keep the initial crossing set; [verify] will report. *)
            incr repairs;
            assigned := (it, s, ls) :: !assigned
          end)
    by_start;
  {
    lines = List.map (fun (it, _, ls) -> (it.Item.id, ls)) !assigned;
    repairs = !repairs;
  }

let placement_y ~box_height ~quarter (it : Item.t) = function
  | [ Bottom_line ] | [ Bottom_line; Middle_line ]
  | [ Bottom_line; Middle_line; Top_line ] ->
      0
  | [ Middle_line ] -> box_height - quarter - it.Item.h
  | [ Middle_line; Top_line ] | [ Top_line ] ->
      box_height + quarter - it.Item.h
  | _ -> 0

let verify ~box_height ~quarter ~items assignment =
  let err = ref None in
  let set e = if !err = None then err := Some e in
  let lines_of id =
    match List.assoc_opt id assignment.lines with
    | Some ls -> ls
    | None -> []
  in
  (* Property: every item has a consecutive non-empty set; >= 2 lines
     include the middle. *)
  List.iter
    (fun ((it : Item.t), _) ->
      let ls = lines_of it.Item.id in
      if ls = [] then set (Printf.sprintf "item %d unassigned" it.Item.id);
      if not (consecutive (sort_lines ls)) then
        set (Printf.sprintf "item %d has a non-consecutive machine set" it.Item.id);
      if List.length ls >= 2 && not (List.mem Middle_line ls) then
        set (Printf.sprintf "item %d spans two lines without the middle" it.Item.id))
    items;
  (* Property: per column, machine sets are disjoint. *)
  let width =
    List.fold_left (fun acc ((it : Item.t), s) -> max acc (s + it.Item.w)) 0 items
  in
  for x = 0 to width - 1 do
    let active =
      List.filter (fun ((it : Item.t), s) -> s <= x && x < s + it.Item.w) items
    in
    List.iter
      (fun l ->
        let users =
          List.filter
            (fun ((it : Item.t), _) -> List.mem l (lines_of it.Item.id))
            active
        in
        if List.length users > 1 then
          set (Printf.sprintf "column %d: line shared by %d items" x
                 (List.length users)))
      all_lines
  done;
  (* Geometric check: place by assignment, no overlap per column. *)
  for x = 0 to width - 1 do
    let active =
      List.filter (fun ((it : Item.t), s) -> s <= x && x < s + it.Item.w) items
    in
    let intervals =
      List.map
        (fun ((it : Item.t), _) ->
          let y =
            placement_y ~box_height ~quarter it (sort_lines (lines_of it.Item.id))
          in
          (y, y + it.Item.h, it.Item.id))
        active
      |> List.sort compare
    in
    let rec sweep = function
      | (_, hi1, i1) :: ((lo2, _, i2) :: _ as rest) ->
          if hi1 > lo2 then
            set
              (Printf.sprintf "column %d: items %d and %d overlap after placement"
                 x i1 i2)
          else sweep rest
      | [ _ ] | [] -> ()
    in
    sweep intervals
  done;
  match !err with Some e -> Error e | None -> Ok ()
