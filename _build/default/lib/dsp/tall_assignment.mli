(** Lemma 8: assigning tall items to the bottom, middle, or top of a
    high box.

    For a box of height h(B) > 3/4·H' containing only tall and
    vertical items, the paper draws three horizontal lines — at
    H'/4, h(B)/2 and h(B) − H'/4 — sorts each unit column's tall
    items by height, and reads the result as a schedule on three
    "machines" (one per line).  The proof then normalizes that
    schedule so that

    + every item occupies exactly as many consecutive machines as the
      number of lines its height forces,
    + every item on two or more machines includes the middle one, and
    + no two items share a machine at any column,

    after which bottom/middle/top positions follow and the +H'/4
    extension makes them geometrically feasible (Lemma 9, step 1).

    This module implements the transformation and exposes the three
    properties for verification; experiment E15 runs it on tall boxes
    extracted from real packings.  Coordinates are handled in doubled
    units so the half-height line needs no rationals.

    Substitution note (DESIGN.md §3): the normalization here resolves
    conflicts with a single-swap repair rather than the proof's full
    iterative marking; on random feasible boxes it verifies ~98 % of
    the time and {!verify} reports the residual corners explicitly,
    so no caller can silently rely on an unnormalized assignment. *)

open Dsp_core

type line = Bottom_line | Middle_line | Top_line

type assignment = {
  lines : (int * line list) list;  (** item id → its machine set *)
  repairs : int;  (** swaps performed by the normalization *)
}

val assign :
  box_height:int -> quarter:int -> items:(Item.t * int) list -> assignment
(** [items] are tall items with their start columns inside the box.
    [quarter] is H'/4 (rounded up); [box_height] is h(B).
    @raise Invalid_argument if an item is taller than
    [box_height + quarter]. *)

val verify :
  box_height:int -> quarter:int -> items:(Item.t * int) list -> assignment ->
  (unit, string) result
(** Checks the three schedule properties above, plus that placing
    bottom items at 0, middle items below h(B) − H'/4 and top items
    below h(B) + H'/4 yields no per-column overlap among items with
    disjoint machine sets. *)
