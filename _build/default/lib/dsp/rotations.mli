(** DSP with 90° rotations (the paper's conclusion, future work).

    A rotatable item may swap duration and demand — the paper's
    example is fast charging (short and power-hungry) versus slow
    charging (long and frugal).  An orientation assignment maps each
    item to either its original or its transposed dimensions; an
    orientation is admissible only if the resulting width fits the
    strip.

    This module provides a greedy rotating packer (each item tries
    both orientations at its best-fit position) and an exact
    branch-and-bound over orientations × the fixed-orientation exact
    solver for ground truth on small instances. *)

open Dsp_core

type orientation = Fixed | Rotated

val admissible : Instance.t -> Item.t -> orientation -> bool
(** Does the item in this orientation fit the strip horizontally? *)

val apply : Instance.t -> orientation array -> Instance.t
(** The instance with each item re-dimensioned by its orientation.
    @raise Invalid_argument if an orientation is inadmissible. *)

val best_fit_rotating : Instance.t -> Packing.t * orientation array
(** Greedy: items by decreasing larger-dimension, each placed at the
    better of its two admissible (orientation, best-fit position)
    pairs.  The returned packing is over {!apply}'s instance. *)

val optimal_height : ?node_limit:int -> Instance.t -> (int * orientation array) option
(** Exact optimum over all orientation assignments (exponential in
    the number of genuinely rotatable items; intended for n ≤ 10). *)

val rotation_gain : ?node_limit:int -> Instance.t -> (int * int) option
(** [(fixed_opt, rotated_opt)] — how much rotations lower the exact
    optimum. *)
