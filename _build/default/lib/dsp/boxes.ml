open Dsp_core
module Rat = Dsp_util.Rat


(* Classify once and return the id sets we need. *)
let horizontal_ids (inst : Instance.t) p =
  let cls = Classify.classify inst p in
  ( List.map (fun (it : Item.t) -> it.Item.id) cls.Classify.horizontal,
    List.map (fun (it : Item.t) -> it.Item.id)
      (cls.Classify.large @ cls.Classify.medium_vertical),
    cls )

let grid_unit (inst : Instance.t) (p : Classify.params) =
  let w = Rat.of_int inst.Instance.width in
  max 1 (Rat.floor Rat.(mul (mul p.Classify.eps p.Classify.delta) w))

let snap_horizontal_starts (pk : Packing.t) (p : Classify.params) =
  let inst = Packing.instance pk in
  let horizontal, _, _ = horizontal_ids inst p in
  let g = grid_unit inst p in
  let starts = Packing.starts pk in
  List.iter
    (fun i ->
      let it = Instance.item inst i in
      let snapped = starts.(i) / g * g in
      (* Snapping moves items left, so the right border stays inside
         the strip. *)
      starts.(i) <- max 0 (min snapped (inst.Instance.width - it.Item.w)))
    horizontal;
  let snapped = Packing.make inst starts in
  let distinct =
    List.map (fun i -> starts.(i)) horizontal |> List.sort_uniq compare
    |> List.length
  in
  (snapped, distinct)

type stats = {
  horizontal_start_points : int;
  horizontal_start_bound : int;
  peak_before : int;
  peak_after : int;
  n_large_boxes : int;
  n_horizontal_boxes : int;
  n_tall_vertical_boxes : int;
  tv_box_bound : int;
}

(* Greedy horizontal boxes as in the Lemma 5 proof: at the leftmost
   start of an unassigned horizontal item, open a box as wide as the
   widest item starting there; repeatedly add the widest unassigned
   item fully contained in the box while the height budget
   (eps*delta*OPT) permits; repeat. *)
let horizontal_boxes (inst : Instance.t) (p : Classify.params) starts horizontal =
  let budget_rat =
    Rat.(mul (mul p.Classify.eps p.Classify.delta) (of_int p.Classify.target))
  in
  let budget = max 1 (Rat.ceil budget_rat) in
  let unassigned = ref horizontal in
  let boxes = ref [] in
  while !unassigned <> [] do
    (* Leftmost start among unassigned items. *)
    let leftmost =
      List.fold_left (fun acc i -> min acc starts.(i)) max_int !unassigned
    in
    let starters =
      List.filter (fun i -> starts.(i) = leftmost) !unassigned
    in
    let widest =
      List.fold_left
        (fun acc i ->
          let w = (Instance.item inst i).Item.w in
          match acc with Some (bw, _) when bw >= w -> acc | _ -> Some (w, i))
        None starters
    in
    match widest with
    | None -> assert false
    | Some (box_w, seed_item) ->
        let box_lo = leftmost and box_hi = leftmost + box_w in
        (* Fill: widest-first among fully contained items, within the
           height budget (the seed always goes in). *)
        let contained =
          List.filter
            (fun i ->
              let it = Instance.item inst i in
              starts.(i) >= box_lo && starts.(i) + it.Item.w <= box_hi)
            !unassigned
          |> List.sort (fun a b ->
                 Item.compare_by_width_desc (Instance.item inst a)
                   (Instance.item inst b))
        in
        let height_used = ref 0 in
        let members = ref [] in
        List.iter
          (fun i ->
            let it = Instance.item inst i in
            if i = seed_item || !height_used + it.Item.h <= budget then begin
              height_used := !height_used + it.Item.h;
              members := i :: !members
            end)
          contained;
        boxes := (box_lo, box_hi, !members) :: !boxes;
        let members = !members in
        unassigned := List.filter (fun i -> not (List.mem i members)) !unassigned
  done;
  List.rev !boxes

let partition_stats (pk : Packing.t) (p : Classify.params) =
  let inst = Packing.instance pk in
  let peak_before = Packing.height pk in
  let snapped, start_points = snap_horizontal_starts pk p in
  let starts = Packing.starts snapped in
  let horizontal, large_ids, _ = horizontal_ids inst p in
  let hboxes = horizontal_boxes inst p starts horizontal in
  (* Vertical lines at all box borders: large/medium-vertical items'
     own borders plus the horizontal boxes' borders. *)
  let lines =
    List.concat_map
      (fun i ->
        let it = Instance.item inst i in
        [ starts.(i); starts.(i) + it.Item.w ])
      large_ids
    @ List.concat_map (fun (lo, hi, _) -> [ lo; hi ]) hboxes
    |> List.sort_uniq compare
    |> List.filter (fun x -> x > 0 && x < inst.Instance.width)
  in
  let eps = p.Classify.eps and delta = p.Classify.delta in
  let tv_bound =
    Rat.(
      ceil
        (div
           (mul (of_int 2) (add one (mul (of_int 2) eps)))
           (mul eps (mul delta delta))))
  in
  let start_bound =
    Rat.(ceil (inv (mul eps delta))) + 1
  in
  {
    horizontal_start_points = start_points;
    horizontal_start_bound = start_bound;
    peak_before;
    peak_after = Packing.height snapped;
    n_large_boxes = List.length large_ids;
    n_horizontal_boxes = List.length hboxes;
    n_tall_vertical_boxes = List.length lines + 1;
    tv_box_bound = tv_bound;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>horizontal starts: %d (bound %d)@,peak: %d -> %d (Lemma 4 loss)@,\
     large boxes: %d@,horizontal boxes: %d@,tall/vertical strips: %d (bound %d)@]"
    s.horizontal_start_points s.horizontal_start_bound s.peak_before
    s.peak_after s.n_large_boxes s.n_horizontal_boxes s.n_tall_vertical_boxes
    s.tv_box_bound
