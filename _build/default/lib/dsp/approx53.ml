open Dsp_core

let attempt (inst : Instance.t) ~target =
  if target < Instance.lower_bound inst then None
  else begin
    let budget = 5 * target / 3 in
    let st = Budget_fit.create inst in
    let tall, rest =
      List.partition
        (fun (it : Item.t) -> 2 * it.Item.h > target)
        (Array.to_list inst.Instance.items)
    in
    let tall_width = Dsp_util.Xutil.sum_by (fun (it : Item.t) -> it.Item.w) tall in
    if tall_width > inst.Instance.width then None
    else begin
      (* Tall items side by side on the floor, tallest first. *)
      let x = ref 0 in
      List.iter
        (fun (it : Item.t) ->
          Budget_fit.place st it ~start:!x;
          x := !x + it.Item.w)
        (List.sort Item.compare_by_height_desc tall);
      if
        Budget_fit.place_all_best_fit st rest ~budget
          ~order:Item.compare_by_height_desc
      then Some (Budget_fit.to_packing st)
      else None
    end
  end

let solve (inst : Instance.t) =
  if Instance.n_items inst = 0 then Packing.make inst [||]
  else begin
    let lb = Instance.lower_bound inst in
    let ub = Rect_packing.height (Dsp_sp.Steinberg.pack inst) in
    let best = ref None in
    let ok t =
      match attempt inst ~target:t with
      | Some pk ->
          best := Some pk;
          true
      | None -> false
    in
    match Dsp_util.Xutil.binary_search_min lb ub ok with
    | Some _ -> Option.get !best
    | None ->
        (* Even the Steinberg height failed as a guess (possible:
           the greedy stages are not monotone); fall back to the
           Steinberg packing itself. *)
        Baselines.steinberg2 inst
  end

let height inst = Packing.height (solve inst)
