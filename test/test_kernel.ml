(* Differential tests for the segment-tree packing kernel: the
   segtree-backed Profile must agree with the flat-array
   Profile.Naive reference on every operation, and the kernel
   placement queries (first_fit_pos / first_fit_from / best_start /
   find_last_above) must agree with direct linear scans. *)

open Dsp_core
module Rng = Dsp_util.Rng

(* ---- randomized operation streams against the naive reference ---- *)

(* Drives both implementations with the same interleaved stream of
   add / peak / peak_in / load operations.  Sized to satisfy the
   acceptance bar explicitly: >= 20 random instances, >= 1000
   randomized operations each. *)
let differential_stream () =
  let instances = 24 and ops_per_instance = 1200 in
  for i = 1 to instances do
    let rng = Rng.create (9_000 + i) in
    let width = Rng.int_in rng 1 120 in
    let p = Profile.create width in
    let q = Profile.Naive.create width in
    for op = 1 to ops_per_instance do
      match Rng.int rng 4 with
      | 0 ->
          let start = Rng.int rng width in
          let len = Rng.int rng (width - start + 1) in
          let height = Rng.int_in rng (-4) 8 in
          Profile.add p ~start ~len ~height;
          Profile.Naive.add q ~start ~len ~height
      | 1 ->
          if Profile.peak p <> Profile.Naive.peak q then
            Alcotest.failf "instance %d op %d: peak %d <> naive %d" i op
              (Profile.peak p) (Profile.Naive.peak q)
      | 2 ->
          let start = Rng.int rng width in
          let len = Rng.int rng (width - start + 1) in
          let a = Profile.peak_in p ~start ~len in
          let b = Profile.Naive.peak_in q ~start ~len in
          if a <> b then
            Alcotest.failf "instance %d op %d: peak_in [%d,%d) %d <> naive %d" i
              op start (start + len) a b
      | _ ->
          let x = Rng.int rng width in
          if Profile.load p x <> Profile.Naive.load q x then
            Alcotest.failf "instance %d op %d: load %d differs" i op x
    done;
    if Profile.to_array p <> Profile.Naive.to_array q then
      Alcotest.failf "instance %d: final arrays differ" i
  done

let of_starts_differential () =
  for i = 1 to 20 do
    let rng = Rng.create (17_000 + i) in
    let width = 4 + Rng.int rng 40 in
    let inst =
      Dsp_instance.Generators.uniform rng ~n:(5 + Rng.int rng 30) ~width
        ~max_w:(min 6 width) ~max_h:9
    in
    let starts =
      Array.map
        (fun (it : Item.t) -> Rng.int rng (inst.Instance.width - it.Item.w + 1))
        inst.Instance.items
    in
    let p = Profile.of_starts inst starts in
    let q = Profile.Naive.of_starts inst starts in
    if Profile.to_array p <> Profile.Naive.to_array q then
      Alcotest.failf "of_starts instance %d: arrays differ" i
  done

(* ---- kernel queries vs linear scans ---- *)

(* Random nonneg load arrays like the placement algorithms produce,
   plus occasional negative adds to stress the general case. *)
let loads_arb =
  QCheck.make
    ~print:(fun (w, ops) ->
      Printf.sprintf "width=%d ops=%s" w
        (String.concat ";"
           (List.map (fun (s, l, h) -> Printf.sprintf "(%d,%d,%d)" s l h) ops)))
    QCheck.Gen.(
      let* width = int_range 1 50 in
      let* n = int_range 0 25 in
      let* ops =
        list_repeat n
          (let* s = int_range 0 (width - 1) in
           let* l = int_range 0 (width - s) in
           let* h = int_range (-3) 9 in
           return (s, l, h))
      in
      return (width, ops))

let build width ops =
  let t = Segtree.create width in
  let a = Array.make width 0 in
  List.iter
    (fun (s, l, h) ->
      Segtree.range_add t ~lo:s ~hi:(s + l) h;
      for x = s to s + l - 1 do
        a.(x) <- a.(x) + h
      done)
    ops;
  (t, a)

let window_max a s len =
  let m = ref min_int in
  for x = s to s + len - 1 do
    if a.(x) > !m then m := a.(x)
  done;
  !m

let scan_first_fit a ~from ~len ~height ~limit =
  let width = Array.length a in
  let rec go s =
    if s + len > width then None
    else if window_max a s len + height <= limit then Some s
    else go (s + 1)
  in
  if len < 1 || len > width then None else go (max 0 from)

let query_arb =
  QCheck.make
    ~print:(fun ((w, ops), (from, len, height, limit)) ->
      Printf.sprintf "width=%d |ops|=%d from=%d len=%d h=%d limit=%d" w
        (List.length ops) from len height limit)
    QCheck.Gen.(
      let* (width, ops) = QCheck.gen loads_arb in
      let* from = int_range 0 width in
      let* len = int_range 1 (width + 1) in
      let* height = int_range 0 8 in
      let* limit = int_range 0 30 in
      return ((width, ops), (from, len, height, limit)))

(* ---- flat kernel vs Segtree.Boxed ---- *)

(* The flat Bigarray kernel and the retained recursive kernel must
   agree on every operation of the same randomized stream (the naive
   Profile checks above pin both to ground truth; this pins them to
   each other on the full query surface, including the sentinel
   variants the hot loops use). *)
let flat_vs_boxed_stream () =
  let instances = 24 and ops_per_instance = 800 in
  for i = 1 to instances do
    let rng = Rng.create (31_000 + i) in
    let width = Rng.int_in rng 1 150 in
    let t = Segtree.create width in
    let b = Segtree.Boxed.create width in
    for op = 1 to ops_per_instance do
      match Rng.int rng 6 with
      | 0 ->
          let lo = Rng.int rng width in
          let hi = lo + Rng.int rng (width - lo + 1) in
          let h = Rng.int_in rng (-5) 9 in
          Segtree.range_add t ~lo ~hi h;
          Segtree.Boxed.range_add b ~lo ~hi h
      | 1 ->
          let lo = Rng.int rng width in
          let hi = lo + Rng.int rng (width - lo + 1) in
          let x = Segtree.range_max t ~lo ~hi in
          let y = Segtree.Boxed.range_max b ~lo ~hi in
          if x <> y then
            Alcotest.failf "instance %d op %d: range_max [%d,%d) flat %d <> boxed %d"
              i op lo hi x y
      | 2 ->
          let lo = Rng.int rng width in
          let hi = lo + Rng.int rng (width - lo + 1) in
          let thr = Rng.int_in rng (-10) 20 in
          let x = Segtree.find_last_above t ~lo ~hi thr in
          let y = Segtree.Boxed.find_last_above b ~lo ~hi thr in
          if x <> y then
            Alcotest.failf "instance %d op %d: find_last_above differs" i op;
          if Segtree.find_last_above_i t ~lo ~hi thr
             <> Option.value x ~default:(-1)
          then Alcotest.failf "instance %d op %d: _i sentinel differs" i op
      | 3 ->
          let from = Rng.int rng (width + 1) in
          let len = 1 + Rng.int rng width in
          let height = Rng.int rng 8 in
          let limit = Rng.int_in rng (-5) 25 in
          let x = Segtree.first_fit_from t ~from ~len ~height ~limit in
          let y = Segtree.Boxed.first_fit_from b ~from ~len ~height ~limit in
          if x <> y then
            Alcotest.failf "instance %d op %d: first_fit_from differs" i op;
          if Segtree.first_fit_from_i t ~from ~len ~height ~limit
             <> Option.value x ~default:(-1)
          then Alcotest.failf "instance %d op %d: _i sentinel differs" i op
      | 4 ->
          let len = 1 + Rng.int rng (width + 1) in
          if Segtree.best_start t ~len <> Segtree.Boxed.best_start b ~len then
            Alcotest.failf "instance %d op %d: best_start differs" i op
      | _ ->
          if Segtree.max_all t <> Segtree.Boxed.max_all b then
            Alcotest.failf "instance %d op %d: max_all differs" i op
    done;
    if Segtree.to_array t <> Segtree.Boxed.to_array b then
      Alcotest.failf "instance %d: final arrays differ" i
  done

(* ---- add/remove inverses across the three kernels ---- *)

(* Range adds commute, so removing a set of placements in any order
   must return every kernel to its pre-placement state.  Drives the
   flat kernel, the retained Boxed kernel, the segtree Profile, and
   the naive reference with the same stream. *)
let add_remove_inverse () =
  for i = 1 to 20 do
    let rng = Rng.create (51_000 + i) in
    let width = Rng.int_in rng 1 80 in
    let t = Segtree.create width and b = Segtree.Boxed.create width in
    let p = Profile.create width and q = Profile.Naive.create width in
    let n = Rng.int_in rng 1 40 in
    let ops =
      Array.init n (fun _ ->
          let s = Rng.int rng width in
          let l = Rng.int rng (width - s + 1) in
          let h = Rng.int_in rng 0 9 in
          (s, l, h))
    in
    let apply sign (s, l, h) =
      Segtree.range_add t ~lo:s ~hi:(s + l) (sign * h);
      Segtree.Boxed.range_add b ~lo:s ~hi:(s + l) (sign * h);
      Profile.add p ~start:s ~len:l ~height:(sign * h);
      Profile.Naive.add q ~start:s ~len:l ~height:(sign * h)
    in
    Array.iter (apply 1) ops;
    Rng.shuffle rng ops;
    Array.iter (apply (-1)) ops;
    let zeros = Array.to_list (Array.make width 0) in
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: flat cancels" i)
      zeros
      (Array.to_list (Segtree.to_array t));
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: boxed cancels" i)
      zeros
      (Array.to_list (Segtree.Boxed.to_array b));
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: profile cancels" i)
      zeros
      (Array.to_list (Profile.to_array p));
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: naive cancels" i)
      zeros
      (Array.to_list (Profile.Naive.to_array q));
    Alcotest.(check int)
      (Printf.sprintf "instance %d: peak back to zero" i)
      0 (Profile.peak p)
  done

(* Item-level inverse: add_item / remove_item on a non-empty base
   state restores the exact base profile, removals in shuffled
   order. *)
let item_add_remove_inverse () =
  for i = 1 to 20 do
    let rng = Rng.create (53_000 + i) in
    let width = Rng.int_in rng 2 60 in
    let p = Profile.create width in
    for _ = 1 to Rng.int rng 10 do
      let s = Rng.int rng width in
      let l = Rng.int rng (width - s + 1) in
      Profile.add p ~start:s ~len:l ~height:(Rng.int rng 6)
    done;
    let base = Array.copy (Profile.to_array p) in
    let items =
      Array.init
        (Rng.int_in rng 1 25)
        (fun id ->
          let w = Rng.int_in rng 1 width in
          let it = Item.make ~id ~w ~h:(Rng.int_in rng 1 9) in
          (it, Rng.int rng (width - w + 1)))
    in
    Array.iter (fun (it, s) -> Profile.add_item p it ~start:s) items;
    Rng.shuffle rng items;
    Array.iter (fun (it, s) -> Profile.remove_item p it ~start:s) items;
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: items cancel over base" i)
      (Array.to_list base)
      (Array.to_list (Profile.to_array p))
  done

(* ---- checkpoint / rollback journal ---- *)

let snap t = Array.copy (Segtree.to_array t)

let random_adds rng t width n =
  for _ = 1 to n do
    let lo = Rng.int rng width in
    let hi = lo + Rng.int rng (width - lo + 1) in
    Segtree.range_add t ~lo ~hi (Rng.int_in rng (-4) 9)
  done

(* Nested checkpoints under the LIFO discipline: each rollback must
   restore the exact array state at its checkpoint; a commit keeps the
   state and, at depth 0, drains the journal.  Cross-checked against
   Boxed on the query surface after rollback, because rollback goes
   through the same lazy-add path as forward updates. *)
let checkpoint_rollback_nested () =
  for i = 1 to 24 do
    let rng = Rng.create (52_000 + i) in
    let width = Rng.int_in rng 1 100 in
    let t = Segtree.create width in
    random_adds rng t width (Rng.int rng 25);
    let s0 = snap t in
    let m0 = Segtree.checkpoint t in
    random_adds rng t width 10;
    let s1 = snap t in
    let m1 = Segtree.checkpoint t in
    random_adds rng t width 10;
    Segtree.rollback t m1;
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: inner rollback restores" i)
      (Array.to_list s1)
      (Array.to_list (snap t));
    random_adds rng t width 5;
    Segtree.rollback t m0;
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: outer rollback restores" i)
      (Array.to_list s0)
      (Array.to_list (snap t));
    (* Commit path: the journalled state survives and queries agree
       with a Boxed rebuild of the final array. *)
    let m = Segtree.checkpoint t in
    random_adds rng t width 8;
    let s2 = snap t in
    Segtree.commit t m;
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: commit keeps state" i)
      (Array.to_list s2)
      (Array.to_list (snap t));
    let b = Segtree.Boxed.of_array (snap t) in
    Alcotest.(check bool)
      (Printf.sprintf "instance %d: queries agree after journal churn" i)
      true
      (Segtree.max_all t = Segtree.Boxed.max_all b
      && Segtree.best_start t ~len:1 = Segtree.Boxed.best_start b ~len:1)
  done

let checkpoint_discipline () =
  let t = Segtree.create 8 in
  let raises f =
    match f () with () -> false | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rollback without checkpoint rejected" true
    (raises (fun () -> Segtree.rollback t 0));
  Alcotest.(check bool) "commit without checkpoint rejected" true
    (raises (fun () -> Segtree.commit t 0));
  let m = Segtree.checkpoint t in
  Segtree.range_add t ~lo:1 ~hi:5 3;
  Alcotest.(check bool) "bad mark rejected" true
    (raises (fun () -> Segtree.rollback t 1));
  Segtree.rollback t m;
  Alcotest.(check (list int))
    "clean after discipline churn"
    (Array.to_list (Array.make 8 0))
    (Array.to_list (Segtree.to_array t));
  (* [copy] carries the open journal: rolling back the copy must not
     disturb the source. *)
  let m = Segtree.checkpoint t in
  Segtree.range_add t ~lo:0 ~hi:8 2;
  let c = Segtree.copy t in
  Segtree.rollback c m;
  Alcotest.(check int) "copy rolled back" 0 (Segtree.max_all c);
  Alcotest.(check int) "source untouched" 2 (Segtree.max_all t);
  Segtree.commit t m;
  (* [reset] clears values and journal state in place. *)
  let m = Segtree.checkpoint t in
  Segtree.range_add t ~lo:2 ~hi:6 9;
  ignore m;
  Segtree.reset t;
  Alcotest.(check int) "reset clears values" 0 (Segtree.max_all t);
  Alcotest.(check bool) "reset clears outstanding checkpoints" true
    (raises (fun () -> Segtree.rollback t 0))

(* ---- int-boundary and overflow-guard cases ---- *)

(* Both kernels carry the same O(1) root guard: a positive range_add
   that would push the running maximum past max_int raises
   Xutil.Overflow and leaves further behaviour to the caller. *)
let overflow_guard_cases () =
  let huge = max_int - 10 in
  let raises f =
    match f () with
    | () -> false
    | exception Dsp_util.Xutil.Overflow -> true
  in
  let t = Segtree.create 8 and b = Segtree.Boxed.create 8 in
  Segtree.range_add t ~lo:2 ~hi:6 huge;
  Segtree.Boxed.range_add b ~lo:2 ~hi:6 huge;
  Alcotest.(check int) "flat carries the near-max value" huge (Segtree.get t 3);
  Alcotest.(check bool) "flat guard trips" true
    (raises (fun () -> Segtree.range_add t ~lo:0 ~hi:8 100));
  Alcotest.(check bool) "boxed guard trips" true
    (raises (fun () -> Segtree.Boxed.range_add b ~lo:0 ~hi:8 100));
  (* A trip must not corrupt the structure: the guard fires before any
     cell is touched. *)
  Alcotest.(check int) "flat intact after trip" huge (Segtree.get t 3);
  Alcotest.(check (list int))
    "flat still matches boxed after trip"
    (Array.to_list (Segtree.Boxed.to_array b))
    (Array.to_list (Segtree.to_array t));
  (* Negative adds cannot raise the maximum, so they pass the guard
     even at the boundary. *)
  Segtree.range_add t ~lo:0 ~hi:8 (-5);
  Segtree.Boxed.range_add b ~lo:0 ~hi:8 (-5);
  Alcotest.(check int) "negative add applies" (huge - 5) (Segtree.get t 3);
  (* Saturating threshold: limit = max_int with a positive height must
     not wrap into rejecting everything. *)
  Alcotest.(check (option int))
    "max_int budget admits start 0" (Some 0)
    (Segtree.first_fit_from t ~from:0 ~len:8 ~height:3 ~limit:max_int);
  Alcotest.(check (option int))
    "min_int threshold finds the last column" (Some 7)
    (Segtree.find_last_above t ~lo:0 ~hi:8 min_int)

(* ---- copy interleaved with flattens ---- *)

(* The flat kernel's flatten is dirty-tracked (only columns touched
   since the last flatten are re-read into the buffer), and [copy]
   carries that state over.  Interleave flattens, copies, and
   post-copy updates on both sides of the fork to pin the
   bookkeeping. *)
let copy_flatten_interleaving () =
  let w = 97 in
  let t = Segtree.create w in
  let reference = Array.make w 0 in
  let add t lo hi v = Segtree.range_add t ~lo ~hi v in
  add t 10 40 5;
  add t 30 90 2;
  (* flatten once so the buffer holds stale-but-valid columns *)
  ignore (Segtree.best_start t ~len:12);
  add t 0 20 7;
  let c = Segtree.copy t in
  Array.iteri
    (fun i _ ->
      reference.(i) <-
        (if i >= 10 && i < 40 then 5 else 0)
        + (if i >= 30 && i < 90 then 2 else 0)
        + if i < 20 then 7 else 0)
    reference;
  Alcotest.(check (list int))
    "copy flattens to the source profile" (Array.to_list reference)
    (Array.to_list (Segtree.to_array c));
  (* diverge both sides after the fork; neither may see the other *)
  add t 50 60 11;
  add c 80 97 3;
  let expect_t = Array.mapi (fun i v -> if i >= 50 && i < 60 then v + 11 else v) reference in
  let expect_c = Array.mapi (fun i v -> if i >= 80 then v + 3 else v) reference in
  Alcotest.(check (list int))
    "source sees only its own update" (Array.to_list expect_t)
    (Array.to_list (Segtree.to_array t));
  Alcotest.(check (list int))
    "copy sees only its own update" (Array.to_list expect_c)
    (Array.to_list (Segtree.to_array c));
  Alcotest.(check bool) "best_start agrees with Boxed after the fork" true
    (let b = Segtree.Boxed.of_array (Segtree.to_array c) in
     Segtree.best_start c ~len:9 = Segtree.Boxed.best_start b ~len:9)

let suite =
  [
    Alcotest.test_case "profile ops match naive (24 instances x 1200 ops)" `Quick
      differential_stream;
    Alcotest.test_case "flat matches Boxed (24 instances x 800 ops)" `Quick
      flat_vs_boxed_stream;
    Alcotest.test_case "add/remove inverses across kernels (20 instances)"
      `Quick add_remove_inverse;
    Alcotest.test_case "item add/remove inverse over a base profile" `Quick
      item_add_remove_inverse;
    Alcotest.test_case "nested checkpoint/rollback restores exact state" `Quick
      checkpoint_rollback_nested;
    Alcotest.test_case "checkpoint discipline: marks, copy, reset" `Quick
      checkpoint_discipline;
    Alcotest.test_case "overflow guards and int-boundary thresholds" `Quick
      overflow_guard_cases;
    Alcotest.test_case "copy interleaved with dirty-tracked flattens" `Quick
      copy_flatten_interleaving;
    Alcotest.test_case "of_starts matches naive (20 instances)" `Quick
      of_starts_differential;
    Helpers.qtest ~count:300 "first_fit_pos matches linear scan" query_arb
      (fun ((width, ops), (_, len, height, limit)) ->
        let t, a = build width ops in
        Segtree.first_fit_pos t ~len ~height ~limit
        = scan_first_fit a ~from:0 ~len ~height ~limit);
    Helpers.qtest ~count:300 "first_fit_from matches linear scan" query_arb
      (fun ((width, ops), (from, len, height, limit)) ->
        let t, a = build width ops in
        Segtree.first_fit_from t ~from ~len ~height ~limit
        = scan_first_fit a ~from ~len ~height ~limit);
    Helpers.qtest ~count:300 "profile first_fit_start matches naive scan"
      query_arb
      (fun ((width, ops), (_, len, height, budget)) ->
        (* Restrict to nonnegative loads: Profile.peak_in clamps at 0,
           which only coincides with the raw window max when loads are
           nonnegative (as in every placement state). *)
        let nonneg = List.map (fun (s, l, h) -> (s, l, abs h)) ops in
        let p = Profile.create width in
        let q = Profile.Naive.create width in
        List.iter
          (fun (s, l, h) ->
            Profile.add p ~start:s ~len:l ~height:h;
            Profile.Naive.add q ~start:s ~len:l ~height:h)
          nonneg;
        let reference =
          let rec go s =
            if len < 1 || s + len > width then None
            else if Profile.Naive.peak_in q ~start:s ~len + height <= budget then
              Some s
            else go (s + 1)
          in
          go 0
        in
        Profile.first_fit_start p ~len ~height ~budget = reference);
    Helpers.qtest ~count:300 "best_start matches argmin of window maxima"
      query_arb
      (fun ((width, ops), (_, len, _, _)) ->
        let t, a = build width ops in
        let reference =
          if len > width then None
          else begin
            let best = ref (-1) and best_peak = ref max_int in
            for s = 0 to width - len do
              let m = window_max a s len in
              if m < !best_peak then begin
                best_peak := m;
                best := s
              end
            done;
            Some (!best, !best_peak)
          end
        in
        Segtree.best_start t ~len = reference);
    Helpers.qtest ~count:300 "find_last_above matches linear scan" query_arb
      (fun ((width, ops), (from, len, _, limit)) ->
        let t, a = build width ops in
        let lo = min from (width - 1) and hi = min width (from + len) in
        if lo > hi then true
        else begin
          let reference = ref None in
          for x = lo to hi - 1 do
            if a.(x) > limit then reference := Some x
          done;
          Segtree.find_last_above t ~lo ~hi limit = !reference
        end);
    Helpers.qtest ~count:200 "segtree to_array matches accumulated ops" loads_arb
      (fun (width, ops) ->
        let t, a = build width ops in
        Segtree.to_array t = a);
    Helpers.qtest ~count:200 "segtree copy is independent" loads_arb
      (fun (width, ops) ->
        let t, a = build width ops in
        let c = Segtree.copy t in
        Segtree.range_add t ~lo:0 ~hi:width 5;
        Segtree.to_array c = a);
  ]
