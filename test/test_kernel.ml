(* Differential tests for the segment-tree packing kernel: the
   segtree-backed Profile must agree with the flat-array
   Profile.Naive reference on every operation, and the kernel
   placement queries (first_fit_pos / first_fit_from / best_start /
   find_last_above) must agree with direct linear scans. *)

open Dsp_core
module Rng = Dsp_util.Rng

(* ---- randomized operation streams against the naive reference ---- *)

(* Drives both implementations with the same interleaved stream of
   add / peak / peak_in / load operations.  Sized to satisfy the
   acceptance bar explicitly: >= 20 random instances, >= 1000
   randomized operations each. *)
let differential_stream () =
  let instances = 24 and ops_per_instance = 1200 in
  for i = 1 to instances do
    let rng = Rng.create (9_000 + i) in
    let width = Rng.int_in rng 1 120 in
    let p = Profile.create width in
    let q = Profile.Naive.create width in
    for op = 1 to ops_per_instance do
      match Rng.int rng 4 with
      | 0 ->
          let start = Rng.int rng width in
          let len = Rng.int rng (width - start + 1) in
          let height = Rng.int_in rng (-4) 8 in
          Profile.add p ~start ~len ~height;
          Profile.Naive.add q ~start ~len ~height
      | 1 ->
          if Profile.peak p <> Profile.Naive.peak q then
            Alcotest.failf "instance %d op %d: peak %d <> naive %d" i op
              (Profile.peak p) (Profile.Naive.peak q)
      | 2 ->
          let start = Rng.int rng width in
          let len = Rng.int rng (width - start + 1) in
          let a = Profile.peak_in p ~start ~len in
          let b = Profile.Naive.peak_in q ~start ~len in
          if a <> b then
            Alcotest.failf "instance %d op %d: peak_in [%d,%d) %d <> naive %d" i
              op start (start + len) a b
      | _ ->
          let x = Rng.int rng width in
          if Profile.load p x <> Profile.Naive.load q x then
            Alcotest.failf "instance %d op %d: load %d differs" i op x
    done;
    if Profile.to_array p <> Profile.Naive.to_array q then
      Alcotest.failf "instance %d: final arrays differ" i
  done

let of_starts_differential () =
  for i = 1 to 20 do
    let rng = Rng.create (17_000 + i) in
    let width = 4 + Rng.int rng 40 in
    let inst =
      Dsp_instance.Generators.uniform rng ~n:(5 + Rng.int rng 30) ~width
        ~max_w:(min 6 width) ~max_h:9
    in
    let starts =
      Array.map
        (fun (it : Item.t) -> Rng.int rng (inst.Instance.width - it.Item.w + 1))
        inst.Instance.items
    in
    let p = Profile.of_starts inst starts in
    let q = Profile.Naive.of_starts inst starts in
    if Profile.to_array p <> Profile.Naive.to_array q then
      Alcotest.failf "of_starts instance %d: arrays differ" i
  done

(* ---- kernel queries vs linear scans ---- *)

(* Random nonneg load arrays like the placement algorithms produce,
   plus occasional negative adds to stress the general case. *)
let loads_arb =
  QCheck.make
    ~print:(fun (w, ops) ->
      Printf.sprintf "width=%d ops=%s" w
        (String.concat ";"
           (List.map (fun (s, l, h) -> Printf.sprintf "(%d,%d,%d)" s l h) ops)))
    QCheck.Gen.(
      let* width = int_range 1 50 in
      let* n = int_range 0 25 in
      let* ops =
        list_repeat n
          (let* s = int_range 0 (width - 1) in
           let* l = int_range 0 (width - s) in
           let* h = int_range (-3) 9 in
           return (s, l, h))
      in
      return (width, ops))

let build width ops =
  let t = Segtree.create width in
  let a = Array.make width 0 in
  List.iter
    (fun (s, l, h) ->
      Segtree.range_add t ~lo:s ~hi:(s + l) h;
      for x = s to s + l - 1 do
        a.(x) <- a.(x) + h
      done)
    ops;
  (t, a)

let window_max a s len =
  let m = ref min_int in
  for x = s to s + len - 1 do
    if a.(x) > !m then m := a.(x)
  done;
  !m

let scan_first_fit a ~from ~len ~height ~limit =
  let width = Array.length a in
  let rec go s =
    if s + len > width then None
    else if window_max a s len + height <= limit then Some s
    else go (s + 1)
  in
  if len < 1 || len > width then None else go (max 0 from)

let query_arb =
  QCheck.make
    ~print:(fun ((w, ops), (from, len, height, limit)) ->
      Printf.sprintf "width=%d |ops|=%d from=%d len=%d h=%d limit=%d" w
        (List.length ops) from len height limit)
    QCheck.Gen.(
      let* (width, ops) = QCheck.gen loads_arb in
      let* from = int_range 0 width in
      let* len = int_range 1 (width + 1) in
      let* height = int_range 0 8 in
      let* limit = int_range 0 30 in
      return ((width, ops), (from, len, height, limit)))

let suite =
  [
    Alcotest.test_case "profile ops match naive (24 instances x 1200 ops)" `Quick
      differential_stream;
    Alcotest.test_case "of_starts matches naive (20 instances)" `Quick
      of_starts_differential;
    Helpers.qtest ~count:300 "first_fit_pos matches linear scan" query_arb
      (fun ((width, ops), (_, len, height, limit)) ->
        let t, a = build width ops in
        Segtree.first_fit_pos t ~len ~height ~limit
        = scan_first_fit a ~from:0 ~len ~height ~limit);
    Helpers.qtest ~count:300 "first_fit_from matches linear scan" query_arb
      (fun ((width, ops), (from, len, height, limit)) ->
        let t, a = build width ops in
        Segtree.first_fit_from t ~from ~len ~height ~limit
        = scan_first_fit a ~from ~len ~height ~limit);
    Helpers.qtest ~count:300 "profile first_fit_start matches naive scan"
      query_arb
      (fun ((width, ops), (_, len, height, budget)) ->
        (* Restrict to nonnegative loads: Profile.peak_in clamps at 0,
           which only coincides with the raw window max when loads are
           nonnegative (as in every placement state). *)
        let nonneg = List.map (fun (s, l, h) -> (s, l, abs h)) ops in
        let p = Profile.create width in
        let q = Profile.Naive.create width in
        List.iter
          (fun (s, l, h) ->
            Profile.add p ~start:s ~len:l ~height:h;
            Profile.Naive.add q ~start:s ~len:l ~height:h)
          nonneg;
        let reference =
          let rec go s =
            if len < 1 || s + len > width then None
            else if Profile.Naive.peak_in q ~start:s ~len + height <= budget then
              Some s
            else go (s + 1)
          in
          go 0
        in
        Profile.first_fit_start p ~len ~height ~budget = reference);
    Helpers.qtest ~count:300 "best_start matches argmin of window maxima"
      query_arb
      (fun ((width, ops), (_, len, _, _)) ->
        let t, a = build width ops in
        let reference =
          if len > width then None
          else begin
            let best = ref (-1) and best_peak = ref max_int in
            for s = 0 to width - len do
              let m = window_max a s len in
              if m < !best_peak then begin
                best_peak := m;
                best := s
              end
            done;
            Some (!best, !best_peak)
          end
        in
        Segtree.best_start t ~len = reference);
    Helpers.qtest ~count:300 "find_last_above matches linear scan" query_arb
      (fun ((width, ops), (from, len, _, limit)) ->
        let t, a = build width ops in
        let lo = min from (width - 1) and hi = min width (from + len) in
        if lo > hi then true
        else begin
          let reference = ref None in
          for x = lo to hi - 1 do
            if a.(x) > limit then reference := Some x
          done;
          Segtree.find_last_above t ~lo ~hi limit = !reference
        end);
    Helpers.qtest ~count:200 "segtree to_array matches accumulated ops" loads_arb
      (fun (width, ops) ->
        let t, a = build width ops in
        Segtree.to_array t = a);
    Helpers.qtest ~count:200 "segtree copy is independent" loads_arb
      (fun (width, ops) ->
        let t, a = build width ops in
        let c = Segtree.copy t in
        Segtree.range_add t ~lo:0 ~hi:width 5;
        Segtree.to_array c = a);
  ]
