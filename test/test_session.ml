(* Incremental sessions and traces: parsing round-trips with typed
   errors, and the replay differentials that pin the session to the
   batch pipeline — an arrivals-only replay must leave exactly the
   profile of the equivalent batch placement, and after any
   depart/arrive interleaving the live profile must equal a
   from-scratch rebuild of the surviving placements. *)

open Dsp_core
module Rng = Dsp_util.Rng
module Trace = Dsp_instance.Trace
module Session = Dsp_engine.Session

let policies = Session.policies ~k:2 @ [ Session.bounded_migration ~k:0 ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let random_trace rng =
  match Rng.int rng 3 with
  | 0 ->
      Trace.churn rng
        ~width:(Rng.int_in rng 2 60)
        ~n:(Rng.int_in rng 1 50)
  | 1 ->
      Trace.smartgrid rng
        ~households:(Rng.int_in rng 1 6)
        ~departures:(Rng.int rng 2 = 0)
  | _ -> Trace.gap_arrivals rng ~scale:(Rng.int_in rng 1 3)

(* ---- trace format ---- *)

let trace_round_trip () =
  for i = 1 to 30 do
    let rng = Rng.create (61_000 + i) in
    let tr = random_trace rng in
    (match Trace.validate tr with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "trace %d: generator emitted invalid trace: %s" i
          (Trace.error_to_string e));
    match Trace.of_string (Trace.to_string tr) with
    | Error e ->
        Alcotest.failf "trace %d: round-trip failed: %s" i
          (Trace.error_to_string e)
    | Ok tr' ->
        if tr' <> tr then Alcotest.failf "trace %d: round-trip changed it" i
  done

let parse_error input expect =
  match Trace.of_string input with
  | Ok _ -> Alcotest.failf "accepted malformed input %S" input
  | Error e ->
      let msg = Trace.error_to_string e in
      if not (contains msg expect) then
        Alcotest.failf "%S: error %S does not mention %S" input msg expect

let trace_errors () =
  parse_error "" "empty";
  parse_error "# only comments\n" "empty";
  parse_error "width 5\n+ 1 1\n" "bad header";
  parse_error "trace x\n" "not an integer";
  parse_error "trace 0\n" "width must be >= 1";
  parse_error "trace 5\n+ 1\n" "expected";
  parse_error "trace 5\n+ 1 z\n" "not an integer";
  parse_error "trace 5\n+ 0 3\n" "dimensions must be >= 1";
  parse_error "trace 5\n+ 6 3\n" "exceeds the capacity";
  parse_error "trace 5\n+ 1 1\n- 1\n" "has not arrived";
  parse_error "trace 5\n+ 1 1\n- 0\n- 0\n" "already departed";
  (* Errors carry the 1-based source line, counted over the raw
     input including comments and blanks. *)
  match Trace.of_string "trace 4\n# fine so far\n+ 2 2\n\n- 3\n" with
  | Error { line = 5; kind = Trace.Unknown_arrival 3 } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Trace.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted dangling departure"

(* ---- replay differentials ---- *)

(* The live profile of a session, rebuilt from scratch: place every
   surviving item at its recorded start on a fresh profile. *)
let rebuilt_profile s =
  let p = Profile.create (Session.width s) in
  List.iter
    (fun (_, it, start) -> Profile.add_item p it ~start)
    (Session.live_items s);
  p

let check_session_consistent ~ctx s =
  let live = Session.live_items s in
  let q = rebuilt_profile s in
  if Profile.to_array (Session.profile s) <> Profile.to_array q then
    Alcotest.failf "%s: live profile differs from from-scratch rebuild" ctx;
  if Session.peak s <> Profile.peak q then
    Alcotest.failf "%s: peak %d <> rebuilt %d" ctx (Session.peak s)
      (Profile.peak q);
  let st = Session.stats s in
  if st.Session.live <> List.length live then
    Alcotest.failf "%s: stats.live %d <> %d" ctx st.Session.live
      (List.length live);
  match Packing.validate (Session.snapshot s) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: snapshot invalid: %s" ctx msg

let arrivals_only_matches_batch () =
  List.iter
    (fun policy ->
      for i = 1 to 15 do
        let rng = Rng.create (62_000 + i) in
        let inst =
          Dsp_instance.Generators.uniform rng
            ~n:(1 + Rng.int rng 30)
            ~width:(Rng.int_in rng 3 50)
            ~max_w:3 ~max_h:9
        in
        let tr = Trace.of_instance inst in
        let s = Session.replay ~policy tr in
        let ctx =
          Printf.sprintf "policy %s instance %d" policy.Session.pname i
        in
        check_session_consistent ~ctx s;
        (* Arrivals only: the session profile must be exactly
           [Profile.of_starts] of the batch placement it implies. *)
        let pk = Session.snapshot s in
        let batch = Profile.of_starts (Packing.instance pk) (Packing.starts pk) in
        if Profile.to_array (Session.profile s) <> Profile.to_array batch then
          Alcotest.failf "%s: profile differs from batch of_starts" ctx;
        if Session.peak s <> Packing.height pk then
          Alcotest.failf "%s: peak differs from packing height" ctx
      done)
    policies

let churn_matches_rebuild () =
  List.iter
    (fun policy ->
      for i = 1 to 15 do
        let rng = Rng.create (63_000 + i) in
        let tr = random_trace rng in
        let s = Session.replay ~policy tr in
        check_session_consistent
          ~ctx:(Printf.sprintf "policy %s trace %d" policy.Session.pname i)
          s;
        let st = Session.stats s in
        Alcotest.(check int)
          "arrivals counted" (Trace.n_arrivals tr)
          st.Session.arrivals;
        Alcotest.(check int)
          "departures counted" (Trace.n_departures tr)
          st.Session.departures
      done)
    policies

(* Per-event consistency on one interleaved stream, including manual
   arrive/depart calls outside [replay]. *)
let stepwise_consistency () =
  let rng = Rng.create 64_001 in
  let s = Session.create ~policy:(Session.bounded_migration ~k:2) ~width:30 () in
  for step = 1 to 120 do
    let live = Session.live_items s in
    if live <> [] && Rng.int rng 3 = 0 then begin
      let id, _, _ = List.nth live (Rng.int rng (List.length live)) in
      Session.depart s id
    end
    else
      ignore
        (Session.arrive s ~w:(Rng.int_in rng 1 10) ~h:(Rng.int_in rng 1 8));
    if step mod 10 = 0 then
      check_session_consistent ~ctx:(Printf.sprintf "step %d" step) s
  done;
  Session.reset s;
  Alcotest.(check int) "reset clears peak" 0 (Session.peak s);
  Alcotest.(check int) "reset clears items" 0
    (List.length (Session.live_items s));
  ignore (Session.arrive s ~w:3 ~h:2);
  check_session_consistent ~ctx:"after reset" s

(* ---- policy contracts ---- *)

(* k = 0 disables repair entirely, so migrate-0 must be placement-
   for-placement identical to best-fit. *)
let migrate0_equals_best_fit () =
  for i = 1 to 15 do
    let rng = Rng.create (65_000 + i) in
    let tr = random_trace rng in
    let a = Session.replay ~policy:Session.best_fit tr in
    let b = Session.replay ~policy:(Session.bounded_migration ~k:0) tr in
    if
      List.map (fun (id, _, s) -> (id, s)) (Session.live_items a)
      <> List.map (fun (id, _, s) -> (id, s)) (Session.live_items b)
    then Alcotest.failf "trace %d: migrate-0 diverged from best-fit" i;
    Alcotest.(check int) "same migration count" 0
      (Session.stats b).Session.migrations
  done

let migration_budget_respected () =
  List.iter
    (fun k ->
      let policy = Session.bounded_migration ~k in
      for i = 1 to 10 do
        let rng = Rng.create (66_000 + i) in
        let tr = random_trace rng in
        let s = Session.replay ~policy tr in
        List.iter
          (function
            | Session.Arrived { migrations; _ } ->
                if List.length migrations > k then
                  Alcotest.failf "k=%d trace %d: arrival moved %d items" k i
                    (List.length migrations)
            | Session.Departed _ -> ())
          (Session.log s);
        (* The log replays to the session's final placements. *)
        let starts = Hashtbl.create 16 in
        List.iter
          (function
            | Session.Arrived { id; start; migrations } ->
                Hashtbl.replace starts id start;
                List.iter
                  (fun (mid, ms) -> Hashtbl.replace starts mid ms)
                  migrations
            | Session.Departed { id; _ } -> Hashtbl.remove starts id)
          (Session.log s);
        List.iter
          (fun (id, _, start) ->
            if Hashtbl.find_opt starts id <> Some start then
              Alcotest.failf "k=%d trace %d: log start of %d disagrees" k i id)
          (Session.live_items s)
      done)
    [ 0; 1; 3 ]

let arrive_rejects_bad_dims () =
  let s = Session.create ~width:10 () in
  let rejects f =
    match f () with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "w = 0" true
    (rejects (fun () -> Session.arrive s ~w:0 ~h:3));
  Alcotest.(check bool) "h = 0" true
    (rejects (fun () -> Session.arrive s ~w:3 ~h:0));
  Alcotest.(check bool) "too wide" true
    (rejects (fun () -> Session.arrive s ~w:11 ~h:3));
  Alcotest.(check int) "session unharmed" 0 (Session.peak s)

(* The Trace parser under the same byte-mutation fuzz as Io: the serve
   daemon replays WAL event payloads through it, so totality here is a
   durability property, not just an input-hygiene one. *)
let trace_fuzz =
  Helpers.qtest ~count:200 "fuzz: mutated traces never crash the parser"
    QCheck.(triple (int_range 1 10_000) small_nat (int_range 0 255))
    (fun (seed, pos, byte) ->
      let rng = Rng.create (90_000 + seed) in
      let text = Trace.to_string (random_trace rng) in
      let mutated =
        if String.length text = 0 then text
        else
          String.mapi
            (fun i c ->
              if i = pos mod String.length text then Char.chr byte else c)
            text
      in
      match Trace.of_string mutated with
      | Ok tr -> (
          (* whatever the mutation still spells must satisfy the full
             stream invariants of_string promises *)
          match Trace.validate tr with
          | Ok () -> true
          | Error e ->
              QCheck.Test.fail_reportf "accepted invalid trace: %s"
                (Trace.error_to_string e))
      | Error e -> String.length (Trace.error_to_string e) > 0
      | exception e ->
          QCheck.Test.fail_reportf "parser raised %s on %S"
            (Printexc.to_string e) mutated)

let depart_typed_errors () =
  let s = Session.create ~width:10 () in
  let check_err name expected got =
    Alcotest.(check string)
      name expected
      (match got with
      | Ok _ -> "ok"
      | Error e -> Session.depart_error_to_string e)
  in
  check_err "never arrived"
    (Session.depart_error_to_string (Session.Never_arrived 0))
    (Session.depart_result s 0);
  check_err "negative id"
    (Session.depart_error_to_string (Session.Never_arrived (-3)))
    (Session.depart_result s (-3));
  let id = Session.arrive s ~w:4 ~h:2 in
  (match Session.depart_result s id with
  | Ok start ->
      Alcotest.(check (option int)) "freed start reported" (Some start) (Some 0)
  | Error e -> Alcotest.failf "live depart refused: %s" (Session.depart_error_to_string e));
  check_err "already departed"
    (Session.depart_error_to_string (Session.Already_departed id))
    (Session.depart_result s id);
  (* a refused departure mutates nothing *)
  let st = Session.stats s in
  Alcotest.(check int) "arrivals" 1 st.Session.arrivals;
  Alcotest.(check int) "departures" 1 st.Session.departures;
  (* the raising wrapper carries the same message *)
  (match Session.depart s id with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      Alcotest.(check string)
        "wrapper message"
        (Session.depart_error_to_string (Session.Already_departed id))
        m);
  Alcotest.(check bool)
    "messages distinguish the two causes" false
    (Session.depart_error_to_string (Session.Never_arrived 5)
    = Session.depart_error_to_string (Session.Already_departed 5))

let suite =
  [
    Alcotest.test_case "trace to_string/of_string round-trips" `Quick
      trace_round_trip;
    trace_fuzz;
    Alcotest.test_case "trace parse errors are typed and line-numbered" `Quick
      trace_errors;
    Alcotest.test_case "arrivals-only replay equals batch of_starts" `Quick
      arrivals_only_matches_batch;
    Alcotest.test_case "churn replay equals from-scratch rebuild" `Quick
      churn_matches_rebuild;
    Alcotest.test_case "stepwise arrive/depart consistency and reset" `Quick
      stepwise_consistency;
    Alcotest.test_case "migrate-0 is exactly best-fit" `Quick
      migrate0_equals_best_fit;
    Alcotest.test_case "migration budget and log replay" `Quick
      migration_budget_respected;
    Alcotest.test_case "arrive mirrors Io's dimension checks" `Quick
      arrive_rejects_bad_dims;
    Alcotest.test_case "depart_result types stale departures" `Quick
      depart_typed_errors;
  ]
