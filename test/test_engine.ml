(* Registry-wide property suite for the solver engine: every
   registered solver, on random instances, must produce a validated
   report whose numbers are recomputable, and a corrupted packing must
   be rejected loudly at the Report boundary. *)

open Dsp_core
module Solver = Dsp_engine.Solver
module Registry = Dsp_engine.Registry
module Report = Dsp_engine.Report

let registry_tests =
  [
    Alcotest.test_case "registry names are unique" `Quick (fun () ->
        let names = Registry.names () in
        let sorted = List.sort_uniq compare names in
        Alcotest.check Alcotest.int "no duplicate names" (List.length names)
          (List.length sorted));
    Alcotest.test_case "registering a taken name raises Duplicate" `Quick
      (fun () ->
        let taken = List.hd (Registry.names ()) in
        let dup =
          {
            Solver.name = taken;
            family = Solver.Baseline;
            complexity = Solver.Poly;
            doc = "duplicate";
            solve = (fun ~budget:_ inst -> Packing.make inst [||]);
          }
        in
        match Registry.register dup with
        | () -> Alcotest.fail "expected Duplicate"
        | exception Registry.Duplicate _ -> ());
    Alcotest.test_case "heuristics excludes exponential solvers" `Quick
      (fun () ->
        Alcotest.check Alcotest.bool "no Exponential in heuristics" true
          (List.for_all
             (fun (s : Solver.t) -> s.Solver.complexity <> Solver.Exponential)
             (Registry.heuristics ())));
  ]

(* For every registered solver: the run succeeds (within a node budget
   large enough for tiny instances), the report's packing re-validates,
   the ratio is >= 1, and the reported peak equals the peak recomputed
   from a fresh profile. *)
let solver_report_tests =
  List.map
    (fun (s : Solver.t) ->
      Helpers.qtest ~count:40
        (s.Solver.name ^ " reports validated packings with recomputable peaks")
        (Helpers.tiny_instance_arb ())
        (fun inst ->
          match Solver.run ~node_budget:5_000_000 s inst with
          | Error msg -> QCheck.Test.fail_reportf "run failed: %s" msg
          | Ok r ->
              let recomputed =
                Profile.peak
                  (Profile.of_starts (Packing.instance r.Report.packing)
                     (Packing.starts r.Report.packing))
              in
              Result.is_ok (Packing.validate r.Report.packing)
              && r.Report.peak = recomputed
              && r.Report.ratio >= 1.0
              && r.Report.lower_bound = Instance.lower_bound inst
              && r.Report.seconds >= 0.0))
    (Registry.all ())

let counter_tests =
  [
    Alcotest.test_case "approx54 reports its binary-search counters" `Quick
      (fun () ->
        let rng = Dsp_util.Rng.create 3 in
        let inst =
          Dsp_instance.Generators.uniform rng ~n:12 ~width:14 ~max_w:8 ~max_h:9
        in
        match Solver.run (Registry.find_exn "approx54") inst with
        | Error msg -> Alcotest.failf "approx54: %s" msg
        | Ok r ->
            Alcotest.check Alcotest.bool "approx54.guesses > 0" true
              (Report.counter r "approx54.guesses" > 0);
            Alcotest.check Alcotest.bool "segtree ops recorded" true
              (Report.counter r "segtree.range_add" > 0));
    Alcotest.test_case "exact-bb reports node counts and respects budgets"
      `Quick (fun () ->
        let rng = Dsp_util.Rng.create 4 in
        let inst =
          Dsp_instance.Generators.uniform rng ~n:6 ~width:8 ~max_w:5 ~max_h:6
        in
        let exact = Registry.find_exn "exact-bb" in
        (match Solver.run ~node_budget:5_000_000 exact inst with
        | Error msg -> Alcotest.failf "exact-bb: %s" msg
        | Ok r ->
            Alcotest.check Alcotest.bool "bb.nodes > 0" true
              (Report.counter r "bb.nodes" > 0));
        (* A one-node budget cannot finish: the engine must surface the
           exhaustion as Error, not as a bogus packing. *)
        let big = Dsp_instance.Generators.uniform rng ~n:14 ~width:12 ~max_w:6 ~max_h:8 in
        match Solver.run ~node_budget:1 exact big with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected budget exhaustion");
  ]

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let corruption_tests =
  [
    Alcotest.test_case "Report.make rejects a packing for another instance"
      `Quick (fun () ->
        let inst_a = Instance.of_dims ~width:6 [ (2, 3); (3, 1) ] in
        let inst_b = Instance.of_dims ~width:6 [ (2, 3); (3, 2) ] in
        let pk = Dsp_algo.Baselines.best_fit_decreasing inst_a in
        match
          Report.make ~solver:"crafted" ~instance:inst_b ~packing:pk
            ~seconds:0.0 ~counters:[]
        with
        | Ok _ -> Alcotest.fail "expected a validation error"
        | Error msg ->
            Alcotest.check Alcotest.bool
              (Printf.sprintf "message is descriptive: %S" msg)
              true
              (String.length msg > 0 && contains_substring msg "crafted"));
    Alcotest.test_case "a solver answering the wrong instance fails loudly"
      `Quick (fun () ->
        let other = Instance.of_dims ~width:5 [ (1, 1) ] in
        let lying =
          {
            Solver.name = "lying-solver";
            family = Solver.Baseline;
            complexity = Solver.Poly;
            doc = "returns a packing of a different instance";
            solve =
              (fun ~budget:_ _inst ->
                Dsp_algo.Baselines.best_fit_decreasing other);
          }
        in
        let inst = Instance.of_dims ~width:6 [ (2, 2); (4, 1) ] in
        match Solver.run lying inst with
        | exception Invalid_argument _ -> ()
        | Ok _ -> Alcotest.fail "expected Invalid_argument"
        | Error msg -> Alcotest.failf "expected a raise, got Error %s" msg);
  ]

let suite =
  registry_tests @ solver_report_tests @ counter_tests @ corruption_tests
