let () =
  Alcotest.run "demand-strip-packing"
    [
      ("rat", Test_rat.suite);
      ("util", Test_util.suite);
      ("core", Test_core.suite);
      ("profile", Test_profile.suite);
      ("kernel", Test_kernel.suite);
      ("packing", Test_packing.suite);
      ("pts", Test_pts.suite);
      ("sp", Test_sp.suite);
      ("transform", Test_transform.suite);
      ("exact", Test_exact.suite);
      ("lp", Test_lp.suite);
      ("instance", Test_instance.suite);
      ("algo", Test_algo.suite);
      ("augment", Test_augment.suite);
      ("smartgrid", Test_smartgrid.suite);
      ("extensions", Test_extensions.suite);
      ("boxes", Test_boxes.suite);
      ("tall-assignment", Test_tall_assignment.suite);
      ("restructure", Test_restructure.suite);
      ("budget-fit", Test_budget_fit.suite);
      ("engine", Test_engine.suite);
      ("session", Test_session.suite);
      ("runner", Test_runner.suite);
      ("parallel", Test_parallel.suite);
      ("bench", Test_bench.suite);
      ("serve", Test_serve.suite);
      ("lint", Test_lint.suite);
    ]
