open Dsp_core

(* A naive reference profile for differential testing. *)
let naive_profile width ops =
  let a = Array.make width 0 in
  List.iter
    (fun (start, len, h) ->
      for x = start to start + len - 1 do
        a.(x) <- a.(x) + h
      done)
    ops;
  a

let ops_arb =
  QCheck.make
    ~print:(fun (w, ops) ->
      Printf.sprintf "width=%d ops=%s" w
        (String.concat ";"
           (List.map (fun (s, l, h) -> Printf.sprintf "(%d,%d,%d)" s l h) ops)))
    QCheck.Gen.(
      let* width = int_range 1 40 in
      let* n = int_range 0 30 in
      let* ops =
        list_repeat n
          (let* s = int_range 0 (width - 1) in
           let* l = int_range 0 (width - s) in
           let* h = int_range (-5) 10 in
           return (s, l, h))
      in
      return (width, ops))

let apply_profile width ops =
  let p = Profile.create width in
  List.iter (fun (s, l, h) -> Profile.add p ~start:s ~len:l ~height:h) ops;
  p

let apply_segtree width ops =
  let t = Segtree.create width in
  List.iter (fun (s, l, h) -> Segtree.range_add t ~lo:s ~hi:(s + l) h) ops;
  t

let profile_tests =
  [
    Alcotest.test_case "basic add and peak" `Quick (fun () ->
        let p = Profile.create 5 in
        Profile.add p ~start:1 ~len:3 ~height:4;
        Profile.add p ~start:0 ~len:2 ~height:2;
        Alcotest.check Alcotest.int "load 0" 2 (Profile.load p 0);
        Alcotest.check Alcotest.int "load 1" 6 (Profile.load p 1);
        Alcotest.check Alcotest.int "peak" 6 (Profile.peak p);
        Alcotest.check Alcotest.int "peak in [2,5)" 4
          (Profile.peak_in p ~start:2 ~len:3));
    Alcotest.test_case "add_item/remove_item inverse" `Quick (fun () ->
        let p = Profile.create 6 in
        let it = Item.make ~id:0 ~w:3 ~h:2 in
        Profile.add_item p it ~start:2;
        Profile.remove_item p it ~start:2;
        Alcotest.check Alcotest.int "peak back to 0" 0 (Profile.peak p));
    Alcotest.test_case "out of range rejected" `Quick (fun () ->
        let p = Profile.create 4 in
        Alcotest.check Alcotest.bool "raises" true
          (try
             Profile.add p ~start:2 ~len:3 ~height:1;
             false
           with Invalid_argument _ -> true));
    Helpers.qtest "matches naive reference" ops_arb (fun (width, ops) ->
        let p = apply_profile width ops in
        Profile.to_array p = naive_profile width ops);
    Helpers.qtest "of_starts equals manual adds"
      (Helpers.instance_arb ~max_width:12 ~max_n:8 ()) (fun inst ->
        let starts =
          Array.map (fun (it : Item.t) -> (inst.Instance.width - it.Item.w) / 2)
            inst.Instance.items
        in
        let p = Profile.of_starts inst starts in
        let q = Profile.create inst.Instance.width in
        Array.iteri (fun i s -> Profile.add_item q (Instance.item inst i) ~start:s) starts;
        Profile.to_array p = Profile.to_array q);
  ]

let segtree_tests =
  [
    Helpers.qtest "segtree matches flat profile" ops_arb (fun (width, ops) ->
        let t = apply_segtree width ops in
        Segtree.to_array t = naive_profile width ops);
    Helpers.qtest "range_max matches naive windows" ops_arb (fun (width, ops) ->
        let t = apply_segtree width ops in
        let a = naive_profile width ops in
        let ok = ref true in
        for lo = 0 to width - 1 do
          for hi = lo + 1 to width do
            let naive = ref min_int in
            for x = lo to hi - 1 do
              if a.(x) > !naive then naive := a.(x)
            done;
            if Segtree.range_max t ~lo ~hi <> !naive then ok := false
          done
        done;
        !ok);
    Alcotest.test_case "min_peak_start finds the first fit" `Quick (fun () ->
        let t = Segtree.create 6 in
        Segtree.range_add t ~lo:0 ~hi:3 5;
        Segtree.range_add t ~lo:4 ~hi:6 2;
        (* len 2, height 3, limit 5: [3,5) has loads 0,2 -> fits at 3. *)
        Alcotest.check (Alcotest.option Alcotest.int) "start" (Some 3)
          (Segtree.min_peak_start t ~len:2 ~height:3 ~limit:5);
        Alcotest.check (Alcotest.option Alcotest.int) "impossible" None
          (Segtree.min_peak_start t ~len:6 ~height:1 ~limit:5));
    Alcotest.test_case "accumulation near max_int raises, never wraps" `Quick
      (fun () ->
        (* Segtree-backed path: the O(1) root guard fires on the add
           that would push the running max past max_int. *)
        let p = Profile.create 4 in
        Profile.add p ~start:0 ~len:4 ~height:max_int;
        Alcotest.check Alcotest.int "peak at the boundary" max_int
          (Profile.peak p);
        Alcotest.check_raises "segtree overflow" Dsp_util.Rat.Overflow
          (fun () -> Profile.add p ~start:1 ~len:2 ~height:1);
        (* The guarded add must not have half-applied. *)
        Alcotest.check Alcotest.int "load intact after refusal" max_int
          (Profile.load p 1);
        (* Naive reference path overflows identically. *)
        let n = Profile.Naive.create 4 in
        Profile.Naive.add n ~start:0 ~len:4 ~height:max_int;
        Alcotest.check_raises "naive overflow" Dsp_util.Rat.Overflow
          (fun () -> Profile.Naive.add n ~start:1 ~len:2 ~height:1);
        (* A large negative add keeps working: only the max can
           overflow upward. *)
        Profile.add p ~start:0 ~len:4 ~height:(-max_int);
        Alcotest.check Alcotest.int "peak back to 0" 0 (Profile.peak p);
        Profile.add p ~start:0 ~len:4 ~height:max_int;
        Alcotest.check Alcotest.int "boundary reachable again" max_int
          (Profile.peak p));
  ]

let suite = profile_tests @ segtree_tests
