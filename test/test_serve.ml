(* The service layer's robustness contract, pinned four ways: the
   NDJSON parser is total under fuzz (like Io and Trace before it),
   the WAL round-trips and cleanly truncates torn/corrupt tails, a
   kill-mid-stream recovery is indistinguishable from an uninterrupted
   run (the crash differential, with and without compaction), and the
   admission queue sheds typed overload errors instead of wedging. *)

module Json = Dsp_serve.Json
module Protocol = Dsp_serve.Protocol
module Wal = Dsp_serve.Wal
module Server = Dsp_serve.Server
module Session = Dsp_engine.Session
module Trace = Dsp_instance.Trace
module Rng = Dsp_util.Rng
module Fault = Dsp_util.Fault

let case name f = Alcotest.test_case name `Quick f

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsp_serve_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Sys.mkdir d 0o755;
  d

(* Run one request through the transport-independent core, spinning on
   deferred replies (pool-dispatched solves) until they land. *)
let rec drain = function
  | Server.Now line -> line
  | Server.Later poll -> (
      match poll () with
      | Some line -> line
      | None ->
          Unix.sleepf 0.001;
          drain (Server.Later poll))

let req t line = drain (Server.handle t line)

let decode line =
  match Protocol.parse_response line with
  | Ok r -> r
  | Error m -> Alcotest.failf "undecodable response %S: %s" line m

let expect_ok name line =
  match (decode line).Protocol.body with
  | Ok result -> result
  | Error kind ->
      Alcotest.failf "%s: expected ok, got %s error: %s" name
        (Protocol.kind_name kind)
        (Protocol.error_message kind)

let expect_error name line =
  match (decode line).Protocol.body with
  | Error kind -> kind
  | Ok result ->
      Alcotest.failf "%s: expected an error, got ok %s" name
        (Json.to_string result)

let int_field name json =
  match Option.bind (Json.member name json) Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "response lacks integer field %S" name

(* ---- JSON ---- *)

(* No Float in the round-trip generator: "%.12g" printing is not
   exactly inverse for every float; floats get their own case. *)
let json_gen =
  let open QCheck.Gen in
  sized_size (int_bound 3) (fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map (fun s -> Json.String s) (small_string ~gen:printable);
          ]
      in
      if n = 0 then scalar
      else
        let key = small_string ~gen:(char_range 'a' 'z') in
        oneof
          [
            scalar;
            map (fun xs -> Json.List xs) (list_size (int_bound 4) (self (n - 1)));
            map
              (fun kvs ->
                (* duplicate keys are dropped by the parser: dedup *)
                let seen = Hashtbl.create 8 in
                Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else begin
                         Hashtbl.add seen k ();
                         true
                       end)
                     kvs))
              (list_size (int_bound 4) (pair key (self (n - 1))));
          ]))

let json_arb = QCheck.make ~print:Json.to_string json_gen

let json_tests =
  [
    Helpers.qtest ~count:300 "json: to_string/of_string round-trips" json_arb
      (fun v ->
        match Json.of_string (Json.to_string v) with
        | Ok v' -> v = v'
        | Error m -> QCheck.Test.fail_reportf "re-parse failed: %s" m);
    case "json: floats survive a round trip" (fun () ->
        List.iter
          (fun f ->
            match Json.of_string (Json.to_string (Json.Float f)) with
            | Ok (Json.Float f') ->
                Alcotest.(check (float 1e-9)) "float" f f'
            | Ok v -> Alcotest.failf "parsed as %s" (Json.to_string v)
            | Error m -> Alcotest.fail m)
          [ 0.5; -3.25; 1e-9; 12345.678; 1e20 ]);
    case "json: escapes and unicode decode" (fun () ->
        match Json.of_string {|{"s":"a\nb\t\"q\" Aé"}|} with
        | Ok v ->
            Alcotest.(check (option string))
              "decoded"
              (Some "a\nb\t\"q\" A\xc3\xa9")
              (Option.bind (Json.member "s" v) Json.to_str)
        | Error m -> Alcotest.fail m);
    Helpers.qtest ~count:500 "fuzz: arbitrary bytes never crash the JSON parser"
      QCheck.(string_gen Gen.(char_range '\000' '\255'))
      (fun s ->
        match Json.of_string s with
        | Ok _ -> true
        | Error m -> String.length m > 0
        | exception e ->
            QCheck.Test.fail_reportf "parser raised %s on %S"
              (Printexc.to_string e) s);
    case "json: nesting depth is capped, not stack-fatal" (fun () ->
        let deep = String.make 5000 '[' ^ String.make 5000 ']' in
        match Json.of_string deep with
        | Ok _ -> Alcotest.fail "expected a depth error"
        | Error m -> Alcotest.(check bool) "typed" true (String.length m > 0));
  ]

(* ---- protocol fuzz ---- *)

let request_templates =
  [
    {|{"id":1,"op":"ping"}|};
    {|{"id":2,"op":"open","session":"s","width":10,"policy":"migrate","k":2}|};
    {|{"id":3,"op":"arrive","session":"s","w":4,"h":3}|};
    {|{"id":4,"op":"depart","session":"s","arrival":0}|};
    {|{"op":"peak","session":"s"}|};
    {|{"op":"snapshot","session":"s"}|};
    {|{"op":"close","session":"s"}|};
    {|{"op":"solve","width":9,"items":[[3,2],[4,1]],"timeout_ms":50,"fallback":"bfd-height"}|};
    {|{"op":"compare","width":9,"items":[[3,2]],"solvers":["bfd-height"]}|};
    {|{"op":"stats"}|};
  ]

let protocol_fuzz_tests =
  [
    Helpers.qtest ~count:400
      "fuzz: mutated request lines never crash parse_request"
      QCheck.(
        triple
          (int_bound (List.length request_templates - 1))
          small_nat (int_range 0 255))
      (fun (which, pos, byte) ->
        let text = List.nth request_templates which in
        let mutated =
          String.mapi
            (fun i c ->
              if i = pos mod String.length text then Char.chr byte else c)
            text
        in
        match Protocol.parse_request mutated with
        | Ok (_, _) -> true
        | Error (_, kind) ->
            String.length (Protocol.error_message kind) > 0
            && String.length (Protocol.kind_name kind) > 0
        | exception e ->
            QCheck.Test.fail_reportf "parse_request raised %s on %S"
              (Printexc.to_string e) mutated);
    Helpers.qtest ~count:300
      "fuzz: the server core answers every mutated line without raising"
      QCheck.(
        triple
          (int_bound (List.length request_templates - 1))
          small_nat (int_range 0 255))
      (fun (which, pos, byte) ->
        let t = Server.create Server.default_config in
        let text = List.nth request_templates which in
        let mutated =
          String.mapi
            (fun i c ->
              if i = pos mod String.length text then Char.chr byte else c)
            text
        in
        match req t mutated with
        | line -> (
            match Protocol.parse_response line with
            | Ok _ -> true
            | Error m ->
                QCheck.Test.fail_reportf "unparseable response %S: %s" line m)
        | exception e ->
            QCheck.Test.fail_reportf "server raised %s on %S"
              (Printexc.to_string e) mutated);
  ]

(* ---- protocol semantics through the core ---- *)

let semantics_tests =
  [
    case "every op answers, errors are typed" (fun () ->
        let t = Server.create Server.default_config in
        ignore (expect_ok "ping" (req t {|{"op":"ping"}|}));
        let kind line = Protocol.kind_name (expect_error "err" (req t line)) in
        Alcotest.(check string) "parse" "parse" (kind "nope");
        Alcotest.(check string) "unknown op" "unknown_op" (kind {|{"op":"x"}|});
        Alcotest.(check string)
          "unknown session" "unknown_session"
          (kind {|{"op":"peak","session":"ghost"}|});
        Alcotest.(check string)
          "bad width" "bad_instance"
          (kind {|{"op":"open","session":"a","width":0}|});
        ignore
          (expect_ok "open" (req t {|{"op":"open","session":"a","width":8}|}));
        Alcotest.(check string)
          "session exists" "session_exists"
          (kind {|{"op":"open","session":"a","width":8}|});
        Alcotest.(check string)
          "too wide" "bad_instance"
          (kind {|{"op":"arrive","session":"a","w":9,"h":1}|});
        ignore
          (expect_ok "arrive" (req t {|{"op":"arrive","session":"a","w":3,"h":2}|}));
        Alcotest.(check string)
          "stale departure" "stale_departure"
          (kind {|{"op":"depart","session":"a","arrival":7}|});
        ignore
          (expect_ok "depart" (req t {|{"op":"depart","session":"a","arrival":0}|}));
        Alcotest.(check string)
          "departed twice" "stale_departure"
          (kind {|{"op":"depart","session":"a","arrival":0}|});
        ignore (expect_ok "close" (req t {|{"op":"close","session":"a"}|}));
        Alcotest.(check string)
          "closed session gone" "unknown_session"
          (kind {|{"op":"peak","session":"a"}|}));
    case "solve lowers timeout and fallback chain onto the runner" (fun () ->
        let t = Server.create Server.default_config in
        let r =
          expect_ok "solve"
            (req t
               {|{"op":"solve","width":9,"items":[[3,2],[4,1],[2,5]],"timeout_ms":2000,"fallback":"bfd-height"}|})
        in
        Alcotest.(check (option string))
          "winner" (Some "bfd-height")
          (Option.bind (Json.member "solver" r) Json.to_str);
        let bad =
          expect_error "bad chain"
            (req t {|{"op":"solve","width":9,"items":[[3,2]],"fallback":"no-such"}|})
        in
        Alcotest.(check string) "bad chain kind" "bad_request"
          (Protocol.kind_name bad));
    case "compare answers per solver" (fun () ->
        let t = Server.create Server.default_config in
        let r =
          expect_ok "compare"
            (req t
               {|{"op":"compare","width":9,"items":[[3,2],[4,1]],"solvers":["bfd-height","lpt-width"]}|})
        in
        match Option.bind (Json.member "results" r) Json.to_list with
        | Some [ _; _ ] -> ()
        | _ -> Alcotest.fail "expected two per-solver entries");
    case "request ids are echoed verbatim" (fun () ->
        let t = Server.create Server.default_config in
        let resp = decode (req t {|{"id":{"n":7},"op":"ping"}|}) in
        Alcotest.(check (option string))
          "id" (Some {|{"n":7}|})
          (Option.map Json.to_string resp.Protocol.rid));
  ]

(* ---- WAL ---- *)

let sample_records =
  [
    Wal.Header { width = 12; policy = "migrate"; k = 2 };
    Wal.Event (Trace.Arrive { w = 3; h = 4 });
    Wal.Event (Trace.Arrive { w = 5; h = 1 });
    Wal.Event (Trace.Depart { arrival = 0 });
    Wal.Snapshot
      {
        width = 12;
        policy = "migrate";
        k = 2;
        n_arrived = 2;
        n_migrations = 1;
        live = [ (1, 5, 1, 0); (3, 2, 2, 7) ];
      };
  ]

let record_eq (a : Wal.record) (b : Wal.record) = a = b

let check_records name expected actual =
  Alcotest.(check int)
    (name ^ ": record count") (List.length expected) (List.length actual);
  List.iter2
    (fun e a ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: records equal (%s / %s)" name
           (Wal.encode_record e) (Wal.encode_record a))
        true (record_eq e a))
    expected actual

let wal_tests =
  [
    case "wal: record codec round-trips" (fun () ->
        List.iter
          (fun r ->
            match Wal.decode_record (Wal.encode_record r) with
            | Ok r' ->
                Alcotest.(check bool)
                  (Wal.encode_record r) true (record_eq r r')
            | Error m -> Alcotest.fail m)
          sample_records);
    case "wal: append then recover returns every record" (fun () ->
        let dir = fresh_dir () in
        let path = Filename.concat dir "a.wal" in
        let wal = Wal.create ~fsync:Wal.Always path in
        List.iter (Wal.append wal) sample_records;
        Wal.close wal;
        (match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; truncated_bytes }) ->
            Alcotest.(check int) "nothing truncated" 0 truncated_bytes;
            check_records "round-trip" sample_records records;
            (* the recovered log accepts further appends *)
            Wal.append wal (Wal.Event (Trace.Arrive { w = 1; h = 1 }));
            Wal.close wal);
        match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; _ }) ->
            Alcotest.(check int)
              "append after recovery persisted"
              (List.length sample_records + 1)
              (List.length records);
            Wal.close wal);
    case "wal: torn tail is detected and truncated" (fun () ->
        let dir = fresh_dir () in
        let path = Filename.concat dir "torn.wal" in
        let wal = Wal.create path in
        List.iter (Wal.append wal) sample_records;
        Wal.close wal;
        let intact = (Unix.stat path).Unix.st_size in
        (* simulate a crash mid-append: half a frame of a real record *)
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 path
        in
        output_string oc "\x40\x00\x00\x00\xde\xad\xbe\xefpartial";
        close_out oc;
        (match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; truncated_bytes }) ->
            Alcotest.(check bool) "tail cut" true (truncated_bytes > 0);
            check_records "torn" sample_records records;
            Wal.close wal);
        Alcotest.(check int)
          "file truncated back to the last good boundary" intact
          (Unix.stat path).Unix.st_size;
        (* second recovery is clean: truncation converged *)
        match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.truncated_bytes; _ }) ->
            Alcotest.(check int) "clean" 0 truncated_bytes;
            Wal.close wal);
    case "wal: corrupt-on-write is rejected by checksum on recovery" (fun () ->
        let dir = fresh_dir () in
        let path = Filename.concat dir "corrupt.wal" in
        let wal = Wal.create path in
        Wal.append wal (List.hd sample_records);
        Fault.arm
          { Fault.site = Dsp_util.Instr.Sites.wal_appends;
            action = Fault.Corrupt;
            after = 1;
          };
        Fun.protect ~finally:Fault.disarm (fun () ->
            Wal.append wal (Wal.Event (Trace.Arrive { w = 2; h = 2 })));
        Wal.append wal (Wal.Event (Trace.Arrive { w = 3; h = 3 }));
        Wal.close wal;
        match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; truncated_bytes }) ->
            (* everything from the corrupt record on is gone — the log
               is a clean prefix, never a log with a hole *)
            Alcotest.(check bool) "tail cut" true (truncated_bytes > 0);
            check_records "corrupt" [ List.hd sample_records ] records;
            Wal.close wal);
    case "wal: injected short write leaves a recoverable torn tail" (fun () ->
        let dir = fresh_dir () in
        let path = Filename.concat dir "short.wal" in
        let wal = Wal.create path in
        Wal.append wal (List.hd sample_records);
        Fault.arm
          { Fault.site = Dsp_util.Instr.Sites.wal_appends;
            action = Fault.Short;
            after = 1;
          };
        (Fun.protect ~finally:Fault.disarm (fun () ->
             match Wal.append wal (Wal.Event (Trace.Arrive { w = 2; h = 2 })) with
             | () -> Alcotest.fail "short write should raise Injected"
             | exception Fault.Injected _ -> ()));
        Wal.close wal;
        match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; truncated_bytes }) ->
            Alcotest.(check bool) "tail cut" true (truncated_bytes > 0);
            check_records "short" [ List.hd sample_records ] records;
            Wal.close wal);
    case "wal: compaction replaces the log atomically" (fun () ->
        let dir = fresh_dir () in
        let path = Filename.concat dir "compact.wal" in
        let wal = Wal.create path in
        List.iter (Wal.append wal) sample_records;
        let snap =
          Wal.Snapshot
            {
              width = 12;
              policy = "best-fit";
              k = 1;
              n_arrived = 9;
              n_migrations = 0;
              live = [ (4, 2, 2, 0) ];
            }
        in
        Wal.compact wal snap;
        Alcotest.(check int) "append counter reset" 0 (Wal.appended wal);
        Wal.append wal (Wal.Event (Trace.Arrive { w = 1; h = 1 }));
        Wal.close wal;
        match Wal.recover path with
        | Error m -> Alcotest.fail m
        | Ok (wal, { Wal.records; _ }) ->
            check_records "compacted"
              [ snap; Wal.Event (Trace.Arrive { w = 1; h = 1 }) ]
              records;
            Wal.close wal);
    case "wal: fsync failure surfaces as a typed wal error" (fun () ->
        let dir = fresh_dir () in
        let t =
          Server.create
            { Server.default_config with Server.wal_dir = Some dir }
        in
        ignore (expect_ok "open" (req t {|{"op":"open","session":"f","width":8}|}));
        Fault.arm
          { Fault.site = Dsp_util.Instr.Sites.wal_fsyncs;
            action = Fault.Raise;
            after = 1;
          };
        let kind =
          Fun.protect ~finally:Fault.disarm (fun () ->
              expect_error "fsync fault"
                (req t {|{"op":"arrive","session":"f","w":2,"h":2}|}))
        in
        Alcotest.(check string) "typed" "wal" (Protocol.kind_name kind);
        (* the server survives and keeps answering *)
        ignore
          (expect_ok "next arrive"
             (req t {|{"op":"arrive","session":"f","w":2,"h":2}|}));
        Server.close t);
  ]

(* ---- crash-recovery differential ---- *)

(* Drive a durable server through a prefix of a random churn trace,
   abandon it un-closed (the in-process stand-in for kill -9: the WAL
   is whatever was appended, no shutdown path ran), recover into a
   fresh server, and demand state identical to an uninterrupted
   session over the same prefix. *)
let arrive_line ?(session = "c") w h =
  Printf.sprintf {|{"op":"arrive","session":%S,"w":%d,"h":%d}|} session w h

let depart_line ?(session = "c") arrival =
  Printf.sprintf {|{"op":"depart","session":%S,"arrival":%d}|} session arrival

let drive_prefix t (tr : Trace.t) n =
  List.iteri
    (fun i ev ->
      if i < n then
        ignore
          (expect_ok "drive"
             (req t
                (match ev with
                | Trace.Arrive { w; h } -> arrive_line w h
                | Trace.Depart { arrival } -> depart_line arrival))))
    tr.Trace.events

let session_fingerprint sess =
  let st = Session.stats sess in
  ( st.Session.arrivals,
    st.Session.departures,
    st.Session.peak_now,
    List.map
      (fun (id, (it : Dsp_core.Item.t), s) -> (id, it.w, it.h, s))
      (Session.live_items sess) )

let crash_differential ~seed ~compact_every () =
  let rng = Rng.create seed in
  let tr = Trace.churn rng ~width:(Rng.int_in rng 4 24) ~n:(Rng.int_in rng 4 40) in
  let n_events = List.length tr.Trace.events in
  let cut = Rng.int_in rng 1 (max 1 n_events) in
  let dir = fresh_dir () in
  let cfg =
    {
      Server.default_config with
      Server.wal_dir = Some dir;
      compact_every;
      fsync = Wal.Always;
    }
  in
  (* interrupted run: drive, then abandon without close *)
  let a = Server.create cfg in
  ignore
    (expect_ok "open"
       (req a
          (Printf.sprintf
             {|{"op":"open","session":"c","width":%d,"policy":"first-fit"}|}
             tr.Trace.width)));
  drive_prefix a tr cut;
  (* recover from the WAL alone *)
  let b = Server.create cfg in
  (match Server.recover_sessions b with
  | [ ("c", Ok _) ] -> ()
  | [ ("c", Error m) ] -> Alcotest.failf "recovery failed: %s" m
  | other -> Alcotest.failf "expected one recovered session, got %d" (List.length other));
  (* uninterrupted yardstick: the same prefix through a fresh session *)
  let yard = Session.create ~policy:Session.first_fit ~width:tr.Trace.width () in
  List.iteri
    (fun i ev -> if i < cut then Session.apply yard ev)
    tr.Trace.events;
  let recovered_peak = int_field "peak" (expect_ok "peak" (req b {|{"op":"peak","session":"c"}|})) in
  Alcotest.(check int)
    (Printf.sprintf "recovered peak (seed %d, cut %d/%d)" seed cut n_events)
    (Session.peak yard) recovered_peak;
  let snap = expect_ok "snapshot" (req b {|{"op":"snapshot","session":"c"}|}) in
  let live =
    match Option.bind (Json.member "live" snap) Json.to_list with
    | Some l ->
        List.map
          (fun e ->
            ( int_field "id" e,
              int_field "w" e,
              int_field "h" e,
              int_field "start" e ))
          l
    | None -> Alcotest.fail "snapshot without live list"
  in
  let _, _, _, yard_live = session_fingerprint yard in
  Alcotest.(check bool)
    "recovered live placements identical" true (live = yard_live);
  (* recovered sessions stay fully usable: keep replaying the tail on
     both sides and the states must stay in lockstep *)
  drive_prefix b { tr with Trace.events = List.filteri (fun i _ -> i >= cut) tr.Trace.events } n_events;
  List.iteri (fun i ev -> if i >= cut then Session.apply yard ev) tr.Trace.events;
  let final_peak = int_field "peak" (expect_ok "peak" (req b {|{"op":"peak","session":"c"}|})) in
  Alcotest.(check int) "post-recovery tail stays in lockstep" (Session.peak yard) final_peak;
  Server.close a;
  Server.close b

let recovery_tests =
  [
    case "crash differential: recovered state = uninterrupted run" (fun () ->
        for seed = 1 to 12 do
          crash_differential ~seed:(7000 + seed) ~compact_every:0 ()
        done);
    case "crash differential under aggressive compaction" (fun () ->
        for seed = 1 to 12 do
          crash_differential ~seed:(7100 + seed) ~compact_every:3 ()
        done);
    case "recovery after torn tail: acknowledged events survive" (fun () ->
        let dir = fresh_dir () in
        let cfg = { Server.default_config with Server.wal_dir = Some dir } in
        let a = Server.create cfg in
        ignore (expect_ok "open" (req a {|{"op":"open","session":"t","width":10}|}));
        ignore (expect_ok "arrive" (req a (arrive_line ~session:"t" 3 3)));
        ignore (expect_ok "arrive" (req a (arrive_line ~session:"t" 4 2)));
        (* crash mid-append of a third event *)
        Fault.arm
          { Fault.site = Dsp_util.Instr.Sites.wal_appends;
            action = Fault.Short;
            after = 1;
          };
        (Fun.protect ~finally:Fault.disarm (fun () ->
             let kind =
               expect_error "short write"
                 (req a {|{"op":"arrive","session":"t","w":5,"h":5}|})
             in
             Alcotest.(check string) "typed" "wal" (Protocol.kind_name kind)));
        let b = Server.create cfg in
        (match Server.recover_sessions b with
        | [ ("t", Ok _) ] -> ()
        | _ -> Alcotest.fail "expected session t to recover");
        let st = expect_ok "peak" (req b {|{"op":"peak","session":"t"}|}) in
        (* the two acknowledged arrivals are there; the torn third is
           not — exactly the at-most-acknowledged contract *)
        Alcotest.(check int) "arrivals" 2 (int_field "arrivals" st);
        Server.close a;
        Server.close b);
    case "multiple sessions recover independently" (fun () ->
        let dir = fresh_dir () in
        let cfg = { Server.default_config with Server.wal_dir = Some dir } in
        let a = Server.create cfg in
        ignore (expect_ok "open x" (req a {|{"op":"open","session":"x","width":6}|}));
        ignore (expect_ok "open y" (req a {|{"op":"open","session":"y","width":9}|}));
        ignore (expect_ok "ax" (req a {|{"op":"arrive","session":"x","w":2,"h":5}|}));
        ignore (expect_ok "ay" (req a {|{"op":"arrive","session":"y","w":9,"h":1}|}));
        let b = Server.create cfg in
        let recovered = Server.recover_sessions b in
        Alcotest.(check int) "two sessions" 2 (List.length recovered);
        List.iter
          (function
            | _, Ok _ -> ()
            | name, Error m -> Alcotest.failf "session %s: %s" name m)
          recovered;
        Alcotest.(check (list string))
          "names" [ "x"; "y" ] (Server.session_names b);
        Alcotest.(check int) "x peak" 5
          (int_field "peak" (expect_ok "px" (req b {|{"op":"peak","session":"x"}|})));
        Alcotest.(check int) "y peak" 1
          (int_field "peak" (expect_ok "py" (req b {|{"op":"peak","session":"y"}|})));
        (* close removes the durable state: a third server sees nothing *)
        ignore (expect_ok "close x" (req b {|{"op":"close","session":"x"}|}));
        ignore (expect_ok "close y" (req b {|{"op":"close","session":"y"}|}));
        let c = Server.create cfg in
        Alcotest.(check int) "nothing left" 0
          (List.length (Server.recover_sessions c));
        Server.close a;
        Server.close b;
        Server.close c);
  ]

(* ---- session restore ---- *)

let restore_tests =
  [
    case "session restore rebuilds the exact profile" (fun () ->
        for seed = 1 to 20 do
          let rng = Rng.create (9200 + seed) in
          let tr =
            Trace.churn rng ~width:(Rng.int_in rng 3 20) ~n:(Rng.int_in rng 1 30)
          in
          let sess = Session.replay ~policy:Session.best_fit tr in
          let st = Session.stats sess in
          let live =
            List.map
              (fun (id, (it : Dsp_core.Item.t), s) -> (id, it.w, it.h, s))
              (Session.live_items sess)
          in
          let restored =
            Session.restore ~policy:Session.best_fit ~width:(Session.width sess)
              ~n_arrived:st.Session.arrivals
              ~n_migrations:st.Session.migrations ~live ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "fingerprint (seed %d)" seed)
            true
            (session_fingerprint sess = session_fingerprint restored);
          (* both continue identically: restore is a true resume point *)
          let id_a = Session.arrive sess ~w:2 ~h:2 in
          let id_b = Session.arrive restored ~w:2 ~h:2 in
          Alcotest.(check int) "same id" id_a id_b;
          Alcotest.(check (option int))
            "same placement"
            (Session.start_of sess id_a)
            (Session.start_of restored id_b)
        done);
    case "restore rejects inconsistent snapshots" (fun () ->
        let expects_invalid f =
          match f () with
          | _ -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ()
        in
        expects_invalid (fun () ->
            Session.restore ~width:5 ~n_arrived:1 ~n_migrations:0
              ~live:[ (1, 2, 2, 0) ] ());
        expects_invalid (fun () ->
            Session.restore ~width:5 ~n_arrived:2 ~n_migrations:0
              ~live:[ (0, 2, 2, 0); (0, 1, 1, 3) ] ());
        expects_invalid (fun () ->
            Session.restore ~width:5 ~n_arrived:1 ~n_migrations:0
              ~live:[ (0, 4, 2, 3) ] ()));
  ]

(* ---- overload shedding and SLAs ---- *)

let overload_tests =
  [
    case "admission queue sheds typed overload errors" (fun () ->
        Dsp_util.Pool.with_pool ~jobs:1 (fun pool ->
            let t =
              Server.create ~pool
                {
                  Server.default_config with
                  Server.queue_limit = 1;
                  retry_after_ms = 123;
                }
            in
            let solve_line =
              {|{"op":"solve","width":9,"items":[[3,2],[4,1],[2,5]],"fallback":"bfd-height"}|}
            in
            (* first solve occupies the one admission slot... *)
            let first = Server.handle t solve_line in
            (match first with
            | Server.Later _ -> ()
            | Server.Now l -> Alcotest.failf "expected deferral, got %s" l);
            Alcotest.(check int) "inflight" 1 (Server.inflight t);
            (* ...so the next is shed with the configured hint, even
               though the pool may already be done: slots are released
               by the event loop's poll, deterministically *)
            (match (decode (req t solve_line)).Protocol.body with
            | Error (Protocol.Overloaded ms) ->
                Alcotest.(check int) "retry hint" 123 ms
            | Error k ->
                Alcotest.failf "expected overloaded, got %s" (Protocol.kind_name k)
            | Ok _ -> Alcotest.fail "expected overloaded, got ok");
            (* session ops are never shed: they don't hold pool slots *)
            ignore
              (expect_ok "open"
                 (req t {|{"op":"open","session":"s","width":5}|}));
            (* draining the deferral frees the slot and answers *)
            ignore (expect_ok "deferred solve" (drain first));
            Alcotest.(check int) "slot released" 0 (Server.inflight t);
            ignore (expect_ok "after drain" (req t solve_line))));
    case "per-request deadline degrades to the safety net, not a hang"
      (fun () ->
        let t = Server.create Server.default_config in
        let rng = Rng.create 4242 in
        let items =
          List.init 16 (fun _ ->
              Printf.sprintf "[%d,%d]" (Rng.int_in rng 2 9) (Rng.int_in rng 1 9))
          |> String.concat ","
        in
        let r =
          expect_ok "solve under 1ms"
            (req t
               (Printf.sprintf
                  {|{"op":"solve","width":18,"items":[%s],"timeout_ms":1,"fallback":"exact-bb"}|}
                  items))
        in
        (* whatever happened — timeout into the safety net or a very
           fast exact solve — the answer is a validated report *)
        Alcotest.(check bool) "has peak" true
          (int_field "peak" r >= int_field "lower_bound" r));
  ]

let suite =
  json_tests @ protocol_fuzz_tests @ semantics_tests @ wal_tests
  @ recovery_tests @ restore_tests @ overload_tests
