open Dsp_core

(* Brute-force references for differential testing. *)

let brute_dsp_opt inst =
  let n = Instance.n_items inst in
  let width = inst.Instance.width in
  let starts = Array.make n 0 in
  let best = ref max_int in
  let rec go k =
    if k = n then begin
      let h = Profile.peak (Profile.of_starts inst starts) in
      if h < !best then best := h
    end
    else
      let it = Instance.item inst k in
      for s = 0 to width - it.Item.w do
        starts.(k) <- s;
        go (k + 1)
      done
  in
  go 0;
  !best

let dsp_bb_tests =
  [
    Helpers.qtest ~count:60 "branch and bound matches brute force"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        QCheck.assume (Instance.n_items inst <= 5);
        match Dsp_exact.Dsp_bb.optimal_height inst with
        | Some h -> h = brute_dsp_opt inst
        | None -> true);
    Helpers.qtest "decision monotone in the height"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        match Dsp_exact.Dsp_bb.optimal_height inst with
        | None -> true
        | Some opt -> (
            (match Dsp_exact.Dsp_bb.decide inst ~height:(opt - 1) with
            | Dsp_exact.Dsp_bb.Infeasible -> true
            | _ -> false)
            &&
            match Dsp_exact.Dsp_bb.decide inst ~height:(opt + 1) with
            | Dsp_exact.Dsp_bb.Feasible pk ->
                Result.is_ok (Packing.validate pk) && Packing.height pk <= opt + 1
            | _ -> false));
    Alcotest.test_case "solves the empty instance" `Quick (fun () ->
        let inst = Instance.make ~width:3 [||] in
        Alcotest.check (Alcotest.option Alcotest.int) "zero" (Some 0)
          (Dsp_exact.Dsp_bb.optimal_height inst));
    Alcotest.test_case "known optimum" `Quick (fun () ->
        (* Three 2x2 squares in width 4: two side by side + one on
           top -> peak 4. *)
        let inst = Instance.of_dims ~width:4 [ (2, 2); (2, 2); (2, 2) ] in
        Alcotest.check (Alcotest.option Alcotest.int) "peak 4" (Some 4)
          (Dsp_exact.Dsp_bb.optimal_height inst));
  ]

let sp_exact_tests =
  [
    Helpers.qtest ~count:40 "sp optimum >= dsp optimum"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        match
          (Dsp_exact.Sp_exact.optimal_height inst, Dsp_exact.Dsp_bb.optimal_height inst)
        with
        | Some sp, Some dsp -> sp >= dsp
        | _ -> true);
    Helpers.qtest ~count:40 "sp witness is a valid rectangle packing"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        match Dsp_exact.Sp_exact.solve inst with
        | Some pk -> Result.is_ok (Rect_packing.validate pk)
        | None -> true);
    Helpers.qtest ~count:40 "y_feasible agrees with the witness height"
      (Helpers.tiny_instance_arb ()) (fun inst ->
        match Dsp_exact.Sp_exact.solve inst with
        | None -> true
        | Some pk ->
            let h = Rect_packing.height pk in
            let starts =
              Array.init (Instance.n_items inst) (fun i ->
                  (Rect_packing.position pk i).Rect_packing.x)
            in
            Dsp_exact.Sp_exact.y_feasible inst ~starts ~height:h <> None);
  ]

let three_partition_tests =
  [
    Alcotest.test_case "solves a hand-built yes instance" `Quick (fun () ->
        (* B = 12; triples (5,4,3) twice, disguised by shuffling. *)
        let numbers = [| 5; 4; 4; 3; 5; 3 |] in
        match Dsp_exact.Three_partition.solve ~numbers ~bound:12 () with
        | None -> Alcotest.fail "should be solvable"
        | Some triples ->
            Alcotest.check Alcotest.int "two triples" 2 (Array.length triples);
            Array.iter
              (fun (a, b, c) ->
                Alcotest.check Alcotest.int "sum" 12
                  (numbers.(a) + numbers.(b) + numbers.(c)))
              triples);
    Alcotest.test_case "rejects a no instance" `Quick (fun () ->
        (* Sum = 2B but every triple mixing 6s and 2s sums to 14 or
           10, never 12. *)
        let numbers = [| 6; 6; 6; 2; 2; 2 |] in
        Alcotest.check Alcotest.bool "unsolvable" false
          (Dsp_exact.Three_partition.solvable ~numbers ~bound:12 ()));
    Helpers.qtest ~count:30 "generated yes instances are solvable"
      (QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 0 1000)))
      (fun (k, seed) ->
        let rng = Dsp_util.Rng.create seed in
        let tp = Dsp_instance.Hardness.yes_instance rng ~k ~bound:16 in
        Dsp_exact.Three_partition.solvable ~numbers:tp.Dsp_instance.Hardness.numbers
          ~bound:16 ());
  ]

let pts_exact_tests =
  [
    Helpers.qtest ~count:30 "exact schedules are valid and optimal-looking"
      (Helpers.pts_arb ~max_m:4 ~max_n:6 ~max_p:4 ()) (fun inst ->
        match Dsp_exact.Pts_exact.solve ~node_limit:400_000 inst with
        | None -> true
        | Some sched ->
            Result.is_ok (Pts.Schedule.validate sched)
            && Pts.Schedule.makespan sched >= Pts.Inst.lower_bound inst
            && Pts.Schedule.makespan sched
               <= Dsp_pts.List_scheduling.makespan inst);
    Alcotest.test_case "known schedule optimum" `Quick (fun () ->
        (* 2 machines, jobs (2,2), (1,1), (1,1): block 2 then both
           singles in parallel -> makespan 3. *)
        let inst = Pts.Inst.of_dims ~machines:2 [ (2, 2); (1, 1); (1, 1) ] in
        Alcotest.check (Alcotest.option Alcotest.int) "makespan" (Some 3)
          (Dsp_exact.Pts_exact.optimal_makespan inst));
  ]

let gap_tests =
  [
    Alcotest.test_case "gap family has the advertised optima" `Slow (fun () ->
        let inst = Dsp_instance.Gap_family.instance ~scale:1 in
        Alcotest.check (Alcotest.option Alcotest.int) "dsp"
          (Some (Dsp_instance.Gap_family.expected_dsp_opt ~scale:1))
          (Dsp_exact.Dsp_bb.optimal_height inst);
        Alcotest.check (Alcotest.option Alcotest.int) "sp"
          (Some (Dsp_instance.Gap_family.expected_sp_opt ~scale:1))
          (Dsp_exact.Sp_exact.optimal_height inst));
    Alcotest.test_case "all witnesses have a strict gap" `Slow (fun () ->
        List.iter
          (fun inst ->
            match
              ( Dsp_exact.Dsp_bb.optimal_height inst,
                Dsp_exact.Sp_exact.optimal_height inst )
            with
            | Some dsp, Some sp ->
                if sp <= dsp then
                  Alcotest.failf "expected a gap, got sp=%d dsp=%d" sp dsp
            | _ -> Alcotest.fail "exact solver exhausted")
          Dsp_instance.Gap_family.slicing_wins);
  ]

let suite =
  dsp_bb_tests @ sp_exact_tests @ three_partition_tests @ pts_exact_tests
  @ gap_tests
