open Dsp_core
module Rat = Dsp_util.Rat

let classify_tests =
  [
    Helpers.qtest "classification covers every item exactly once"
      (Helpers.instance_arb ~max_width:20 ~max_n:15 ()) (fun inst ->
        let target = max 1 (Instance.lower_bound inst) in
        let p = Dsp_algo.Classify.choose_params inst ~target ~eps:(Rat.make 1 4) in
        let cls = Dsp_algo.Classify.classify inst p in
        Dsp_algo.Classify.total_items cls = Instance.n_items inst);
    Helpers.qtest "chosen thresholds bound the medium area"
      (Helpers.instance_arb ~max_width:20 ~max_n:15 ()) (fun inst ->
        let target = max 1 (Instance.lower_bound inst) in
        let eps = Rat.make 1 4 in
        let p = Dsp_algo.Classify.choose_params inst ~target ~eps in
        (* Lemma 2 with f = eps: medium area <= eps * W * target. *)
        let area_scale = inst.Instance.width * target in
        Rat.(of_int (Dsp_algo.Classify.medium_area inst p)
             <= mul eps (of_int area_scale)));
    Alcotest.test_case "categories on a crafted instance" `Quick (fun () ->
        (* width 100, target 100, eps = 1/4 -> delta = 1/4, mu = 1/64.
           (50, 80): tall needs w < 25: no; h > 25, w >= 25 -> large.
           (1, 80): tall. (1, 10): vertical (10 in (25/4=6.25? no...
           h in (deltaH', (1/4+eps)H') = (25, 50): 10 is below -> not
           vertical; h <= muH'? mu*100 = 1.5625; 10 > that -> medium. *)
        let inst = Instance.of_dims ~width:100 [ (50, 80); (1, 80); (1, 10) ] in
        let p =
          Dsp_algo.Classify.choose_params inst ~target:100 ~eps:(Rat.make 1 4)
        in
        let cls = Dsp_algo.Classify.classify inst p in
        Alcotest.check Alcotest.int "large" 1 (List.length cls.Dsp_algo.Classify.large);
        Alcotest.check Alcotest.int "tall" 1 (List.length cls.Dsp_algo.Classify.tall));
  ]

let rounding_tests =
  [
    Helpers.qtest "rounding never shrinks heights"
      (Helpers.instance_arb ~max_width:20 ~max_n:12 ()) (fun inst ->
        let target = max 1 (Instance.lower_bound inst) in
        let p = Dsp_algo.Classify.choose_params inst ~target ~eps:(Rat.make 1 4) in
        let r = Dsp_algo.Rounding.round_heights inst p in
        Array.for_all2
          (fun (a : Item.t) (b : Item.t) -> b.Item.h >= a.Item.h && a.Item.w = b.Item.w)
          inst.Instance.items r.Dsp_algo.Rounding.rounded.Instance.items);
    Helpers.qtest "restore keeps starts and only lowers the peak"
      (Helpers.instance_arb ~max_width:15 ~max_n:10 ()) (fun inst ->
        let target = max 1 (Instance.lower_bound inst) in
        let p = Dsp_algo.Classify.choose_params inst ~target ~eps:(Rat.make 1 4) in
        let r = Dsp_algo.Rounding.round_heights inst p in
        let pk =
          Dsp_algo.Baselines.best_fit_decreasing r.Dsp_algo.Rounding.rounded
        in
        let restored = Dsp_algo.Rounding.restore r pk in
        Packing.starts restored = Packing.starts pk
        && Packing.height restored <= Packing.height pk);
  ]

let config_fill_tests =
  [
    Helpers.qtest ~count:60 "fill conserves items and respects boxes"
      (Helpers.instance_arb ~max_width:20 ~max_n:10 ~max_h:4 ()) (fun inst ->
        let boxes =
          [
            { Dsp_algo.Budget_fit.x = 0; len = inst.Instance.width; base = 0; height = 8 };
          ]
        in
        let items = Array.to_list inst.Instance.items in
        match Dsp_algo.Config_fill.fill ~boxes ~items () with
        | None -> true
        | Some r ->
            let placed = List.map (fun p -> p.Dsp_algo.Config_fill.item) r.placements in
            List.length placed + List.length r.Dsp_algo.Config_fill.overflow
            = List.length items
            &&
            (* Column loads within the box height. *)
            let profile = Profile.create inst.Instance.width in
            List.iter
              (fun { Dsp_algo.Config_fill.item; start } ->
                Profile.add_item profile item ~start)
              r.Dsp_algo.Config_fill.placements;
            Profile.peak profile <= 8);
    Alcotest.test_case "perfectly divisible fill has no overflow" `Quick (fun () ->
        (* Four 1x2 items into a 4-wide box of height 2: one
           configuration, zero overflow expected from the LP. *)
        let items = List.init 4 (fun id -> Item.make ~id ~w:1 ~h:2) in
        let boxes = [ { Dsp_algo.Budget_fit.x = 0; len = 4; base = 0; height = 2 } ] in
        match Dsp_algo.Config_fill.fill ~boxes ~items () with
        | None -> Alcotest.fail "LP should be feasible"
        | Some r ->
            Alcotest.check Alcotest.int "overflow" 0
              (List.length r.Dsp_algo.Config_fill.overflow));
  ]

let algo_tests =
  (* The heuristic solvers come from the engine registry — the single
     algorithm table — rather than a private list. *)
  List.concat_map
    (fun (s : Dsp_engine.Solver.t) ->
      let name = s.Dsp_engine.Solver.name in
      [
        Helpers.qtest (name ^ " always returns a valid packing")
          (Helpers.instance_arb ~max_width:16 ~max_n:12 ())
          (fun inst ->
            let pk =
              s.Dsp_engine.Solver.solve
                ~budget:(Dsp_util.Budget.unlimited ()) inst
            in
            Result.is_ok (Packing.validate pk)
            && Instance.n_items (Packing.instance pk) = Instance.n_items inst);
      ])
    (Dsp_engine.Registry.heuristics ())
  @ [
      Helpers.qtest ~count:30 "approx54 stays within 5/4 + eps of optimum"
        (Helpers.tiny_instance_arb ()) (fun inst ->
          match Dsp_exact.Dsp_bb.optimal_height ~node_limit:500_000 inst with
          | None -> true
          | Some opt ->
              let h = Packing.height (Dsp_algo.Approx54.solve inst) in
              (* eps = 1/4 default; integer slack of 1 for tiny optima. *)
              h <= ((5 * opt) + 3) / 4 + 1);
      Helpers.qtest ~count:30 "approx53 stays within 5/3 of optimum"
        (Helpers.tiny_instance_arb ()) (fun inst ->
          match Dsp_exact.Dsp_bb.optimal_height ~node_limit:500_000 inst with
          | None -> true
          | Some opt ->
              Packing.height (Dsp_algo.Approx53.solve inst) <= (5 * opt / 3) + 1);
      Alcotest.test_case "approx54 solves a perfect-fit instance optimally"
        `Quick (fun () ->
          let rng = Dsp_util.Rng.create 5 in
          let inst =
            Dsp_instance.Generators.perfect_fit rng ~width:12 ~height:10 ~cuts:9
          in
          let pk, _ = Dsp_algo.Approx54.solve_with_stats inst in
          Alcotest.check Alcotest.bool "within 5/4 of 10" true
            (Packing.height pk <= 13));
    ]

let suite = classify_tests @ rounding_tests @ config_fill_tests @ algo_tests
