(* Crash-safe BENCH.json: atomic writes, and schema validation with
   descriptive errors on load. *)

module Bj = Dsp_bench.Bench_json

let with_clean f =
  Bj.clear ();
  Fun.protect ~finally:Bj.clear f

let in_temp_dir f =
  let dir = Filename.temp_file "dsp_bench_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let roundtrip_tests =
  [
    Alcotest.test_case "recorded metrics round-trip through write/load" `Quick
      (fun () ->
        with_clean (fun () ->
            in_temp_dir (fun dir ->
                Bj.record ~experiment:"E1" "seconds" (Bj.Float 1.25);
                Bj.record ~experiment:"E1" "status" (Bj.String "ok");
                Bj.record ~experiment:"E2" "nodes" (Bj.Int 42);
                Bj.record ~experiment:"E2" "status" (Bj.String "crashed");
                Bj.record ~experiment:"E2" "error" (Bj.String "boom \"quoted\"");
                let path = Filename.concat dir "BENCH.json" in
                Bj.write path;
                match Bj.load path with
                | Error e -> Alcotest.fail e
                | Ok p ->
                    Alcotest.(check string) "schema" Bj.schema_version p.Bj.schema;
                    Alcotest.(check (list string))
                      "experiment order" [ "E1"; "E2" ]
                      (List.map fst p.Bj.parsed_experiments);
                    let e2 = List.assoc "E2" p.Bj.parsed_experiments in
                    Alcotest.(check bool) "int metric" true
                      (List.assoc "nodes" e2 = Bj.Int 42);
                    Alcotest.(check bool) "escaped string metric" true
                      (List.assoc "error" e2 = Bj.String "boom \"quoted\""))));
    Alcotest.test_case "gc groups round-trip through write/load" `Quick
      (fun () ->
        with_clean (fun () ->
            in_temp_dir (fun dir ->
                Bj.record ~experiment:"kernel" "status" (Bj.String "ok");
                Bj.record_group ~experiment:"kernel" "storm_flat_gc"
                  [
                    ("minor_words", Bj.Float 0.25);
                    ("minor_collections", Bj.Int 0);
                  ];
                let path = Filename.concat dir "BENCH.json" in
                Bj.write path;
                match Bj.load path with
                | Error e -> Alcotest.fail e
                | Ok p ->
                    let k = List.assoc "kernel" p.Bj.parsed_experiments in
                    Alcotest.(check bool) "group metric" true
                      (List.assoc "storm_flat_gc" k
                      = Bj.Group
                          [
                            ("minor_words", Bj.Float 0.25);
                            ("minor_collections", Bj.Int 0);
                          ]))));
    Alcotest.test_case "record_group rejects nested groups" `Quick (fun () ->
        with_clean (fun () ->
            Alcotest.check_raises "nested group"
              (Invalid_argument
                 "Bench_json.record_group: nested group \"inner\" in \"outer\"")
              (fun () ->
                Bj.record_group ~experiment:"kernel" "outer"
                  [ ("inner", Bj.Group []) ])));
    Alcotest.test_case "write is atomic: no temp debris, old file survives a \
                        crashing render"
      `Quick (fun () ->
        with_clean (fun () ->
            in_temp_dir (fun dir ->
                let path = Filename.concat dir "BENCH.json" in
                Bj.record ~experiment:"E1" "status" (Bj.String "ok");
                Bj.write path;
                (* Overwrite with new content; the only files left must
                   be the destination itself — no orphaned temps. *)
                Bj.record ~experiment:"E1" "seconds" (Bj.Float 0.5);
                Bj.write path;
                Alcotest.(check (list string))
                  "directory contents" [ "BENCH.json" ]
                  (Array.to_list (Sys.readdir dir));
                Alcotest.(check bool) "file parses" true
                  (Result.is_ok (Bj.load path)))));
  ]

let validation_tests =
  let check_error name text fragment =
    Alcotest.test_case name `Quick (fun () ->
        match Bj.parse_string_result text with
        | Ok _ -> Alcotest.failf "accepted %S" text
        | Error msg ->
            let contains s sub =
              let n = String.length sub in
              let ok = ref false in
              for i = 0 to String.length s - n do
                if String.sub s i n = sub then ok := true
              done;
              !ok
            in
            Alcotest.(check bool)
              (Printf.sprintf "%S mentions %S" msg fragment)
              true (contains msg fragment))
  in
  [
    check_error "missing schema key" {|{"experiments": []}|} "schema";
    check_error "unknown schema version"
      {|{"schema": "dsp-bench/99", "experiments": []}|}
      "unknown schema";
    check_error "experiments not an array"
      {|{"schema": "dsp-bench/3", "experiments": 3}|}
      "not an array";
    check_error "entry without id"
      {|{"schema": "dsp-bench/3", "experiments": [{"x": 1}]}|}
      "missing \"id\"";
    check_error "non-scalar metric"
      {|{"schema": "dsp-bench/3", "experiments": [{"id": "E1", "m": [1]}]}|}
      "not a scalar";
    check_error "object metric under the pre-group schema"
      {|{"schema": "dsp-bench/3", "experiments": [{"id": "E1", "gc": {"minor_words": 0.0}}]}|}
      "not a scalar";
    check_error "nested group"
      {|{"schema": "dsp-bench/4", "experiments": [{"id": "E1", "gc": {"inner": {"x": 1}}}]}|}
      "not a scalar";
    Alcotest.test_case "one-level group loads under dsp-bench/4" `Quick
      (fun () ->
        match
          Bj.parse_string_result
            {|{"schema": "dsp-bench/4", "experiments": [{"id": "E1", "gc": {"minor_words": 0.5, "minor_collections": 3}}]}|}
        with
        | Ok p ->
            let e1 = List.assoc "E1" p.Bj.parsed_experiments in
            Alcotest.(check bool) "group parsed" true
              (List.assoc "gc" e1
              = Bj.Group
                  [
                    ("minor_words", Bj.Float 0.5);
                    ("minor_collections", Bj.Int 3);
                  ])
        | Error e -> Alcotest.fail e);
    check_error "truncated document"
      {|{"schema": "dsp-bench/3", "experiments": [|} "line 1";
    check_error "trailing garbage"
      {|{"schema": "dsp-bench/3", "experiments": []} extra|}
      "trailing garbage";
    Alcotest.test_case "previous schema version still loads" `Quick (fun () ->
        match
          Bj.parse_string_result
            {|{"schema": "dsp-bench/2", "experiments": [{"id": "E1", "seconds": 0.25}]}|}
        with
        | Ok p -> Alcotest.(check string) "schema" "dsp-bench/2" p.Bj.schema
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "load reports a readable path error" `Quick (fun () ->
        Alcotest.(check bool) "missing file is an Error" true
          (Result.is_error (Bj.load "/nonexistent/BENCH.json")));
  ]

let suite = roundtrip_tests @ validation_tests
