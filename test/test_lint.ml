(* dsp_lint golden suite: every rule against its fixture pair under
   tools/lint/fixtures, plus the three suppression channels, the
   --only selector, and the dune-graph scrape behind the R2 scope.
   Findings are projected to (rule, basename, line) so the assertions
   pin exact locations without caring about absolute paths. *)

module L = Lint_core

let fixtures = "../tools/lint/fixtures"
let fx name = Filename.concat fixtures name

(* A fixture-local config: designation by basename, fixture dir as the
   domain-shared/budgeted scope, the fixture sites table for R4. *)
let cfg =
  {
    L.r1_scope =
      [
        ("r1_bad.ml", L.All);
        ("r1_good.ml", L.All);
        ("r1_flat_bad.ml", L.All);
        ("r1_flat_good.ml", L.All);
        ("suppress.ml", L.All);
      ];
    r2_dirs = [ "fixtures" ];
    r3_dirs = [ "fixtures" ];
    r4_sites_file = Some "r4_sites.ml";
    r5_allow = [];
  }

let run ?only paths =
  let res = L.run ?only cfg paths in
  Alcotest.(check (list string)) "no parse errors" [] res.L.errors;
  List.map
    (fun f -> (L.rule_name f.L.rule, Filename.basename f.L.file, f.L.line))
    res.L.findings

let check = Alcotest.(check (list (triple string string int)))

let case name f = Alcotest.test_case name `Quick f

let rule_tests =
  [
    case "R1 flags raw arithmetic, exempts small literals" (fun () ->
        check "r1_bad"
          [ ("R1", "r1_bad.ml", 3); ("R1", "r1_bad.ml", 4) ]
          (run ~only:[ L.R1 ] [ fx "r1_bad.ml" ]));
    case "R1 accepts checked helpers and index idioms" (fun () ->
        check "r1_good" [] (run ~only:[ L.R1 ] [ fx "r1_good.ml" ]));
    case "R1 flags raw Bigarray-cell accumulation (flat-kernel style)" (fun () ->
        check "r1_flat_bad"
          [
            ("R1", "r1_flat_bad.ml", 3);
            ("R1", "r1_flat_bad.ml", 4);
            ("R1", "r1_flat_bad.ml", 5);
          ]
          (run ~only:[ L.R1 ] [ fx "r1_flat_bad.ml" ]));
    case "R1 accepts saturating thresholds and waivered guard sites" (fun () ->
        check "r1_flat_good" [] (run ~only:[ L.R1 ] [ fx "r1_flat_good.ml" ]));
    case "R2 flags bare toplevel mutable state" (fun () ->
        check "r2_bad"
          [ ("R2", "r2_bad.ml", 2); ("R2", "r2_bad.ml", 3); ("R2", "r2_bad.ml", 4) ]
          (run ~only:[ L.R2 ] [ fx "r2_bad.ml" ]));
    case "R2 accepts Atomic/DLS/Mutex/per-call and the local waiver" (fun () ->
        check "r2_good" [] (run ~only:[ L.R2 ] [ fx "r2_good.ml" ]));
    case "R2 flags an unguarded hand-rolled stealing deque" (fun () ->
        check "r2_deque_bad"
          [
            ("R2", "r2_deque_bad.ml", 3);
            ("R2", "r2_deque_bad.ml", 4);
            ("R2", "r2_deque_bad.ml", 5);
          ]
          (run ~only:[ L.R2 ] [ fx "r2_deque_bad.ml" ]));
    case "R2 accepts the Atomic-indexed deque with a waived ring" (fun () ->
        check "r2_deque_good" [] (run ~only:[ L.R2 ] [ fx "r2_deque_good.ml" ]));
    case "R3 flags checkpoint-free recursion" (fun () ->
        check "r3_bad"
          [ ("R3", "r3_bad.ml", 3) ]
          (run ~only:[ L.R3 ] [ fx "r3_bad.ml" ]));
    case "R3 accepts direct and helper-mediated checkpoints" (fun () ->
        check "r3_good" [] (run ~only:[ L.R3 ] [ fx "r3_good.ml" ]));
    case "R4 flags off-table literals and dead sites" (fun () ->
        check "r4_bad"
          [ ("R4", "r4_bad.ml", 4); ("R4", "r4_sites.ml", 4) ]
          (run ~only:[ L.R4 ] [ fx "r4_sites.ml"; fx "r4_bad.ml" ]));
    case "R4 accepts table bindings and canonical literals" (fun () ->
        check "r4_good" []
          (run ~only:[ L.R4 ] [ fx "r4_sites.ml"; fx "r4_good.ml" ]));
    case "R4 reports a missing sites table instead of going silent" (fun () ->
        check "r4_missing"
          [ ("R4", "r4_sites.ml", 1) ]
          (run ~only:[ L.R4 ] [ fx "r4_bad.ml" ]));
    case "R5 flags try-wildcard and exception-wildcard" (fun () ->
        check "r5_bad"
          [ ("R5", "r5_bad.ml", 2); ("R5", "r5_bad.ml", 4) ]
          (run ~only:[ L.R5 ] [ fx "r5_bad.ml" ]));
    case "R5 accepts named handlers and rebind-and-reraise" (fun () ->
        check "r5_good" [] (run ~only:[ L.R5 ] [ fx "r5_good.ml" ]));
    case "R5 honours the absorber allowlist" (fun () ->
        let allowed = { cfg with L.r5_allow = [ "r5_bad.ml" ] } in
        let res = L.run ~only:[ L.R5 ] allowed [ fx "r5_bad.ml" ] in
        check "allowlisted" [] (List.map (fun f ->
            (L.rule_name f.L.rule, Filename.basename f.L.file, f.L.line))
            res.L.findings));
  ]

let suppression_tests =
  [
    case "file attribute and line waivers silence real findings" (fun () ->
        check "suppress" []
          (run ~only:[ L.R1; L.R3; L.R5 ] [ fx "suppress.ml" ]));
    case "--only restricts the rule set over the whole corpus" (fun () ->
        check "only R5"
          [ ("R5", "r5_bad.ml", 2); ("R5", "r5_bad.ml", 4) ]
          (run ~only:[ L.R5 ] [ fixtures ]));
  ]

let plumbing_tests =
  [
    case "findings print as file:line:col [rule] message" (fun () ->
        Alcotest.(check string)
          "format" "a.ml:3:7 [R1] m"
          (L.finding_to_string
             { L.rule = L.R1; file = "a.ml"; line = 3; col = 7; msg = "m" }));
    case "rule names round-trip through rule_of_string" (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (L.rule_name r) true
              (L.rule_of_string (L.rule_name r) = Some r))
          L.all_rules;
        Alcotest.(check bool) "junk rejected" true (L.rule_of_string "R12" = None));
    case "R2 scope follows the dune graph from the engine roots" (fun () ->
        (* The test binary runs in _build/default/test; the parent holds
           the copied dune files of every library. *)
        let dirs = (L.project_config ~root:"..").L.r2_dirs in
        List.iter
          (fun d ->
            Alcotest.(check bool) (d ^ " reachable") true (List.mem d dirs))
          [ "lib/util"; "lib/core"; "lib/exact"; "lib/engine"; "lib/serve" ];
        Alcotest.(check bool) "augment is outside the engine cone" false
          (List.mem "lib/augment" dirs));
  ]

(* ----- whole-program rules (R6-R9, parsetree front-end) -------------- *)

module W = Lint_whole

(* Fixture roots: each fixture's entry points stand in for the
   production Segtree hot paths / Server.handle. *)
let wcfg =
  {
    W.r7_roots =
      [ "R7_bad.range_add"; "R7_good.range_add"; "Suppress_whole.hot" ];
    r8_roots = [ "R8_bad.handle"; "R8_good.handle"; "Suppress_whole.handle" ];
  }

let wrun ?only ?cache_dir paths =
  let res = W.run_files ?only ?cache_dir ~config:wcfg paths in
  Alcotest.(check (list string)) "no parse errors" [] res.W.errors;
  List.map
    (fun f -> (L.rule_name f.L.rule, Filename.basename f.L.file, f.L.line))
    res.W.findings

let whole_rule_tests =
  [
    case "R6 flags both edges of an ABBA cycle and a re-acquire" (fun () ->
        check "r6_bad"
          [
            ("R6", "r6_bad.ml", 9);
            ("R6", "r6_bad.ml", 15);
            ("R6", "r6_bad.ml", 21);
          ]
          (wrun ~only:[ L.R6 ] [ fx "r6_bad.ml" ]));
    case "R6 accepts a consistent order, including under Fun.protect"
      (fun () -> check "r6_good" [] (wrun ~only:[ L.R6 ] [ fx "r6_good.ml" ]));
    case "R7 flags a seeded closure and a reachable allocator, not cold code"
      (fun () ->
        check "r7_bad"
          [ ("R7", "r7_bad.ml", 5); ("R7", "r7_bad.ml", 8) ]
          (wrun ~only:[ L.R7 ] [ fx "r7_bad.ml" ]));
    case "R7 certifies an in-place hot path with a cold allocator nearby"
      (fun () -> check "r7_good" [] (wrun ~only:[ L.R7 ] [ fx "r7_good.ml" ]));
    case "R8 flags mutate-before-append and append-before-validate" (fun () ->
        check "r8_bad"
          [ ("R8", "r8_bad.ml", 8); ("R8", "r8_bad.ml", 9) ]
          (wrun ~only:[ L.R8 ] [ fx "r8_bad.ml" ]));
    case "R8 accepts validate-append-mutate through a helper" (fun () ->
        check "r8_good" [] (wrun ~only:[ L.R8 ] [ fx "r8_good.ml" ]));
    case "R9 flags IO under lock: direct, via helper, via locked closure"
      (fun () ->
        check "r9_bad"
          [
            ("R9", "r9_bad.ml", 9);
            ("R9", "r9_bad.ml", 14);
            ("R9", "r9_bad.ml", 23);
          ]
          (wrun ~only:[ L.R9 ] [ fx "r9_bad.ml" ]));
    case "R9 accepts IO outside the section and Condition.wait" (fun () ->
        check "r9_good" [] (wrun ~only:[ L.R9 ] [ fx "r9_good.ml" ]));
    case "line waivers silence R6-R9 findings" (fun () ->
        check "suppress_whole" []
          (wrun
             ~only:[ L.R6; L.R7; L.R8; L.R9 ]
             [ fx "suppress_whole.ml" ]));
  ]

let cache_tests =
  let write path text =
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc
  in
  [
    case "summary cache: warm reruns hit, an edit re-analyzes one unit"
      (fun () ->
        let dir = "lint_cache_scratch" in
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
        let cache_dir = Filename.concat dir "cache" in
        let names = [ "r6_good.ml"; "r9_good.ml" ] in
        List.iter
          (fun n -> write (Filename.concat dir n) (L.read_file (fx n)))
          names;
        let paths = List.map (Filename.concat dir) names in
        let counts () =
          let r = W.run_files ~cache_dir ~config:wcfg paths in
          Alcotest.(check (list string)) "no parse errors" [] r.W.errors;
          (r.W.analyzed, r.W.cached)
        in
        let pair = Alcotest.(pair int int) in
        Alcotest.check pair "cold run analyzes both" (2, 0) (counts ());
        Alcotest.check pair "warm run hits both" (0, 2) (counts ());
        write
          (Filename.concat dir "r9_good.ml")
          (L.read_file (fx "r9_good.ml") ^ "\nlet touched = ()\n");
        Alcotest.check pair "edit re-analyzes exactly one" (1, 1) (counts ()));
  ]

let suite =
  rule_tests @ suppression_tests @ plumbing_tests @ whole_rule_tests
  @ cache_tests
