(* dsp_lint golden suite: every rule against its fixture pair under
   tools/lint/fixtures, plus the three suppression channels, the
   --only selector, and the dune-graph scrape behind the R2 scope.
   Findings are projected to (rule, basename, line) so the assertions
   pin exact locations without caring about absolute paths. *)

module L = Lint_core

let fixtures = "../tools/lint/fixtures"
let fx name = Filename.concat fixtures name

(* A fixture-local config: designation by basename, fixture dir as the
   domain-shared/budgeted scope, the fixture sites table for R4. *)
let cfg =
  {
    L.r1_scope =
      [
        ("r1_bad.ml", L.All);
        ("r1_good.ml", L.All);
        ("r1_flat_bad.ml", L.All);
        ("r1_flat_good.ml", L.All);
        ("suppress.ml", L.All);
      ];
    r2_dirs = [ "fixtures" ];
    r3_dirs = [ "fixtures" ];
    r4_sites_file = Some "r4_sites.ml";
    r5_allow = [];
  }

let run ?only paths =
  let res = L.run ?only cfg paths in
  Alcotest.(check (list string)) "no parse errors" [] res.L.errors;
  List.map
    (fun f -> (L.rule_name f.L.rule, Filename.basename f.L.file, f.L.line))
    res.L.findings

let check = Alcotest.(check (list (triple string string int)))

let case name f = Alcotest.test_case name `Quick f

let rule_tests =
  [
    case "R1 flags raw arithmetic, exempts small literals" (fun () ->
        check "r1_bad"
          [ ("R1", "r1_bad.ml", 3); ("R1", "r1_bad.ml", 4) ]
          (run ~only:[ L.R1 ] [ fx "r1_bad.ml" ]));
    case "R1 accepts checked helpers and index idioms" (fun () ->
        check "r1_good" [] (run ~only:[ L.R1 ] [ fx "r1_good.ml" ]));
    case "R1 flags raw Bigarray-cell accumulation (flat-kernel style)" (fun () ->
        check "r1_flat_bad"
          [
            ("R1", "r1_flat_bad.ml", 3);
            ("R1", "r1_flat_bad.ml", 4);
            ("R1", "r1_flat_bad.ml", 5);
          ]
          (run ~only:[ L.R1 ] [ fx "r1_flat_bad.ml" ]));
    case "R1 accepts saturating thresholds and waivered guard sites" (fun () ->
        check "r1_flat_good" [] (run ~only:[ L.R1 ] [ fx "r1_flat_good.ml" ]));
    case "R2 flags bare toplevel mutable state" (fun () ->
        check "r2_bad"
          [ ("R2", "r2_bad.ml", 2); ("R2", "r2_bad.ml", 3); ("R2", "r2_bad.ml", 4) ]
          (run ~only:[ L.R2 ] [ fx "r2_bad.ml" ]));
    case "R2 accepts Atomic/DLS/Mutex/per-call and the local waiver" (fun () ->
        check "r2_good" [] (run ~only:[ L.R2 ] [ fx "r2_good.ml" ]));
    case "R2 flags an unguarded hand-rolled stealing deque" (fun () ->
        check "r2_deque_bad"
          [
            ("R2", "r2_deque_bad.ml", 3);
            ("R2", "r2_deque_bad.ml", 4);
            ("R2", "r2_deque_bad.ml", 5);
          ]
          (run ~only:[ L.R2 ] [ fx "r2_deque_bad.ml" ]));
    case "R2 accepts the Atomic-indexed deque with a waived ring" (fun () ->
        check "r2_deque_good" [] (run ~only:[ L.R2 ] [ fx "r2_deque_good.ml" ]));
    case "R3 flags checkpoint-free recursion" (fun () ->
        check "r3_bad"
          [ ("R3", "r3_bad.ml", 3) ]
          (run ~only:[ L.R3 ] [ fx "r3_bad.ml" ]));
    case "R3 accepts direct and helper-mediated checkpoints" (fun () ->
        check "r3_good" [] (run ~only:[ L.R3 ] [ fx "r3_good.ml" ]));
    case "R4 flags off-table literals and dead sites" (fun () ->
        check "r4_bad"
          [ ("R4", "r4_bad.ml", 4); ("R4", "r4_sites.ml", 4) ]
          (run ~only:[ L.R4 ] [ fx "r4_sites.ml"; fx "r4_bad.ml" ]));
    case "R4 accepts table bindings and canonical literals" (fun () ->
        check "r4_good" []
          (run ~only:[ L.R4 ] [ fx "r4_sites.ml"; fx "r4_good.ml" ]));
    case "R4 reports a missing sites table instead of going silent" (fun () ->
        check "r4_missing"
          [ ("R4", "r4_sites.ml", 1) ]
          (run ~only:[ L.R4 ] [ fx "r4_bad.ml" ]));
    case "R5 flags try-wildcard and exception-wildcard" (fun () ->
        check "r5_bad"
          [ ("R5", "r5_bad.ml", 2); ("R5", "r5_bad.ml", 4) ]
          (run ~only:[ L.R5 ] [ fx "r5_bad.ml" ]));
    case "R5 accepts named handlers and rebind-and-reraise" (fun () ->
        check "r5_good" [] (run ~only:[ L.R5 ] [ fx "r5_good.ml" ]));
    case "R5 honours the absorber allowlist" (fun () ->
        let allowed = { cfg with L.r5_allow = [ "r5_bad.ml" ] } in
        let res = L.run ~only:[ L.R5 ] allowed [ fx "r5_bad.ml" ] in
        check "allowlisted" [] (List.map (fun f ->
            (L.rule_name f.L.rule, Filename.basename f.L.file, f.L.line))
            res.L.findings));
  ]

let suppression_tests =
  [
    case "file attribute and line waivers silence real findings" (fun () ->
        check "suppress" []
          (run ~only:[ L.R1; L.R3; L.R5 ] [ fx "suppress.ml" ]));
    case "--only restricts the rule set over the whole corpus" (fun () ->
        check "only R5"
          [ ("R5", "r5_bad.ml", 2); ("R5", "r5_bad.ml", 4) ]
          (run ~only:[ L.R5 ] [ fixtures ]));
  ]

let plumbing_tests =
  [
    case "findings print as file:line:col [rule] message" (fun () ->
        Alcotest.(check string)
          "format" "a.ml:3:7 [R1] m"
          (L.finding_to_string
             { L.rule = L.R1; file = "a.ml"; line = 3; col = 7; msg = "m" }));
    case "rule names round-trip through rule_of_string" (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (L.rule_name r) true
              (L.rule_of_string (L.rule_name r) = Some r))
          L.all_rules;
        Alcotest.(check bool) "junk rejected" true (L.rule_of_string "R9" = None));
    case "R2 scope follows the dune graph from the engine roots" (fun () ->
        (* The test binary runs in _build/default/test; the parent holds
           the copied dune files of every library. *)
        let dirs = (L.project_config ~root:"..").L.r2_dirs in
        List.iter
          (fun d ->
            Alcotest.(check bool) (d ^ " reachable") true (List.mem d dirs))
          [ "lib/util"; "lib/core"; "lib/exact"; "lib/engine"; "lib/serve" ];
        Alcotest.(check bool) "augment is outside the engine cone" false
          (List.mem "lib/augment" dirs));
  ]

let suite = rule_tests @ suppression_tests @ plumbing_tests
