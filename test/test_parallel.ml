(* Multicore layer: the domain pool, per-domain Instr aggregation,
   one-shot faults under contention, the parallel branch-and-bound
   (differential against the serial solver), and the racing runner. *)

module Pool = Dsp_util.Pool
module Budget = Dsp_util.Budget
module Instr = Dsp_util.Instr
module Fault = Dsp_util.Fault
module Runner = Dsp_engine.Runner
module Registry = Dsp_engine.Registry
module Report = Dsp_engine.Report
module Rng = Dsp_util.Rng
module Gen = Dsp_instance.Generators
module Bb = Dsp_exact.Dsp_bb
module Wsdeque = Dsp_util.Wsdeque

let find = Registry.find_exn

let with_fault plan f =
  Fault.arm plan;
  Fun.protect ~finally:Fault.disarm f

(* Small seeded corpus the exact solver cracks quickly. *)
let corpus () =
  List.concat_map
    (fun seed ->
      let rng () = Rng.create seed in
      [
        Gen.uniform (rng ()) ~n:(5 + (seed mod 4)) ~width:(8 + (seed mod 5))
          ~max_w:6 ~max_h:8;
        Gen.tall_and_flat (rng ()) ~n:(4 + (seed mod 3)) ~width:10 ~max_h:7;
        Gen.correlated (rng ()) ~n:(4 + (seed mod 4)) ~width:9 ~max_w:5 ~max_h:6;
      ])
    [ 0; 1; 2; 3; 4; 5 ]

(* Seed picked so the exact branch-and-bound needs tens of seconds:
   a reliable victim for deadlines and cancellation. *)
let hard_instance () =
  let rng = Rng.create 2 in
  Gen.uniform rng ~n:28 ~width:24 ~max_w:12 ~max_h:10

let pool_tests =
  [
    Alcotest.test_case "map preserves order and values" `Quick (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let xs = List.init 100 Fun.id in
            Alcotest.(check (list int))
              "squares" (List.map (fun x -> x * x) xs)
              (Pool.map pool (fun x -> x * x) xs)));
    Alcotest.test_case "await re-raises the task's exception" `Quick (fun () ->
        Pool.with_pool ~jobs:2 (fun pool ->
            let fut = Pool.submit pool (fun () -> failwith "boom") in
            Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
                Pool.await fut)));
    Alcotest.test_case "run_all isolates failures per task" `Quick (fun () ->
        Pool.with_pool ~jobs:3 (fun pool ->
            let outcomes =
              Pool.run_all pool
                [
                  (fun () -> 1);
                  (fun () -> failwith "poisoned");
                  (fun () -> 3);
                ]
            in
            (match outcomes with
            | [ Ok 1; Error (Failure _); Ok 3 ] -> ()
            | _ -> Alcotest.fail "wrong outcome shape");
            (* The pool survived the poisoned task. *)
            Alcotest.(check (list int)) "still alive" [ 10; 20 ]
              (Pool.map pool (fun x -> 10 * x) [ 1; 2 ])));
    Alcotest.test_case "submit after shutdown is refused" `Quick (fun () ->
        let pool = Pool.create ~jobs:2 in
        Pool.shutdown pool;
        Pool.shutdown pool (* idempotent *);
        Alcotest.(check bool) "refused" true
          (try
             ignore (Pool.submit pool (fun () -> ()));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "default_jobs override wins" `Quick (fun () ->
        let before = Pool.default_jobs () in
        Pool.set_default_jobs 3;
        Alcotest.(check int) "override" 3 (Pool.default_jobs ());
        Pool.set_default_jobs before;
        Alcotest.(check int) "restored" before (Pool.default_jobs ()));
  ]

let instr_tests =
  [
    Alcotest.test_case "aggregation is exact after join: 4 domains x 5000"
      `Quick (fun () ->
        let c = Instr.counter "test.par.bumps" in
        let before = Instr.value c in
        Pool.with_pool ~jobs:4 (fun pool ->
            ignore
              (Pool.run_all pool
                 (List.init 4 (fun _ () ->
                      for _ = 1 to 5000 do
                        Instr.bump c
                      done))));
        (* Workers are joined: the per-domain deltas must sum exactly. *)
        Alcotest.(check int) "sum of per-domain deltas" 20_000
          (Instr.value c - before));
    Alcotest.test_case "snapshot delta sees cross-domain work" `Quick
      (fun () ->
        let c = Instr.counter "test.par.delta" in
        let before = Instr.snapshot () in
        Pool.with_pool ~jobs:3 (fun pool ->
            ignore
              (Pool.run_all pool
                 (List.init 3 (fun _ () ->
                      for _ = 1 to 111 do
                        Instr.bump c
                      done))));
        let delta = Instr.delta ~before ~after:(Instr.snapshot ()) in
        Alcotest.(check (option int))
          "delta" (Some 333)
          (List.assoc_opt "test.par.delta" delta));
    Alcotest.test_case "one-shot fault fires exactly once under contention"
      `Quick (fun () ->
        let c = Instr.counter "test.par.fault" in
        let outcomes =
          with_fault
            { Fault.site = "test.par.fault"; action = Fault.Raise; after = 1 }
            (fun () ->
              Pool.with_pool ~jobs:4 (fun pool ->
                  Pool.run_all pool
                    (List.init 4 (fun _ () ->
                         for _ = 1 to 1000 do
                           Instr.bump c
                         done))))
        in
        let raised =
          List.length (List.filter Result.is_error outcomes)
        in
        Alcotest.(check int) "exactly one worker hit the fault" 1 raised;
        List.iter
          (function
            | Error e ->
                Alcotest.(check bool) "typed Injected" true
                  (match e with Fault.Injected _ -> true | _ -> false)
            | Ok () -> ())
          outcomes);
  ]

(* Records are (id, id * 31 + 7): the payload column catches torn or
   misaligned copies, the id column feeds the exactly-once ledger. *)
let payload_of id = (id * 31) + 7

let deque_tests =
  [
    Alcotest.test_case "empty deque refuses pop and steal" `Quick (fun () ->
        let dq = Wsdeque.create ~slots:4 ~record_width:3 in
        let buf = Array.make 3 0 in
        Alcotest.(check bool) "pop" false (Wsdeque.pop dq buf);
        Alcotest.(check bool) "steal" false (Wsdeque.steal dq buf);
        Alcotest.(check int) "size" 0 (Wsdeque.size dq));
    Alcotest.test_case "capacity rounds up to a power of two" `Quick (fun () ->
        Alcotest.(check int) "5 -> 8" 8
          (Wsdeque.capacity (Wsdeque.create ~slots:5 ~record_width:1));
        Alcotest.(check int) "1 -> 2" 2
          (Wsdeque.capacity (Wsdeque.create ~slots:1 ~record_width:1));
        Alcotest.(check int) "8 stays 8" 8
          (Wsdeque.capacity (Wsdeque.create ~slots:8 ~record_width:1));
        Alcotest.(check int) "record width" 4
          (Wsdeque.record_width (Wsdeque.create ~slots:2 ~record_width:4));
        let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "slots < 1 rejected" true
          (rejects (fun () -> Wsdeque.create ~slots:0 ~record_width:1));
        Alcotest.(check bool) "record_width < 1 rejected" true
          (rejects (fun () -> Wsdeque.create ~slots:4 ~record_width:0)));
    Alcotest.test_case "full deque refuses the push, drains, accepts again"
      `Quick (fun () ->
        let dq = Wsdeque.create ~slots:4 ~record_width:1 in
        for i = 0 to 3 do
          Alcotest.(check bool) (Printf.sprintf "push %d" i) true
            (Wsdeque.push dq [| i |])
        done;
        Alcotest.(check bool) "5th push refused" false (Wsdeque.push dq [| 4 |]);
        Alcotest.(check int) "still 4 records" 4 (Wsdeque.size dq);
        let buf = [| -1 |] in
        Alcotest.(check bool) "pop" true (Wsdeque.pop dq buf);
        Alcotest.(check int) "refused record was not written" 3 buf.(0);
        Alcotest.(check bool) "room again" true (Wsdeque.push dq [| 9 |]));
    Alcotest.test_case "owner pops LIFO, thieves steal FIFO" `Quick (fun () ->
        let dq = Wsdeque.create ~slots:8 ~record_width:2 in
        List.iter
          (fun id -> assert (Wsdeque.push dq [| id; payload_of id |]))
          [ 1; 2; 3; 4 ];
        let buf = [| 0; 0 |] in
        let take name f expected =
          Alcotest.(check bool) (name ^ " succeeds") true (f dq buf);
          Alcotest.(check int) name expected buf.(0);
          Alcotest.(check int) (name ^ " payload") (payload_of expected) buf.(1)
        in
        take "pop newest" Wsdeque.pop 4;
        take "steal oldest" Wsdeque.steal 1;
        take "steal next-oldest" Wsdeque.steal 2;
        take "pop the rest" Wsdeque.pop 3;
        Alcotest.(check bool) "empty" false (Wsdeque.pop dq buf));
    Alcotest.test_case "slot reuse far past the capacity (wraparound)" `Quick
      (fun () ->
        let dq = Wsdeque.create ~slots:2 ~record_width:2 in
        let buf = [| 0; 0 |] in
        (* Single-record cycles walk top/bottom 32x around the ring. *)
        for i = 0 to 63 do
          assert (Wsdeque.push dq [| i; payload_of i |]);
          Alcotest.(check bool) "steal" true (Wsdeque.steal dq buf);
          Alcotest.(check int) "id round-trips" i buf.(0);
          Alcotest.(check int) "payload round-trips" (payload_of i) buf.(1)
        done;
        (* Two-in, steal-one, pop-one: both ends move every cycle. *)
        for i = 0 to 49 do
          let a = 1000 + (2 * i) and b = 1001 + (2 * i) in
          assert (Wsdeque.push dq [| a; payload_of a |]);
          assert (Wsdeque.push dq [| b; payload_of b |]);
          Alcotest.(check bool) "steal" true (Wsdeque.steal dq buf);
          Alcotest.(check int) "oldest stolen" a buf.(0);
          Alcotest.(check bool) "pop" true (Wsdeque.pop dq buf);
          Alcotest.(check int) "newest popped" b buf.(0)
        done;
        Alcotest.(check int) "drained" 0 (Wsdeque.size dq));
    Alcotest.test_case
      "stress: 3 thieves vs pushing owner, exactly-once accounting" `Quick
      (fun () ->
        (* The owner pushes 20k unique records through a 64-slot deque,
           consuming inline on full-deque refusals and popping every
           7th round; three thief domains steal concurrently.  Every id
           must land in exactly one consumer's ledger: a sorted-list
           equality catches losses, duplicates and phantom records
           alike, and each consumer validates the payload column before
           accepting a record (a torn copy fails there first). *)
        let n = 20_000 in
        let dq = Wsdeque.create ~slots:64 ~record_width:2 in
        let finished = Atomic.make false in
        let consume ~who buf acc =
          if buf.(1) <> payload_of buf.(0) then
            Alcotest.failf "%s read a torn record: (%d, %d)" who buf.(0) buf.(1);
          buf.(0) :: acc
        in
        let thief who =
          Domain.spawn (fun () ->
              let buf = [| 0; 0 |] in
              let rec loop acc =
                if Wsdeque.steal dq buf then loop (consume ~who buf acc)
                else if Atomic.get finished then acc
                else begin
                  Domain.cpu_relax ();
                  loop acc
                end
              in
              loop [])
        in
        let thieves = List.map thief [ "t0"; "t1"; "t2" ] in
        let buf = [| 0; 0 |] and scratch = [| 0; 0 |] in
        let mine = ref [] in
        for id = 0 to n - 1 do
          buf.(0) <- id;
          buf.(1) <- payload_of id;
          if not (Wsdeque.push dq buf) then
            (* Full: the caller keeps the record — consume it inline,
               exactly as the B&B worker expands the subtree itself. *)
            mine := consume ~who:"owner" buf !mine;
          if id mod 7 = 0 && Wsdeque.pop dq scratch then
            mine := consume ~who:"owner" scratch !mine
        done;
        while Wsdeque.pop dq scratch do
          mine := consume ~who:"owner" scratch !mine
        done;
        Atomic.set finished true;
        let stolen = List.concat_map Domain.join thieves in
        Alcotest.(check int)
          "all three thieves and the owner joined cleanly" 0 (Wsdeque.size dq);
        let ledger = List.sort compare (!mine @ stolen) in
        Alcotest.(check (list int))
          "every record consumed exactly once" (List.init n Fun.id) ledger);
  ]

let check_opt msg expected actual =
  Alcotest.(check (option int)) msg expected actual

(* One full-width dominant item plus small filler (the bench
   experiment's skew shape): the dominant item sorts first and admits
   exactly one start column, so the search root has a single subtree
   and only stealing can hand work to domains other than 0. *)
let skewed_instance () =
  let rng = Rng.create 35 in
  let width = 24 in
  let dims =
    (width, 8)
    :: List.init 27 (fun _ -> (1 + Rng.int rng (width / 3), 1 + Rng.int rng 10))
  in
  Dsp_core.Instance.of_dims ~width dims

let par_height ?stats ~jobs inst =
  match Bb.solve_par ?stats ~jobs inst with
  | Some pk -> Some (Dsp_core.Packing.height pk)
  | None -> None

let skew_tests =
  [
    Alcotest.test_case
      "skew regression: stealing balances a single-subtree root" `Quick
      (fun () ->
        let inst = skewed_instance () in
        let stats = ref None in
        check_opt "optimum matches serial" (Bb.optimal_height inst)
          (par_height ~stats ~jobs:4 inst);
        let st = Option.get !stats in
        Alcotest.(check int) "4 domains ran" 4 st.Bb.domains;
        Alcotest.(check bool)
          (Printf.sprintf "steals happened (%d)" st.Bb.steals)
          true (st.Bb.steals > 0);
        let nodes = Array.to_list st.Bb.nodes_per_domain in
        List.iteri
          (fun i k ->
            Alcotest.(check bool)
              (Printf.sprintf "domain %d expanded nodes (%d)" i k)
              true (k > 0))
          nodes;
        (* The root has one subtree, so without stealing the ratio is
           infinite (domains 1-3 idle).  With stealing the observed
           spread is ~1.3-3x; 8x leaves slack for scheduler noise
           while still failing on any rebalancing regression. *)
        let worst = List.fold_left max 0 nodes in
        let best = List.fold_left min max_int nodes in
        Alcotest.(check bool)
          (Printf.sprintf "bounded imbalance (worst/best = %d/%d)" worst best)
          true (worst <= 8 * best));
    Alcotest.test_case "skew regression: round-robin ablation still agrees"
      `Quick (fun () ->
        let inst = skewed_instance () in
        let dealt =
          match Bb.solve_par_dealt ~jobs:4 inst with
          | Some pk -> Some (Dsp_core.Packing.height pk)
          | None -> None
        in
        check_opt "dealt scheduler optimum" (Bb.optimal_height inst) dealt);
  ]

let solve_par_tests =
  [
    Alcotest.test_case "differential: solve_par(4) = serial optimum on corpus"
      `Slow (fun () ->
        List.iteri
          (fun i inst ->
            let serial = Bb.optimal_height inst in
            let par = Bb.optimal_height_par ~jobs:4 inst in
            check_opt (Printf.sprintf "instance %d" i) serial par)
          (corpus ()));
    Alcotest.test_case "differential: shared pool, jobs=2" `Slow (fun () ->
        Pool.with_pool ~jobs:2 (fun pool ->
            List.iteri
              (fun i inst ->
                check_opt
                  (Printf.sprintf "instance %d" i)
                  (Bb.optimal_height inst)
                  (Bb.optimal_height_par ~pool inst))
              (corpus ())));
    Alcotest.test_case "edge cases: empty, single item, greedy-tight" `Quick
      (fun () ->
        let empty = Dsp_core.Instance.of_dims ~width:5 [] in
        check_opt "empty" (Some 0) (Bb.optimal_height_par ~jobs:3 empty);
        let one = Dsp_core.Instance.of_dims ~width:5 [ (3, 4) ] in
        check_opt "single" (Some 4) (Bb.optimal_height_par ~jobs:3 one);
        (* Perfect fit: the greedy seed already meets the lower bound,
           no search happens. *)
        let tight = Dsp_core.Instance.of_dims ~width:4 [ (4, 2); (4, 3) ] in
        check_opt "greedy-tight" (Some 5) (Bb.optimal_height_par ~jobs:3 tight));
    Alcotest.test_case "shared node cap exhausts across workers" `Quick
      (fun () ->
        check_opt "exhausted" None
          (Bb.optimal_height_par ~jobs:4 ~node_limit:50 (hard_instance ())));
    Alcotest.test_case "cancellation unwinds as Expired Cancelled" `Quick
      (fun () ->
        let cancel = Atomic.make true in
        let budget = Budget.create ~cancel () in
        Alcotest.check_raises "cancelled"
          (Budget.Expired Budget.Cancelled) (fun () ->
            ignore (Bb.solve_par ~jobs:2 ~budget (hard_instance ()))));
    Alcotest.test_case "fault raise inside workers surfaces, pool joins"
      `Quick (fun () ->
        let raised =
          with_fault
            { Fault.site = "bb.nodes"; action = Fault.Raise; after = 200 }
            (fun () ->
              try
                ignore (Bb.solve_par ~jobs:4 (hard_instance ()));
                false
              with Fault.Injected _ -> true)
        in
        Alcotest.(check bool) "typed Injected escaped solve_par" true raised);
  ]

let race_tests =
  [
    Alcotest.test_case "race of [exact-bb] equals the serial optimum" `Quick
      (fun () ->
        let inst = List.nth (corpus ()) 0 in
        let opt = Option.get (Bb.optimal_height inst) in
        Pool.with_pool ~jobs:2 (fun pool ->
            let res = Runner.race ~chain:[ find "exact-bb" ] ~pool inst in
            Alcotest.(check string) "winner" "exact-bb" res.Runner.winner;
            Alcotest.(check int) "peak" opt res.Runner.report.Report.peak));
    Alcotest.test_case "race winner matches some chain member's answer"
      `Quick (fun () ->
        let inst = List.nth (corpus ()) 1 in
        let chain = Runner.default_chain () in
        let member_peaks =
          List.filter_map
            (fun s ->
              match Runner.run_one s inst with
              | Ok r -> Some r.Report.peak
              | Error _ -> None)
            chain
        in
        Pool.with_pool ~jobs:3 (fun pool ->
            let res = Runner.race ~chain ~pool inst in
            Alcotest.(check bool) "not the safety net" false
              res.Runner.safety_net;
            Alcotest.(check bool) "winner is a chain member" true
              (List.mem res.Runner.winner
                 (List.map (fun (s : Dsp_engine.Solver.t) -> s.name) chain));
            Alcotest.(check bool) "peak matches that member" true
              (List.mem res.Runner.report.Report.peak member_peaks)));
    Alcotest.test_case "losers are cancelled, not timed out" `Quick (fun () ->
        (* approx54 cracks the hard instance quickly; exact-bb cannot,
           and must be reeled in by the winner's cancel flag. *)
        let inst = hard_instance () in
        Pool.with_pool ~jobs:2 (fun pool ->
            let res =
              Runner.race ~timeout_ms:60_000
                ~chain:[ find "exact-bb"; find "approx54" ] ~pool inst
            in
            Alcotest.(check string) "winner" "approx54" res.Runner.winner;
            Alcotest.(check bool) "exact-bb cancelled" true
              (List.exists
                 (fun f ->
                   f.Runner.solver = "exact-bb"
                   && Runner.kind_name f.Runner.kind = "cancelled")
                 res.Runner.failures)));
    Alcotest.test_case "racing stages share one wall-clock deadline" `Quick
      (fun () ->
        (* Two concurrent exact stages under a 400ms budget: with the
           (sequential) per-stage slicing each would die near 200ms;
           sharing the deadline, both must run essentially the full
           window. *)
        let inst = hard_instance () in
        Pool.with_pool ~jobs:2 (fun pool ->
            let res =
              Runner.race ~timeout_ms:400
                ~chain:[ find "exact-bb"; find "exact-bb" ] ~pool inst
            in
            Alcotest.(check bool) "degraded to the safety net" true
              res.Runner.safety_net;
            List.iter
              (fun f ->
                Alcotest.(check string)
                  (f.Runner.solver ^ " timed out") "timeout"
                  (Runner.kind_name f.Runner.kind);
                Alcotest.(check bool)
                  (Printf.sprintf "%s ran the full window (%.0f ms)"
                     f.Runner.solver
                     (f.Runner.seconds *. 1000.))
                  true
                  (f.Runner.seconds > 0.3))
              res.Runner.failures));
    Alcotest.test_case "race stays total under injected faults" `Quick
      (fun () ->
        let inst = List.nth (corpus ()) 2 in
        let res =
          with_fault
            { Fault.site = "bb.nodes"; action = Fault.Raise; after = 1 }
            (fun () ->
              Pool.with_pool ~jobs:3 (fun pool ->
                  Runner.race ~chain:(Runner.default_chain ()) ~pool inst))
        in
        Alcotest.(check bool) "validated report" true
          (res.Runner.report.Report.peak > 0);
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (f.Runner.solver ^ " failure is typed") true
              (List.mem
                 (Runner.kind_name f.Runner.kind)
                 [ "timeout"; "budget"; "error"; "invalid"; "cancelled" ]))
          res.Runner.failures);
    Alcotest.test_case "registry exact-bb-par agrees with exact-bb" `Quick
      (fun () ->
        let inst = List.nth (corpus ()) 3 in
        let peak_of name =
          match Runner.run_one (find name) inst with
          | Ok r -> r.Report.peak
          | Error f -> Alcotest.failf "%s: %a" name Runner.pp_failure f
        in
        Alcotest.(check int) "same optimum" (peak_of "exact-bb")
          (peak_of "exact-bb-par"));
  ]

let suite =
  pool_tests @ instr_tests @ deque_tests @ skew_tests @ solve_par_tests
  @ race_tests
