module Rat = Dsp_util.Rat
module Simplex = Dsp_lp.Simplex

let r = Rat.of_int

let known_lp_tests =
  [
    Alcotest.test_case "textbook maximum" `Quick (fun () ->
        (* max x+y s.t. x+2y <= 4, 3x+y <= 6 (slacks added):
           optimum 14/5 at (8/5, 6/5). *)
        let a = [| [| r 1; r 2; r 1; r 0 |]; [| r 3; r 1; r 0; r 1 |] |] in
        let b = [| r 4; r 6 |] in
        let c = [| r 1; r 1; r 0; r 0 |] in
        match Simplex.solve ~a ~b ~c () with
        | Simplex.Optimal { objective; solution } ->
            Alcotest.check Alcotest.bool "objective 14/5" true
              (Rat.equal objective (Rat.make 14 5));
            Alcotest.check Alcotest.bool "x = 8/5" true
              (Rat.equal solution.(0) (Rat.make 8 5))
        | _ -> Alcotest.fail "expected an optimum");
    Alcotest.test_case "detects infeasibility" `Quick (fun () ->
        match Simplex.solve ~a:[| [| r 1 |] |] ~b:[| r (-1) |] ~c:[| r 0 |] () with
        | Simplex.Infeasible -> ()
        | _ -> Alcotest.fail "expected infeasible");
    Alcotest.test_case "detects unboundedness" `Quick (fun () ->
        match
          Simplex.solve ~a:[| [| r 1; r (-1) |] |] ~b:[| r 0 |] ~c:[| r 1; r 0 |] ()
        with
        | Simplex.Unbounded -> ()
        | _ -> Alcotest.fail "expected unbounded");
    Alcotest.test_case "degenerate system" `Quick (fun () ->
        (* Redundant equalities: x = 1 stated twice. *)
        let a = [| [| r 1 |]; [| r 1 |] |] in
        match Simplex.feasible_point ~a ~b:[| r 1; r 1 |] () with
        | Some x -> Alcotest.check Alcotest.bool "x = 1" true (Rat.equal x.(0) Rat.one)
        | None -> Alcotest.fail "expected feasible");
  ]

(* Random feasible systems: draw A and a non-negative x0, set
   b := A x0; the solver must find some feasible point. *)
let system_arb =
  QCheck.make
    ~print:(fun (m, n, entries, x0) ->
      Printf.sprintf "m=%d n=%d A=%s x0=%s" m n
        (String.concat ";" (List.map string_of_int entries))
        (String.concat ";" (List.map string_of_int x0)))
    QCheck.Gen.(
      let* m = int_range 1 4 in
      let* n = int_range 1 6 in
      let* entries = list_repeat (m * n) (int_range (-5) 5) in
      let* x0 = list_repeat n (int_range 0 5) in
      return (m, n, entries, x0))

let build_system (m, n, entries, x0) =
  let entries = Array.of_list entries in
  let a = Array.init m (fun i -> Array.init n (fun j -> r entries.((i * n) + j))) in
  let x0 = Array.of_list (List.map r x0) in
  let b =
    Array.init m (fun i ->
        let s = ref Rat.zero in
        for j = 0 to n - 1 do
          s := Rat.add !s (Rat.mul a.(i).(j) x0.(j))
        done;
        !s)
  in
  (a, b, x0)

let property_tests =
  [
    Helpers.qtest ~count:200 "feasible systems admit a feasible point" system_arb
      (fun sys ->
        let a, b, _ = build_system sys in
        match Simplex.feasible_point ~a ~b () with
        | None -> false
        | Some x ->
            (* Check Ax = b and x >= 0 exactly. *)
            Array.for_all (fun v -> Rat.sign v >= 0) x
            && Array.for_all2
                 (fun row rhs ->
                   let s = ref Rat.zero in
                   Array.iteri (fun j v -> s := Rat.add !s (Rat.mul v x.(j))) row;
                   Rat.equal !s rhs)
                 a b);
    Helpers.qtest ~count:200 "feasible points are basic (few non-zeros)"
      system_arb (fun sys ->
        let a, b, _ = build_system sys in
        match Simplex.feasible_point ~a ~b () with
        | None -> false
        | Some x -> Simplex.count_nonzero x <= Array.length a);
    Helpers.qtest ~count:100 "optimal value dominates the witness objective"
      system_arb (fun sys ->
        let a, b, x0 = build_system sys in
        let n = Array.length x0 in
        let c = Array.init n (fun j -> r (((j * 7) mod 5) - 2)) in
        match Simplex.solve ~a ~b ~c () with
        | Simplex.Optimal { objective; _ } ->
            let at_x0 = ref Rat.zero in
            Array.iteri (fun j v -> at_x0 := Rat.add !at_x0 (Rat.mul c.(j) v)) x0;
            Rat.compare objective !at_x0 >= 0
        | Simplex.Unbounded -> true
        | Simplex.Infeasible -> false);
  ]

let suite = known_lp_tests @ property_tests
