module Rat = Dsp_util.Rat

let rat_arb =
  QCheck.make
    ~print:(fun r -> Rat.to_string r)
    QCheck.Gen.(
      let* n = int_range (-1000) 1000 in
      let* d = int_range 1 1000 in
      return (Rat.make n d))

let check_rat = Alcotest.testable Rat.pp Rat.equal

let unit_tests =
  [
    Alcotest.test_case "normalization" `Quick (fun () ->
        Alcotest.check check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
        Alcotest.check check_rat "neg den" (Rat.make (-1) 2) (Rat.make 1 (-2));
        Alcotest.check Alcotest.int "num" 3 (Rat.num (Rat.make 6 4));
        Alcotest.check Alcotest.int "den" 2 (Rat.den (Rat.make 6 4)));
    Alcotest.test_case "zero denominator rejected" `Quick (fun () ->
        Alcotest.check_raises "div by zero" Rat.Division_by_zero (fun () ->
            ignore (Rat.make 1 0)));
    Alcotest.test_case "floor and ceil" `Quick (fun () ->
        Alcotest.check Alcotest.int "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
        Alcotest.check Alcotest.int "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
        Alcotest.check Alcotest.int "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
        Alcotest.check Alcotest.int "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
        Alcotest.check Alcotest.int "floor 4" 4 (Rat.floor (Rat.of_int 4)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let a = Rat.make 1 3 and b = Rat.make 1 6 in
        Alcotest.check check_rat "1/3+1/6" (Rat.make 1 2) (Rat.add a b);
        Alcotest.check check_rat "1/3-1/6" (Rat.make 1 6) (Rat.sub a b);
        Alcotest.check check_rat "1/3*1/6" (Rat.make 1 18) (Rat.mul a b);
        Alcotest.check check_rat "1/3 / 1/6" (Rat.of_int 2) (Rat.div a b));
    Alcotest.test_case "of_float_approx" `Quick (fun () ->
        Alcotest.check check_rat "0.5" (Rat.make 1 2) (Rat.of_float_approx 0.5);
        Alcotest.check check_rat "0.25" (Rat.make 1 4) (Rat.of_float_approx 0.25);
        Alcotest.check check_rat "2.0" (Rat.of_int 2) (Rat.of_float_approx 2.0));
    Alcotest.test_case "overflow detected" `Quick (fun () ->
        let big = Rat.make max_int 1 in
        Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
            ignore (Rat.mul big big)));
    Alcotest.test_case "int boundary: additions raise, never wrap" `Quick
      (fun () ->
        let top = Rat.of_int max_int in
        Alcotest.check_raises "max_int + 1" Rat.Overflow (fun () ->
            ignore (Rat.add top Rat.one));
        Alcotest.check_raises "sub below min_int" Rat.Overflow (fun () ->
            ignore (Rat.sub (Rat.of_int (-max_int)) (Rat.of_int 2)));
        (* Exactly representable boundary results must still work. *)
        Alcotest.check check_rat "max_int - 1 + 1"
          top
          (Rat.add (Rat.of_int (max_int - 1)) Rat.one);
        Alcotest.check check_rat "cross-reduction avoids the blowup"
          Rat.one
          (Rat.mul (Rat.make max_int 1) (Rat.make 1 max_int)));
    Alcotest.test_case "int boundary: min_int has no negation" `Quick
      (fun () ->
        let bottom = Rat.of_int min_int in
        Alcotest.check_raises "neg min_int" Rat.Overflow (fun () ->
            ignore (Rat.neg bottom));
        Alcotest.check_raises "abs min_int" Rat.Overflow (fun () ->
            ignore (Rat.abs bottom));
        Alcotest.check_raises "make with min_int numerator" Rat.Overflow
          (fun () -> ignore (Rat.make min_int 3));
        Alcotest.check_raises "make with min_int denominator" Rat.Overflow
          (fun () -> ignore (Rat.make 1 min_int));
        (* compare goes through sub, so comparing against min_int can
           itself overflow — documented behavior, not a wrap. *)
        Alcotest.check_raises "compare overflows loudly" Rat.Overflow
          (fun () -> ignore (Rat.compare (Rat.of_int max_int) bottom)));
  ]

let property_tests =
  [
    Helpers.qtest "add commutative" (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    Helpers.qtest "mul commutative" (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
        Rat.equal (Rat.mul a b) (Rat.mul b a));
    Helpers.qtest "add associative"
      (QCheck.triple rat_arb rat_arb rat_arb)
      (fun (a, b, c) ->
        Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c));
    Helpers.qtest "distributivity"
      (QCheck.triple rat_arb rat_arb rat_arb)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    Helpers.qtest "sub then add roundtrip" (QCheck.pair rat_arb rat_arb)
      (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b));
    Helpers.qtest "inv involutive" rat_arb (fun a ->
        QCheck.assume (Rat.sign a <> 0);
        Rat.equal a (Rat.inv (Rat.inv a)));
    Helpers.qtest "floor <= x < floor+1" rat_arb (fun a ->
        let f = Rat.floor a in
        let f1 = f + 1 in
        Rat.(of_int f <= a) && Rat.(a < of_int f1));
    Helpers.qtest "ceil is -floor(-x)" rat_arb (fun a ->
        Rat.ceil a = -Rat.floor (Rat.neg a));
    Helpers.qtest "compare antisymmetric" (QCheck.pair rat_arb rat_arb)
      (fun (a, b) -> Rat.compare a b = -Rat.compare b a);
    Helpers.qtest "to_float consistent with compare"
      (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
        if Rat.compare a b < 0 then Rat.to_float a <= Rat.to_float b else true);
  ]

let suite = unit_tests @ property_tests
