open Dsp_core
module Gen = Dsp_instance.Generators
module Hardness = Dsp_instance.Hardness
module Io = Dsp_instance.Io

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let generator_tests =
  [
    Helpers.qtest "uniform respects its bounds" seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let inst = Gen.uniform rng ~n:20 ~width:30 ~max_w:10 ~max_h:7 in
        Instance.n_items inst = 20
        && Array.for_all
             (fun (it : Item.t) -> it.Item.w <= 10 && it.Item.h <= 7)
             inst.Instance.items);
    Helpers.qtest "correlated respects its bounds" seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let inst = Gen.correlated rng ~n:15 ~width:30 ~max_w:10 ~max_h:9 in
        Array.for_all
          (fun (it : Item.t) ->
            it.Item.w >= 1 && it.Item.w <= 10 && it.Item.h >= 1 && it.Item.h <= 9)
          inst.Instance.items);
    Helpers.qtest "perfect_fit tiles the full rectangle" seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let inst = Gen.perfect_fit rng ~width:12 ~height:9 ~cuts:10 in
        Instance.total_area inst = 12 * 9);
    Helpers.qtest "perfect_fit has optimum equal to its height" seed_arb
      (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let inst = Gen.perfect_fit rng ~width:8 ~height:6 ~cuts:5 in
        QCheck.assume (Instance.n_items inst <= 7);
        match Dsp_exact.Dsp_bb.optimal_height ~node_limit:500_000 inst with
        | Some opt -> opt = 6
        | None -> true);
    Helpers.qtest "dsp/pts instance maps are inverse" seed_arb (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let pts = Gen.uniform_pts rng ~n:10 ~machines:5 ~max_p:6 in
        let dsp = Gen.dsp_of_pts pts ~horizon:10 in
        let back = Gen.pts_of_dsp dsp ~height:5 in
        Array.for_all2
          (fun (a : Pts.Job.t) (b : Pts.Job.t) -> a.p = b.p && a.q = b.q)
          pts.Pts.Inst.jobs back.Pts.Inst.jobs);
  ]

let hardness_tests =
  [
    Helpers.qtest "yes instances satisfy the 3-partition window" seed_arb
      (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let tp = Hardness.yes_instance rng ~k:4 ~bound:20 in
        Array.for_all (fun a -> (4 * a) > 20 && 2 * a < 20) tp.Hardness.numbers
        && Array.fold_left ( + ) 0 tp.Hardness.numbers = 4 * 20);
    Helpers.qtest "witness schedules hit the target makespan exactly" seed_arb
      (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let tp = Hardness.yes_instance rng ~k:3 ~bound:16 in
        match
          Dsp_exact.Three_partition.solve ~numbers:tp.Hardness.numbers ~bound:16 ()
        with
        | None -> false
        | Some triples ->
            let sched = Hardness.schedule_of_partition tp ~triples in
            Result.is_ok (Pts.Schedule.validate sched)
            && Pts.Schedule.makespan sched = Hardness.target_makespan tp);
    Helpers.qtest "the DSP encoding is area-tight at height 4" seed_arb
      (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let tp = Hardness.yes_instance rng ~k:3 ~bound:12 in
        let dsp = Hardness.to_dsp tp in
        Instance.total_area dsp = 4 * dsp.Instance.width);
    Helpers.qtest ~count:20 "yes instances pack to exactly height 4" seed_arb
      (fun seed ->
        let rng = Dsp_util.Rng.create seed in
        let tp = Hardness.yes_instance rng ~k:2 ~bound:12 in
        let dsp = Hardness.to_dsp tp in
        match Dsp_exact.Dsp_bb.optimal_height ~node_limit:2_000_000 dsp with
        | Some h -> h = 4
        | None -> true);
  ]

let io_tests =
  [
    Helpers.qtest "instance round-trips through the text format"
      (Helpers.instance_arb ()) (fun inst ->
        match Io.instance_of_string (Io.instance_to_string inst) with
        | Ok inst' -> Instance.equal inst inst'
        | Error _ -> false);
    Helpers.qtest "pts round-trips through the text format" (Helpers.pts_arb ())
      (fun inst ->
        match Io.pts_of_string (Io.pts_to_string inst) with
        | Ok inst' ->
            inst'.Pts.Inst.machines = inst.Pts.Inst.machines
            && Array.for_all2
                 (fun (a : Pts.Job.t) (b : Pts.Job.t) -> a.p = b.p && a.q = b.q)
                 inst.Pts.Inst.jobs inst'.Pts.Inst.jobs
        | Error _ -> false);
    Helpers.qtest ~count:30 "instance round-trips through a file on disk"
      (Helpers.instance_arb ()) (fun inst ->
        let path = Filename.temp_file "dsp_io_test" ".dsp" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Io.write_file path (Io.instance_to_string inst);
            match Io.instance_of_string (Io.read_file path) with
            | Ok inst' -> Instance.equal inst inst'
            | Error _ -> false));
    Alcotest.test_case "parser rejects malformed input" `Quick (fun () ->
        List.iter
          (fun text ->
            Alcotest.check Alcotest.bool text true
              (Result.is_error (Io.instance_of_string text)))
          [ ""; "dsp"; "dsp x"; "dsp 5\n1"; "dsp 5\n1 2 3"; "pts 5\n1 2" ]);
    Alcotest.test_case "parse errors carry kind and line number" `Quick
      (fun () ->
        let check text line kind =
          match Io.instance_of_string text with
          | Ok _ -> Alcotest.failf "accepted %S" text
          | Error e ->
              Alcotest.(check int)
                (Printf.sprintf "line of %S" text)
                line e.Io.line;
              Alcotest.(check bool)
                (Printf.sprintf "kind of %S (got %s)" text
                   (Io.error_to_string e))
                true (kind e.Io.kind)
        in
        check "" 0 (( = ) Io.Empty_input);
        check "dsp" 1 (function Io.Bad_header _ -> true | _ -> false);
        check "dsp x" 1 (function Io.Bad_number "x" -> true | _ -> false);
        check "dsp 0\n1 1" 1 (( = ) (Io.Bad_cap 0));
        check "dsp -5\n1 1" 1 (( = ) (Io.Bad_cap (-5)));
        check "# c\ndsp 5\n1 1\n1" 4 (function
          | Io.Truncated_line _ -> true
          | _ -> false);
        check "dsp 5\n1 1\n2 2 2" 3 (function
          | Io.Truncated_line _ -> true
          | _ -> false);
        check "dsp 5\n1 two" 2 (( = ) (Io.Bad_number "two"));
        check "dsp 5\n-1 2" 2 (( = ) (Io.Bad_dimension (-1, 2)));
        check "dsp 5\n2 0" 2 (( = ) (Io.Bad_dimension (2, 0)));
        check "dsp 5\n\n3 1\n9 2" 4 (( = ) (Io.Too_wide (9, 5)));
        (match Io.pts_of_string "pts 3\n2 5" with
        | Error { Io.line = 0; kind = Io.Invalid _ } -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Io.error_to_string e)
        | Ok _ -> Alcotest.fail "accepted job needing 5 of 3 machines"));
    Helpers.qtest ~count:200 "fuzz: mutated instances never crash the parser"
      QCheck.(triple (Helpers.instance_arb ()) small_nat (int_range 0 255))
      (fun (inst, pos, byte) ->
        let text = Io.instance_to_string inst in
        let mutated =
          if String.length text = 0 then text
          else
            String.mapi
              (fun i c ->
                if i = pos mod String.length text then Char.chr byte else c)
              text
        in
        (* Any outcome is fine except an escaped exception: either a
           typed error or a valid instance the mutation still spells. *)
        match Io.instance_of_string mutated with
        | Ok inst' ->
            Array.for_all
              (fun (it : Item.t) ->
                it.w >= 1 && it.h >= 1 && it.w <= inst'.Instance.width)
              inst'.Instance.items
        | Error e ->
            String.length (Io.error_to_string e) > 0
        | exception e ->
            QCheck.Test.fail_reportf "parser raised %s on %S"
              (Printexc.to_string e) mutated);
    Alcotest.test_case "parser skips comments and blanks" `Quick (fun () ->
        let text = "# a comment\ndsp 6\n\n2 3\n# another\n1 1\n" in
        match Io.instance_of_string text with
        | Ok inst -> Alcotest.check Alcotest.int "items" 2 (Instance.n_items inst)
        | Error e -> Alcotest.fail (Io.error_to_string e));
  ]

let gap_family_tests =
  [
    Alcotest.test_case "gap family scales" `Quick (fun () ->
        let inst = Dsp_instance.Gap_family.instance ~scale:3 in
        Alcotest.check Alcotest.int "heights scaled" 12
          (Instance.max_height inst);
        Alcotest.check Alcotest.int "expected dsp" 18
          (Dsp_instance.Gap_family.expected_dsp_opt ~scale:3));
  ]

let suite = generator_tests @ hardness_tests @ io_tests @ gap_family_tests
