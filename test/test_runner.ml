(* Fault-tolerant runner: outcome taxonomy, fallback-chain totality,
   and the deterministic fault-injection harness. *)

module Runner = Dsp_engine.Runner
module Registry = Dsp_engine.Registry
module Report = Dsp_engine.Report
module Fault = Dsp_util.Fault
module Budget = Dsp_util.Budget

let small_instance () =
  let rng = Dsp_util.Rng.create 7 in
  Dsp_instance.Generators.uniform rng ~n:12 ~width:20 ~max_w:8 ~max_h:9

(* Seed picked so the exact branch-and-bound needs tens of seconds
   (millions of nodes): a reliable victim for short deadlines and tiny
   node budgets. *)
let hard_instance () =
  let rng = Dsp_util.Rng.create 2 in
  Dsp_instance.Generators.uniform rng ~n:28 ~width:24 ~max_w:12 ~max_h:10

let find = Registry.find_exn

let with_fault plan f =
  Fault.arm plan;
  Fun.protect ~finally:Fault.disarm f

let taxonomy_tests =
  [
    Alcotest.test_case "run_one succeeds on an easy instance" `Quick (fun () ->
        match Runner.run_one (find "bfd-height") (small_instance ()) with
        | Ok report ->
            Alcotest.(check string)
              "winner" "bfd-height" report.Report.solver
        | Error f -> Alcotest.failf "unexpected %a" Runner.pp_failure f);
    Alcotest.test_case "deadline maps to Timeout with partial counters"
      `Quick (fun () ->
        match
          Runner.run_one ~timeout_ms:100 (find "exact-bb") (hard_instance ())
        with
        | Ok _ -> Alcotest.fail "100ms cannot crack the hardness gadget"
        | Error f ->
            Alcotest.(check string) "kind" "timeout"
              (Runner.kind_name f.Runner.kind);
            Alcotest.(check bool) "elapsed recorded" true
              (f.Runner.seconds > 0.);
            (* The run died mid-search, but the work done before the
               deadline must still be attributed. *)
            Alcotest.(check bool) "bb.nodes counter survived" true
              (match List.assoc_opt "bb.nodes" f.Runner.counters with
              | Some n -> n > 0
              | None -> false));
    Alcotest.test_case "node budget maps to Budget_exhausted" `Quick
      (fun () ->
        match
          Runner.run_one ~node_budget:50 (find "exact-bb") (hard_instance ())
        with
        | Ok _ -> Alcotest.fail "50 nodes cannot crack the hardness gadget"
        | Error f ->
            Alcotest.(check string) "kind" "budget"
              (Runner.kind_name f.Runner.kind));
    Alcotest.test_case "injected raise maps to Solver_error" `Quick (fun () ->
        let outcome =
          with_fault
            { Fault.site = "segtree.best_start"; action = Fault.Raise; after = 1 }
            (fun () -> Runner.run_one (find "bfd-height") (small_instance ()))
        in
        match outcome with
        | Ok _ -> Alcotest.fail "fault did not fire"
        | Error f ->
            Alcotest.(check string) "kind" "error"
              (Runner.kind_name f.Runner.kind));
    Alcotest.test_case "injected stall maps to Timeout via checkpoints"
      `Quick (fun () ->
        let outcome =
          with_fault
            { Fault.site = "bb.nodes"; action = Fault.Stall 0.4; after = 1 }
            (fun () ->
              Runner.run_one ~timeout_ms:100 (find "exact-bb")
                (small_instance ()))
        in
        match outcome with
        | Ok _ -> Alcotest.fail "stall outlived the deadline yet succeeded"
        | Error f ->
            Alcotest.(check string) "kind" "timeout"
              (Runner.kind_name f.Runner.kind));
    Alcotest.test_case "injected corruption maps to Invalid_result" `Quick
      (fun () ->
        let outcome =
          with_fault
            { Fault.site = "segtree.best_start"; action = Fault.Corrupt; after = 1 }
            (fun () -> Runner.run_one (find "bfd-height") (small_instance ()))
        in
        match outcome with
        | Ok _ -> Alcotest.fail "corrupted packing passed validation"
        | Error f ->
            Alcotest.(check string) "kind" "invalid"
              (Runner.kind_name f.Runner.kind));
    Alcotest.test_case "disarm always runs: no fault leaks to later solves"
      `Quick (fun () ->
        (ignore
           (with_fault
              { Fault.site = "segtree.best_start"; action = Fault.Raise; after = 1 }
              (fun () -> Runner.run_one (find "bfd-height") (small_instance ())))
          : unit);
        Alcotest.(check bool) "disarmed" false (Option.is_some (Fault.armed ()));
        match Runner.run_one (find "bfd-height") (small_instance ()) with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "leaked fault: %a" Runner.pp_failure f);
  ]

let chain_tests =
  [
    Alcotest.test_case "chain degrades to the approximation under deadline"
      `Quick (fun () ->
        let res = Runner.solve ~timeout_ms:100 (hard_instance ()) in
        Alcotest.(check bool) "exact-bb fell through" true
          (List.exists
             (fun f -> f.Runner.solver = "exact-bb")
             res.Runner.failures);
        Alcotest.(check bool) "winner is a later stage" true
          (res.Runner.winner <> "exact-bb");
        (* Whatever won, the report is validated for this instance. *)
        Alcotest.(check bool) "peak positive" true
          (res.Runner.report.Report.peak > 0));
    Alcotest.test_case "solve is total even when every stage is sabotaged"
      `Quick (fun () ->
        (* A raise in the shared kernel site hits heuristics too; the
           safety net re-solves after disarm-by-one-shot. *)
        let res =
          with_fault
            { Fault.site = "bb.nodes"; action = Fault.Raise; after = 1 }
            (fun () -> Runner.solve ~timeout_ms:500 (small_instance ()))
        in
        Alcotest.(check bool) "got a report" true
          (res.Runner.report.Report.peak > 0));
    Alcotest.test_case "empty chain rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Runner.solve ~chain:[] (small_instance ()));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "parse_chain round-trips and rejects unknowns" `Quick
      (fun () ->
        (match Runner.parse_chain "exact-bb,approx54,bfd-height" with
        | Ok chain ->
            Alcotest.(check string)
              "round trip" "exact-bb,approx54,bfd-height"
              (Runner.chain_to_string chain)
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool) "unknown solver refused" true
          (Result.is_error (Runner.parse_chain "exact-bb,nonsense")));
  ]

let fault_tests =
  [
    Alcotest.test_case "fault spec parser round-trips" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Fault.parse_spec spec with
            | Ok plan ->
                Alcotest.(check string) spec spec (Fault.spec_to_string plan)
            | Error e -> Alcotest.failf "%s: %s" spec e)
          [
            "bb.nodes:raise:1";
            "segtree.range_add:corrupt:3";
            "simplex.pivots:stall250:2";
          ];
        (match Fault.parse_spec "bb.nodes:raise" with
        | Ok plan -> Alcotest.(check int) "default after" 1 plan.Fault.after
        | Error e -> Alcotest.fail e);
        (* Sites outside the canonical Instr.Sites table are rejected:
           a typo'd site would arm a plan that can never fire. *)
        List.iter
          (fun spec ->
            Alcotest.(check bool) spec true
              (Result.is_error (Fault.parse_spec spec)))
          [
            "";
            "no-action";
            "bb.nodes:explode";
            "bb.nodes:raise:0";
            "bb.nodes:raise:x";
            ":raise";
            "bb.typo:raise";
            "x.y:corrupt:3";
          ]);
    Alcotest.test_case "fault fires on the n-th hit, once" `Quick (fun () ->
        let c = Dsp_util.Instr.counter "test.fault_site" in
        with_fault
          { Fault.site = "test.fault_site"; action = Fault.Raise; after = 3 }
          (fun () ->
            Dsp_util.Instr.bump c;
            Dsp_util.Instr.bump c;
            Alcotest.(check bool) "not yet fired" false (Fault.fired ());
            Alcotest.check_raises "third hit fires"
              (Fault.Injected "injected fault at test.fault_site (hit 3)")
              (fun () -> Dsp_util.Instr.bump c);
            (* One-shot: the site is harmless afterwards. *)
            Dsp_util.Instr.bump c;
            Alcotest.(check bool) "fired" true (Fault.fired ())));
  ]

let suite = taxonomy_tests @ chain_tests @ fault_tests
