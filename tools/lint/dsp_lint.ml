(* dsp_lint: command-line driver for the project invariant checker.

   Usage: dsp_lint [--list-rules] [--only R1[,R3...]] [--root DIR] [PATH...]

   Paths default to lib bin bench under the root.  Exit status: 0 when
   clean, 1 when findings were reported, 2 on usage/parse errors. *)

let usage () =
  prerr_endline
    "usage: dsp_lint [--list-rules] [--only R1[,R3...]] [--root DIR] [PATH...]";
  prerr_endline "  --list-rules   describe the rules and exit";
  prerr_endline "  --only RULES   run only the given comma-separated rules";
  prerr_endline "  --root DIR     project root (default .); sets rule scopes";
  prerr_endline "  PATH...        files or directories to scan (default: lib bin bench)";
  exit 2

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s  %s\n" (Lint_core.rule_name r) (Lint_core.rule_summary r))
    Lint_core.all_rules;
  print_endline "";
  print_endline "suppressions:";
  print_endline "  (* lint: ok R<k> *)     waives R<k> on this line and the next";
  print_endline "  (* lint: local *)       the R2 form, for deliberately local state";
  print_endline "  [@@@lint.ignore \"R<k>\"]  waives R<k> for the whole file";
  exit 0

let parse_only spec =
  let rules =
    String.split_on_char ',' spec |> List.filter_map Lint_core.rule_of_string
  in
  let expected = List.length (String.split_on_char ',' spec) in
  if rules = [] || List.length rules <> expected then begin
    Printf.eprintf "dsp_lint: bad --only spec %S (rules are R1..R5)\n" spec;
    exit 2
  end;
  rules

let () =
  let root = ref "." and only = ref None and paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--list-rules" :: _ -> list_rules ()
    | "--only" :: spec :: rest ->
        only := Some (parse_only spec);
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | ("--help" | "-h" | "--only" | "--root") :: _ -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with
    | [] ->
        [ "lib"; "bin"; "bench" ]
        |> List.map (Filename.concat !root)
        |> List.filter Sys.file_exists
    | ps -> ps
  in
  let cfg = Lint_core.project_config ~root:!root in
  let result = Lint_core.run ?only:!only cfg paths in
  List.iter prerr_endline result.Lint_core.errors;
  List.iter
    (fun f -> print_endline (Lint_core.finding_to_string f))
    result.Lint_core.findings;
  let n = List.length result.Lint_core.findings in
  if result.Lint_core.errors <> [] then exit 2
  else if n > 0 then begin
    Printf.eprintf "dsp_lint: %d finding%s in %d files\n" n
      (if n = 1 then "" else "s")
      result.Lint_core.files;
    exit 1
  end
  else
    Printf.eprintf "dsp_lint: clean (%d files, rules %s)\n"
      result.Lint_core.files
      (String.concat ","
         (List.map Lint_core.rule_name
            (match !only with None -> Lint_core.all_rules | Some rs -> rs)))
