(* dsp_lint: command-line driver for the project invariant checker.

   R1–R5 are per-file parsetree rules over the given paths; R6–R9 are
   whole-program rules over the compiler's .cmt typedtree artifacts
   (discovered under <root>/_build/default, or under <root> itself
   when already inside the build tree), with per-digest summary
   caching.

   Exit status: 0 when clean, 1 when findings were reported, 2 on
   usage/parse errors. *)

let usage () =
  prerr_endline
    "usage: dsp_lint [options] [PATH...]";
  prerr_endline "  --list-rules     describe the rules and exit";
  prerr_endline
    "  --only RULES     run only these rules (comma-separated, e.g. R6,R8)";
  prerr_endline
    "  --except RULES   run all rules except these (comma-separated)";
  prerr_endline
    "  --root DIR       project root (default .); sets rule scopes and the";
  prerr_endline "                   .cmt search path for R6-R9";
  prerr_endline
    "  --format FMT     output format: text (default), json, or sarif";
  prerr_endline
    "  --cache-dir DIR  whole-program summary cache (default:";
  prerr_endline "                   <root>/_build/.lint-cache)";
  prerr_endline "  --no-cache       disable the summary cache";
  prerr_endline
    "  PATH...          files or directories for R1-R5 (default: lib bin \
     bench)";
  exit 2

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s  %s\n" (Lint_core.rule_name r)
        (Lint_core.rule_summary r))
    Lint_core.all_rules;
  print_endline "";
  print_endline "suppressions:";
  print_endline
    "  (* lint: ok R<k> *)     waives R<k> on this line and the next";
  print_endline
    "  (* lint: local *)       the R2 form, for deliberately local state";
  print_endline
    "  [@@@lint.ignore \"R<k>\"]  waives R<k> for the whole file";
  exit 0

let parse_rules flag spec =
  let rules =
    String.split_on_char ',' spec |> List.filter_map Lint_core.rule_of_string
  in
  let expected = List.length (String.split_on_char ',' spec) in
  if rules = [] || List.length rules <> expected then begin
    Printf.eprintf "dsp_lint: bad %s spec %S (rules are R1..R9)\n" flag spec;
    exit 2
  end;
  rules

let () =
  let root = ref "." in
  let only = ref None in
  let except = ref [] in
  let format = ref `Text in
  let cache = ref `Default in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--list-rules" :: _ -> list_rules ()
    | "--only" :: spec :: rest ->
        only := Some (parse_rules "--only" spec);
        parse rest
    | "--except" :: spec :: rest ->
        except := parse_rules "--except" spec @ !except;
        parse rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse rest
    | "--format" :: fmt :: rest ->
        (format :=
           match fmt with
           | "text" -> `Text
           | "json" -> `Json
           | "sarif" -> `Sarif
           | _ ->
               Printf.eprintf
                 "dsp_lint: bad --format %S (text, json or sarif)\n" fmt;
               exit 2);
        parse rest
    | "--cache-dir" :: dir :: rest ->
        cache := `Dir dir;
        parse rest
    | "--no-cache" :: rest ->
        cache := `Off;
        parse rest
    | ("--help" | "-h" | "--only" | "--except" | "--root" | "--format"
      | "--cache-dir") :: _ ->
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    let base = match !only with None -> Lint_core.all_rules | Some rs -> rs in
    List.filter (fun r -> not (List.mem r !except)) base
  in
  if selected = [] then begin
    prerr_endline "dsp_lint: --only/--except selected no rules";
    exit 2
  end;
  let syntactic =
    List.filter (fun r -> List.mem r Lint_core.syntactic_rules) selected
  in
  let whole =
    List.filter (fun r -> List.mem r Lint_core.whole_program_rules) selected
  in
  let paths =
    match List.rev !paths with
    | [] ->
        [ "lib"; "bin"; "bench" ]
        |> List.map (Filename.concat !root)
        |> List.filter Sys.file_exists
    | ps -> ps
  in
  let syn_result =
    if syntactic = [] then None
    else Some (Lint_core.run ~only:syntactic (Lint_core.project_config ~root:!root) paths)
  in
  let cache_dir =
    match !cache with
    | `Off -> None
    | `Dir d -> Some d
    | `Default -> Some (Filename.concat !root "_build/.lint-cache")
  in
  let whole_result =
    if whole = [] then None
    else Some (Lint_whole.run_project ~only:whole ?cache_dir ~root:!root ())
  in
  let findings =
    (match syn_result with Some r -> r.Lint_core.findings | None -> [])
    @ (match whole_result with Some r -> r.Lint_whole.findings | None -> [])
    |> List.sort Lint_core.compare_findings
  in
  let errors =
    (match syn_result with Some r -> r.Lint_core.errors | None -> [])
    @ match whole_result with Some r -> r.Lint_whole.errors | None -> []
  in
  List.iter prerr_endline errors;
  (match !format with
  | `Text -> print_string (Lint_report.to_text findings)
  | `Json -> print_string (Lint_report.to_json ~errors findings)
  | `Sarif -> print_string (Lint_report.to_sarif findings));
  (match whole_result with
  | Some r ->
      Printf.eprintf
        "dsp_lint: whole-program: %d units (%d analyzed, %d cached)\n"
        r.Lint_whole.units r.Lint_whole.analyzed r.Lint_whole.cached
  | None -> ());
  let n = List.length findings in
  let files =
    match syn_result with Some r -> r.Lint_core.files | None -> 0
  in
  if errors <> [] then exit 2
  else if n > 0 then begin
    Printf.eprintf "dsp_lint: %d finding%s in %d files\n" n
      (if n = 1 then "" else "s")
      files;
    exit 1
  end
  else
    Printf.eprintf "dsp_lint: clean (%d files, rules %s)\n" files
      (String.concat "," (List.map Lint_core.rule_name selected))
