(* R9 — blocking-under-lock: no Unix fsync/file/socket IO and no pool
   wait may run while a mutex is held, even through a chain of calls —
   a blocked lock holder stalls every other domain that needs the
   lock, which is exactly the convoy the serve daemon's overload
   shedding exists to avoid.  Condition.wait is exempt: it atomically
   releases the mutex while parked.

   The walk tracks the held multiset per function; calls are charged
   interprocedurally through a "transitively blocks" closure, and a
   closure argument is walked under the locks its callee acquires
   directly (the `locked (fun () -> ...)` idiom).  Branch arms walk
   independently and continue with the intersection of their held
   sets. *)

module Ir = Lint_ir
module Cg = Lint_callgraph

let blocking =
  [
    [ "Unix"; "fsync" ];
    [ "Unix"; "read" ];
    [ "Unix"; "write" ];
    [ "Unix"; "single_write" ];
    [ "Unix"; "select" ];
    [ "Unix"; "accept" ];
    [ "Unix"; "connect" ];
    [ "Unix"; "recv" ];
    [ "Unix"; "send" ];
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
    [ "Thread"; "delay" ];
    [ "Pool"; "await" ];
    [ "Pool"; "run_all" ];
    [ "Pool"; "map" ];
    [ "input_line" ];
    [ "really_input" ];
    [ "really_input_string" ];
  ]

let finding (pos : Ir.pos) msg =
  {
    Lint_core.rule = Lint_core.R9;
    file = pos.Ir.file;
    line = pos.Ir.line;
    col = pos.Ir.col;
    msg;
  }

let check (cg : Cg.t) =
  let findings = ref [] in
  let emit pos msg = findings := finding pos msg :: !findings in
  (* Functions whose own events contain a blocking call, closed over
     resolved calls. *)
  let blocks =
    Cg.transitive_closure cg ~direct:(fun fn ->
        let hit = ref false in
        Ir.iter_events
          (function
            | Ir.Call c ->
                if Ir.matches_any blocking c.Ir.callee then hit := true
            | _ -> ())
          fn.Ir.events;
        !hit)
  in
  let direct_locks name =
    match Cg.find cg name with
    | Some fn -> Ir.direct_lock_ids fn
    | None -> []
  in
  let rec remove_one id = function
    | [] -> []
    | x :: rest -> if x = id then rest else x :: remove_one id rest
  in
  let rec walk held evs = List.fold_left step held evs
  and step held ev =
    match ev with
    | Ir.Lock (id, _) -> id :: held
    | Ir.Unlock (id, _) -> remove_one id held
    | Ir.Call c ->
        let resolved = Cg.resolve cg c.Ir.callee in
        (if held <> [] then
           let name = Ir.join_name c.Ir.callee in
           if Ir.matches_any blocking c.Ir.callee then
             emit c.Ir.cpos
               (Printf.sprintf
                  "blocking call `%s` while mutex `%s` is held — IO under a \
                   lock convoys every waiter; move the IO outside the \
                   critical section or waive with (* lint: ok R9 *)"
                  name (List.hd held))
           else
             match resolved with
             | Some callee when blocks callee ->
                 emit c.Ir.cpos
                   (Printf.sprintf
                      "call to `%s` (which transitively performs blocking \
                       IO) while mutex `%s` is held; move it outside the \
                       critical section or waive with (* lint: ok R9 *)"
                      callee (List.hd held))
             | _ -> ());
        let under =
          match resolved with Some callee -> direct_locks callee | None -> []
        in
        List.iter (fun body -> ignore (walk (under @ held) body)) c.Ir.cargs;
        held
    | Ir.Branch arms -> (
        let results = List.map (walk held) arms in
        match results with
        | [] -> held
        | r0 :: rest ->
            List.filter (fun id -> List.for_all (List.mem id) rest) r0)
    | Ir.Closure (body, _) ->
        ignore (walk held body);
        held
    | Ir.Alloc _ -> held
  in
  List.iter
    (fun name ->
      match Cg.find cg name with
      | Some fn -> ignore (walk [] fn.Ir.events)
      | None -> ())
    cg.Cg.order;
  !findings
