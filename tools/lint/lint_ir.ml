(* Intermediate representation shared by the whole-program rules
   (R6–R9).  Both front-ends — the typedtree loader in [Lint_tast]
   (production: reads the compiler's .cmt artifacts) and the parsetree
   translator below (fixtures and tests: hermetic, no compilation
   needed) — lower a module to the same per-function event summary, so
   the rules and the call graph never look at an AST.

   The event language keeps exactly what the four rules need, in
   evaluation order:
   - [Call]: an application, with the callee's qualified-name
     components and the body events of any closure-literal arguments
     attached (the callee may run those under its own locks, after its
     own validation — the rules decide).
   - [Lock]/[Unlock]: Mutex.lock/Mutex.unlock with a stable identity
     for the mutex (type-path + field for record fields, the value
     path otherwise).
   - [Alloc]: a structural allocation — closure, tuple, non-constant
     constructor, record, boxed float literal, array literal,
     payload-carrying raise.  Allocating stdlib *calls* (Array.make,
     sprintf, ...) stay plain [Call]s; R7 matches those by name.
   - [Branch]: one event list per arm (if/match/try); a rule chooses
     arm semantics (independent paths for R8, held-set intersection
     for R6/R9).
   - [Closure]: a function literal outside argument position (bound,
     stored, returned); rules explore the body without assuming when
     it runs.

   Name discipline: qualified names are component lists.  Definitions
   carry their full module stack ("Segtree" :: "Boxed" :: "range_add");
   call sites carry the most qualified name the front-end can see, and
   [Lint_callgraph] resolves by peeling prefixes.  Component lists are
   already normalized: "Dsp_core__Segtree" splits into its "__" parts
   and "Stdlib" heads are dropped, so the two front-ends and the rule
   vocabularies agree on spelling. *)

type pos = { file : string; line : int; col : int }

type event =
  | Call of call
  | Lock of string * pos
  | Unlock of string * pos
  | Alloc of string * pos  (* what allocates, e.g. "closure", "tuple" *)
  | Branch of event list list
  | Closure of event list * pos

and call = {
  callee : string list;  (* normalized qualified-name components *)
  cpos : pos;
  cargs : event list list;  (* body events of closure-literal arguments *)
}

type func = {
  fname : string list;  (* unit :: module stack :: binding name *)
  fpos : pos;
  events : event list;
}

type summary = {
  unit_name : string;  (* normalized top module name, e.g. "Segtree" *)
  src_file : string;  (* root-relative source path when known *)
  funcs : func list;
}

let join_name comps = String.concat "." comps
let normalize path = String.concat "/" (String.split_on_char '\\' path)

(* ----- name normalization --------------------------------------------- *)

(* "Dsp_core__Segtree" -> ["Dsp_core"; "Segtree"]: dune's wrapped
   libraries mangle module names with "__"; splitting restores the
   logical stack so suffix/prefix matching works across front-ends. *)
let split_mangled comp =
  let n = String.length comp in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub comp start (n - start) :: acc)
    else if comp.[i] = '_' && comp.[i + 1] = '_' then
      let piece = String.sub comp start (i - start) in
      let acc = if piece = "" then acc else piece :: acc in
      go (i + 2) (i + 2) acc
    else go start (i + 1) acc
  in
  if n = 0 then [] else go 0 0 []

let normalize_components comps =
  let comps = List.concat_map split_mangled comps in
  match comps with "Stdlib" :: (_ :: _ as rest) -> rest | c -> c

let normalize_path_name name =
  normalize_components (String.split_on_char '.' name)

(* ----- positions ------------------------------------------------------- *)

let pos_of_loc ?file (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file = (match file with Some f -> f | None -> p.Lexing.pos_fname);
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
  }

(* ----- event utilities ------------------------------------------------- *)

(* Fold over every event in a list, descending into branches, closure
   bodies and closure arguments — for rules that need the flat view. *)
let rec iter_events f evs =
  List.iter
    (fun ev ->
      f ev;
      match ev with
      | Call c -> List.iter (iter_events f) c.cargs
      | Branch arms -> List.iter (iter_events f) arms
      | Closure (body, _) -> iter_events f body
      | Lock _ | Unlock _ | Alloc _ -> ())
    evs

(* The mutex identities a function locks directly (no recursion into
   callees); used to approximate "callee runs my closure argument
   under these locks". *)
let direct_lock_ids fn =
  let acc = ref [] in
  iter_events
    (function
      | Lock (id, _) -> if not (List.mem id !acc) then acc := id :: !acc
      | _ -> ())
    fn.events;
  List.rev !acc

(* ----- vocabulary matching -------------------------------------------- *)

(* A vocabulary entry like ["Wal"; "append"] matches a call whose
   normalized components end with it: ["Dsp_serve"; "Wal"; "append"]
   and ["Wal"; "append"] both hit. *)
let suffix_matches entry comps =
  let le = List.length entry and lc = List.length comps in
  lc >= le
  && entry = List.filteri (fun i _ -> i >= lc - le) comps

let matches_any vocab comps =
  List.exists (fun entry -> suffix_matches entry comps) vocab

(* ----- parsetree front-end -------------------------------------------- *)

(* Lowers an untyped AST (fixtures, tests) to the IR.  Only the
   surface forms the fixtures use need translating; anything else
   falls through to a generic sub-expression sweep. *)
module Of_parsetree = struct
  module P = Parsetree

  let rec lid_components = function
    | Longident.Lident s -> [ s ]
    | Longident.Ldot (l, s) -> lid_components l @ [ s ]
    | Longident.Lapply (_, l) -> lid_components l

  (* A stable textual identity for a mutex expression: dotted value
     path, with field accesses flattened ("pool.m", "Bench_json.m"). *)
  let rec mutex_id (e : P.expression) =
    match e.pexp_desc with
    | P.Pexp_ident { txt; _ } -> join_name (normalize_components (lid_components txt))
    | P.Pexp_field (b, { txt; _ }) -> (
        match lid_components txt with
        | [] -> mutex_id b
        | comps -> mutex_id b ^ "." ^ List.nth comps (List.length comps - 1))
    | P.Pexp_constraint (e, _) -> mutex_id e
    | _ ->
        let p = pos_of_loc e.pexp_loc in
        Printf.sprintf "<unknown:%s:%d>" p.file p.line

  let rec is_fun_literal (e : P.expression) =
    match e.pexp_desc with
    | P.Pexp_fun _ | P.Pexp_function _ -> true
    | P.Pexp_constraint (e, _) | P.Pexp_newtype (_, e) -> is_fun_literal e
    | _ -> false

  (* Constant constructors (None, [], true, Not_found) allocate
     nothing; constructors with arguments do. *)
  let rec events_of ~file ~stack (e : P.expression) : event list =
    let pos = pos_of_loc ~file e.pexp_loc in
    let ev = events_of ~file ~stack in
    match e.pexp_desc with
    | P.Pexp_ident _ | P.Pexp_constant (P.Pconst_integer _ | P.Pconst_char _)
      ->
        []
    | P.Pexp_constant (P.Pconst_float _) -> [ Alloc ("boxed float", pos) ]
    | P.Pexp_constant _ -> []
    | P.Pexp_fun (_, _, _, body) -> [ Closure (body_events ~file ~stack e body, pos) ]
    | P.Pexp_function cases ->
        [ Closure ([ Branch (List.map (case_events ~file ~stack) cases) ], pos) ]
    | P.Pexp_apply (head, args) -> apply ~file ~stack pos head args
    | P.Pexp_let (_, vbs, body) ->
        List.concat_map (fun vb -> ev vb.P.pvb_expr) vbs @ ev body
    | P.Pexp_sequence (a, b) -> ev a @ ev b
    | P.Pexp_ifthenelse (c, t, f) ->
        ev c
        @ [
            Branch
              [ ev t; (match f with Some f -> ev f | None -> []) ];
          ]
    | P.Pexp_match (scr, cases) ->
        ev scr @ [ Branch (List.map (case_events ~file ~stack) cases) ]
    | P.Pexp_try (body, cases) ->
        ev body @ [ Branch (List.map (case_events ~file ~stack) cases) ]
    | P.Pexp_tuple parts ->
        [ Alloc ("tuple", pos) ] @ List.concat_map ev parts
    | P.Pexp_construct (_, None) -> []
    | P.Pexp_construct ({ txt; _ }, Some arg) ->
        [ Alloc ("constructor " ^ join_name (lid_components txt), pos) ]
        @ ev arg
    | P.Pexp_record (fields, base) ->
        [ Alloc ("record", pos) ]
        @ List.concat_map (fun (_, e) -> ev e) fields
        @ (match base with Some b -> ev b | None -> [])
    | P.Pexp_array parts ->
        [ Alloc ("array literal", pos) ] @ List.concat_map ev parts
    | P.Pexp_field (b, _) -> ev b
    | P.Pexp_setfield (b, _, v) -> ev b @ ev v
    | P.Pexp_constraint (e, _) | P.Pexp_coerce (e, _, _) | P.Pexp_newtype (_, e)
      ->
        ev e
    | P.Pexp_while (c, body) -> ev c @ ev body
    | P.Pexp_for (_, lo, hi, _, body) -> ev lo @ ev hi @ ev body
    | P.Pexp_assert e | P.Pexp_lazy e -> ev e
    | P.Pexp_open (_, e) -> ev e
    | _ ->
        (* Generic sweep: collect events of immediate sub-expressions
           in syntactic order. *)
        let acc = ref [] in
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ sub -> acc := !acc @ events_of ~file ~stack sub);
          }
        in
        Ast_iterator.default_iterator.expr it e;
        !acc

  (* The body of a function literal: peel the parameter spine so the
     wrapper lambdas do not read as closure allocations. *)
  and body_events ~file ~stack outer body =
    ignore outer;
    let rec peel (e : P.expression) =
      match e.pexp_desc with
      | P.Pexp_fun (_, _, _, body) -> peel body
      | P.Pexp_function cases ->
          [ Branch (List.map (case_events ~file ~stack) cases) ]
      | P.Pexp_constraint (e, _) | P.Pexp_newtype (_, e) -> peel e
      | _ -> events_of ~file ~stack e
    in
    peel body

  and case_events ~file ~stack (c : P.case) =
    (match c.P.pc_guard with
    | Some g -> events_of ~file ~stack g
    | None -> [])
    @ events_of ~file ~stack c.P.pc_rhs

  and apply ~file ~stack pos (head : P.expression) args =
    let arg_exprs = List.map snd args in
    match head.pexp_desc with
    | P.Pexp_ident { txt; _ } -> (
        let comps = normalize_components (lid_components txt) in
        let qualified =
          match comps with [ single ] -> stack @ [ single ] | _ -> comps
        in
        match (comps, args) with
        | [ "Mutex"; "lock" ], [ (_, m) ] -> [ Lock (mutex_id m, pos) ]
        | [ "Mutex"; "unlock" ], [ (_, m) ] -> [ Unlock (mutex_id m, pos) ]
        | [ "Fun"; "protect" ], _ ->
            (* Fun.protect ~finally:FIN BODY runs BODY now and FIN on
               the way out: inline both, in that order, so a
               finally-unlock is seen after the protected body rather
               than before it (argument order would invert them). *)
            let finally =
              List.filter_map
                (fun (lbl, e) ->
                  match lbl with
                  | Asttypes.Labelled "finally" -> Some e
                  | _ -> None)
                args
            in
            let body =
              List.filter_map
                (fun (lbl, e) ->
                  match lbl with
                  | Asttypes.Labelled "finally" -> None
                  | _ -> Some e)
                args
            in
            List.concat_map (called_now ~file ~stack) body
            @ List.concat_map (called_now ~file ~stack) finally
        | _ ->
            let scalar, closures =
              List.partition (fun e -> not (is_fun_literal e)) arg_exprs
            in
            List.concat_map (events_of ~file ~stack) scalar
            @ [
                Call
                  {
                    callee = qualified;
                    cpos = pos;
                    cargs =
                      List.map (closure_body ~file ~stack) closures;
                  };
              ])
    | _ ->
        List.concat_map (events_of ~file ~stack) (head :: arg_exprs)

  (* An argument the callee will invoke: a function literal inlines to
     its body events, an identifier becomes a call, anything else is
     evaluated for its own events. *)
  and called_now ~file ~stack (e : P.expression) =
    if is_fun_literal e then closure_body ~file ~stack e
    else
      match e.pexp_desc with
      | P.Pexp_ident { txt; _ } ->
          let comps = normalize_components (lid_components txt) in
          let qualified =
            match comps with [ single ] -> stack @ [ single ] | _ -> comps
          in
          [ Call { callee = qualified; cpos = pos_of_loc ~file e.pexp_loc; cargs = [] } ]
      | _ -> events_of ~file ~stack e

  and closure_body ~file ~stack (e : P.expression) =
    match e.pexp_desc with
    | P.Pexp_fun (_, _, _, body) -> body_events ~file ~stack e body
    | P.Pexp_function cases ->
        [ Branch (List.map (case_events ~file ~stack) cases) ]
    | P.Pexp_constraint (e, _) | P.Pexp_newtype (_, e) ->
        closure_body ~file ~stack e
    | _ -> events_of ~file ~stack e

  let rec pat_var (p : P.pattern) =
    match p.ppat_desc with
    | P.Ppat_var { txt; _ } -> Some txt
    | P.Ppat_constraint (p, _) -> pat_var p
    | _ -> None

  let unit_name_of_file file =
    String.capitalize_ascii
      (Filename.remove_extension (Filename.basename file))

  let of_structure ~file (structure : P.structure) : summary =
    let unit_name = unit_name_of_file file in
    let funcs = ref [] in
    let rec items stack is =
      List.iter
        (fun (item : P.structure_item) ->
          match item.pstr_desc with
          | P.Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match pat_var vb.P.pvb_pat with
                  | None -> ()
                  | Some name ->
                      let fname = stack @ [ name ] in
                      let events =
                        if is_fun_literal vb.P.pvb_expr then
                          closure_body ~file ~stack vb.P.pvb_expr
                        else events_of ~file ~stack vb.P.pvb_expr
                      in
                      funcs :=
                        {
                          fname;
                          fpos = pos_of_loc ~file vb.P.pvb_loc;
                          events;
                        }
                        :: !funcs)
                vbs
          | P.Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } ->
              let rec body (me : P.module_expr) =
                match me.pmod_desc with
                | P.Pmod_structure is -> items (stack @ [ m ]) is
                | P.Pmod_constraint (me, _) -> body me
                | _ -> ()
              in
              body pmb_expr
          | _ -> ())
        is
    in
    items [ unit_name ] structure;
    { unit_name; src_file = file; funcs = List.rev !funcs }
end
