(* Whole-program analysis driver for R6–R9: loads per-module event
   summaries (typedtree .cmt artifacts in production, parsetree
   fixtures in tests), caches them per content digest, builds the
   cross-module call graph and runs the four rules, then applies the
   same waiver channels the per-file rules honour.

   The cache makes warm reruns cheap: a summary is recomputed only
   when its .cmt (or fixture source) digest changed, so an edit to one
   module re-analyzes one module.  Rule evaluation itself always runs
   — it is interprocedural, so any summary change can change any
   finding — but it is linear in the summary sizes and costs
   milliseconds. *)

module Ir = Lint_ir

type config = {
  r7_roots : string list;  (* hot-path entry points, joined names *)
  r8_roots : string list;  (* request handlers, joined names *)
}

(* The production configuration: the flat Segtree kernel's hot-path
   entry points (the ones the perf gate's alloc probe samples) and the
   serve daemon's request dispatcher. *)
let project_config =
  {
    r7_roots =
      [
        "Segtree.range_add";
        "Segtree.range_max";
        "Segtree.first_fit_from_i";
        "Segtree.find_last_above_i";
      ];
    r8_roots = [ "Server.handle" ];
  }

type result = {
  findings : Lint_core.finding list;
  errors : string list;
  units : int;  (* summaries in the call graph *)
  analyzed : int;  (* summaries recomputed this run *)
  cached : int;  (* summaries served from the digest cache *)
}

(* ----- summary cache --------------------------------------------------- *)

(* Bump when the IR or a front-end changes shape: stale caches must
   miss, not misparse. *)
let cache_version = 1

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let cache_key name =
  String.map (fun c -> if c = '/' || c = '\\' || c = ':' then '_' else c) name

let cache_path dir key = Filename.concat dir (cache_key key ^ ".sum")

let cache_get ~cache_dir ~key ~digest : Ir.summary option =
  match cache_dir with
  | None -> None
  | Some dir -> (
      let path = cache_path dir key in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic -> (
          let r =
            match Marshal.from_channel ic with
            | exception _ -> None
            | v, d, (s : Ir.summary) ->
                if v = cache_version && d = digest then Some s else None
          in
          close_in_noerr ic;
          r))

let cache_put ~cache_dir ~key ~digest (s : Ir.summary) =
  match cache_dir with
  | None -> ()
  | Some dir -> (
      try
        mkdir_p dir;
        let path = cache_path dir key in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        Marshal.to_channel oc (cache_version, digest, s) [];
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ -> ())

(* ----- rule evaluation ------------------------------------------------- *)

let analyze ?(only = Lint_core.whole_program_rules) ~config summaries =
  let cg = Lint_callgraph.build summaries in
  let active r = List.mem r only in
  let f6 = if active Lint_core.R6 then Lint_r6_locks.check cg else [] in
  let f7 =
    if active Lint_core.R7 then
      Lint_r7_alloc.check cg ~roots:config.r7_roots
    else []
  in
  let f8 =
    if active Lint_core.R8 then Lint_r8_wal.check cg ~roots:config.r8_roots
    else []
  in
  let f9 = if active Lint_core.R9 then Lint_r9_block.check cg else [] in
  f6 @ f7 @ f8 @ f9

(* Apply the waiver channels — (* lint: ok R# *) line comments and
   [@@@lint.ignore "R#"] file attributes — by loading each finding's
   source file relative to [root].  A file that cannot be loaded keeps
   its findings: suppression must be visible to be honoured. *)
let apply_waivers ~root findings =
  let sources = Hashtbl.create 8 in
  let source_for file =
    match Hashtbl.find_opt sources file with
    | Some s -> s
    | None ->
        let path =
          if Sys.file_exists file then file else Filename.concat root file
        in
        let s =
          match Lint_core.load_source path with
          | Ok src -> Some src
          | Error _ -> None
        in
        Hashtbl.add sources file s;
        s
  in
  List.filter
    (fun (f : Lint_core.finding) ->
      match source_for f.Lint_core.file with
      | None -> true
      | Some src ->
          not (Lint_core.suppressed src f.Lint_core.rule f.Lint_core.line))
    findings

let dedup_sorted findings =
  let sorted = List.sort Lint_core.compare_findings findings in
  let rec uniq = function
    | a :: (b :: _ as rest) when a = b -> uniq rest
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  uniq sorted

(* ----- fixture entry point (parsetree front-end) ----------------------- *)

let run_files ?only ?cache_dir ~config paths =
  let analyzed = ref 0 and cached = ref 0 and errors = ref [] in
  let summaries =
    List.filter_map
      (fun path ->
        match Lint_core.read_file path with
        | exception Sys_error e ->
            errors := Printf.sprintf "%s: %s" path e :: !errors;
            None
        | text -> (
            let digest = Digest.string text in
            match cache_get ~cache_dir ~key:path ~digest with
            | Some s ->
                incr cached;
                Some s
            | None -> (
                let lexbuf = Lexing.from_string text in
                Location.init lexbuf path;
                match Parse.implementation lexbuf with
                | exception e ->
                    errors :=
                      Printf.sprintf "%s: parse error: %s" path
                        (Printexc.to_string e)
                      :: !errors;
                    None
                | structure ->
                    let s =
                      Ir.Of_parsetree.of_structure ~file:path structure
                    in
                    incr analyzed;
                    cache_put ~cache_dir ~key:path ~digest s;
                    Some s)))
      (List.sort_uniq compare paths)
  in
  let findings =
    analyze ?only ~config summaries |> apply_waivers ~root:"." |> dedup_sorted
  in
  {
    findings;
    errors = List.rev !errors;
    units = List.length summaries;
    analyzed = !analyzed;
    cached = !cached;
  }

(* ----- production entry point (typedtree front-end) -------------------- *)

let src_prefixes = [ "lib/"; "bin/"; "bench/" ]

let run_project ?only ?cache_dir ~root () =
  let analyzed = ref 0 and cached = ref 0 and errors = ref [] in
  let seen_units = Hashtbl.create 64 in
  let summaries =
    List.filter_map
      (fun cmt ->
        match Digest.file cmt with
        | exception Sys_error _ -> None
        | digest -> (
            let summary =
              match cache_get ~cache_dir ~key:cmt ~digest with
              | Some s -> Some (s, true)
              | None -> (
                  match Lint_tast.summarize_cmt cmt with
                  | Ok s ->
                      cache_put ~cache_dir ~key:cmt ~digest s;
                      Some (s, false)
                  | Error _ ->
                      (* interface-only or pack artifact: not a unit *)
                      None)
            in
            match summary with
            | None -> None
            | Some (s, was_cached) ->
                if
                  Lint_tast.src_in_prefixes src_prefixes s.Ir.src_file
                  && not (Hashtbl.mem seen_units s.Ir.unit_name)
                then begin
                  Hashtbl.add seen_units s.Ir.unit_name ();
                  if was_cached then incr cached else incr analyzed;
                  Some s
                end
                else None))
      (Lint_tast.discover_cmts ~root)
  in
  if summaries = [] then
    errors :=
      Printf.sprintf
        "no .cmt artifacts found under %s — run `dune build` first so the \
         whole-program rules have typedtrees to analyze"
        root
      :: !errors;
  let findings =
    analyze ?only ~config:project_config summaries
    |> apply_waivers ~root |> dedup_sorted
  in
  {
    findings;
    errors = List.rev !errors;
    units = List.length summaries;
    analyzed = !analyzed;
    cached = !cached;
  }
