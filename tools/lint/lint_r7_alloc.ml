(* R7 — allocation-freedom: nothing reachable from the flat-kernel
   hot-path entry points may allocate.  The bench perf gate samples
   the same property dynamically over 400k operations; this rule
   proves it statically over every path the call graph can see.

   What counts as an allocation:
   - structural [Alloc] events from the front-ends: closures, tuples,
     non-constant constructors (Some, ::, payload-carrying raise),
     records, boxed float literals, array literals;
   - closure-literal arguments (the closure is built at the call);
   - calls to known allocating stdlib entry points (Array.make,
     sprintf, ...).
   What does not: raising a *constant* exception (Xutil.Overflow), and
   whatever the stdlib allocates behind calls not in the vocabulary —
   invalid_arg/failwith on error paths live outside the analysis, a
   policy DESIGN.md §6 spells out. *)

module Ir = Lint_ir
module Cg = Lint_callgraph

(* `ref` is deliberately absent: the flat kernel's loop style uses
   local int refs throughout — bounded two-word minor cells per call
   that the perf gate's dynamic baseline already accounts for.  R7 is
   after per-element / structural allocation, the kind that scales
   with input size. *)
let allocating_calls =
  [
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "append" ];
    [ "Array"; "copy" ];
    [ "Array"; "sub" ];
    [ "Array"; "of_list" ];
    [ "Array"; "to_list" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Buffer"; "create" ];
    [ "Buffer"; "contents" ];
    [ "Hashtbl"; "create" ];
    [ "List"; "map" ];
    [ "List"; "mapi" ];
    [ "List"; "init" ];
    [ "List"; "append" ];
    [ "List"; "rev" ];
    [ "List"; "filter" ];
    [ "List"; "concat" ];
    [ "Printf"; "sprintf" ];
    [ "Format"; "asprintf" ];
    [ "String"; "concat" ];
    [ "String"; "make" ];
    [ "String"; "sub" ];
  ]

let finding (pos : Ir.pos) msg =
  {
    Lint_core.rule = Lint_core.R7;
    file = pos.Ir.file;
    line = pos.Ir.line;
    col = pos.Ir.col;
    msg;
  }

let check (cg : Cg.t) ~roots =
  let visited, parent = Cg.reachable cg roots in
  let findings = ref [] in
  List.iter
    (fun name ->
      if Hashtbl.mem visited name then
        match Cg.find cg name with
        | None -> ()
        | Some fn ->
            let via = String.concat " -> " (Cg.chain parent name) in
            let emit pos what =
              findings :=
                finding pos
                  (Printf.sprintf
                     "%s allocates on the hot path %s; hot-path entry points \
                      must be allocation-free (fix, or waive with (* lint: \
                      ok R7 *) and a justification)"
                     what via)
                :: !findings
            in
            let rec walk evs = List.iter step evs
            and step = function
              | Ir.Alloc (kind, pos) -> emit pos kind
              | Ir.Closure (body, pos) ->
                  emit pos "closure";
                  walk body
              | Ir.Call c ->
                  if
                    Cg.resolve cg c.Ir.callee = None
                    && Ir.matches_any allocating_calls c.Ir.callee
                  then
                    emit c.Ir.cpos
                      (Printf.sprintf "call to %s"
                         (Ir.join_name c.Ir.callee));
                  if c.Ir.cargs <> [] then emit c.Ir.cpos "closure argument";
                  List.iter walk c.Ir.cargs
              | Ir.Branch arms -> List.iter walk arms
              | Ir.Lock _ | Ir.Unlock _ -> ()
            in
            walk fn.Ir.events)
    cg.Cg.order;
  !findings
