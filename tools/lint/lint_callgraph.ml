(* Cross-module call graph over [Lint_ir] summaries: definition
   index, call-site resolution, reachability, and transitive
   "transitively does X" closures for the whole-program rules.

   Resolution works on normalized component lists.  For a call spelled
   [c1. ... .cn] the candidates are tried most-specific first:
   1. the exact name;
   2. the name with leading components peeled (a typedtree path often
      carries the wrapper library: Dsp_util.Instr.bump vs the
      definition Instr.bump);
   3. the name with *inner* module components peeled (a bare call
      inside Segtree.Boxed was qualified with the full stack, but the
      binding may live at Segtree's top level);
   4. failing all that, a unique suffix match on the final component.
   Unresolved calls are externals (stdlib, Unix, ...) — the rules
   match those against their own vocabularies. *)

module Ir = Lint_ir
module SS = Set.Make (String)

type t = {
  funcs : (string, Ir.func) Hashtbl.t;  (* joined full name -> def *)
  by_last : (string, string list) Hashtbl.t;
      (* final component -> full names *)
  order : string list;  (* definition order, for deterministic walks *)
}

let build (summaries : Ir.summary list) =
  let funcs = Hashtbl.create 256 in
  let by_last = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (s : Ir.summary) ->
      List.iter
        (fun (f : Ir.func) ->
          let name = Ir.join_name f.fname in
          if not (Hashtbl.mem funcs name) then begin
            Hashtbl.add funcs name f;
            order := name :: !order;
            match List.rev f.fname with
            | last :: _ ->
                let prev =
                  Option.value (Hashtbl.find_opt by_last last) ~default:[]
                in
                Hashtbl.replace by_last last (name :: prev)
            | [] -> ()
          end)
        s.funcs)
    summaries;
  { funcs; by_last; order = List.rev !order }

let find t name = Hashtbl.find_opt t.funcs name

(* Candidate spellings for a call, most specific first. *)
let candidates comps =
  let rec drop_leading acc = function
    | [ _ ] | [] -> List.rev acc
    | _ :: rest as l -> drop_leading (l :: acc) rest
  in
  let leading = drop_leading [] comps in
  let inner =
    (* peel inner module components: [u; m1..mk; f] -> [u; m1..; f] *)
    match (comps, List.rev comps) with
    | u :: _ :: _ :: _, f :: mids_rev ->
        let mids = List.rev (List.tl mids_rev) in
        (* mids = u :: m1..mk; peel from the right of the mids *)
        let rec peels acc mids =
          match List.rev mids with
          | _ :: (_ :: _ as shorter_rev) ->
              let shorter = List.rev shorter_rev in
              peels ((shorter @ [ f ]) :: acc) shorter
          | _ -> List.rev acc
        in
        ignore u;
        peels [] mids
    | _ -> []
  in
  leading @ inner

let resolve t comps =
  let rec try_cands = function
    | [] -> None
    | c :: rest ->
        let name = Ir.join_name c in
        if Hashtbl.mem t.funcs name then Some name else try_cands rest
  in
  match try_cands (candidates comps) with
  | Some name -> Some name
  | None -> (
      (* Unique suffix match on the final component, e.g. a fixture
         call [U.f] against a definition [U.M.f]. *)
      match List.rev comps with
      | last :: _ -> (
          match Hashtbl.find_opt t.by_last last with
          | Some [ only ] when Ir.suffix_matches comps (
              String.split_on_char '.' only) -> Some only
          | _ -> None)
      | [] -> None)

(* All definitions reachable from the given roots (joined names),
   following resolved calls through branches, closures and closure
   arguments.  Returns the visited set and, for diagnostics, a parent
   map giving one witness caller per visited function. *)
let reachable t roots =
  let visited = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem t.funcs r && not (Hashtbl.mem visited r) then begin
        Hashtbl.add visited r ();
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    match find t name with
    | None -> ()
    | Some fn ->
        Ir.iter_events
          (function
            | Ir.Call c -> (
                match resolve t c.Ir.callee with
                | Some callee when not (Hashtbl.mem visited callee) ->
                    Hashtbl.add visited callee ();
                    Hashtbl.add parent callee name;
                    Queue.add callee queue
                | _ -> ())
            | _ -> ())
          fn.Ir.events
  done;
  (visited, parent)

(* One witness call chain root -> ... -> name, for messages. *)
let chain parent name =
  let rec go acc name =
    match Hashtbl.find_opt parent name with
    | Some p when not (List.mem p acc) -> go (name :: acc) p
    | _ -> name :: acc
  in
  go [] name

(* Fixpoint closure: the set of definitions that perform X
   transitively, where [direct] says whether a function's own events
   do X.  A function joins the set if [direct] holds or it resolves a
   call to a member. *)
let transitive_closure t ~direct =
  let in_set = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match find t name with
      | Some fn when direct fn -> Hashtbl.replace in_set name ()
      | _ -> ())
    t.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun name ->
        if not (Hashtbl.mem in_set name) then
          match find t name with
          | None -> ()
          | Some fn ->
              let hit = ref false in
              Ir.iter_events
                (function
                  | Ir.Call c -> (
                      match resolve t c.Ir.callee with
                      | Some callee when Hashtbl.mem in_set callee ->
                          hit := true
                      | _ -> ())
                  | _ -> ())
                fn.Ir.events;
              if !hit then begin
                Hashtbl.replace in_set name ();
                changed := true
              end)
      t.order
  done;
  fun name -> Hashtbl.mem in_set name

(* The lock identities a function may acquire, transitively. *)
let transitive_locks t =
  let table = Hashtbl.create 64 in
  let locks_of name =
    Option.value (Hashtbl.find_opt table name) ~default:SS.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun name ->
        match find t name with
        | None -> ()
        | Some fn ->
            let acc = ref (locks_of name) in
            Ir.iter_events
              (function
                | Ir.Lock (id, _) -> acc := SS.add id !acc
                | Ir.Call c -> (
                    match resolve t c.Ir.callee with
                    | Some callee -> acc := SS.union !acc (locks_of callee)
                    | None -> ())
                | _ -> ())
              fn.Ir.events;
            if not (SS.equal !acc (locks_of name)) then begin
              Hashtbl.replace table name !acc;
              changed := true
            end)
      t.order
  done;
  locks_of
