(* R3 fixture: budgeted recursion, both with a direct checkpoint and
   through a checkpointing helper. *)
let rec walk budget n =
  Budget.check budget;
  if n = 0 then 0 else walk budget (n - 1)

let helper budget = Dsp_util.Budget.poll budget

let rec indirect budget n =
  helper budget;
  if n = 0 then 0 else indirect budget (n - 1)
