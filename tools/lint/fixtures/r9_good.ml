(* R9 fixture: the IO happens after the critical section, and
   Condition.wait is exempt — it atomically releases the mutex while
   parked. *)
let m = Mutex.create ()
let cv = Condition.create ()

let persist fd = Unix.fsync fd

let outside fd =
  Mutex.lock m;
  Mutex.unlock m;
  persist fd

let wait_ready () =
  Mutex.lock m;
  Condition.wait cv m;
  Mutex.unlock m
