(* R2 fixture: the deque's safe shape — both indices are Atomics, every
   payload publication is ordered by an Atomic operation on them, and
   the CAS-validated ring buffer carries the explicit local waiver. *)
let top = Atomic.make 0
let bottom = Atomic.make 0
let ring = Array.make 64 0 (* lint: local *)

let push v =
  let b = Atomic.get bottom in
  ring.(b land 63) <- v;
  Atomic.set bottom (b + 1)

let steal () =
  let t = Atomic.get top in
  if t < Atomic.get bottom then begin
    let v = ring.(t land 63) in
    if Atomic.compare_and_set top t (t + 1) then Some v else None
  end
  else None
