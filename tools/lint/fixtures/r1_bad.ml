(* R1 fixture: raw int arithmetic on an overflow-sensitive path.
   Parsed by dsp_lint only, never compiled. *)
let scale s n = s * n
let total a b = a + b
let step i = i + 1
