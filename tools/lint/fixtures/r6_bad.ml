(* R6 fixture: the two flush paths take the mutex pair in opposite
   orders — the classic ABBA deadlock — and [reacquire] locks a mutex
   it already holds. *)
let a = Mutex.create ()
let b = Mutex.create ()

let flush_ab () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let flush_ba () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b

let reacquire () =
  Mutex.lock a;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock a
