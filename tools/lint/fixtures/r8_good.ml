(* R8 fixture: validate, then log (through a helper — the append must
   still dominate), then mutate, on every arm. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 8

let record wal line = Wal.append wal line

let handle wal line =
  match Protocol.parse_request line with
  | None -> ()
  | Some req ->
      record wal req;
      Hashtbl.replace table req 1
