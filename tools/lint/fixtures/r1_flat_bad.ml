(* R1 fixture: flat-kernel style — raw accumulation on Bigarray cell
   values.  Parsed by dsp_lint only, never compiled. *)
let apply_add t v value = Bigarray.Array1.unsafe_set t (2 * v) (cell t v + value)
let adjusted t v acc = acc + Bigarray.Array1.unsafe_get t (2 * v)
let threshold limit height = limit - height
