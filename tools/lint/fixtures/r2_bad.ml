(* R2 fixture: bare toplevel mutable state in a domain-shared library. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let scratch = Array.make 8 0
