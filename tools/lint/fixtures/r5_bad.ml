(* R5 fixture: wildcard handlers that swallow every exception. *)
let f g x = try g x with _ -> 0

let h g x = match g x with v -> v | exception _ -> 0
