(* R4 fixture: every counter comes from the table — by binding, or by
   a literal that matches a canonical wire name. *)
let a = Instr.counter Sites.alpha
let b = Instr.counter "beta.hits"
