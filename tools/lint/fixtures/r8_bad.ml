(* R8 fixture: the arrive arm mutates session state before anything
   reached the log, and then appends a record nobody validated. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 8

let handle wal line =
  match line with
  | "arrive" ->
      Hashtbl.replace table line 1;
      Wal.append wal line
  | _ -> ()
