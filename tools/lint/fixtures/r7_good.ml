(* R7 fixture: the hot path reads and writes in place through a
   helper; the allocator exists but only the cold snapshot path
   reaches it. *)
let bump stats i = stats.(i) <- stats.(i) + 1

let range_add t lo hi =
  bump t lo;
  bump t hi

let snapshot t = Array.copy t
