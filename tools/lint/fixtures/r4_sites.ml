(* R4 fixture: a canonical sites table in the Instr.Sites shape. *)
module Sites = struct
  let alpha = "alpha.hits"
  let beta = "beta.hits"
  let all = [ alpha; beta ]
end
