(* Whole-program suppression fixture: one real violation per rule
   R6-R9, each silenced by a line waiver.  A clean run proves the
   waiver channel reaches the interprocedural rules. *)
let a = Mutex.create ()
let b = Mutex.create ()

let ab () =
  Mutex.lock a;
  (* lint: ok R6 *)
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let ba () =
  Mutex.lock b;
  (* lint: ok R6 *)
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b

let hot t =
  (* lint: ok R7 *)
  ignore (Array.make 4 0);
  t

let table : (string, int) Hashtbl.t = Hashtbl.create 8

let handle line =
  (* lint: ok R8 *)
  Hashtbl.replace table line 1

let flush fd =
  Mutex.lock a;
  (* lint: ok R9 *)
  Unix.fsync fd;
  Mutex.unlock a
