(* R2 fixture: domain-safe toplevel state — atomic, DLS, constructed
   per call, or explicitly waived as local. *)
let hits = Atomic.make 0
let slot = Domain.DLS.new_key (fun () -> 0)
let fresh_table () = Hashtbl.create 16
let cache = Hashtbl.create 16 (* lint: local *)
let lock = Mutex.create ()
