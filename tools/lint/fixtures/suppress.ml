[@@@lint.ignore "R1"]

(* Suppression fixture: the file-level attribute kills R1, the line
   waivers kill R3 and R5.  A clean run proves every suppression
   channel works. *)

let scale s n = s * n

let rec spin n = if n = 0 then 0 else spin (n - 1) (* lint: ok R3 *)

(* lint: ok R5 *)
let f g x = try g x with _ -> 0
