(* R1 fixture: arithmetic routed through the checked helpers, plus the
   exempt small-literal index idiom. *)
let scale s n = Xutil.checked_mul s n
let total a b = Xutil.checked_add a b
let step i = i + 1
let twice v = 2 * v
