(* R3 fixture: a recursive loop with no Budget checkpoint anywhere in
   its call closure. *)
let rec spin n = if n = 0 then 0 else spin (n - 1)
