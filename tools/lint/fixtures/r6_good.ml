(* R6 fixture: every path takes the pair in the same a-then-b order,
   including the Fun.protect unlock idiom, so the lock graph is
   acyclic. *)
let a = Mutex.create ()
let b = Mutex.create ()

let flush () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let drain () =
  Mutex.lock a;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock a)
    (fun () ->
      Mutex.lock b;
      Mutex.unlock b)
