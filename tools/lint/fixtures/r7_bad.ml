(* R7 fixture: the seeded regression — a refactor introduced a closure
   on the range_add hot path and routed growth through an allocating
   helper.  The cold allocator at the bottom is unreachable from the
   root and must stay unflagged. *)
let grow a = Array.append a a

let range_add t lo hi =
  let add i = t.(i) <- t.(i) + lo in
  add lo;
  add hi;
  ignore (grow t)

let cold_rebuild () = Array.make 16 0
