(* R5 fixture: handlers that name what they catch, or rebind and
   re-raise. *)
let f g x = try g x with Not_found -> 0
let h g x = try g x with e -> raise e
