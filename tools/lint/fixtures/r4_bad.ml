(* R4 fixture: one counter minted outside the table, and (because
   nothing here touches beta) one dead site back in r4_sites.ml. *)
let a = Instr.counter Sites.alpha
let b = Instr.counter "alpha.typo"
