(* R1 fixture: flat-kernel style done right — index math rides the
   small-literal exemption, thresholds saturate, and the one guarded
   accumulation site carries its waiver.  Parsed by dsp_lint only. *)
let tget t v = Bigarray.Array1.unsafe_get t (2 * v)
let lslot v = (2 * v) + 1
let threshold limit height = Xutil.sat_sub limit height
let guard t value = ignore (Xutil.checked_add (tget t 1) value)

let apply_add t v value =
  guard t value;
  Bigarray.Array1.unsafe_set t (2 * v) (tget t v + value) (* lint: ok R1 — root guard *)
