(* R2 fixture: a hand-rolled work-stealing deque whose shared state is
   bare toplevel mutables — the owner/thief race R2 exists to catch. *)
let ring = Array.make 64 0
let top = ref 0
let bottom = ref 0

let push v =
  ring.(!bottom land 63) <- v;
  incr bottom

let steal () =
  if !top < !bottom then begin
    let v = ring.(!top land 63) in
    incr top;
    Some v
  end
  else None
