(* R9 fixture: blocking IO while the mutex is held — directly, through
   a helper, and through the locked-closure idiom. *)
let m = Mutex.create ()

let persist fd = Unix.fsync fd

let direct fd =
  Mutex.lock m;
  Unix.fsync fd;
  Mutex.unlock m

let indirect fd =
  Mutex.lock m;
  persist fd;
  Mutex.unlock m

let locked f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r

let via_closure fd = locked (fun () -> Unix.fsync fd)
