(* R8 — write-ahead ordering: on every path through the serve
   daemon's request handler, (1) some request validation must happen
   before the write-ahead log is appended to, and (2) the append must
   happen before the session-state mutation it records.  A mutation a
   crash cannot replay is a durability hole; an append for a request
   nobody validated is a poisoned log.

   Checked as a flow property by inlining the handler's resolved
   callees (cycle-guarded) and interpreting the event stream with a
   (validated, appended) state: validator calls set the first flag,
   Wal.append requires the first and sets the second, mutator calls
   require the second.  Branch arms are independent paths; the state
   after a branch is the conjunction over arms (both flags are
   monotone, so this is the meet).  Checks only fire at events in the
   handler's own source file — helpers from other units are inlined
   for their state effects (a wal_append wrapper counts as an append)
   but their internal bookkeeping is not this rule's business. *)

module Ir = Lint_ir
module Cg = Lint_callgraph

let validators =
  [
    [ "Protocol"; "parse_request" ];
    [ "Protocol"; "parse" ];
    [ "Hashtbl"; "find_opt" ];
    [ "Hashtbl"; "mem" ];
    [ "Hashtbl"; "find" ];
  ]

(* `wal_append` is the Server helper every mutation path goes
   through; it deliberately returns `Ok ()` for in-memory sessions
   (entry.wal = None), so raw `Wal.append` does not dominate the
   mutations even though the helper does.  Treating the helper as the
   canonical logged-or-deliberately-in-memory point is the honest
   reading of the protocol. *)
let appenders = [ [ "Wal"; "append" ]; [ "wal_append" ] ]

let mutators =
  [
    [ "Session"; "arrive" ];
    [ "Session"; "depart" ];
    [ "Session"; "depart_result" ];
    [ "Session"; "apply" ];
    [ "Hashtbl"; "replace" ];
    [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "add" ];
  ]

type state = { validated : bool; appended : bool }

let finding (pos : Ir.pos) msg =
  {
    Lint_core.rule = Lint_core.R8;
    file = pos.Ir.file;
    line = pos.Ir.line;
    col = pos.Ir.col;
    msg;
  }

let check (cg : Cg.t) ~roots =
  let findings = ref [] in
  let emit pos msg = findings := finding pos msg :: !findings in
  let run_root root =
    match Cg.find cg root with
    | None -> ()
    | Some root_fn ->
        let root_file = root_fn.Ir.fpos.Ir.file in
        let in_scope (pos : Ir.pos) = pos.Ir.file = root_file in
        let rec walk stack st evs = List.fold_left (step stack) st evs
        and walk_cargs stack st cargs =
          List.fold_left (fun st body -> walk stack st body) st cargs
        and step stack st ev =
          match ev with
          | Ir.Call c ->
              let name = Ir.join_name c.Ir.callee in
              if Ir.matches_any mutators c.Ir.callee then begin
                if in_scope c.Ir.cpos && not st.appended then
                  emit c.Ir.cpos
                    (Printf.sprintf
                       "session-state mutation `%s` is not dominated by a \
                        Wal.append on this path through %s — a crash here \
                        loses the update; log before mutating or waive with \
                        (* lint: ok R8 *)"
                       name root);
                walk_cargs stack st c.Ir.cargs
              end
              else if Ir.matches_any appenders c.Ir.callee then begin
                if in_scope c.Ir.cpos && not st.validated then
                  emit c.Ir.cpos
                    (Printf.sprintf
                       "`%s` is not dominated by request validation on this \
                        path through %s — validate before logging or waive \
                        with (* lint: ok R8 *)"
                       name root);
                { (walk_cargs stack st c.Ir.cargs) with appended = true }
              end
              else if Ir.matches_any validators c.Ir.callee then
                { (walk_cargs stack st c.Ir.cargs) with validated = true }
              else begin
                match Cg.resolve cg c.Ir.callee with
                | Some callee
                  when (not (List.mem callee stack))
                       && List.length stack < 64 -> (
                    match Cg.find cg callee with
                    | Some fn ->
                        let st' = walk (callee :: stack) st fn.Ir.events in
                        walk_cargs stack st' c.Ir.cargs
                    | None -> walk_cargs stack st c.Ir.cargs)
                | _ -> walk_cargs stack st c.Ir.cargs
              end
          | Ir.Branch arms -> (
              match List.map (walk stack st) arms with
              | [] -> st
              | r :: rest ->
                  List.fold_left
                    (fun acc r ->
                      {
                        validated = acc.validated && r.validated;
                        appended = acc.appended && r.appended;
                      })
                    r rest)
          | Ir.Closure (body, _) -> walk stack st body
          | Ir.Lock _ | Ir.Unlock _ | Ir.Alloc _ -> st
        in
        ignore
          (walk [ root ] { validated = false; appended = false }
             root_fn.Ir.events)
  in
  List.iter run_root roots;
  !findings
