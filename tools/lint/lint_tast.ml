(* Typedtree front-end for the whole-program rules: loads the
   compiler's .cmt artifacts (written by dune next to every compiled
   module) and lowers each implementation to the [Lint_ir] event
   summary.  Working on the *typed* tree means call sites arrive as
   resolved [Path.t]s — "Dsp_serve__Session.arrive", not whatever
   alias the source spelled — which is what makes cross-module
   resolution in [Lint_callgraph] reliable.

   Only the OCaml-5.1 constructor shapes the lowering needs are
   matched explicitly; every other expression falls through to a
   generic [Tast_iterator] sweep that concatenates sub-expression
   events in syntactic order. *)

open Typedtree
module Ir = Lint_ir

let pos_of_loc = Ir.pos_of_loc ?file:None

let path_components p = Ir.normalize_path_name (Path.name p)

let type_name (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Ir.join_name (path_components p))
  | _ -> None

(* Mutex identity: record fields key on the record's *type* path plus
   the label ("Pool.t.m"), so `pool.m` and `p.m` in different
   functions agree; plain values key on their resolved path. *)
let rec mutex_id (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Ir.join_name (path_components p)
  | Texp_field (b, _, ld) -> (
      match type_name ld.Types.lbl_res with
      | Some t -> t ^ "." ^ ld.Types.lbl_name
      | None -> mutex_id b ^ "." ^ ld.Types.lbl_name)
  | _ ->
      let p = pos_of_loc e.exp_loc in
      Printf.sprintf "<unknown:%s:%d>" p.Ir.file p.Ir.line

let is_fun_literal (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let rec events_of ~stack (e : expression) : Ir.event list =
  let pos = pos_of_loc e.exp_loc in
  let ev = events_of ~stack in
  match e.exp_desc with
  | Texp_ident _ -> []
  | Texp_constant (Asttypes.Const_float _) -> [ Ir.Alloc ("boxed float", pos) ]
  | Texp_constant _ -> []
  | Texp_function _ -> [ Ir.Closure (body_events ~stack e, pos) ]
  | Texp_apply (head, args) -> apply ~stack pos head args
  | Texp_let (_, vbs, body) ->
      List.concat_map (fun vb -> ev vb.vb_expr) vbs @ ev body
  | Texp_sequence (a, b) -> ev a @ ev b
  | Texp_ifthenelse (c, t, f) ->
      ev c
      @ [ Ir.Branch [ ev t; (match f with Some f -> ev f | None -> []) ] ]
  | Texp_match (scr, cases, _) ->
      ev scr @ [ Ir.Branch (List.map (case_events ~stack) cases) ]
  | Texp_try (body, cases) ->
      ev body @ [ Ir.Branch (List.map (case_events ~stack) cases) ]
  | Texp_tuple parts ->
      Ir.Alloc ("tuple", pos) :: List.concat_map ev parts
  | Texp_construct (_, _, []) -> []
  | Texp_construct (_, cd, args) ->
      Ir.Alloc ("constructor " ^ cd.Types.cstr_name, pos)
      :: List.concat_map ev args
  | Texp_record { fields; extended_expression; _ } ->
      Ir.Alloc ("record", pos)
      :: (Array.to_list fields
         |> List.concat_map (fun (_, def) ->
                match def with
                | Overridden (_, e) -> ev e
                | Kept _ -> []))
      @ (match extended_expression with Some b -> ev b | None -> [])
  | Texp_field (b, _, _) -> ev b
  | Texp_setfield (b, _, _, v) -> ev b @ ev v
  | Texp_array parts ->
      Ir.Alloc ("array literal", pos) :: List.concat_map ev parts
  | _ ->
      (* Generic sweep: events of immediate sub-expressions, in
         syntactic order (covers while/for/assert/lazy/letop/...). *)
      let acc = ref [] in
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ sub -> acc := !acc @ events_of ~stack sub);
        }
      in
      Tast_iterator.default_iterator.expr it e;
      !acc

(* The body of a function definition: peel the parameter spine
   (chained single-case [Texp_function]) so wrapper lambdas do not
   read as closure allocations; a multi-case parameter becomes a
   branch over its arms. *)
and body_events ~stack (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when c.c_guard = None ->
      body_events ~stack c.c_rhs
  | Texp_function { cases; _ } ->
      [ Ir.Branch (List.map (case_events ~stack) cases) ]
  | _ -> events_of ~stack e

and case_events : 'k. stack:string list -> 'k case -> Ir.event list =
 fun ~stack c ->
  (match c.c_guard with Some g -> events_of ~stack g | None -> [])
  @ events_of ~stack c.c_rhs

and apply ~stack pos (head : expression) args =
  let arg_exprs = List.filter_map snd args in
  match head.exp_desc with
  | Texp_ident (p, _, _) -> (
      let comps = path_components p in
      let qualified =
        match comps with [ single ] -> stack @ [ single ] | _ -> comps
      in
      match (comps, arg_exprs) with
      | [ "Mutex"; "lock" ], [ m ] -> [ Ir.Lock (mutex_id m, pos) ]
      | [ "Mutex"; "unlock" ], [ m ] -> [ Ir.Unlock (mutex_id m, pos) ]
      | [ "@@" ], [ f; x ] -> events_of ~stack x @ called_now ~stack f
      | [ "|>" ], [ x; f ] -> events_of ~stack x @ called_now ~stack f
      | [ "Fun"; "protect" ], _ ->
          (* Fun.protect ~finally:FIN BODY: BODY runs now, FIN on the
             way out — inline both in that order so a finally-unlock
             lands after the protected body. *)
          let finally, body =
            List.partition
              (fun (lbl, _) -> lbl = Asttypes.Labelled "finally")
              args
          in
          let inline = List.concat_map (fun (_, e) ->
              match e with Some e -> called_now ~stack e | None -> [])
          in
          inline body @ inline finally
      | _ ->
          let scalar, closures =
            List.partition (fun e -> not (is_fun_literal e)) arg_exprs
          in
          List.concat_map (events_of ~stack) scalar
          @ [
              Ir.Call
                {
                  callee = qualified;
                  cpos = pos;
                  cargs = List.map (body_events ~stack) closures;
                };
            ])
  | _ -> List.concat_map (events_of ~stack) (head :: arg_exprs)

(* An argument the callee invokes itself: a literal inlines to its
   body, an identifier becomes a call. *)
and called_now ~stack (e : expression) =
  if is_fun_literal e then body_events ~stack e
  else
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let comps = path_components p in
        let qualified =
          match comps with [ single ] -> stack @ [ single ] | _ -> comps
        in
        [ Ir.Call { callee = qualified; cpos = pos_of_loc e.exp_loc; cargs = [] } ]
    | _ -> events_of ~stack e

(* ----- structure -> summary ------------------------------------------- *)

let rec pat_name : type k. k general_pattern -> string option =
 fun p ->
  match p.pat_desc with
  | Tpat_var (_, name) -> Some name.Location.txt
  | Tpat_alias (p, _, _) -> pat_name p
  | _ -> None

let collect_funcs ~unit_name (str : structure) =
  let funcs = ref [] in
  let rec items stack is = List.iter (item stack) is
  and item stack (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match pat_name vb.vb_pat with
            | None -> ()
            | Some name ->
                let fname = stack @ [ name ] in
                let events =
                  if is_fun_literal vb.vb_expr then
                    body_events ~stack vb.vb_expr
                  else events_of ~stack vb.vb_expr
                in
                funcs :=
                  { Ir.fname; fpos = pos_of_loc vb.vb_loc; events }
                  :: !funcs)
          vbs
    | Tstr_module mb -> module_binding stack mb
    | Tstr_recmodule mbs -> List.iter (module_binding stack) mbs
    | _ -> ()
  and module_binding stack (mb : module_binding) =
    match mb.mb_name.Location.txt with
    | None -> ()
    | Some m -> module_expr (stack @ [ m ]) mb.mb_expr
  and module_expr stack (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> items stack str.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr stack me
    | _ -> ()
  in
  items [ unit_name ] str.str_items;
  List.rev !funcs

let last_component comps =
  match List.rev comps with c :: _ -> c | [] -> ""

(* Read one .cmt into a summary.  [Error] covers unreadable or
   non-implementation artifacts (interfaces, packs). *)
let summarize_cmt path : (Ir.summary, string) result =
  match Cmt_format.read_cmt path with
  | exception e ->
      Error (Printf.sprintf "%s: cannot read cmt: %s" path (Printexc.to_string e))
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let unit_name =
            last_component (Ir.split_mangled cmt.Cmt_format.cmt_modname)
          in
          let src_file =
            Option.value cmt.Cmt_format.cmt_sourcefile ~default:""
          in
          Ok { Ir.unit_name; src_file; funcs = collect_funcs ~unit_name str }
      | _ -> Error (Printf.sprintf "%s: not an implementation cmt" path))

(* ----- artifact discovery --------------------------------------------- *)

(* Find the .cmt files dune wrote for the production tree.  When run
   from the project root the artifacts live under _build/default; when
   run *inside* _build/default (the @lint rule does) the .objs
   directories are directly beneath the given root.  Returns sorted
   paths; the caller filters by each summary's source file, so the
   artifacts are only unmarshalled once (and not at all on a cache
   hit). *)
let discover_cmts ~root =
  let base =
    let b = Filename.concat root "_build/default" in
    if Sys.file_exists b && Sys.is_directory b then b else root
  in
  let hits = ref [] in
  let contains sub s =
    let ls = String.length sub and ln = String.length s in
    let rec at i = i + ls <= ln && (String.sub s i ls = sub || at (i + 1)) in
    at 0
  in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            let p = Filename.concat dir entry in
            match Sys.is_directory p with
            | exception Sys_error _ -> ()
            | true -> if entry <> "_build" && entry <> ".git" then walk p
            | false ->
                if Filename.check_suffix entry ".cmt" then begin
                  let n = Ir.normalize p in
                  if contains ".objs/byte/" n || contains ".eobjs/byte/" n
                  then hits := p :: !hits
                end)
          entries
  in
  walk base;
  List.sort compare !hits

(* Keep a summary iff its source file sits under one of the given
   top-level prefixes ("lib/", "bin/", "bench/"). *)
let src_in_prefixes prefixes src =
  src <> ""
  && List.exists
       (fun pre ->
         let src = Ir.normalize src in
         String.length src > String.length pre
         && String.sub src 0 (String.length pre) = pre)
       prefixes
