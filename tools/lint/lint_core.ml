(* AST-level invariant checker for the DSP solver engine.

   The multicore engine's correctness rests on conventions no compiler
   pass enforces: overflow-sensitive modules must route int arithmetic
   through [Xutil.checked_*] (the paper's pseudo-polynomial
   constructions produce widths/heights where raw ops silently wrap),
   solver loops must poll [Budget] checkpoints to keep the runner
   total, counter sites must come from the canonical [Instr.Sites]
   vocabulary, toplevel mutable state in domain-shared libraries is a
   latent data race, and a bare [try ... with _ ->] can swallow the
   very [Budget.Expired]/[Fault.Injected] exceptions the taxonomy
   depends on.  This module parses each [.ml] with compiler-libs
   ([Parse] + [Ast_iterator], no new dependencies) and machine-checks
   those conventions as five named, individually suppressible rules.

   Suppressions:
   - [(* lint: ok R3 *)] on a finding's line (or the line directly
     above it) waives that rule there;
   - [(* lint: local *)] is the R2 waiver for deliberately
     domain-local or externally synchronized toplevel state;
   - [[@@@lint.ignore "R1"]] waives a rule for the whole file. *)

module P = Parsetree
module SS = Set.Make (String)

(* ----- rules ---------------------------------------------------------- *)

type rule_id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

(* R1–R5 are per-file parsetree rules run by this module; R6–R9 are
   the whole-program typedtree rules run by [Lint_whole] over the
   cross-module call graph. *)
let syntactic_rules = [ R1; R2; R3; R4; R5 ]
let whole_program_rules = [ R6; R7; R8; R9 ]

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let rule_of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | _ -> None

let rule_summary = function
  | R1 ->
      "overflow: raw int +/-/* in overflow-sensitive scopes must route \
       through Xutil.checked_* (small-literal index arithmetic is exempt)"
  | R2 ->
      "domain-safety: toplevel mutable state (ref/Hashtbl/Array/...) in a \
       library reachable from Dsp_bb.solve_par, Wsdeque.steal or \
       Runner.race must be Atomic/Mutex/DLS-wrapped or waived with (* lint: \
       local *)"
  | R3 ->
      "budget-totality: recursive functions in lib/exact and lib/lp must \
       reach a Budget.check/poll checkpoint (directly or via a helper)"
  | R4 ->
      "instr-registry: Instr.counter string literals must be canonical \
       Instr.Sites names, and every site must be referenced (no dead sites)"
  | R5 ->
      "exception-swallowing: bare `try ... with _ ->` is forbidden outside \
       the pool worker absorber; the serve daemon's per-connection absorber \
       is the one waived site"
  | R6 ->
      "lock-order: every pair of mutexes must be acquired in one global \
       order across the whole program; a cycle in the observed lock graph \
       (or re-acquiring a held mutex) is a potential deadlock"
  | R7 ->
      "allocation-freedom: no allocating construct (closure, tuple, \
       non-constant constructor, record, boxed float, allocating stdlib \
       call) may be reachable from the flat Segtree hot-path entry points"
  | R8 ->
      "write-ahead ordering: on every path through Server.handle, request \
       validation must dominate Wal.append, and Wal.append must dominate \
       the session-state mutation it logs"
  | R9 ->
      "blocking-under-lock: no Unix fsync/socket IO or Pool.await may run, \
       even transitively, while a mutex is held (Condition.wait is exempt: \
       it releases the mutex)"

type finding = {
  rule : rule_id;
  file : string;
  line : int;
  col : int;
  msg : string;
}

let finding_to_string f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col (rule_name f.rule)
    f.msg

(* ----- configuration -------------------------------------------------- *)

(* Which bindings of an R1-designated file are in scope. *)
type r1_target =
  | All
  | Only of string list  (* just these top-level bindings *)
  | Except of string list  (* everything but these *)

type config = {
  r1_scope : (string * r1_target) list;
      (* path suffix -> which bindings the overflow rule audits *)
  r2_dirs : string list;  (* directories whose libraries are domain-shared *)
  r3_dirs : string list;  (* directories whose recursion must checkpoint *)
  r4_sites_file : string option;
      (* path suffix of the file defining [module Sites] *)
  r5_allow : string list;  (* path suffixes where a bare wildcard is legal *)
}

let normalize path = String.concat "/" (String.split_on_char '\\' path)

let has_suffix path sfx =
  let path = normalize path and sfx = normalize sfx in
  let lp = String.length path and ls = String.length sfx in
  lp >= ls
  && String.sub path (lp - ls) ls = sfx
  && (lp = ls || path.[lp - ls - 1] = '/')

let in_dirs path dirs =
  let path = "/" ^ normalize path in
  List.exists
    (fun d ->
      let d = "/" ^ normalize d ^ "/" in
      let ld = String.length d and lp = String.length path in
      let rec at i = i + ld <= lp && (String.sub path i ld = d || at (i + 1)) in
      at 0)
    dirs

(* ----- dune-graph reachability (R2 scope) ----------------------------- *)

(* A tiny s-expression reader, enough for this repo's dune files:
   atoms, parens, ;-comments.  Quoted strings are kept as raw atoms. *)
type sexp = Atom of string | List of sexp list

let parse_sexps text =
  let n = String.length text in
  let rec skip i =
    if i >= n then i
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
      | ';' ->
          let rec eol i = if i >= n || text.[i] = '\n' then i else eol (i + 1) in
          skip (eol i)
      | _ -> i
  in
  let rec atom i j =
    if j >= n then j
    else
      match text.[j] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> j
      | _ -> atom i (j + 1)
  in
  let rec many i acc =
    let i = skip i in
    if i >= n || text.[i] = ')' then (List.rev acc, i)
    else if text.[i] = '(' then begin
      let items, j = many (i + 1) [] in
      let j = if j < n && text.[j] = ')' then j + 1 else j in
      many j (List items :: acc)
    end
    else begin
      let j = atom i i in
      many j (Atom (String.sub text i (j - i)) :: acc)
    end
  in
  fst (many 0 [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Internal library dependency graph scraped from lib/<sub>/dune: the
   R2 scope is every library reachable from the multicore entry points
   (the graph is tiny, so this stays self-maintaining as PRs move
   code around). *)
let reachable_lib_dirs ~root ~roots =
  let libdir = Filename.concat root "lib" in
  if not (Sys.file_exists libdir && Sys.is_directory libdir) then []
  else begin
    let libs =
      Sys.readdir libdir |> Array.to_list |> List.sort compare
      |> List.filter_map (fun sub ->
             let dune = Filename.concat (Filename.concat libdir sub) "dune" in
             if not (Sys.file_exists dune) then None
             else
               let stanzas = parse_sexps (read_file dune) in
               let rec find_lib = function
                 | [] -> None
                 | List (Atom "library" :: fields) :: rest -> (
                     let name = ref None and deps = ref [] in
                     List.iter
                       (function
                         | List [ Atom "name"; Atom n ] -> name := Some n
                         | List (Atom "libraries" :: ds) ->
                             deps :=
                               List.filter_map
                                 (function Atom d -> Some d | List _ -> None)
                                 ds
                         | _ -> ())
                       fields;
                     match !name with
                     | Some n -> Some (n, "lib/" ^ sub, !deps)
                     | None -> find_lib rest)
                 | _ :: rest -> find_lib rest
               in
               find_lib stanzas)
    in
    let dir_of = List.map (fun (n, d, _) -> (n, d)) libs in
    let deps_of = List.map (fun (n, _, ds) -> (n, ds)) libs in
    let rec close visited = function
      | [] -> visited
      | n :: rest ->
          if SS.mem n visited || not (List.mem_assoc n dir_of) then
            close visited rest
          else
            close (SS.add n visited)
              (Option.value (List.assoc_opt n deps_of) ~default:[] @ rest)
    in
    let reach = close SS.empty roots in
    List.filter_map
      (fun (n, d) -> if SS.mem n reach then Some d else None)
      dir_of
    |> List.sort_uniq compare
  end

(* The project invariants.  R1 designates the overflow-sensitive
   modules from PR 3's hardening pass; R2's scope is computed from the
   dune graph so a new library joining the engine's dependency cone is
   audited automatically. *)
let project_config ~root =
  {
    r1_scope =
      [
        ("lib/util/rat.ml", All);
        ( "lib/core/segtree.ml",
          Only
            [
              (* boxed kernel *)
              "add_rec";
              "range_add";
              (* flat kernel hot paths (range_add is shared by name) *)
              "apply_add";
              "apply_range";
              "pull";
              "range_max";
              "descend_above";
              "last_above";
              "first_fit_from_i";
              "push_down_sweep";
              "push_subtree";
            ] );
        ("lib/core/profile.ml", Except [ "render"; "pp" ]);
      ];
    r2_dirs =
      (* dsp_serve pulls in the engine cone and adds the service layer,
         so the daemon's own state is domain-audited too.  dsp_util is
         a root in its own right since the work-stealing scheduler:
         Wsdeque.steal is a cross-domain entry point, so the audit of
         lib/util must not hinge on the engine cone keeping a
         dependency edge to it. *)
      reachable_lib_dirs ~root
        ~roots:[ "dsp_exact"; "dsp_engine"; "dsp_serve"; "dsp_util" ];
    r3_dirs = [ "lib/exact"; "lib/lp" ];
    r4_sites_file = Some "lib/util/instr.ml";
    r5_allow = [ "lib/util/pool.ml" ];
  }

(* ----- parsing and suppressions --------------------------------------- *)

type source = {
  path : string;
  structure : P.structure;
  waivers : (int * rule_id) list;  (* (line, rule) comment waivers *)
  ignored : rule_id list;  (* file-level [@@@lint.ignore "..."] *)
}

(* Comment waivers live outside the parsetree, so they are recovered
   from the raw text: any line containing "lint: ok R<k>" waives R<k>
   on that line and the next; "lint: local" is the R2 form. *)
let scan_waivers text =
  let waivers = ref [] in
  let contains_at line pat i =
    let lp = String.length pat and ll = String.length line in
    i + lp <= ll && String.sub line i lp = pat
  in
  let find_all line pat f =
    let ll = String.length line in
    for i = 0 to ll - 1 do
      if contains_at line pat i then f (i + String.length pat)
    done
  in
  List.iteri
    (fun idx line ->
      let lnum = idx + 1 in
      find_all line "lint: local" (fun _ -> waivers := (lnum, R2) :: !waivers);
      find_all line "lint: ok" (fun j ->
          (* Collect every R<digit> token in the rest of the line. *)
          let rest = String.sub line j (String.length line - j) in
          String.split_on_char ' ' rest
          |> List.iter (fun tok ->
                 let tok =
                   String.concat ""
                     (String.split_on_char ','
                        (String.concat "" (String.split_on_char '*' tok)))
                 in
                 let tok =
                   String.concat "" (String.split_on_char ')' tok)
                 in
                 match rule_of_string tok with
                 | Some r -> waivers := (lnum, r) :: !waivers
                 | None -> ())))
    (String.split_on_char '\n' text);
  !waivers

let file_level_ignores structure =
  List.concat_map
    (fun (item : P.structure_item) ->
      match item.pstr_desc with
      | P.Pstr_attribute { attr_name = { txt = "lint.ignore"; _ }; attr_payload; _ }
        -> (
          match attr_payload with
          | P.PStr
              [
                {
                  pstr_desc =
                    P.Pstr_eval
                      ( { pexp_desc = P.Pexp_constant (P.Pconst_string (s, _, _)); _ },
                        _ );
                  _;
                };
              ] ->
              String.split_on_char ' ' s
              |> List.concat_map (String.split_on_char ',')
              |> List.filter_map rule_of_string
          | _ -> [])
      | _ -> [])
    structure

let load_source path =
  match read_file path with
  | exception Sys_error e -> Error (Printf.sprintf "%s: %s" path e)
  | text -> (
      let lexbuf = Lexing.from_string text in
      Location.init lexbuf path;
      match Parse.implementation lexbuf with
      | structure ->
          Ok
            {
              path;
              structure;
              waivers = scan_waivers text;
              ignored = file_level_ignores structure;
            }
      | exception e ->
          Error (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string e)))

let suppressed src rule line =
  List.mem rule src.ignored
  || List.exists
       (fun (l, r) -> r = rule && (l = line || l = line - 1))
       src.waivers

(* ----- AST helpers ---------------------------------------------------- *)

let loc_line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (_, l) -> flatten_lid l

let last_lid lid =
  match List.rev (flatten_lid lid) with s :: _ -> s | [] -> ""

let rec pat_var (p : P.pattern) =
  match p.ppat_desc with
  | P.Ppat_var { txt; _ } -> Some txt
  | P.Ppat_constraint (p, _) -> pat_var p
  | _ -> None

let rec strip_expr (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_constraint (e, _) | P.Pexp_coerce (e, _, _) -> strip_expr e
  | _ -> e

let rec is_function (e : P.expression) =
  match e.pexp_desc with
  | P.Pexp_fun _ | P.Pexp_function _ -> true
  | P.Pexp_constraint (e, _) | P.Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Top-level value bindings of the file, descending into plain
   [module M = struct ... end] substructures (binding names stay
   unqualified). *)
let top_bindings structure =
  let rec of_items items acc =
    List.fold_left
      (fun acc (item : P.structure_item) ->
        match item.pstr_desc with
        | P.Pstr_value (_, vbs) ->
            List.fold_left
              (fun acc vb ->
                match pat_var vb.P.pvb_pat with
                | Some name -> (name, vb) :: acc
                | None -> acc)
              acc vbs
        | P.Pstr_module { pmb_expr; _ } -> of_module pmb_expr acc
        | _ -> acc)
      acc items
  and of_module (me : P.module_expr) acc =
    match me.pmod_desc with
    | P.Pmod_structure items -> of_items items acc
    | P.Pmod_constraint (me, _) -> of_module me acc
    | _ -> acc
  in
  List.rev (of_items structure [])

(* ----- R1: overflow --------------------------------------------------- *)

let r1_ops = [ "+"; "-"; "*" ]

let r1_checked_name = function
  | "+" -> "Xutil.checked_add"
  | "*" -> "Xutil.checked_mul"
  | _ -> "Xutil.checked_add (on the negated operand)"

let is_r1_op lid =
  match lid with
  | Longident.Lident s when List.mem s r1_ops -> true
  | Longident.Ldot (Longident.Lident "Stdlib", s) when List.mem s r1_ops ->
      true
  | _ -> false

(* Index-stepping idiom: an operand that is a small integer literal
   ([i + 1], [2 * v]) cannot be the paper-scale accumulation the rule
   is after, so it is exempt. *)
let small_literal_limit = 4096

let is_small_literal (e : P.expression) =
  match (strip_expr e).pexp_desc with
  | P.Pexp_constant (P.Pconst_integer (s, None)) -> (
      match int_of_string_opt s with
      | Some v -> abs v < small_literal_limit
      | None -> false)
  | _ -> false

let r1_designated target name =
  match target with
  | All -> true
  | Only names -> List.mem name names
  | Except names -> not (List.mem name names)

let r1_check cfg src emit =
  match
    List.find_opt (fun (sfx, _) -> has_suffix src.path sfx) cfg.r1_scope
  with
  | None -> ()
  | Some (_, target) ->
      let rec scan (e : P.expression) =
        match e.pexp_desc with
        | P.Pexp_apply
            ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ])
          when is_r1_op txt ->
            let op = last_lid txt in
            if not (is_small_literal a || is_small_literal b) then begin
              let line, col = loc_line_col e.pexp_loc in
              emit R1 line col
                (Printf.sprintf
                   "raw int ( %s ) on an overflow-sensitive path; use %s or \
                    waive with (* lint: ok R1 *)"
                   op (r1_checked_name op))
            end;
            scan a;
            scan b
        | P.Pexp_ident { txt; _ } when is_r1_op txt ->
            let line, col = loc_line_col e.pexp_loc in
            emit R1 line col
              (Printf.sprintf
                 "raw int operator ( %s ) passed as a value on an \
                  overflow-sensitive path; use %s"
                 (last_lid txt)
                 (r1_checked_name (last_lid txt)))
        | _ ->
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ e -> scan e);
              }
            in
            Ast_iterator.default_iterator.expr it e
      in
      List.iter
        (fun (name, vb) ->
          if r1_designated target name then scan vb.P.pvb_expr)
        (top_bindings src.structure)

(* ----- R2: domain-safety ---------------------------------------------- *)

let r2_mutable_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let is_mutable_ctor lid =
  let comps = flatten_lid lid in
  let comps =
    match comps with "Stdlib" :: rest when rest <> [] -> rest | c -> c
  in
  List.mem comps r2_mutable_ctors

let r2_check cfg src emit =
  if in_dirs src.path cfg.r2_dirs then
    List.iter
      (fun (name, vb) ->
        let rhs = strip_expr vb.P.pvb_expr in
        let flag kind =
          let line, col = loc_line_col vb.P.pvb_loc in
          emit R2 line col
            (Printf.sprintf
               "toplevel mutable state `%s` (%s) in a domain-shared library; \
                wrap it in Atomic/Mutex/Domain.DLS or waive with (* lint: \
                local *)"
               name kind)
        in
        match rhs.pexp_desc with
        | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _)
          when is_mutable_ctor txt ->
            flag (String.concat "." (flatten_lid txt))
        | P.Pexp_array _ -> flag "array literal"
        | _ -> ())
      (top_bindings src.structure)

(* ----- R3: budget-totality -------------------------------------------- *)

let budget_checkpoints = [ "check"; "poll"; "check_opt"; "poll_opt" ]

let is_budget_call lid =
  let comps = flatten_lid lid in
  match List.rev comps with
  | last :: rest ->
      List.mem last budget_checkpoints && List.mem "Budget" rest
  | [] -> false

(* (directly-checkpointed?, applied function names) of a subtree. *)
let expr_calls e =
  let direct = ref false and calls = ref SS.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.P.pexp_desc with
          | P.Pexp_apply ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, _) ->
              if is_budget_call txt then direct := true
              else calls := SS.add (last_lid txt) !calls
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  (!direct, !calls)

let r3_check cfg src emit =
  if in_dirs src.path cfg.r3_dirs then begin
    (* Pass 1: every named binding in the file, with its call set. *)
    let bindings = ref [] and rec_bindings = ref [] in
    let record ~recursive vbs =
      List.iter
        (fun vb ->
          match pat_var vb.P.pvb_pat with
          | Some name ->
              let direct, calls = expr_calls vb.P.pvb_expr in
              bindings := (name, direct, calls) :: !bindings;
              if recursive then rec_bindings := (name, vb, direct, calls) :: !rec_bindings
          | None -> ())
        vbs
    in
    let it =
      {
        Ast_iterator.default_iterator with
        structure_item =
          (fun it si ->
            (match si.P.pstr_desc with
            | P.Pstr_value (rf, vbs) ->
                record ~recursive:(rf = Asttypes.Recursive) vbs
            | _ -> ());
            Ast_iterator.default_iterator.structure_item it si);
        expr =
          (fun it e ->
            (match e.P.pexp_desc with
            | P.Pexp_let (rf, vbs, _) ->
                record ~recursive:(rf = Asttypes.Recursive) vbs
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it src.structure;
    (* Checkpoint closure: a function checkpoints if its body polls the
       budget or calls (by name) a function that does. *)
    let checkpointed =
      ref
        (List.fold_left
           (fun acc (n, direct, _) -> if direct then SS.add n acc else acc)
           SS.empty !bindings)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (n, _, calls) ->
          if
            (not (SS.mem n !checkpointed))
            && SS.exists (fun c -> SS.mem c !checkpointed) calls
          then begin
            checkpointed := SS.add n !checkpointed;
            changed := true
          end)
        !bindings
    done;
    (* Pass 2: recursive functions that never reach a checkpoint. *)
    List.iter
      (fun (name, vb, direct, calls) ->
        if
          is_function vb.P.pvb_expr
          && (not direct)
          && not (SS.exists (fun c -> SS.mem c !checkpointed) calls)
        then begin
          let line, col = loc_line_col vb.P.pvb_loc in
          emit R3 line col
            (Printf.sprintf
               "recursive function `%s` loops without a Budget checkpoint; \
                call Budget.check/poll (directly or via a checkpointing \
                helper) or waive with (* lint: ok R3 *)"
               name)
        end)
      (List.rev !rec_bindings)
  end

(* ----- R4: instr-registry --------------------------------------------- *)

type r4_state = {
  mutable sites : (string * string * int) list;
      (* binding name, wire name, line in the sites file *)
  mutable sites_src : source option;
  mutable used : SS.t;  (* Sites bindings referenced outside the table *)
  mutable literals : (source * int * int * string) list;
      (* Instr.counter string literals: src, line, col, value *)
}

let r4_create () =
  { sites = []; sites_src = None; used = SS.empty; literals = [] }

let is_instr_counter lid =
  let comps = flatten_lid lid in
  match List.rev comps with
  | "counter" :: rest -> List.mem "Instr" rest
  | _ -> false

let extract_sites structure =
  let rec of_items items =
    List.concat_map
      (fun (item : P.structure_item) ->
        match item.pstr_desc with
        | P.Pstr_module { pmb_name = { txt = Some "Sites"; _ }; pmb_expr; _ }
          -> (
            let rec body (me : P.module_expr) =
              match me.pmod_desc with
              | P.Pmod_structure items -> items
              | P.Pmod_constraint (me, _) -> body me
              | _ -> []
            in
            body pmb_expr
            |> List.concat_map (fun (si : P.structure_item) ->
                   match si.pstr_desc with
                   | P.Pstr_value (_, vbs) ->
                       List.filter_map
                         (fun vb ->
                           match
                             (pat_var vb.P.pvb_pat, (strip_expr vb.P.pvb_expr).pexp_desc)
                           with
                           | Some name, P.Pexp_constant (P.Pconst_string (v, _, _))
                             ->
                               let line, _ = loc_line_col vb.P.pvb_loc in
                               Some (name, v, line)
                           | _ -> None)
                         vbs
                   | _ -> []))
        | P.Pstr_module { pmb_expr = { pmod_desc = P.Pmod_structure items; _ }; _ }
          ->
            of_items items
        | _ -> [])
      items
  in
  of_items structure

let r4_collect cfg st src =
  let is_sites_file =
    match cfg.r4_sites_file with
    | Some sfx -> has_suffix src.path sfx
    | None -> false
  in
  if is_sites_file then begin
    st.sites <- extract_sites src.structure;
    st.sites_src <- Some src
  end;
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.P.pexp_desc with
          | P.Pexp_ident { txt; _ }
            when (not is_sites_file) && List.mem "Sites" (flatten_lid txt) ->
              st.used <- SS.add (last_lid txt) st.used
          | P.Pexp_apply
              ({ pexp_desc = P.Pexp_ident { txt; _ }; _ }, (_, arg) :: _)
            when is_instr_counter txt -> (
              match (strip_expr arg).pexp_desc with
              | P.Pexp_constant (P.Pconst_string (v, _, _)) ->
                  let line, col = loc_line_col arg.P.pexp_loc in
                  st.literals <- (src, line, col, v) :: st.literals
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it src.structure

let r4_finalize cfg st =
  match cfg.r4_sites_file with
  | None -> []
  | Some sfx -> (
      match st.sites_src with
      | None ->
          [
            {
              rule = R4;
              file = sfx;
              line = 1;
              col = 0;
              msg =
                "canonical sites file was not among the scanned paths, so \
                 rule R4 cannot run";
            };
          ]
      | Some sites_src ->
          let values = List.map (fun (_, v, _) -> v) st.sites in
          let literal_findings =
            List.filter_map
              (fun (src, line, col, v) ->
                if List.mem v values || suppressed src R4 line then None
                else
                  Some
                    {
                      rule = R4;
                      file = src.path;
                      line;
                      col;
                      msg =
                        Printf.sprintf
                          "counter literal %S is not a canonical Instr.Sites \
                           name; add it to the table or reference an \
                           existing site"
                          v;
                    })
              (List.rev st.literals)
          in
          (* A literal equal to a site's wire name also counts as a use:
             the site is demonstrably alive even if unreferenced by
             binding. *)
          let literal_values =
            List.fold_left
              (fun acc (_, _, _, v) -> SS.add v acc)
              SS.empty st.literals
          in
          let dead_findings =
            List.filter_map
              (fun (name, v, line) ->
                if
                  SS.mem name st.used
                  || SS.mem v literal_values
                  || suppressed sites_src R4 line
                then None
                else
                  Some
                    {
                      rule = R4;
                      file = sites_src.path;
                      line;
                      col = 0;
                      msg =
                        Printf.sprintf
                          "dead instrumentation site: Sites.%s (%S) is never \
                           referenced outside the table"
                          name v;
                    })
              st.sites
          in
          literal_findings @ dead_findings)

(* ----- R5: exception-swallowing --------------------------------------- *)

let rec catch_all (p : P.pattern) =
  match p.ppat_desc with
  | P.Ppat_any -> true
  | P.Ppat_alias (p, _) | P.Ppat_constraint (p, _) -> catch_all p
  | P.Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let r5_check cfg src emit =
  if not (List.exists (fun sfx -> has_suffix src.path sfx) cfg.r5_allow) then begin
    let flag (case : P.case) =
      let line, col = loc_line_col case.pc_lhs.ppat_loc in
      emit R5 line col
        "bare `with _ ->` swallows every exception (including Budget.Expired \
         and Fault.Injected); match specific exceptions, rebind and re-raise, \
         or waive with (* lint: ok R5 *)"
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.P.pexp_desc with
            | P.Pexp_try (_, cases) ->
                List.iter
                  (fun (c : P.case) -> if catch_all c.pc_lhs then flag c)
                  cases
            | P.Pexp_match (_, cases) ->
                List.iter
                  (fun (c : P.case) ->
                    match c.pc_lhs.ppat_desc with
                    | P.Ppat_exception p when catch_all p -> flag c
                    | _ -> ())
                  cases
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it src.structure
  end

(* ----- driver --------------------------------------------------------- *)

let rec collect_ml_files path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Sys.readdir path |> Array.to_list |> List.sort compare
      |> List.fold_left
           (fun acc entry ->
             if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
             else collect_ml_files (Filename.concat path entry) acc)
           acc
  | false -> if Filename.check_suffix path ".ml" then path :: acc else acc

(* Total order on findings — (file, line, col), then rule, then the
   message text — so output is byte-for-byte deterministic across runs
   and CI diffs stay stable even when one location carries several
   findings of the same rule. *)
let compare_findings a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare (a.line, a.col) (b.line, b.col) in
    if c <> 0 then c
    else
      let c = compare a.rule b.rule in
      if c <> 0 then c else compare a.msg b.msg

type result = { findings : finding list; errors : string list; files : int }

let run ?only cfg paths =
  let active r =
    match only with None -> true | Some rules -> List.mem r rules
  in
  let files =
    List.concat_map (fun p -> List.rev (collect_ml_files p [])) paths
    |> List.sort_uniq compare
  in
  let findings = ref [] and errors = ref [] in
  let r4 = r4_create () in
  List.iter
    (fun path ->
      match load_source path with
      | Error e -> errors := e :: !errors
      | Ok src ->
          let emit rule line col msg =
            if not (suppressed src rule line) then
              findings := { rule; file = src.path; line; col; msg } :: !findings
          in
          if active R1 then r1_check cfg src emit;
          if active R2 then r2_check cfg src emit;
          if active R3 then r3_check cfg src emit;
          if active R4 then r4_collect cfg r4 src;
          if active R5 then r5_check cfg src emit)
    files;
  let r4_findings =
    if active R4 then
      List.filter
        (fun f ->
          match r4.sites_src with
          | Some src -> not (List.mem f.rule src.ignored) || f.file <> src.path
          | None -> true)
        (r4_finalize cfg r4)
    else []
  in
  {
    findings = List.sort compare_findings (r4_findings @ !findings);
    errors = List.rev !errors;
    files = List.length files;
  }
