(* R6 — lock-order: build the "held while acquiring" graph across the
   whole program and flag every edge that sits on a cycle (two code
   paths that take the same pair of mutexes in opposite orders can
   deadlock), plus the degenerate cycle of re-acquiring a mutex the
   walker already holds.

   The walk is interprocedural: acquiring inside a callee counts
   through [Lint_callgraph.transitive_locks], and a closure argument
   is assumed to run under the locks its callee takes directly (the
   `locked (fun () -> ...)` idiom).  Branch arms are walked
   independently and the held set continues as their intersection —
   unbalanced arms stay conservative instead of poisoning the rest of
   the function. *)

module Ir = Lint_ir
module Cg = Lint_callgraph
module SS = Set.Make (String)

let finding (pos : Ir.pos) msg =
  {
    Lint_core.rule = Lint_core.R6;
    file = pos.Ir.file;
    line = pos.Ir.line;
    col = pos.Ir.col;
    msg;
  }

let check (cg : Cg.t) =
  let findings = ref [] in
  let edges : (string * string, Ir.pos) Hashtbl.t = Hashtbl.create 64 in
  let add_edge a b pos =
    if not (Hashtbl.mem edges (a, b)) then Hashtbl.add edges (a, b) pos
  in
  let trans_locks = Cg.transitive_locks cg in
  let direct_locks name =
    match Cg.find cg name with
    | Some fn -> Ir.direct_lock_ids fn
    | None -> []
  in
  let rec remove_one id = function
    | [] -> []
    | x :: rest -> if x = id then rest else x :: remove_one id rest
  in
  let rec walk held evs = List.fold_left step held evs
  and step held ev =
    match ev with
    | Ir.Lock (id, pos) ->
        if List.mem id held then
          findings :=
            finding pos
              (Printf.sprintf
                 "mutex `%s` re-acquired while already held on this path — \
                  OCaml mutexes are not recursive, this self-deadlocks"
                 id)
            :: !findings;
        List.iter (fun h -> if h <> id then add_edge h id pos) held;
        id :: held
    | Ir.Unlock (id, _) -> remove_one id held
    | Ir.Call c ->
        let resolved = Cg.resolve cg c.Ir.callee in
        (match resolved with
        | Some callee when held <> [] ->
            SS.iter
              (fun l ->
                List.iter
                  (fun h -> if h <> l then add_edge h l c.Ir.cpos)
                  held)
              (trans_locks callee)
        | _ -> ());
        let under =
          match resolved with Some callee -> direct_locks callee | None -> []
        in
        List.iter
          (fun body -> ignore (walk (under @ held) body))
          c.Ir.cargs;
        held
    | Ir.Branch arms -> (
        let results = List.map (walk held) arms in
        match results with
        | [] -> held
        | r0 :: rest ->
            List.filter (fun id -> List.for_all (List.mem id) rest) r0)
    | Ir.Closure (body, _) ->
        ignore (walk held body);
        held
    | Ir.Alloc _ -> held
  in
  List.iter
    (fun name ->
      match Cg.find cg name with
      | Some fn -> ignore (walk [] fn.Ir.events)
      | None -> ())
    cg.Cg.order;
  (* Cycle detection: an edge a->b is deadlock-prone iff b reaches a. *)
  let succs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) _ ->
      let prev = Option.value (Hashtbl.find_opt succs a) ~default:SS.empty in
      Hashtbl.replace succs a (SS.add b prev))
    edges;
  let reaches src dst =
    let seen = ref SS.empty in
    let rec go n =
      n = dst
      || ((not (SS.mem n !seen))
         && begin
              seen := SS.add n !seen;
              SS.exists go
                (Option.value (Hashtbl.find_opt succs n) ~default:SS.empty)
            end)
    in
    SS.exists go
      (Option.value (Hashtbl.find_opt succs src) ~default:SS.empty)
  in
  Hashtbl.iter
    (fun (a, b) pos ->
      if reaches b a then
        findings :=
          finding pos
            (Printf.sprintf
               "lock-order cycle: mutex `%s` is acquired here while `%s` is \
                held, but another path acquires them in the reverse order — \
                potential deadlock; pick one global order or waive with (* \
                lint: ok R6 *)"
               b a)
          :: !findings)
    edges;
  !findings
