(* Output emitters for dsp_lint: the classic `file:line:col [R#] msg`
   text lines, a machine-readable JSON document, and SARIF 2.1.0 for
   CI annotation uploads.  Both structured formats are hand-rolled —
   the payload is flat and the toolchain ships no JSON library. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ json_escape s ^ "\""

let to_text (findings : Lint_core.finding list) =
  String.concat ""
    (List.map (fun f -> Lint_core.finding_to_string f ^ "\n") findings)

let to_json ~errors (findings : Lint_core.finding list) =
  let finding (f : Lint_core.finding) =
    Printf.sprintf
      "    {\"rule\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \
       \"message\": %s}"
      (quote (Lint_core.rule_name f.Lint_core.rule))
      (quote f.Lint_core.file) f.Lint_core.line f.Lint_core.col
      (quote f.Lint_core.msg)
  in
  String.concat "\n"
    ([ "{"; "  \"findings\": [" ]
    @ [ String.concat ",\n" (List.map finding findings) ]
    @ [
        "  ],";
        Printf.sprintf "  \"errors\": [%s]"
          (String.concat ", " (List.map quote errors));
        "}";
        "";
      ])

(* Minimal SARIF 2.1.0: one run, one driver, the rule catalogue, one
   result per finding.  Columns are 0-based internally and 1-based in
   SARIF. *)
let to_sarif (findings : Lint_core.finding list) =
  let rule r =
    Printf.sprintf
      "          {\"id\": %s, \"shortDescription\": {\"text\": %s}}"
      (quote (Lint_core.rule_name r))
      (quote (Lint_core.rule_summary r))
  in
  let result (f : Lint_core.finding) =
    Printf.sprintf
      "        {\"ruleId\": %s, \"level\": \"error\", \"message\": {\"text\": \
       %s}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
       {\"uri\": %s}, \"region\": {\"startLine\": %d, \"startColumn\": \
       %d}}}]}"
      (quote (Lint_core.rule_name f.Lint_core.rule))
      (quote f.Lint_core.msg)
      (quote f.Lint_core.file) f.Lint_core.line (f.Lint_core.col + 1)
  in
  String.concat "\n"
    [
      "{";
      "  \"$schema\": \
       \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",";
      "  \"version\": \"2.1.0\",";
      "  \"runs\": [{";
      "    \"tool\": {";
      "      \"driver\": {";
      "        \"name\": \"dsp_lint\",";
      "        \"informationUri\": \
       \"https://example.invalid/dsp/tools/lint\",";
      "        \"rules\": [";
      String.concat ",\n" (List.map rule Lint_core.all_rules);
      "        ]";
      "      }";
      "    },";
      "    \"results\": [";
      String.concat ",\n" (List.map result findings);
      "    ]";
      "  }]";
      "}";
      "";
    ]
