(** The NDJSON request/response protocol of the DSP service.

    One request per line, one response per line.  Every request is a
    JSON object with an ["op"] field and an optional ["id"] the server
    echoes back verbatim, so a pipelining client can match answers to
    questions.  Responses are [{"id":…, "ok":true, "result":{…}}] or
    [{"id":…, "ok":false, "error":{"kind":…, "message":…}}]; an
    [overloaded] error also carries ["retry_after_ms"], the client's
    backoff hint.

    Parsing mirrors the hardened {!Dsp_instance.Io}/{!Dsp_instance.Trace}
    parsers: {!parse_request} is total, classifies every malformed
    line into a typed {!error_kind}, and never raises — the protocol
    fuzz suite feeds it mutated request lines.  Geometry checks
    (positive dimensions, demand within the strip width) happen here,
    {e before} any state is touched or logged, so a request that
    reaches the write-ahead log is guaranteed to replay. *)

(** Operations a client can ask for.  [Solve] and [Compare] are
    stateless batch solves (dispatched onto the worker pool, subject
    to admission control); the session ops drive a named incremental
    {!Dsp_engine.Session}, durably when the server has a WAL
    directory. *)
type request =
  | Ping
  | Solve of {
      width : int;
      items : (int * int) list;
      timeout_ms : int option;
      chain : string option;  (** comma-separated solver names *)
    }
  | Compare of {
      width : int;
      items : (int * int) list;
      timeout_ms : int option;
      solvers : string list option;  (** default: every registered solver *)
    }
  | Open of {
      session : string;
      width : int;
      policy : string option;
      k : int option;  (** migration bound for the ["migrate"] policy *)
    }
  | Arrive of { session : string; w : int; h : int }
  | Depart of { session : string; arrival : int }
  | Peak of { session : string }
  | Snapshot of { session : string }
  | Close of { session : string }
  | Stats

type error_kind =
  | Parse of string  (** the line is not JSON *)
  | Bad_request of string  (** JSON, but not a valid request shape *)
  | Unknown_op of string
  | Unknown_session of string
  | Session_exists of string
  | Bad_instance of string  (** geometry rejected (dims, width) *)
  | Stale_departure of string  (** never arrived / already departed *)
  | Overloaded of int  (** shed; payload is the retry-after hint, ms *)
  | Solver_failure of string
  | Wal_failure of string
  | Internal of string

val kind_name : error_kind -> string
(** The wire ["kind"] tag: ["parse"], ["bad_request"], ["unknown_op"],
    ["unknown_session"], ["session_exists"], ["bad_instance"],
    ["stale_departure"], ["overloaded"], ["solver"], ["wal"],
    ["internal"]. *)

val error_message : error_kind -> string

val parse_request : string -> (Json.t option * request, Json.t option * error_kind) result
(** Parse one NDJSON line.  Both sides carry the request's ["id"]
    field (verbatim JSON) when one could be extracted, so even a
    malformed request gets an attributable error.  Total. *)

val ok_response : id:Json.t option -> Json.t -> string
(** Serialize a success line: [{"id":…, "ok":true, "result":…}]. *)

val error_response : id:Json.t option -> error_kind -> string
(** Serialize an error line; [Overloaded] adds ["retry_after_ms"]. *)

(** {2 Client-side decoding} *)

type response = {
  rid : Json.t option;  (** echoed request id *)
  body : (Json.t, error_kind) result;  (** [result] or typed error *)
}

val parse_response : string -> (response, string) result
(** Decode one response line (the client helper's half of the
    protocol).  Unknown error kinds decode as {!Internal}. *)
