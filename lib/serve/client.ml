(* Blocking NDJSON client.  The retry policy is the protocol's other
   half: the server sheds load with [overloaded] + retry_after_ms, and
   this is the client that makes shedding lossless — exponential
   backoff, deterministic jitter, the server's hint as the floor. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~path =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (match Unix.close fd with
       | () -> ()
       | exception Unix.Unix_error _ -> ());
       raise e);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with
  | c -> Ok c
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let close c =
  match close_out c.oc with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) -> (
      (* flush can fail on a dead peer; the descriptor must still go *)
      match Unix.close c.fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())

let request c line =
  match
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | reply -> Protocol.parse_response reply
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let default_retries = 8
let default_base_delay_ms = 25

let rpc ?(retries = default_retries) ?(base_delay_ms = default_base_delay_ms)
    ?rng ~path line =
  let rng =
    match rng with Some r -> r | None -> Dsp_util.Rng.create 0x5e41e
  in
  let backoff attempt ~floor_ms =
    let base = base_delay_ms * (1 lsl min attempt 10) in
    (* +/-50% jitter, deterministic from the rng *)
    let jittered = base / 2 + Dsp_util.Rng.int rng (max 1 (base + 1)) in
    let ms = max floor_ms jittered in
    Unix.sleepf (float_of_int ms /. 1000.)
  in
  let rec go attempt =
    let outcome =
      match connect ~path with
      | Error m -> Error m
      | Ok c ->
          Fun.protect ~finally:(fun () -> close c) (fun () -> request c line)
    in
    match outcome with
    | Ok { Protocol.body = Error (Protocol.Overloaded hint_ms); _ }
      when attempt < retries ->
        backoff attempt ~floor_ms:hint_ms;
        go (attempt + 1)
    | Error _ when attempt < retries ->
        backoff attempt ~floor_ms:0;
        go (attempt + 1)
    | outcome -> outcome
  in
  go 0
