(** Client side of the NDJSON service protocol, with the retry
    discipline overload shedding expects.

    {!request} is the bare one-line round trip.  {!rpc} is the
    well-behaved client the smoke driver and the bench harness use: on
    a connection failure (daemon still starting, restarting after a
    crash) or a typed [overloaded] response it backs off exponentially
    with deterministic jitter drawn from {!Dsp_util.Rng} — honoring
    the server's [retry_after_ms] hint as the floor — and retries,
    so a shed request is delayed, not lost, and a thundering herd
    spreads out instead of re-arriving in lockstep. *)

type t

val connect : path:string -> (t, string) result
(** Connect to the daemon's Unix-domain socket. *)

val close : t -> unit

val request : t -> string -> (Protocol.response, string) result
(** Send one request line, read one response line.  [Error] on a
    broken connection or an undecodable response. *)

val rpc :
  ?retries:int ->
  ?base_delay_ms:int ->
  ?rng:Dsp_util.Rng.t ->
  path:string ->
  string ->
  (Protocol.response, string) result
(** One-shot request with retry: connect, send, decode; on connection
    failure or an [overloaded] response, back off and retry up to
    [retries] times (default 8).  The [n]-th delay is
    [base_delay_ms * 2^n] (default base 25) with ±50% jitter, floored
    at the server's [retry_after_ms] hint when one was given.
    Responses with any other error kind return immediately — they are
    answers, not transient conditions. *)
