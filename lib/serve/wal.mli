(** Per-session write-ahead log: crash-durable session state.

    The server logs every session mutation {e before} applying it
    (validate → append → apply).  Session policies are deterministic,
    so replaying the logged events through {!Dsp_engine.Session.replay}
    semantics reproduces the exact placements — the recovery invariant
    the crash-recovery differential test pins down.

    On-disk format: a sequence of records, each framed as
    [u32-le length | u32-le crc32 | payload] where the payload is a
    small line-oriented text block ({!encode_record}).  The framing
    makes torn tails detectable: a crash mid-append leaves a final
    record whose length field, payload, or checksum is incomplete or
    wrong; {!recover} stops at the first such record and truncates the
    file back to the last good boundary, so a recovered log is always
    a clean prefix of what was written.

    Durability is tunable per log: {!fsync_policy} [Always] fsyncs
    every append (every acknowledged mutation survives power loss),
    [Every n] amortizes over [n] appends, [Never] leaves flushing to
    the OS.  Compaction ({!compact}) atomically replaces the log with
    a single {!Snapshot} record (write temp + fsync + rename), so a
    crash during compaction leaves either the old log or the new one,
    never a mix.

    Fault sites: {!append} counts [wal.appends] and honors pending
    {!Dsp_util.Fault} actions — [Corrupt] flips a payload byte on its
    way to disk (recovery must then reject the record by checksum),
    [Short] writes a prefix of the frame and raises
    {!Dsp_util.Fault.Injected} (a deterministic torn tail); {!sync}
    counts [wal.fsyncs] (a [Raise] there models a failing fsync). *)

type fsync_policy = Always | Every of int | Never

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], or ["every:N"] with [N >= 1]. *)

val fsync_policy_to_string : fsync_policy -> string

type record =
  | Header of { width : int; policy : string; k : int }
      (** first record of a fresh log: how to rebuild the session *)
  | Event of Dsp_instance.Trace.event
  | Snapshot of {
      width : int;
      policy : string;
      k : int;
      n_arrived : int;
      n_migrations : int;
      live : (int * int * int * int) list;  (** (id, w, h, start) *)
    }  (** full state at compaction: feeds {!Dsp_engine.Session.restore} *)

val encode_record : record -> string
val decode_record : string -> (record, string) result
(** Text payload codec, exposed for tests; total. *)

type t

val create : ?fsync:fsync_policy -> string -> t
(** Open a fresh log at this path, truncating any existing file
    ([fsync] defaults to [Always]).  Raises [Unix.Unix_error] when the
    path cannot be created. *)

type recovery = {
  records : record list;  (** every intact record, in log order *)
  truncated_bytes : int;  (** torn/corrupt tail bytes cut off, 0 if clean *)
}

val recover : ?fsync:fsync_policy -> string -> (t * recovery, string) result
(** Open an existing log, scan and checksum every record, truncate the
    file back to the last intact record boundary, and return the log
    positioned for appending.  A missing file recovers as an empty
    log.  [Error] only for environmental failures (permissions, a
    directory in the way) — corrupt {e content} is never an error,
    it is truncated data. *)

val append : t -> record -> unit
(** Frame, checksum, and write one record, then fsync per policy.
    Counts [wal.appends]; honors injected faults (see module doc). *)

val sync : t -> unit
(** Force an fsync now (counts [wal.fsyncs]). *)

val compact : t -> record -> unit
(** Atomically replace the whole log with this single record (intended
    to be a {!Snapshot}): write [path ^ ".tmp"], fsync it, rename over
    [path].  Counts [wal.compactions]; resets {!appended}. *)

val appended : t -> int
(** Records appended since {!create}/{!recover}/{!compact} — the
    counter the server's [compact_every] trigger reads. *)

val path : t -> string
val close : t -> unit

val crc32 : string -> int
(** The checksum used by the framing (CRC-32, polynomial 0xEDB88320),
    exposed for the torn-tail tests. *)
