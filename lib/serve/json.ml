(* Hand-rolled JSON: recursive-descent parser over a byte string with
   an explicit depth cap, and a single-line printer.  Totality is the
   contract — the server parses untrusted socket bytes with this, and
   the fuzz suite feeds it mutated garbage expecting typed errors,
   never exceptions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* keep a float marker so the value round-trips as Float *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ----- parsing ------------------------------------------------------ *)

(* Internal control flow only; [of_string] catches it into the result.
   The depth cap keeps adversarial nesting from overflowing the
   stack. *)
exception Fail of int * string

let max_depth = 100

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Fail (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF
                    && !pos + 1 < n
                    && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   else fail "unpaired surrogate"
                 end
                 else cp
               in
               add_utf8 buf cp
           | _ -> fail "bad escape");
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            if not (List.mem_assoc k !fields) then fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos < n then fail "trailing characters after value";
  v

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

(* ----- accessors ---------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
