(* The service core.  One design rule throughout: classify, then log,
   then apply.  A request only reaches the WAL after full validation,
   so every logged record replays; it only mutates the session after
   it is logged, so the WAL is never behind acknowledged state. *)

module Session = Dsp_engine.Session
module Runner = Dsp_engine.Runner
module Registry = Dsp_engine.Registry
open Dsp_core

let c_requests = Dsp_util.Instr.counter Dsp_util.Instr.Sites.serve_requests
let c_errors = Dsp_util.Instr.counter Dsp_util.Instr.Sites.serve_errors
let c_shed = Dsp_util.Instr.counter Dsp_util.Instr.Sites.serve_shed
let c_solves = Dsp_util.Instr.counter Dsp_util.Instr.Sites.serve_solves

type config = {
  wal_dir : string option;
  fsync : Wal.fsync_policy;
  queue_limit : int;
  compact_every : int;
  retry_after_ms : int;
}

let default_config =
  {
    wal_dir = None;
    fsync = Wal.Always;
    queue_limit = 64;
    compact_every = 256;
    retry_after_ms = 50;
  }

type session_entry = {
  sname : string;
  sess : Session.t;
  wal : Wal.t option;
  policy_name : string;  (* find_policy vocabulary, for WAL records *)
  k : int;
}

type t = {
  cfg : config;
  pool : Dsp_util.Pool.t option;
  sessions : (string, session_entry) Hashtbl.t; (* lint: local *)
  mutable n_inflight : int;
}

let create ?pool cfg =
  { cfg; pool; sessions = Hashtbl.create 16; n_inflight = 0 }

let session_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.sessions [] |> List.sort compare

let inflight t = t.n_inflight

type reply = Now of string | Later of (unit -> string option)

let err ~id kind =
  Dsp_util.Instr.bump c_errors;
  Now (Protocol.error_response ~id kind)

(* ----- session helpers ---------------------------------------------- *)

let wal_path t name =
  Option.map (fun dir -> Filename.concat dir (name ^ ".wal")) t.cfg.wal_dir

let find_session t name = Hashtbl.find_opt t.sessions name

let snapshot_record entry =
  let st = Session.stats entry.sess in
  let live =
    List.map
      (fun (id, (it : Item.t), start) -> (id, it.w, it.h, start))
      (Session.live_items entry.sess)
  in
  Wal.Snapshot
    {
      width = Session.width entry.sess;
      policy = entry.policy_name;
      k = entry.k;
      n_arrived = st.Session.arrivals;
      n_migrations = st.Session.migrations;
      live;
    }

(* Append one record to the session's WAL, converting IO failures —
   including injected short writes — into the typed wal error.  The
   session has not been touched yet, so a failed append leaves state
   and log consistent (the record is absent from both; a torn tail is
   cut by the next recovery). *)
let wal_append entry record =
  match entry.wal with
  | None -> Ok ()
  | Some wal -> (
      match Wal.append wal record with
      | () -> Ok ()
      | exception Dsp_util.Fault.Injected m -> Error (Protocol.Wal_failure m)
      | exception Unix.Unix_error (e, fn, _) ->
          Error
            (Protocol.Wal_failure
               (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

let maybe_compact t entry =
  match entry.wal with
  | Some wal
    when t.cfg.compact_every > 0 && Wal.appended wal >= t.cfg.compact_every
    -> (
      match Wal.compact wal (snapshot_record entry) with
      | () -> ()
      | exception Unix.Unix_error _ ->
          (* compaction is an optimization; the pre-compaction log is
             still intact and replayable, so keep serving *)
          ())
  | _ -> ()

(* ----- ops ----------------------------------------------------------- *)

let json_stats entry =
  let st = Session.stats entry.sess in
  Json.Obj
    [
      ("arrivals", Json.Int st.Session.arrivals);
      ("departures", Json.Int st.Session.departures);
      ("live", Json.Int st.Session.live);
      ("migrations", Json.Int st.Session.migrations);
      ("peak", Json.Int st.Session.peak_now);
    ]

let do_open t ~id ~session ~width ~policy ~k =
  if Hashtbl.mem t.sessions session then
    err ~id (Protocol.Session_exists session)
  else
    let policy_name = Option.value ~default:"best-fit" policy in
    let k = Option.value ~default:1 k in
    if k < 0 then err ~id (Protocol.Bad_request "field \"k\" must be >= 0")
    else
      match Session.find_policy ~k policy_name with
      | None ->
          err ~id
            (Protocol.Bad_request
               (Printf.sprintf
                  "unknown policy %S (first-fit|best-fit|migrate)" policy_name))
      | Some p -> (
          let open_wal =
            match wal_path t session with
            | None -> Ok None
            | Some path -> (
                match Wal.create ~fsync:t.cfg.fsync path with
                | wal -> Ok (Some wal)
                | exception Unix.Unix_error (e, fn, _) ->
                    Error
                      (Protocol.Wal_failure
                         (Printf.sprintf "%s: %s" fn (Unix.error_message e))))
          in
          match open_wal with
          | Error kind -> err ~id kind
          | Ok wal -> (
              let entry =
                {
                  sname = session;
                  sess = Session.create ~policy:p ~width ();
                  wal;
                  policy_name;
                  k;
                }
              in
              match
                wal_append entry (Wal.Header { width; policy = policy_name; k })
              with
              | Error kind ->
                  Option.iter Wal.close wal;
                  err ~id kind
              | Ok () ->
                  Hashtbl.replace t.sessions session entry;
                  Now
                    (Protocol.ok_response ~id
                       (Json.Obj
                          [
                            ("session", Json.String session);
                            ("width", Json.Int width);
                            ("policy", Json.String policy_name);
                            ( "durable",
                              Json.Bool (Option.is_some entry.wal) );
                          ]))))

let with_session t ~id name f =
  match find_session t name with
  | None -> err ~id (Protocol.Unknown_session name)
  | Some entry -> f entry

let do_arrive t ~id ~session ~w ~h =
  with_session t ~id session (fun entry ->
      let width = Session.width entry.sess in
      if w > width then
        err ~id
          (Protocol.Bad_instance
             (Printf.sprintf "demand %d exceeds the strip width %d" w width))
      else
        match
          wal_append entry (Wal.Event (Dsp_instance.Trace.Arrive { w; h }))
        with
        | Error kind -> err ~id kind
        | Ok () ->
            let arrival = Session.arrive entry.sess ~w ~h in
            let start =
              Option.value ~default:0 (Session.start_of entry.sess arrival)
            in
            maybe_compact t entry;
            Now
              (Protocol.ok_response ~id
                 (Json.Obj
                    [
                      ("arrival", Json.Int arrival);
                      ("start", Json.Int start);
                      ("peak", Json.Int (Session.peak entry.sess));
                    ])))

let do_depart t ~id ~session ~arrival =
  with_session t ~id session (fun entry ->
      (* check staleness before logging: a stale departure must not
         reach the WAL, where it would poison replay *)
      match Session.start_of entry.sess arrival with
      | None ->
          err ~id
            (Protocol.Stale_departure
               (* stale branch: depart_result only builds the error
                  string here — start_of already returned None, so no
                  mutation happens and nothing needs logging *)
               (* lint: ok R8 — error-path probe, not a mutation *)
               (match Session.depart_result entry.sess arrival with
               | Error e -> Session.depart_error_to_string e
               | Ok _ -> assert false))
      | Some _ -> (
          match
            wal_append entry (Wal.Event (Dsp_instance.Trace.Depart { arrival }))
          with
          | Error kind -> err ~id kind
          | Ok () -> (
              match Session.depart_result entry.sess arrival with
              | Error e ->
                  (* unreachable: liveness was checked above *)
                  err ~id
                    (Protocol.Internal (Session.depart_error_to_string e))
              | Ok freed ->
                  maybe_compact t entry;
                  Now
                    (Protocol.ok_response ~id
                       (Json.Obj
                          [
                            ("freed_start", Json.Int freed);
                            ("peak", Json.Int (Session.peak entry.sess));
                          ])))))

let do_snapshot t ~id ~session =
  with_session t ~id session (fun entry ->
      let live =
        List.map
          (fun (iid, (it : Item.t), start) ->
            Json.Obj
              [
                ("id", Json.Int iid);
                ("w", Json.Int it.w);
                ("h", Json.Int it.h);
                ("start", Json.Int start);
              ])
          (Session.live_items entry.sess)
      in
      Now
        (Protocol.ok_response ~id
           (Json.Obj
              [
                ("width", Json.Int (Session.width entry.sess));
                ("peak", Json.Int (Session.peak entry.sess));
                ("live", Json.List live);
              ])))

let do_close t ~id ~session =
  with_session t ~id session (fun entry ->
      let stats = json_stats entry in
      Option.iter
        (fun wal ->
          let p = Wal.path wal in
          Wal.close wal;
          (* an explicit close ends the durable lifetime too *)
          match Sys.remove p with () -> () | exception Sys_error _ -> ())
        entry.wal;
      (* explicit close ends the durable lifetime: the WAL file was
         just deleted above, so there is deliberately nothing left to
         append to before dropping the in-memory entry *)
      (* lint: ok R8 — close tears down durability by design *)
      Hashtbl.remove t.sessions session;
      Now
        (Protocol.ok_response ~id
           (Json.Obj [ ("closed", Json.Bool true); ("stats", stats) ])))

(* ----- solves -------------------------------------------------------- *)

let failure_json (f : Runner.failure) =
  Json.Obj
    [
      ("solver", Json.String f.Runner.solver);
      ("kind", Json.String (Runner.kind_name f.Runner.kind));
      ("seconds", Json.Float f.Runner.seconds);
    ]

let resolution_json (r : Runner.resolution) =
  let rep = r.Runner.report in
  Json.Obj
    [
      ("solver", Json.String r.Runner.winner);
      ("peak", Json.Int rep.Dsp_engine.Report.peak);
      ("lower_bound", Json.Int rep.Dsp_engine.Report.lower_bound);
      ("ratio", Json.Float rep.Dsp_engine.Report.ratio);
      ("seconds", Json.Float rep.Dsp_engine.Report.seconds);
      ("safety_net", Json.Bool r.Runner.safety_net);
      ("failures", Json.List (List.map failure_json r.Runner.failures));
    ]

(* Run [task] on the pool behind admission control, answering
   [overloaded] once the in-flight cap is reached.  The poll thunk is
   driven by the transport loop; the decrement runs there too — the
   whole server is single-loop, so plain mutation is safe. *)
let dispatch t ~id task render =
  Dsp_util.Instr.bump c_solves;
  match t.pool with
  | None -> Now (render (task ()))
  | Some pool ->
      if t.n_inflight >= t.cfg.queue_limit then begin
        Dsp_util.Instr.bump c_shed;
        err ~id (Protocol.Overloaded t.cfg.retry_after_ms)
      end
      else begin
        t.n_inflight <- t.n_inflight + 1;
        let fut = Dsp_util.Pool.submit pool task in
        Later
          (fun () ->
            match Dsp_util.Pool.poll fut with
            | None -> None
            | Some outcome ->
                t.n_inflight <- t.n_inflight - 1;
                Some
                  (match outcome with
                  | Ok v -> render v
                  | Error e ->
                      Dsp_util.Instr.bump c_errors;
                      Protocol.error_response ~id
                        (Protocol.Internal (Printexc.to_string e))))
      end

let do_solve t ~id ~width ~items ~timeout_ms ~chain =
  let parsed_chain =
    match chain with
    | None -> Ok None
    | Some spec -> (
        match Runner.parse_chain spec with
        | Ok c -> Ok (Some c)
        | Error m -> Error m)
  in
  match parsed_chain with
  | Error m -> err ~id (Protocol.Bad_request m)
  | Ok chain ->
      let inst = Instance.of_dims ~width items in
      dispatch t ~id
        (fun () -> Runner.solve ?timeout_ms ?chain inst)
        (fun r -> Protocol.ok_response ~id (resolution_json r))

let do_compare t ~id ~width ~items ~timeout_ms ~solvers =
  let chosen =
    match solvers with
    | None -> Ok (Registry.heuristics ())
    | Some names ->
        List.fold_left
          (fun acc name ->
            match acc with
            | Error _ -> acc
            | Ok sofar -> (
                match Registry.find name with
                | Some s -> Ok (s :: sofar)
                | None ->
                    Error
                      (Printf.sprintf "unknown solver %S (known: %s)" name
                         (String.concat ", " (Registry.names ())))))
          (Ok []) names
        |> Result.map List.rev
  in
  match chosen with
  | Error m -> err ~id (Protocol.Bad_request m)
  | Ok solvers ->
      let inst = Instance.of_dims ~width items in
      dispatch t ~id
        (fun () ->
          List.map
            (fun s -> (s.Dsp_engine.Solver.name, Runner.run_one ?timeout_ms s inst))
            solvers)
        (fun results ->
          let entries =
            List.map
              (fun (name, outcome) ->
                match outcome with
                | Ok rep ->
                    Json.Obj
                      [
                        ("solver", Json.String name);
                        ("ok", Json.Bool true);
                        ("peak", Json.Int rep.Dsp_engine.Report.peak);
                        ("ratio", Json.Float rep.Dsp_engine.Report.ratio);
                        ("seconds", Json.Float rep.Dsp_engine.Report.seconds);
                      ]
                | Error (f : Runner.failure) ->
                    Json.Obj
                      [
                        ("solver", Json.String name);
                        ("ok", Json.Bool false);
                        ("kind", Json.String (Runner.kind_name f.Runner.kind));
                        ("seconds", Json.Float f.Runner.seconds);
                      ])
              results
          in
          Protocol.ok_response ~id (Json.Obj [ ("results", Json.List entries) ]))

let do_stats t ~id =
  let prefixes = [ "serve."; "wal."; "session." ] in
  let counters =
    List.filter
      (fun (name, _) ->
        List.exists
          (fun p ->
            String.length name >= String.length p
            && String.sub name 0 (String.length p) = p)
          prefixes)
      (Dsp_util.Instr.snapshot ())
  in
  Now
    (Protocol.ok_response ~id
       (Json.Obj
          [
            ("sessions", Json.Int (Hashtbl.length t.sessions));
            ("inflight", Json.Int t.n_inflight);
            ( "counters",
              Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters) );
          ]))

(* ----- the entry point ----------------------------------------------- *)

let handle t line =
  Dsp_util.Instr.bump c_requests;
  match Protocol.parse_request line with
  | Error (id, kind) -> err ~id kind
  | Ok (id, req) -> (
      match req with
      | Protocol.Ping ->
          Now (Protocol.ok_response ~id (Json.Obj [ ("pong", Json.Bool true) ]))
      | Protocol.Stats -> do_stats t ~id
      | Protocol.Open { session; width; policy; k } ->
          do_open t ~id ~session ~width ~policy ~k
      | Protocol.Arrive { session; w; h } -> do_arrive t ~id ~session ~w ~h
      | Protocol.Depart { session; arrival } ->
          do_depart t ~id ~session ~arrival
      | Protocol.Peak { session } ->
          with_session t ~id session (fun entry ->
              Now (Protocol.ok_response ~id (json_stats entry)))
      | Protocol.Snapshot { session } -> do_snapshot t ~id ~session
      | Protocol.Close { session } -> do_close t ~id ~session
      | Protocol.Solve { width; items; timeout_ms; chain } ->
          do_solve t ~id ~width ~items ~timeout_ms ~chain
      | Protocol.Compare { width; items; timeout_ms; solvers } ->
          do_compare t ~id ~width ~items ~timeout_ms ~solvers)

(* ----- recovery ------------------------------------------------------ *)

(* Rebuild one session from its recovered records: the last state
   anchor (Header for a young log, Snapshot after a compaction) and
   the event tail after it.  Replay applies events through the same
   deterministic policy that placed them originally, so the rebuilt
   placements are identical to the pre-crash ones. *)
let rebuild records =
  let anchor ~policy ~k ~make =
    match Session.find_policy ~k policy with
    | None -> Error (Printf.sprintf "unknown policy %S in WAL" policy)
    | Some p -> Ok (make p)
  in
  List.fold_left
    (fun acc record ->
      match acc with
      | Error _ -> acc
      | Ok st -> (
          match record with
          | Wal.Header { width; policy; k } ->
              anchor ~policy ~k ~make:(fun p ->
                  (Some (Session.create ~policy:p ~width ()), policy, k))
          | Wal.Snapshot { width; policy; k; n_arrived; n_migrations; live }
            ->
              anchor ~policy ~k ~make:(fun p ->
                  ( Some
                      (Session.restore ~policy:p ~width ~n_arrived
                         ~n_migrations ~live ()),
                    policy,
                    k ))
          | Wal.Event ev -> (
              match st with
              | None, _, _ -> Error "event before any header record"
              | Some sess, _, _ ->
                  Session.apply sess ev;
                  Ok st)))
    (Ok (None, "best-fit", 1))
    records

let recover_one t name path =
  match Wal.recover ~fsync:t.cfg.fsync path with
  | Error m -> Error m
  | Ok (wal, { Wal.records; truncated_bytes = _ }) -> (
      match rebuild records with
      | Error m ->
          Wal.close wal;
          Error m
      | exception Invalid_argument m ->
          Wal.close wal;
          Error m
      | Ok (None, _, _) ->
          Wal.close wal;
          Error "empty WAL (no header record)"
      | Ok (Some sess, policy_name, k) ->
          Hashtbl.replace t.sessions name
            { sname = name; sess; wal = Some wal; policy_name; k };
          Ok (List.length records))

let recover_sessions t =
  match t.cfg.wal_dir with
  | None -> []
  | Some dir ->
      let files =
        match Sys.readdir dir with
        | files -> Array.to_list files
        | exception Sys_error _ -> []
      in
      List.filter_map
        (fun file ->
          if Filename.check_suffix file ".wal" then
            let name = Filename.chop_suffix file ".wal" in
            Some (name, recover_one t name (Filename.concat dir file))
          else None)
        (List.sort compare files)

let close t =
  Hashtbl.iter
    (fun _ entry -> Option.iter Wal.close entry.wal)
    t.sessions;
  Hashtbl.reset t.sessions

(* ----- transports ---------------------------------------------------- *)

let run_pipe t ic oc =
  let rec drain_reply = function
    | Now line -> line
    | Later poll -> (
        match poll () with
        | Some line -> line
        | None ->
            Unix.sleepf 0.001;
            drain_reply (Later poll))
  in
  let rec loop () =
    match input_line ic with
    | line ->
        if String.trim line <> "" then begin
          output_string oc (drain_reply (handle t line));
          output_char oc '\n';
          flush oc
        end;
        loop ()
    | exception End_of_file -> ()
  in
  loop ()

(* One client connection: an input buffer accumulating a partial line,
   and the FIFO of deferred replies not yet completed. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable deferred : (unit -> string option) list; (* newest last *)
  mutable open_ : bool;
}

let max_line_bytes = 1 lsl 20

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

let shed_line t line =
  Dsp_util.Instr.bump c_shed;
  Dsp_util.Instr.bump c_errors;
  let id =
    match Protocol.parse_request line with Ok (id, _) | Error (id, _) -> id
  in
  Protocol.error_response ~id (Protocol.Overloaded t.cfg.retry_after_ms)

let handle_conn_line t conn ~max_pending line =
  if String.trim line = "" then ()
  else if List.length conn.deferred >= max_pending then
    send_line conn.fd (shed_line t line)
  else
    match handle t line with
    | Now reply -> send_line conn.fd reply
    | Later poll -> conn.deferred <- conn.deferred @ [ poll ]

let split_buffer conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let rec cut acc start =
    match String.index_from_opt data start '\n' with
    | Some nl ->
        cut (String.sub data start (nl - start) :: acc) (nl + 1)
    | None ->
        Buffer.add_string conn.inbuf
          (String.sub data start (String.length data - start));
        List.rev acc
  in
  cut [] 0

let service_read t conn ~max_pending =
  let chunk = Bytes.create 4096 in
  let n = Unix.read conn.fd chunk 0 (Bytes.length chunk) in
  if n = 0 then conn.open_ <- false
  else begin
    Buffer.add_subbytes conn.inbuf chunk 0 n;
    List.iter (handle_conn_line t conn ~max_pending) (split_buffer conn);
    if Buffer.length conn.inbuf > max_line_bytes then begin
      (* a line that long is not a protocol request; cut the peer off
         rather than buffer without bound *)
      send_line conn.fd
        (Protocol.error_response ~id:None
           (Protocol.Bad_request "request line too long"));
      conn.open_ <- false
    end
  end

let poll_deferred conn =
  conn.deferred <-
    List.filter
      (fun poll ->
        match poll () with
        | None -> true
        | Some reply ->
            send_line conn.fd reply;
            false)
      conn.deferred

let run_socket t ~path ?(max_pending_per_conn = 64) ?(stop = Atomic.make false)
    () =
  let listener =
    try
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Ok fd
    with
    | Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | Sys_error m -> Error m
  in
  match listener with
  | Error _ as e -> e
  | Ok listen_fd ->
      let conns = ref [] in
      (* deferred replies of dropped connections: still polled (their
         pool tasks run to completion and must release their
         admission slot), answers discarded *)
      let orphans = ref [] in
      let drop conn =
        conn.open_ <- false;
        orphans := conn.deferred @ !orphans;
        conn.deferred <- [];
        match Unix.close conn.fd with () -> () | exception Unix.Unix_error _ -> ()
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter drop !conns;
          (match Unix.close listen_fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          match Unix.unlink path with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        (fun () ->
          while not (Atomic.get stop) do
            orphans :=
              List.filter (fun poll -> Option.is_none (poll ())) !orphans;
            let pending =
              !orphans <> [] || List.exists (fun c -> c.deferred <> []) !conns
            in
            let timeout = if pending then 0.02 else 0.2 in
            let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
            let readable, _, _ =
              match Unix.select fds [] [] timeout with
              | r -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            if List.mem listen_fd readable then begin
              match Unix.accept listen_fd with
              | fd, _ ->
                  conns :=
                    {
                      fd;
                      inbuf = Buffer.create 256;
                      deferred = [];
                      open_ = true;
                    }
                    :: !conns
              | exception Unix.Unix_error _ -> ()
            end;
            List.iter
              (fun conn ->
                (* the one broad absorber in the tree: a peer that
                   vanishes mid-request (reset, EPIPE on reply, …)
                   must cost exactly its own connection, never the
                   server — so everything this connection throws is
                   absorbed and the connection dropped *)
                try
                  if List.mem conn.fd readable then
                    service_read t conn ~max_pending:max_pending_per_conn;
                  poll_deferred conn;
                  if not conn.open_ then drop conn
                with _ -> drop conn (* lint: ok R5 *))
              !conns;
            conns := List.filter (fun c -> c.open_) !conns
          done;
          Ok ())
