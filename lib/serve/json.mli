(** Minimal self-contained JSON — the wire format of the NDJSON
    service protocol ({!Protocol}).

    The repo carries no external JSON dependency, so this is a small
    total parser and a single-line printer, hardened the way
    {!Dsp_instance.Io} is: {!of_string} never raises on any byte
    string (the protocol fuzz test feeds it mutated garbage), and
    errors carry the 0-based byte offset of the offending character so
    the server can attribute them.  Nesting depth is capped, so
    adversarial input cannot blow the stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering (newlines in strings are escaped), safe to
    embed as one NDJSON line.  Non-finite floats print as [null] to
    stay inside JSON. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  Total:
    any input yields [Ok] or [Error], never an exception.  The error
    message starts with ["byte N: "].  Objects keep their fields in
    input order; duplicate keys keep the first. *)

(** {2 Accessors} — all total, [None] on a type mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] coerces to float. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
