(* Write-ahead log with checksummed length-prefixed framing.  The
   design constraint is the recovery invariant: anything [append]
   acknowledged (under fsync Always) must come back from [recover]
   bit-identically, and a crash at any byte boundary must leave a file
   that recovers to a clean prefix of the append history. *)

let c_appends = Dsp_util.Instr.counter Dsp_util.Instr.Sites.wal_appends
let c_fsyncs = Dsp_util.Instr.counter Dsp_util.Instr.Sites.wal_fsyncs

let c_recovered =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.wal_records_recovered

let c_compactions =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.wal_compactions

(* ----- CRC-32 (IEEE, polynomial 0xEDB88320) ------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ----- fsync policy ------------------------------------------------- *)

type fsync_policy = Always | Every of int | Never

let fsync_policy_of_string s =
  match s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | _ ->
      let prefix = "every:" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some n when n >= 1 -> Ok (Every n)
        | _ -> Error (Printf.sprintf "bad fsync interval in %S" s)
      else
        Error
          (Printf.sprintf "unknown fsync policy %S (always|never|every:N)" s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> Printf.sprintf "every:%d" n

(* ----- record codec ------------------------------------------------- *)

type record =
  | Header of { width : int; policy : string; k : int }
  | Event of Dsp_instance.Trace.event
  | Snapshot of {
      width : int;
      policy : string;
      k : int;
      n_arrived : int;
      n_migrations : int;
      live : (int * int * int * int) list;
    }

let encode_record = function
  | Header { width; policy; k } -> Printf.sprintf "h %d %s %d" width policy k
  | Event (Dsp_instance.Trace.Arrive { w; h }) -> Printf.sprintf "e + %d %d" w h
  | Event (Dsp_instance.Trace.Depart { arrival }) ->
      Printf.sprintf "e - %d" arrival
  | Snapshot { width; policy; k; n_arrived; n_migrations; live } ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf
        (Printf.sprintf "s %d %s %d %d %d" width policy k n_arrived
           n_migrations);
      List.iter
        (fun (id, w, h, start) ->
          Buffer.add_string buf (Printf.sprintf "\ni %d %d %d %d" id w h start))
        live;
      Buffer.contents buf

let int_tok name tok =
  match int_of_string_opt tok with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" name tok)

let ( let* ) = Result.bind

let decode_record payload =
  match String.split_on_char '\n' payload with
  | [] -> Error "empty record"
  | first :: rest -> (
      let toks line =
        String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
      in
      match toks first with
      | [ "h"; width; policy; k ] ->
          if rest <> [] then Error "header record with trailing lines"
          else
            let* width = int_tok "width" width in
            let* k = int_tok "k" k in
            Ok (Header { width; policy; k })
      | [ "e"; "+"; w; h ] ->
          if rest <> [] then Error "event record with trailing lines"
          else
            let* w = int_tok "width" w in
            let* h = int_tok "height" h in
            Ok (Event (Dsp_instance.Trace.Arrive { w; h }))
      | [ "e"; "-"; arrival ] ->
          if rest <> [] then Error "event record with trailing lines"
          else
            let* arrival = int_tok "arrival" arrival in
            Ok (Event (Dsp_instance.Trace.Depart { arrival }))
      | [ "s"; width; policy; k; n_arrived; n_migrations ] ->
          let* width = int_tok "width" width in
          let* k = int_tok "k" k in
          let* n_arrived = int_tok "n_arrived" n_arrived in
          let* n_migrations = int_tok "n_migrations" n_migrations in
          let* live =
            List.fold_left
              (fun acc line ->
                let* acc = acc in
                match toks line with
                | [ "i"; id; w; h; start ] ->
                    let* id = int_tok "id" id in
                    let* w = int_tok "width" w in
                    let* h = int_tok "height" h in
                    let* start = int_tok "start" start in
                    Ok ((id, w, h, start) :: acc)
                | _ -> Error (Printf.sprintf "bad snapshot item line %S" line))
              (Ok []) rest
          in
          Ok
            (Snapshot
               {
                 width;
                 policy;
                 k;
                 n_arrived;
                 n_migrations;
                 live = List.rev live;
               })
      | _ -> Error (Printf.sprintf "bad record line %S" first))

(* ----- framing ------------------------------------------------------ *)

(* Sanity cap on a record's payload; a length field above this is
   treated as corruption, not as a 2 GB allocation request. *)
let max_payload = 16 * 1024 * 1024

let put_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s off =
  Char.code (Bytes.get s off)
  lor (Char.code (Bytes.get s (off + 1)) lsl 8)
  lor (Char.code (Bytes.get s (off + 2)) lsl 16)
  lor (Char.code (Bytes.get s (off + 3)) lsl 24)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  put_u32 b 0 n;
  put_u32 b 4 (crc32 payload);
  Bytes.blit_string payload 0 b 8 n;
  b

(* ----- the log ------------------------------------------------------ *)

type t = {
  wpath : string;
  mutable fd : Unix.file_descr;
  fsync : fsync_policy;
  mutable unsynced : int;  (* appends since the last fsync *)
  mutable n_appended : int;  (* appends since open/compact *)
}

let path t = t.wpath
let appended t = t.n_appended

let open_append path =
  Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

let create ?(fsync = Always) path =
  let fd =
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
      0o644
  in
  { wpath = path; fd; fsync; unsynced = 0; n_appended = 0 }

let write_all fd b off len =
  let written = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !written !remaining in
    written := !written + n;
    remaining := !remaining - n
  done

let sync t =
  Dsp_util.Instr.bump c_fsyncs;
  Unix.fsync t.fd;
  t.unsynced <- 0

let maybe_sync t =
  match t.fsync with
  | Always -> sync t
  | Never -> ()
  | Every n -> if t.unsynced >= n then sync t

let append t record =
  (* The bump is the fault point: a Raise plan at wal.appends dies
     before any bytes are written. *)
  Dsp_util.Instr.bump c_appends;
  let payload = encode_record record in
  let f = frame payload in
  if Dsp_util.Fault.take_corruption () && String.length payload > 0 then
    (* corrupt-on-write: flip one payload byte after checksumming, so
       the frame reaches disk carrying a crc its payload no longer
       matches — recovery must reject it *)
    Bytes.set f 8 (Char.chr (Char.code (Bytes.get f 8) lxor 0x5A));
  if Dsp_util.Fault.take_short_write () then begin
    (* crash mid-append: half the frame reaches the disk, then the
       process "dies" — recovery must truncate this torn tail *)
    let cut = max 1 (Bytes.length f / 2) in
    write_all t.fd f 0 cut;
    raise
      (Dsp_util.Fault.Injected
         (Printf.sprintf "short write: %d of %d bytes of a WAL record" cut
            (Bytes.length f)))
  end;
  write_all t.fd f 0 (Bytes.length f);
  t.unsynced <- t.unsynced + 1;
  t.n_appended <- t.n_appended + 1;
  maybe_sync t

let close t = Unix.close t.fd

(* ----- recovery ----------------------------------------------------- *)

type recovery = { records : record list; truncated_bytes : int }

let read_whole path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create size in
      let off = ref 0 in
      let eof = ref false in
      while !off < size && not !eof do
        let n = Unix.read fd b !off (size - !off) in
        if n = 0 then eof := true else off := !off + n
      done;
      Bytes.sub b 0 !off)

(* Scan records until the first frame that is incomplete, oversized,
   fails its checksum, or does not decode; everything from there on is
   the torn/corrupt tail. *)
let scan data =
  let size = Bytes.length data in
  let records = ref [] in
  let good = ref 0 in
  let stopped = ref false in
  while not !stopped do
    let off = !good in
    if off + 8 > size then stopped := true
    else begin
      let len = get_u32 data off in
      if len < 0 || len > max_payload || off + 8 + len > size then
        stopped := true
      else begin
        let payload = Bytes.sub_string data (off + 8) len in
        if crc32 payload <> get_u32 data (off + 4) then stopped := true
        else
          match decode_record payload with
          | Error _ -> stopped := true
          | Ok r ->
              records := r :: !records;
              Dsp_util.Instr.bump c_recovered;
              good := off + 8 + len
      end
    end
  done;
  (List.rev !records, !good)

let recover ?(fsync = Always) path =
  if not (Sys.file_exists path) then
    match create ~fsync path with
    | t -> Ok (t, { records = []; truncated_bytes = 0 })
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot create WAL %s: %s" path (Unix.error_message e))
  else
    match read_whole path with
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot read WAL %s: %s" path (Unix.error_message e))
    | data ->
        let records, good = scan data in
        let truncated = Bytes.length data - good in
        if truncated > 0 then begin
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              Unix.ftruncate fd good;
              Unix.fsync fd)
        end;
        let fd = open_append path in
        Ok
          ( { wpath = path; fd; fsync; unsynced = 0; n_appended = 0 },
            { records; truncated_bytes = truncated } )

(* ----- compaction --------------------------------------------------- *)

(* Temp + fsync + rename: a crash at any point leaves either the old
   complete log or the new complete log. *)
let compact t record =
  Dsp_util.Instr.bump c_compactions;
  let tmp = t.wpath ^ ".tmp" in
  let payload = encode_record record in
  let f = frame payload in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd f 0 (Bytes.length f);
      Unix.fsync fd);
  Unix.rename tmp t.wpath;
  Unix.close t.fd;
  t.fd <- open_append t.wpath;
  t.unsynced <- 0;
  t.n_appended <- 0
