(* Request parsing is written like Io/Trace: classify every way a line
   can be malformed into a typed error, touch no state, and validate
   geometry up front so anything that parses can be logged and later
   replayed without failing. *)

type request =
  | Ping
  | Solve of {
      width : int;
      items : (int * int) list;
      timeout_ms : int option;
      chain : string option;
    }
  | Compare of {
      width : int;
      items : (int * int) list;
      timeout_ms : int option;
      solvers : string list option;
    }
  | Open of {
      session : string;
      width : int;
      policy : string option;
      k : int option;
    }
  | Arrive of { session : string; w : int; h : int }
  | Depart of { session : string; arrival : int }
  | Peak of { session : string }
  | Snapshot of { session : string }
  | Close of { session : string }
  | Stats

type error_kind =
  | Parse of string
  | Bad_request of string
  | Unknown_op of string
  | Unknown_session of string
  | Session_exists of string
  | Bad_instance of string
  | Stale_departure of string
  | Overloaded of int
  | Solver_failure of string
  | Wal_failure of string
  | Internal of string

let kind_name = function
  | Parse _ -> "parse"
  | Bad_request _ -> "bad_request"
  | Unknown_op _ -> "unknown_op"
  | Unknown_session _ -> "unknown_session"
  | Session_exists _ -> "session_exists"
  | Bad_instance _ -> "bad_instance"
  | Stale_departure _ -> "stale_departure"
  | Overloaded _ -> "overloaded"
  | Solver_failure _ -> "solver"
  | Wal_failure _ -> "wal"
  | Internal _ -> "internal"

let error_message = function
  | Parse m -> Printf.sprintf "not valid JSON: %s" m
  | Bad_request m -> m
  | Unknown_op op -> Printf.sprintf "unknown op %S" op
  | Unknown_session s -> Printf.sprintf "no session named %S" s
  | Session_exists s -> Printf.sprintf "session %S already exists" s
  | Bad_instance m -> m
  | Stale_departure m -> m
  | Overloaded ms ->
      Printf.sprintf "server at capacity; retry after %d ms" ms
  | Solver_failure m -> m
  | Wal_failure m -> m
  | Internal m -> m

(* ----- request decoding --------------------------------------------- *)

exception Bad of error_kind

let fail kind = raise (Bad kind)
let bad fmt = Printf.ksprintf (fun m -> fail (Bad_request m)) fmt

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> bad "missing field %S" name

let int_field name json =
  match Json.to_int (field name json) with
  | Some i -> i
  | None -> bad "field %S must be an integer" name

let str_field name json =
  match Json.to_str (field name json) with
  | Some s -> s
  | None -> bad "field %S must be a string" name

let opt f name json =
  match Json.member name json with
  | None | Some Json.Null -> None
  | Some v -> (
      match f v with
      | Some x -> Some x
      | None -> bad "field %S has the wrong type" name)

let session_field json =
  let s = str_field "session" json in
  if s = "" then bad "field \"session\" must be non-empty";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | c ->
          bad "session name may only contain [a-zA-Z0-9._-], got %C" c)
    s;
  s

(* Geometry checks mirror Io: dims >= 1 and demand within the strip.
   Rejecting here keeps invalid events out of the WAL. *)
let check_dims ~width ~w ~h =
  if width < 1 then fail (Bad_instance "width must be >= 1");
  if w < 1 || h < 1 then
    fail
      (Bad_instance
         (Printf.sprintf "dimensions must be >= 1, got %d x %d" w h));
  if w > width then
    fail
      (Bad_instance
         (Printf.sprintf "demand %d exceeds the strip width %d" w width))

let items_field ~width json =
  match Json.to_list (field "items" json) with
  | None -> bad "field \"items\" must be a list of [w, h] pairs"
  | Some xs ->
      List.map
        (fun x ->
          match Json.to_list x with
          | Some [ jw; jh ] -> (
              match (Json.to_int jw, Json.to_int jh) with
              | Some w, Some h ->
                  check_dims ~width ~w ~h;
                  (w, h)
              | _ -> bad "item entries must be integer pairs")
          | _ -> bad "field \"items\" must be a list of [w, h] pairs")
        xs

let decode json =
  match Json.member "op" json with
  | None -> fail (Bad_request "missing field \"op\"")
  | Some op -> (
      match Json.to_str op with
      | None -> fail (Bad_request "field \"op\" must be a string")
      | Some op -> (
          match op with
          | "ping" -> Ping
          | "stats" -> Stats
          | "solve" ->
              let width = int_field "width" json in
              if width < 1 then fail (Bad_instance "width must be >= 1");
              Solve
                {
                  width;
                  items = items_field ~width json;
                  timeout_ms = opt Json.to_int "timeout_ms" json;
                  chain = opt Json.to_str "fallback" json;
                }
          | "compare" ->
              let width = int_field "width" json in
              if width < 1 then fail (Bad_instance "width must be >= 1");
              let solvers =
                opt
                  (fun v ->
                    match Json.to_list v with
                    | None -> None
                    | Some xs ->
                        let names = List.filter_map Json.to_str xs in
                        if List.length names = List.length xs then Some names
                        else None)
                  "solvers" json
              in
              Compare
                {
                  width;
                  items = items_field ~width json;
                  timeout_ms = opt Json.to_int "timeout_ms" json;
                  solvers;
                }
          | "open" ->
              let width = int_field "width" json in
              if width < 1 then fail (Bad_instance "width must be >= 1");
              Open
                {
                  session = session_field json;
                  width;
                  policy = opt Json.to_str "policy" json;
                  k = opt Json.to_int "k" json;
                }
          | "arrive" ->
              let session = session_field json in
              let w = int_field "w" json and h = int_field "h" json in
              if w < 1 || h < 1 then
                fail
                  (Bad_instance
                     (Printf.sprintf "dimensions must be >= 1, got %d x %d" w
                        h));
              Arrive { session; w; h }
          | "depart" ->
              Depart
                { session = session_field json; arrival = int_field "arrival" json }
          | "peak" -> Peak { session = session_field json }
          | "snapshot" -> Snapshot { session = session_field json }
          | "close" -> Close { session = session_field json }
          | op -> fail (Unknown_op op)))

let parse_request line =
  match Json.of_string line with
  | Error msg -> Error (None, Parse msg)
  | Ok json -> (
      let id = Json.member "id" json in
      match decode json with
      | req -> Ok (id, req)
      | exception Bad kind -> Error (id, kind))

(* ----- response encoding -------------------------------------------- *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", id) :: fields

let ok_response ~id result =
  Json.to_string (Json.Obj (with_id id [ ("ok", Json.Bool true); ("result", result) ]))

let error_response ~id kind =
  let base =
    [
      ("kind", Json.String (kind_name kind));
      ("message", Json.String (error_message kind));
    ]
  in
  let fields =
    match kind with
    | Overloaded ms -> base @ [ ("retry_after_ms", Json.Int ms) ]
    | _ -> base
  in
  Json.to_string
    (Json.Obj (with_id id [ ("ok", Json.Bool false); ("error", Json.Obj fields) ]))

(* ----- client-side decoding ----------------------------------------- *)

type response = { rid : Json.t option; body : (Json.t, error_kind) result }

let decode_error err =
  let message =
    Option.value ~default:""
      (Option.bind (Json.member "message" err) Json.to_str)
  in
  match Option.bind (Json.member "kind" err) Json.to_str with
  | Some "parse" -> Parse message
  | Some "bad_request" -> Bad_request message
  | Some "unknown_op" -> Unknown_op message
  | Some "unknown_session" -> Unknown_session message
  | Some "session_exists" -> Session_exists message
  | Some "bad_instance" -> Bad_instance message
  | Some "stale_departure" -> Stale_departure message
  | Some "overloaded" ->
      let ms =
        Option.value ~default:100
          (Option.bind (Json.member "retry_after_ms" err) Json.to_int)
      in
      Overloaded ms
  | Some "solver" -> Solver_failure message
  | Some "wal" -> Wal_failure message
  | _ -> Internal message

let parse_response line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "bad response line (%s)" msg)
  | Ok json -> (
      let rid = Json.member "id" json in
      match Option.bind (Json.member "ok" json) Json.to_bool with
      | Some true -> (
          match Json.member "result" json with
          | Some r -> Ok { rid; body = Ok r }
          | None -> Error "ok response without a result field")
      | Some false -> (
          match Json.member "error" json with
          | Some e -> Ok { rid; body = Error (decode_error e) }
          | None -> Error "error response without an error field")
      | None -> Error "response without a boolean ok field")
