(** The DSP service: NDJSON requests in, validated answers out.

    The server core ({!handle}) is transport-independent — it maps one
    request line to one response line (or a deferred one for
    pool-dispatched solves), so the test suite and the bench harness
    drive it in-process while the daemon wraps it in a Unix-domain
    socket loop ({!run_socket}) or a stdin/stdout pipe ({!run_pipe}).

    Robustness contract:
    - {e never crashes on input}: every malformed line becomes a typed
      NDJSON error (see {!Protocol}); the only broad exception
      absorber is the per-connection handler in {!run_socket}, which
      drops that connection and keeps serving the rest.
    - {e durability}: with a [wal_dir], every session mutation is
      validated, then appended to the session's {!Wal} (fsync per
      policy), then applied — so {!recover_sessions} after a crash
      replays to exactly the acknowledged state, and the WAL is
      compacted to a snapshot record every [compact_every] appends.
    - {e per-request SLAs}: solve requests carry optional
      [timeout_ms] / [fallback] lowered onto {!Dsp_engine.Runner}
      chains — a deadline miss degrades to the chain's safety net,
      never to a hung request.
    - {e overload protection}: at most [queue_limit] solves in flight;
      beyond that requests shed with a typed [overloaded] error and a
      [retry_after_ms] hint ({!Client} honors it).  [run_socket]
      additionally caps pending replies per connection and the line
      length it will buffer.

    Sessions are single-domain values, so the server is single-loop by
    design; only stateless solves fan out onto the worker pool. *)

type config = {
  wal_dir : string option;  (** durable sessions when set *)
  fsync : Wal.fsync_policy;
  queue_limit : int;  (** max in-flight pool solves before shedding *)
  compact_every : int;  (** WAL appends between compactions; 0 = never *)
  retry_after_ms : int;  (** backoff hint in [overloaded] errors *)
}

val default_config : config
(** No WAL, fsync [Always], [queue_limit = 64], [compact_every = 256],
    [retry_after_ms = 50]. *)

type t

val create : ?pool:Dsp_util.Pool.t -> config -> t
(** Without a pool, solves run inline on the caller (every reply is
    immediate) — the test-suite mode.  The daemon passes a pool. *)

(** One request's answer: immediate, or a poll thunk for a solve that
    went to the pool.  Poll until [Some line]; after that the thunk
    must not be called again. *)
type reply = Now of string | Later of (unit -> string option)

val handle : t -> string -> reply
(** Process one NDJSON request line.  Total — any input yields a
    response line. *)

val recover_sessions : t -> (string * (int, string) result) list
(** Scan [wal_dir] for [*.wal] files and rebuild each session by
    replaying its log (snapshot record, then tail events).  Returns
    per-session [Ok records_replayed] or [Error reason]; a session
    that fails to rebuild is skipped, not fatal.  No-op without a
    [wal_dir]. *)

val session_names : t -> string list
val inflight : t -> int

val close : t -> unit
(** Close every session WAL (files are kept — they are the durable
    state).  The server must not be used afterwards. *)

(** {2 Transports} *)

val run_pipe : t -> in_channel -> out_channel -> unit
(** Serve request lines until EOF — the [--stdio] daemon mode and the
    fuzz harness's entry.  Deferred replies are awaited in order. *)

val run_socket :
  t ->
  path:string ->
  ?max_pending_per_conn:int ->
  ?stop:bool Atomic.t ->
  unit ->
  (unit, string) result
(** Bind a Unix-domain stream socket at [path] (replacing a stale
    socket file) and serve until [stop] flips.  Per-connection
    failures (a peer vanishing mid-line, oversized lines) close that
    connection only.  [Error] is reserved for failure to bind. *)
