open Dsp_core

let dual (inst : Pts.Inst.t) ~makespan =
  Dsp_transform.Transform.pts_to_dsp_instance inst ~width:makespan

let decide ?node_limit ?budget (inst : Pts.Inst.t) ~makespan =
  Dsp_util.Budget.poll_opt budget;
  if makespan < Pts.Inst.max_time inst then None
  else
    let dsp = dual inst ~makespan in
    match Dsp_bb.decide ?node_limit ?budget dsp ~height:inst.Pts.Inst.machines with
    | Dsp_bb.Feasible pk -> (
        match
          Dsp_transform.Transform.packing_to_schedule pk
            ~machines:inst.Pts.Inst.machines
        with
        | Ok (sched, _) ->
            (* Rebuild on the original instance: the dual round trip
               preserves job ids, so sigma/rho carry over directly. *)
            Some
              (Pts.Schedule.make inst ~sigma:sched.Pts.Schedule.sigma
                 ~rho:sched.Pts.Schedule.rho)
        | Error _ -> None)
    | Dsp_bb.Infeasible | Dsp_bb.Node_budget_exhausted -> None

let solve ?node_limit ?budget (inst : Pts.Inst.t) =
  if Pts.Inst.n_jobs inst = 0 then
    Some (Pts.Schedule.make inst ~sigma:[||] ~rho:[||])
  else begin
    let lo = Pts.Inst.lower_bound inst in
    let hi =
      Array.fold_left (fun acc (j : Pts.Job.t) -> acc + j.p) 0 inst.Pts.Inst.jobs
    in
    let best = ref None in
    let ok t =
      match decide ?node_limit ?budget inst ~makespan:t with
      | Some sched ->
          best := Some sched;
          true
      | None -> false
    in
    match Dsp_util.Xutil.binary_search_min lo hi ok with
    | Some _ -> !best
    | None -> None
  end

let optimal_makespan ?node_limit ?budget inst =
  Option.map Pts.Schedule.makespan (solve ?node_limit ?budget inst)
