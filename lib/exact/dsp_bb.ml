open Dsp_core

type outcome = Feasible of Packing.t | Infeasible | Node_budget_exhausted

exception Out_of_nodes

(* Global node counter (Dsp_util.Instr): consumers that used to ask
   [solve_with_stats] for the node count now read the "bb.nodes"
   counter delta from a solve's report instead.  The local [nodes] ref
   below survives only to enforce the per-call budget. *)
let c_nodes = Dsp_util.Instr.counter Dsp_util.Instr.Sites.bb_nodes

(* Greedy best-fit by descending height: place each item at the start
   column minimizing the resulting window peak.  Upper bound for the
   binary search, and the incumbent seed of the parallel search. *)
let greedy_packing (inst : Instance.t) =
  let profile = Profile.create inst.Instance.width in
  let starts = Array.make (Instance.n_items inst) (-1) in
  let order =
    Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc
  in
  List.iter
    (fun (it : Item.t) ->
      match Profile.best_start profile ~len:it.w with
      | Some (s, _) ->
          Profile.add_item profile it ~start:s;
          starts.(it.id) <- s
      | None -> invalid_arg "Dsp_bb.greedy_height: item wider than strip")
    order;
  Packing.make inst starts

let greedy_height inst = Packing.height (greedy_packing inst)

let decide_internal ~nodes ~node_limit ~budget (inst : Instance.t) ~height =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if Instance.total_area inst > height * width then Infeasible
  else if Instance.max_height inst > height then Infeasible
  else begin
    let order = Array.copy inst.Instance.items in
    Array.sort Item.compare_by_area_desc order;
    (* Load profile on the segment-tree kernel: place/unplace are
       O(log W) range adds (incremental undo on backtrack), and start
       enumeration skips infeasible columns via the kernel's
       first-fit descent instead of stepping one column at a time. *)
    let loads = Segtree.create width in
    let starts = Array.make n (-1) in
    (* remaining.(k) = total area of items order.(k..). *)
    let remaining = Array.make (n + 1) 0 in
    for k = n - 1 downto 0 do
      remaining.(k) <- remaining.(k + 1) + Item.area order.(k)
    done;
    let free_capacity = ref (height * width) in
    let place (it : Item.t) s =
      Segtree.range_add loads ~lo:s ~hi:(s + it.w) it.h;
      free_capacity := !free_capacity - Item.area it;
      starts.(it.id) <- s
    in
    let unplace (it : Item.t) s =
      Segtree.range_add loads ~lo:s ~hi:(s + it.w) (-it.h);
      free_capacity := !free_capacity + Item.area it;
      starts.(it.id) <- -1
    in
    let rec go k =
      incr nodes;
      Dsp_util.Instr.bump c_nodes;
      if !nodes > node_limit then raise Out_of_nodes;
      (* Cooperative cancellation: the native node limit above keeps
         its first-class error, the budget adds the wall-clock
         deadline (and a node cap for engine-driven solves). *)
      Dsp_util.Budget.check_opt budget;
      if k = n then true
      else begin
        let it = order.(k) in
        if remaining.(k) > !free_capacity then false
        else begin
          let max_start =
            (* Mirror symmetry: confine the first item to the left
               half of the strip. *)
            if k = 0 then (width - it.w) / 2 else width - it.w
          in
          let min_start =
            (* Identical items in non-decreasing start order. *)
            if k > 0 && order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
            then starts.(order.(k - 1).Item.id)
            else 0
          in
          (* Jump straight to the next feasible start at or after [s];
             the enumeration still visits every feasible start in
             increasing order, so the search tree (and node count) is
             unchanged — only the infeasible gaps between candidates
             are skipped in O(log W). *)
          let rec try_start s =
            let s' =
              Segtree.first_fit_from_i loads ~from:s ~len:it.w ~height:it.h
                ~limit:height
            in
            if s' < 0 || s' > max_start then false
            else begin
              place it s';
              if go (k + 1) then true
              else begin
                unplace it s';
                try_start (s' + 1)
              end
            end
          in
          try_start (max 0 min_start)
        end
      end
    in
    match go 0 with
    | true -> Feasible (Packing.make inst starts)
    | false -> Infeasible
    | exception Out_of_nodes -> Node_budget_exhausted
  end

let default_node_limit = 20_000_000

let decide ?(node_limit = default_node_limit) ?budget inst ~height =
  let nodes = ref 0 in
  decide_internal ~nodes ~node_limit ~budget inst ~height

let solve ?(node_limit = default_node_limit) ?budget inst =
  let lo = Instance.lower_bound inst and hi = greedy_height inst in
  let nodes = ref 0 in
  let best = ref None in
  (* Binary search on the peak: decision is monotone in [height]. *)
  let rec search lo hi =
    if lo > hi then true
    else
      let mid = lo + ((hi - lo) / 2) in
      match decide_internal ~nodes ~node_limit ~budget inst ~height:mid with
      | Feasible pk ->
          best := Some pk;
          search lo (mid - 1)
      | Infeasible -> search (mid + 1) hi
      | Node_budget_exhausted -> false
  in
  if Instance.n_items inst = 0 then Some (Packing.make inst [||])
  else if search lo hi then !best
  else None

let optimal_height ?node_limit ?budget inst =
  Option.map (fun pk -> Packing.height pk) (solve ?node_limit ?budget inst)

(* ----- parallel search -------------------------------------------- *)

(* The parallel solver keeps the serial search's move generator and
   symmetry reductions but swaps the binary search on the height for
   incumbent-driven minimization: the greedy packing seeds a shared
   atomic incumbent and every worker enumerates completions that beat
   the *current* incumbent ([limit = incumbent - 1], re-read at every
   node), publishing improvements through one mutex-guarded cell.
   Pruning against the global best means one worker's lucky find
   immediately tightens everyone else's search; on adversarial
   instances this makes the portfolio superlinear, on easy ones it
   degenerates to the serial node count.

   Scheduling: work-stealing over per-domain {!Dsp_util.Wsdeque}s of
   search-frontier units.  A unit is the flat int record
   [depth; start of order.(0); ...; start of order.(depth-1)] — a
   prefix of placements identifying one subtree.  The root start
   columns (confined to the left half by mirror symmetry) are dealt
   round-robin as depth-1 seed units, exactly the old static split;
   from there each worker pops its own deque LIFO (depth-first,
   cache-warm), pushes the children of shallow nodes
   (depth <= [split_depth]) back as new units, and expands deeper
   subtrees inline with plain recursion.  An idle worker steals FIFO
   from a random victim, taking the victim's {e shallowest} — largest
   — subtree, which is what re-balances a skewed tree that the static
   deal would serialize on one domain.  A full deque never blocks:
   the child is expanded inline instead.

   Termination detection: [pending] counts units that exist (queued in
   any deque or being expanded), incremented {e before} each push and
   decremented only after the unit's expansion completes, so
   [pending = 0] proves no unit is queued, running, or still able to
   spawn children.  Idle workers spin (with budget polls and a short
   sleep backoff, so spinning domains don't starve the busy ones on
   few-core machines) until work appears, [pending] hits zero, or
   [stop] is set.

   Shared state and its discipline:
   - [incumbent : int Atomic.t] — read lock-free in the hot loop,
     written only under [best_m] (monotone decreasing);
   - [total_nodes : int Atomic.t] — the node cap is global, so k
     workers cannot multiply the budget by k;
   - [stop : bool Atomic.t] — set on proven optimality (incumbent hit
     the lower bound), node exhaustion, or a worker dying; every
     worker polls it per node and unwinds with [Stop_search];
   - the deques' own top/bottom indices are Atomics inside
     {!Dsp_util.Wsdeque}; unit payloads are published by its SC
     ordering, never read unvalidated;
   - per-domain tallies ([dom_nodes], [dom_steals], ...) are written
     each by its owning worker only and read after the join;
   - wall-clock deadline and external cancellation ride each worker's
     [Budget.child] of the caller's budget. *)

exception Stop_search

type par_stats = {
  domains : int;
  nodes_per_domain : int array;
  steals : int;
  steal_fails : int;
  units : int;
}

let c_steals = Dsp_util.Instr.counter Dsp_util.Instr.Sites.bb_steals

let c_steal_fails =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.bb_steal_fails

let no_stats ~domains =
  {
    domains;
    nodes_per_domain = Array.make (max domains 0) 0;
    steals = 0;
    steal_fails = 0;
    units = 0;
  }

let sum = Array.fold_left ( + ) 0

let resolve_jobs ~pool ~jobs =
  match pool with
  | Some p -> Dsp_util.Pool.size p
  | None -> (
      match jobs with
      | Some j when j >= 1 -> j
      | Some _ -> invalid_arg "Dsp_bb.solve_par: jobs must be >= 1"
      | None -> Dsp_util.Pool.default_jobs ())

let solve_par ?(node_limit = default_node_limit) ?budget ?jobs ?pool ?stats
    (inst : Instance.t) =
  let put_stats v = match stats with Some r -> r := Some v | None -> () in
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if n = 0 then begin
    put_stats (no_stats ~domains:0);
    Some (Packing.make inst [||])
  end
  else begin
    let lb = Instance.lower_bound inst in
    let seed = greedy_packing inst in
    if Packing.height seed <= lb then begin
      put_stats (no_stats ~domains:0);
      Some seed
    end
    else begin
      let jobs = resolve_jobs ~pool ~jobs in
      let order = Array.copy inst.Instance.items in
      Array.sort Item.compare_by_area_desc order;
      (* remaining.(k) = total area of items order.(k..); read-only. *)
      let remaining = Array.make (n + 1) 0 in
      for k = n - 1 downto 0 do
        remaining.(k) <- remaining.(k + 1) + Item.area order.(k)
      done;
      let incumbent = Atomic.make (Packing.height seed) in
      let best_m = Mutex.create () in
      let best = ref seed in
      let stop = Atomic.make false in
      let exhausted = Atomic.make false in
      let total_nodes = Atomic.make 0 in
      let record peak starts =
        Mutex.lock best_m;
        if peak < Atomic.get incumbent then begin
          Atomic.set incumbent peak;
          best := Packing.make inst (Array.copy starts);
          (* The lower bound is tight: nothing can beat it, stop the
             whole portfolio. *)
          if peak <= lb then Atomic.set stop true
        end;
        Mutex.unlock best_m
      in
      let it0 = order.(0) in
      let max0 = (width - it0.w) / 2 in
      (* Frontier units are [depth; starts...]: n + 1 ints. *)
      let rw = n + 1 in
      (* Shallow nodes become stealable units; deeper subtrees are
         expanded by plain recursion.  Depth 3 gives up to
         (roots * branching^2) units — ample balance granularity
         without paying replay cost in the deep tree. *)
      let split_depth = min n 3 in
      let slots = max 256 ((max0 / jobs) + 8) in
      let deques =
        Array.init jobs (fun _ -> Dsp_util.Wsdeque.create ~slots ~record_width:rw)
      in
      let pending = Atomic.make 0 in
      let dom_nodes = Array.make jobs 0 in
      let dom_steals = Array.make jobs 0 in
      let dom_steal_fails = Array.make jobs 0 in
      let dom_units = Array.make jobs 0 in
      (* Seed the deques before any worker starts (the pool's task
         handoff is the synchronization point): the root start columns
         as depth-1 units, dealt round-robin like the old static
         split — stealing repairs whatever imbalance the deal hides. *)
      let seed_buf = Array.make rw 0 in
      for s = 0 to max0 do
        seed_buf.(0) <- 1;
        seed_buf.(1) <- s;
        Atomic.incr pending;
        if not (Dsp_util.Wsdeque.push deques.(s mod jobs) seed_buf) then
          (* Unreachable: [slots] is sized to hold every seed. *)
          invalid_arg "Dsp_bb.solve_par: seed overflow"
      done;
      let work wid () =
        let wbudget = Option.map Dsp_util.Budget.child budget in
        let loads = Segtree.create width in
        let starts = Array.make n (-1) in
        let used = ref 0 in
        (* [cur] mirrors the prefix currently placed on [loads];
           [unit_buf] receives popped/stolen units; [child_buf] stages
           pushes.  All fixed-size, reused for the whole solve. *)
        let cur = Array.make rw 0 in
        let unit_buf = Array.make rw 0 in
        let child_buf = Array.make rw 0 in
        let rng = Dsp_util.Rng.create (0x57ea1 + wid) in
        let my_dq = deques.(wid) in
        let place (it : Item.t) s =
          Segtree.range_add loads ~lo:s ~hi:(s + it.w) it.h;
          used := !used + Item.area it;
          starts.(it.id) <- s
        in
        let unplace (it : Item.t) s =
          Segtree.range_add loads ~lo:s ~hi:(s + it.w) (-it.h);
          used := !used - Item.area it;
          starts.(it.id) <- -1
        in
        let node () =
          Dsp_util.Instr.bump c_nodes;
          dom_nodes.(wid) <- dom_nodes.(wid) + 1;
          if 1 + Atomic.fetch_and_add total_nodes 1 > node_limit then begin
            Atomic.set exhausted true;
            Atomic.set stop true
          end;
          if Atomic.get stop then raise Stop_search;
          Dsp_util.Budget.check_opt wbudget
        in
        let rec go k =
          node ();
          let limit = Atomic.get incumbent - 1 in
          if k = n then record (Segtree.max_all loads) starts
          else begin
            let it = order.(k) in
            (* Both prunes are against the *current* incumbent: the
               profile may have been legal when its items were placed
               and still be cut here after another worker improved. *)
            if
              remaining.(k) > (limit * width) - !used
              || Segtree.max_all loads > limit
            then ()
            else begin
              let min_start =
                (* Identical items in non-decreasing start order (for
                   k = 1 this chains off the root placement). *)
                if order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
                then starts.(order.(k - 1).Item.id)
                else 0
              in
              let rec try_start s =
                let limit = Atomic.get incumbent - 1 in
                let s' =
                  Segtree.first_fit_from_i loads ~from:s ~len:it.w ~height:it.h
                    ~limit
                in
                if s' < 0 || s' > width - it.w then ()
                else begin
                  place it s';
                  go (k + 1);
                  unplace it s';
                  try_start (s' + 1)
                end
              in
              try_start (max 0 min_start)
            end
          end
        in
        (* Swap the placed prefix from [cur] to the unit in
           [unit_buf]: unplace the old prefix, replay the new one.
           Prefixes are shallow (depth <= split_depth + 1), so the
           replay is a handful of O(log W) range-adds. *)
        let load_unit () =
          for j = cur.(0) - 1 downto 0 do
            unplace order.(j) cur.(1 + j)
          done;
          let k = unit_buf.(0) in
          for j = 0 to k - 1 do
            place order.(j) unit_buf.(1 + j)
          done;
          Array.blit unit_buf 0 cur 0 (k + 1);
          k
        in
        (* Expand one unit: visit its node, prune, then enumerate the
           next item's feasible starts — shallow children are pushed
           as new units (stealable), deep ones recurse inline.  The
           push-side [pending] increment happens before the push so
           the counter never under-reports live work. *)
        let execute () =
          dom_units.(wid) <- dom_units.(wid) + 1;
          node ();
          let k = load_unit () in
          let limit = Atomic.get incumbent - 1 in
          if k = n then record (Segtree.max_all loads) starts
          else if
            remaining.(k) > (limit * width) - !used
            || Segtree.max_all loads > limit
          then ()
          else begin
            let it = order.(k) in
            let max_start =
              if k = 0 then (width - it.w) / 2 else width - it.w
            in
            let min_start =
              if
                k > 0
                && order.(k - 1).Item.w = it.w
                && order.(k - 1).Item.h = it.h
              then starts.(order.(k - 1).Item.id)
              else 0
            in
            let rec expand s =
              node ();
              let limit = Atomic.get incumbent - 1 in
              let s' =
                Segtree.first_fit_from_i loads ~from:s ~len:it.w ~height:it.h
                  ~limit
              in
              if s' < 0 || s' > max_start then ()
              else begin
                (if k + 1 <= split_depth && k + 1 < n then begin
                   Array.blit cur 0 child_buf 0 (k + 1);
                   child_buf.(0) <- k + 1;
                   child_buf.(1 + k) <- s';
                   Atomic.incr pending;
                   if not (Dsp_util.Wsdeque.push my_dq child_buf) then begin
                     (* Full deque: keep the subtree, expand inline. *)
                     ignore (Atomic.fetch_and_add pending (-1));
                     place it s';
                     go (k + 1);
                     unplace it s'
                   end
                 end
                 else begin
                   place it s';
                   go (k + 1);
                   unplace it s'
                 end);
                expand (s' + 1)
              end
            in
            expand (max 0 min_start)
          end
        in
        (* Steal FIFO from random victims: the oldest unit in a deque
           is the shallowest subtree the victim owns — the biggest
           chunk of work available. *)
        let steal_round () =
          (* Bounded retry (2*(jobs-1) tries), not search recursion;
             the idle loop around it polls the budget.  lint: ok R3 *)
          let rec attempt tries =
            if tries = 0 || jobs = 1 then false
            else begin
              let r = Dsp_util.Rng.int rng (jobs - 1) in
              let v = if r >= wid then r + 1 else r in
              if Dsp_util.Wsdeque.steal deques.(v) unit_buf then true
              else attempt (tries - 1)
            end
          in
          attempt (2 * (jobs - 1))
        in
        let finish_unit () =
          execute ();
          (* Only reached on normal completion; every exceptional exit
             sets [stop], after which [pending] is irrelevant. *)
          ignore (Atomic.fetch_and_add pending (-1))
        in
        let rec loop idle =
          if Atomic.get stop then ()
          else if Dsp_util.Wsdeque.pop my_dq unit_buf then begin
            finish_unit ();
            loop 0
          end
          else if steal_round () then begin
            dom_steals.(wid) <- dom_steals.(wid) + 1;
            Dsp_util.Instr.bump c_steals;
            finish_unit ();
            loop 0
          end
          else if Atomic.get pending = 0 then ()
          else begin
            dom_steal_fails.(wid) <- dom_steal_fails.(wid) + 1;
            Dsp_util.Instr.bump c_steal_fails;
            (* Nothing to run right now, but some unit is in flight
               and may spawn children.  Poll the budget so deadlines
               and cancellation reach idle workers too, then back off:
               busy-spinning here would starve the very workers we
               are waiting on when domains outnumber cores. *)
            Dsp_util.Budget.poll_opt wbudget;
            Domain.cpu_relax ();
            if idle >= 16 then Unix.sleepf 0.0002;
            loop (min (idle + 1) 16)
          end
        in
        match loop 0 with
        | () -> ()
        | exception Stop_search -> ()
        | exception e ->
            (* A real failure (deadline, cancellation, injected fault):
               bring the siblings down too, then let the pool carry the
               exception back to the caller. *)
            Atomic.set stop true;
            raise e
      in
      let tasks = List.init jobs (fun wid -> work wid) in
      let results =
        match pool with
        | Some p -> Dsp_util.Pool.run_all p tasks
        | None ->
            Dsp_util.Pool.with_pool ~jobs (fun p -> Dsp_util.Pool.run_all p tasks)
      in
      List.iter (function Ok () -> () | Error e -> raise e) results;
      put_stats
        {
          domains = jobs;
          nodes_per_domain = dom_nodes;
          steals = sum dom_steals;
          steal_fails = sum dom_steal_fails;
          units = sum dom_units;
        };
      if Atomic.get exhausted then None else Some !best
    end
  end

(* The pre-stealing scheduler: the root start columns dealt round-robin
   once, no re-balancing.  Kept as the ablation baseline the parallel
   bench experiment and the load-imbalance regression test compare
   against — on a skewed tree (one deep root subtree) this serializes
   the whole solve on one domain. *)
let solve_par_dealt ?(node_limit = default_node_limit) ?budget ?jobs ?pool
    (inst : Instance.t) =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if n = 0 then Some (Packing.make inst [||])
  else begin
    let lb = Instance.lower_bound inst in
    let seed = greedy_packing inst in
    if Packing.height seed <= lb then Some seed
    else begin
      let jobs =
        match pool with
        | Some p -> Dsp_util.Pool.size p
        | None -> (
            match jobs with
            | Some j when j >= 1 -> j
            | Some _ -> invalid_arg "Dsp_bb.solve_par: jobs must be >= 1"
            | None -> Dsp_util.Pool.default_jobs ())
      in
      let order = Array.copy inst.Instance.items in
      Array.sort Item.compare_by_area_desc order;
      (* remaining.(k) = total area of items order.(k..); read-only. *)
      let remaining = Array.make (n + 1) 0 in
      for k = n - 1 downto 0 do
        remaining.(k) <- remaining.(k + 1) + Item.area order.(k)
      done;
      let incumbent = Atomic.make (Packing.height seed) in
      let best_m = Mutex.create () in
      let best = ref seed in
      let stop = Atomic.make false in
      let exhausted = Atomic.make false in
      let total_nodes = Atomic.make 0 in
      let record peak starts =
        Mutex.lock best_m;
        if peak < Atomic.get incumbent then begin
          Atomic.set incumbent peak;
          best := Packing.make inst (Array.copy starts);
          (* The lower bound is tight: nothing can beat it, stop the
             whole portfolio. *)
          if peak <= lb then Atomic.set stop true
        end;
        Mutex.unlock best_m
      in
      let it0 = order.(0) in
      let work chunk () =
        let wbudget = Option.map Dsp_util.Budget.child budget in
        let loads = Segtree.create width in
        let starts = Array.make n (-1) in
        let used = ref 0 in
        let place (it : Item.t) s =
          Segtree.range_add loads ~lo:s ~hi:(s + it.w) it.h;
          used := !used + Item.area it;
          starts.(it.id) <- s
        in
        let unplace (it : Item.t) s =
          Segtree.range_add loads ~lo:s ~hi:(s + it.w) (-it.h);
          used := !used - Item.area it;
          starts.(it.id) <- -1
        in
        let node () =
          Dsp_util.Instr.bump c_nodes;
          if 1 + Atomic.fetch_and_add total_nodes 1 > node_limit then begin
            Atomic.set exhausted true;
            Atomic.set stop true
          end;
          if Atomic.get stop then raise Stop_search;
          Dsp_util.Budget.check_opt wbudget
        in
        let rec go k =
          node ();
          let limit = Atomic.get incumbent - 1 in
          if k = n then record (Segtree.max_all loads) starts
          else begin
            let it = order.(k) in
            (* Both prunes are against the *current* incumbent: the
               profile may have been legal when its items were placed
               and still be cut here after another worker improved. *)
            if
              remaining.(k) > (limit * width) - !used
              || Segtree.max_all loads > limit
            then ()
            else begin
              let min_start =
                (* Identical items in non-decreasing start order (for
                   k = 1 this chains off the root placement). *)
                if order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
                then starts.(order.(k - 1).Item.id)
                else 0
              in
              let rec try_start s =
                let limit = Atomic.get incumbent - 1 in
                let s' =
                  Segtree.first_fit_from_i loads ~from:s ~len:it.w ~height:it.h
                    ~limit
                in
                if s' < 0 || s' > width - it.w then ()
                else begin
                  place it s';
                  go (k + 1);
                  unplace it s';
                  try_start (s' + 1)
                end
              in
              try_start (max 0 min_start)
            end
          end
        in
        match
          List.iter
            (fun s ->
              node ();
              if it0.h <= Atomic.get incumbent - 1 then begin
                place it0 s;
                go 1;
                unplace it0 s
              end)
            chunk
        with
        | () -> ()
        | exception Stop_search -> ()
        | exception e ->
            (* A real failure (deadline, cancellation, injected fault):
               bring the siblings down too, then let the pool carry the
               exception back to the caller. *)
            Atomic.set stop true;
            raise e
      in
      (* Round-robin deal of the root start columns: neighbouring
         starts explore similar subtrees, so interleaving them
         diversifies what the workers see and speeds up the first
         incumbent improvements. *)
      let chunks = Array.make (max 1 jobs) [] in
      let max0 = (width - it0.w) / 2 in
      for s = max0 downto 0 do
        chunks.(s mod jobs) <- s :: chunks.(s mod jobs)
      done;
      let tasks =
        Array.to_list chunks
        |> List.filter (fun c -> c <> [])
        |> List.map (fun c -> work c)
      in
      let results =
        match pool with
        | Some p -> Dsp_util.Pool.run_all p tasks
        | None ->
            Dsp_util.Pool.with_pool ~jobs (fun p -> Dsp_util.Pool.run_all p tasks)
      in
      List.iter (function Ok () -> () | Error e -> raise e) results;
      if Atomic.get exhausted then None else Some !best
    end
  end

let optimal_height_par ?node_limit ?budget ?jobs ?pool inst =
  Option.map
    (fun pk -> Packing.height pk)
    (solve_par ?node_limit ?budget ?jobs ?pool inst)
