open Dsp_core

type outcome = Feasible of Packing.t | Infeasible | Node_budget_exhausted

exception Out_of_nodes

(* Global node counter (Dsp_util.Instr): consumers that used to ask
   [solve_with_stats] for the node count now read the "bb.nodes"
   counter delta from a solve's report instead.  The local [nodes] ref
   below survives only to enforce the per-call budget. *)
let c_nodes = Dsp_util.Instr.counter "bb.nodes"

(* Greedy best-fit by descending height: place each item at the start
   column minimizing the resulting window peak. Used only as an upper
   bound for the binary search. *)
let greedy_height (inst : Instance.t) =
  let profile = Profile.create inst.Instance.width in
  let order =
    Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc
  in
  List.iter
    (fun (it : Item.t) ->
      match Profile.best_start profile ~len:it.w with
      | Some (s, _) -> Profile.add_item profile it ~start:s
      | None -> invalid_arg "Dsp_bb.greedy_height: item wider than strip")
    order;
  Profile.peak profile

let decide_internal ~nodes ~node_limit ~budget (inst : Instance.t) ~height =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if Instance.total_area inst > height * width then Infeasible
  else if Instance.max_height inst > height then Infeasible
  else begin
    let order = Array.copy inst.Instance.items in
    Array.sort Item.compare_by_area_desc order;
    (* Load profile on the segment-tree kernel: place/unplace are
       O(log W) range adds (incremental undo on backtrack), and start
       enumeration skips infeasible columns via the kernel's
       first-fit descent instead of stepping one column at a time. *)
    let loads = Segtree.create width in
    let starts = Array.make n (-1) in
    (* remaining.(k) = total area of items order.(k..). *)
    let remaining = Array.make (n + 1) 0 in
    for k = n - 1 downto 0 do
      remaining.(k) <- remaining.(k + 1) + Item.area order.(k)
    done;
    let free_capacity = ref (height * width) in
    let place (it : Item.t) s =
      Segtree.range_add loads ~lo:s ~hi:(s + it.w) it.h;
      free_capacity := !free_capacity - Item.area it;
      starts.(it.id) <- s
    in
    let unplace (it : Item.t) s =
      Segtree.range_add loads ~lo:s ~hi:(s + it.w) (-it.h);
      free_capacity := !free_capacity + Item.area it;
      starts.(it.id) <- -1
    in
    let rec go k =
      incr nodes;
      Dsp_util.Instr.bump c_nodes;
      if !nodes > node_limit then raise Out_of_nodes;
      (* Cooperative cancellation: the native node limit above keeps
         its first-class error, the budget adds the wall-clock
         deadline (and a node cap for engine-driven solves). *)
      Dsp_util.Budget.check_opt budget;
      if k = n then true
      else begin
        let it = order.(k) in
        if remaining.(k) > !free_capacity then false
        else begin
          let max_start =
            (* Mirror symmetry: confine the first item to the left
               half of the strip. *)
            if k = 0 then (width - it.w) / 2 else width - it.w
          in
          let min_start =
            (* Identical items in non-decreasing start order. *)
            if k > 0 && order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
            then starts.(order.(k - 1).Item.id)
            else 0
          in
          (* Jump straight to the next feasible start at or after [s];
             the enumeration still visits every feasible start in
             increasing order, so the search tree (and node count) is
             unchanged — only the infeasible gaps between candidates
             are skipped in O(log W). *)
          let rec try_start s =
            match
              Segtree.first_fit_from loads ~from:s ~len:it.w ~height:it.h
                ~limit:height
            with
            | None -> false
            | Some s' when s' > max_start -> false
            | Some s' ->
                place it s';
                if go (k + 1) then true
                else begin
                  unplace it s';
                  try_start (s' + 1)
                end
          in
          try_start (max 0 min_start)
        end
      end
    in
    match go 0 with
    | true -> Feasible (Packing.make inst starts)
    | false -> Infeasible
    | exception Out_of_nodes -> Node_budget_exhausted
  end

let default_node_limit = 20_000_000

let decide ?(node_limit = default_node_limit) ?budget inst ~height =
  let nodes = ref 0 in
  decide_internal ~nodes ~node_limit ~budget inst ~height

let solve ?(node_limit = default_node_limit) ?budget inst =
  let lo = Instance.lower_bound inst and hi = greedy_height inst in
  let nodes = ref 0 in
  let best = ref None in
  (* Binary search on the peak: decision is monotone in [height]. *)
  let rec search lo hi =
    if lo > hi then true
    else
      let mid = lo + ((hi - lo) / 2) in
      match decide_internal ~nodes ~node_limit ~budget inst ~height:mid with
      | Feasible pk ->
          best := Some pk;
          search lo (mid - 1)
      | Infeasible -> search (mid + 1) hi
      | Node_budget_exhausted -> false
  in
  if Instance.n_items inst = 0 then Some (Packing.make inst [||])
  else if search lo hi then !best
  else None

let optimal_height ?node_limit ?budget inst =
  Option.map (fun pk -> Packing.height pk) (solve ?node_limit ?budget inst)
