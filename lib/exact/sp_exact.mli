(** Exact classical (unsliced) Strip Packing for small instances.

    Used by the integrality-gap experiments (E1, E12) to compute
    OPT_SP exactly.  The search runs in two phases: an outer branch
    and bound assigns start columns (pruned by the sliced peak, which
    lower-bounds the unsliced height), and a complete backtracking
    check decides whether rectangles with fixed x-intervals admit a
    non-overlapping vertical arrangement within the height budget
    (gravity-normalized candidate y positions: the floor or the top of
    an already-placed item).  Strictly exponential; intended for
    n ≤ 10. *)

open Dsp_core

type outcome = Feasible of Rect_packing.t | Infeasible | Node_budget_exhausted

val decide :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> height:int -> outcome

val solve :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> Rect_packing.t option
(** @raise Dsp_util.Budget.Expired when the optional [budget] runs out
    mid-search (cooperative cancellation checkpoints fire once per
    node, in both search phases). *)

val optimal_height :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> int option

val y_feasible :
  ?node_limit:int ->
  ?budget:Dsp_util.Budget.t ->
  Instance.t ->
  starts:int array ->
  height:int ->
  int array option
(** Vertical-arrangement check for fixed start columns: [Some ys] with
    the bottom y of every item, or [None] (also on budget
    exhaustion). *)
