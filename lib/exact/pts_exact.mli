(** Exact Parallel Task Scheduling via the DSP duality.

    The paper's Theorem 1 shows a schedule on [m] machines with
    makespan [T] exists iff a DSP packing of height [m] in a strip of
    width [T] exists.  This solver is that theorem turned into code:
    binary search on [T], decide each guess with the exact DSP solver
    on the transformed instance, and recover concrete machine
    assignments with the Figure 3 repair procedure. *)

open Dsp_core

val decide :
  ?node_limit:int ->
  ?budget:Dsp_util.Budget.t ->
  Pts.Inst.t ->
  makespan:int ->
  Pts.Schedule.t option
(** A schedule with makespan at most [makespan], if one exists within
    the node budget.  [None] conflates infeasibility with budget
    exhaustion; use {!solve} when the distinction matters.  The
    optional [budget] is threaded into the dual DSP search;
    {!Dsp_util.Budget.Expired} escapes to the caller. *)

val solve :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Pts.Inst.t -> Pts.Schedule.t option
(** Optimal schedule, or [None] on node-budget exhaustion. *)

val optimal_makespan :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Pts.Inst.t -> int option
