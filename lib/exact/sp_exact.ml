open Dsp_core

type outcome = Feasible of Rect_packing.t | Infeasible | Node_budget_exhausted

exception Out_of_nodes

(* Shared counter vocabulary (Dsp_util.Instr): x-enumeration and
   y-feasibility nodes both count as classical-strip-packing search
   nodes. *)
let c_nodes = Dsp_util.Instr.counter Dsp_util.Instr.Sites.sp_bb_nodes

let x_overlap (a : Item.t) sa (b : Item.t) sb =
  sa < sb + b.w && sb < sa + a.w

(* Complete search for a vertical arrangement of rectangles with fixed
   x-intervals: repeatedly choose any unplaced item and a candidate y
   (floor, or top of a placed item), skipping dimension-duplicates.
   Completeness follows from gravity normalization: in any feasible
   arrangement items can be pushed down until each rests on the floor
   or on another item, and placing in ascending order of resulting y
   visits exactly such configurations. *)
let y_search ~nodes ~node_limit ~budget (inst : Instance.t) ~starts ~height =
  let n = Instance.n_items inst in
  let ys = Array.make n (-1) in
  let placed = Array.make n false in
  let overlaps i y j =
    (* Does item i at (starts.(i), y) overlap placed item j? *)
    let a = Instance.item inst i and b = Instance.item inst j in
    x_overlap a starts.(i) b starts.(j)
    && y < ys.(j) + b.h
    && ys.(j) < y + a.h
  in
  let candidate_ys i =
    let a = Instance.item inst i in
    let cs = ref [ 0 ] in
    for j = 0 to n - 1 do
      if placed.(j) then begin
        let b = Instance.item inst j in
        if x_overlap a starts.(i) b starts.(j) then cs := (ys.(j) + b.h) :: !cs
      end
    done;
    List.sort_uniq compare (List.filter (fun y -> y + a.h <= height) !cs)
  in
  let rec go k =
    incr nodes;
    Dsp_util.Instr.bump c_nodes;
    if !nodes > node_limit then raise Out_of_nodes;
    Dsp_util.Budget.check_opt budget;
    if k = n then true
    else begin
      (* Candidate items: one representative per unplaced dimension
         class, to break permutation symmetry between equal items. *)
      let seen = ref [] in
      let result = ref false in
      let i = ref 0 in
      while (not !result) && !i < n do
        if not placed.(!i) then begin
          let it = Instance.item inst !i in
          let key = (it.Item.w, it.Item.h, starts.(!i)) in
          if not (List.mem key !seen) then begin
            seen := key :: !seen;
            let rec try_ys = function
              | [] -> ()
              | y :: rest ->
                  let ok = ref true in
                  for j = 0 to n - 1 do
                    if placed.(j) && overlaps !i y j then ok := false
                  done;
                  if !ok then begin
                    placed.(!i) <- true;
                    ys.(!i) <- y;
                    if go (k + 1) then result := true
                    else begin
                      placed.(!i) <- false;
                      ys.(!i) <- -1;
                      try_ys rest
                    end
                  end
                  else try_ys rest
            in
            try_ys (candidate_ys !i)
          end
        end;
        incr i
      done;
      !result
    end
  in
  if go 0 then Some ys else None

let y_feasible ?(node_limit = 5_000_000) ?budget inst ~starts ~height =
  let nodes = ref 0 in
  try y_search ~nodes ~node_limit ~budget inst ~starts ~height
  with Out_of_nodes -> None

let decide_internal ~nodes ~node_limit ~budget (inst : Instance.t) ~height =
  let width = inst.Instance.width in
  let n = Instance.n_items inst in
  if Instance.total_area inst > height * width then Infeasible
  else if Instance.max_height inst > height then Infeasible
  else begin
    let order = Array.copy inst.Instance.items in
    Array.sort Item.compare_by_area_desc order;
    let loads = Array.make width 0 in
    let starts = Array.make n (-1) in
    let result = ref None in
    let fits (it : Item.t) s =
      let ok = ref true in
      for x = s to s + it.w - 1 do
        if loads.(x) + it.h > height then ok := false
      done;
      !ok
    in
    let rec go k =
      incr nodes;
      Dsp_util.Instr.bump c_nodes;
      if !nodes > node_limit then raise Out_of_nodes;
      Dsp_util.Budget.check_opt budget;
      if k = n then begin
        match y_search ~nodes ~node_limit ~budget inst ~starts ~height with
        | Some ys ->
            result :=
              Some
                (Rect_packing.make inst
                   (Array.mapi (fun i y -> { Rect_packing.x = starts.(i); y }) ys));
            true
        | None -> false
      end
      else begin
        let it = order.(k) in
        let max_start = if k = 0 then (width - it.w) / 2 else width - it.w in
        let min_start =
          if k > 0 && order.(k - 1).Item.w = it.w && order.(k - 1).Item.h = it.h
          then starts.(order.(k - 1).Item.id)
          else 0
        in
        let rec try_start s =
          if s > max_start then false
          else if fits it s then begin
            for x = s to s + it.w - 1 do
              loads.(x) <- loads.(x) + it.h
            done;
            starts.(it.id) <- s;
            if go (k + 1) then true
            else begin
              for x = s to s + it.w - 1 do
                loads.(x) <- loads.(x) - it.h
              done;
              starts.(it.id) <- -1;
              try_start (s + 1)
            end
          end
          else try_start (s + 1)
        in
        try_start (max 0 min_start)
      end
    in
    match go 0 with
    | true -> ( match !result with Some pk -> Feasible pk | None -> Infeasible)
    | false -> Infeasible
    | exception Out_of_nodes -> Node_budget_exhausted
  end

let default_node_limit = 20_000_000

let decide ?(node_limit = default_node_limit) ?budget inst ~height =
  let nodes = ref 0 in
  decide_internal ~nodes ~node_limit ~budget inst ~height

let solve ?(node_limit = default_node_limit) ?budget inst =
  if Instance.n_items inst = 0 then Some (Rect_packing.make inst [||])
  else begin
    let lo = Instance.lower_bound inst in
    let hi = Instance.total_area inst (* trivially enough: stack everything *) in
    let nodes = ref 0 in
    let best = ref None in
    let rec search lo hi =
      if lo > hi then true
      else
        let mid = lo + ((hi - lo) / 2) in
        match decide_internal ~nodes ~node_limit ~budget inst ~height:mid with
        | Feasible pk ->
            best := Some pk;
            search lo (mid - 1)
        | Infeasible -> search (mid + 1) hi
        | Node_budget_exhausted -> false
    in
    if search lo hi then !best else None
  end

let optimal_height ?node_limit ?budget inst =
  Option.map Rect_packing.height (solve ?node_limit ?budget inst)
