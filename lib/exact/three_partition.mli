(** Exact solver for 3-Partition.

    Decides whether [3k] numbers can be split into [k] triples each
    summing to [bound].  Backtracking over the lexicographically first
    unused element with triple-completion search and duplicate
    pruning; exponential in the worst case (the problem is strongly
    NP-complete — that blow-up is itself measured by experiment E4)
    but fast for the experiment sizes (k ≤ 8). *)

val solve :
  ?budget:Dsp_util.Budget.t ->
  numbers:int array ->
  bound:int ->
  unit ->
  (int * int * int) array option
(** Triples of indices into [numbers], or [None] if no partition
    exists.  The search has no native node limit, so the optional
    [budget] is the only way to cancel it: {!Dsp_util.Budget.Expired}
    escapes to the caller.
    @raise Invalid_argument if the array length is not a multiple of 3
    or the sum is not [k * bound]. *)

val solvable :
  ?budget:Dsp_util.Budget.t -> numbers:int array -> bound:int -> unit -> bool

val count_nodes :
  ?budget:Dsp_util.Budget.t -> numbers:int array -> bound:int -> unit -> bool * int
(** Decision result together with the number of search nodes visited,
    for the hardness-cost experiment. *)
