(** Exact Demand Strip Packing by branch and bound.

    Items are placed in descending area order; each node extends the
    partial packing by all start columns of the next item that keep
    the profile peak within the current budget.  Pruning:

    - peak budget: a placement is cut when the window peak would
      exceed the decision bound;
    - area: remaining item area must fit into the free capacity below
      the bound;
    - duplicate items: items with equal dimensions are forced into
      non-decreasing start order;
    - mirror symmetry: the first item is confined to the left half.

    Exact search is exponential — the paper proves the problem
    strongly NP-hard — so all entry points accept a node budget and
    return [None] when it is exhausted. *)

open Dsp_core

type outcome = Feasible of Packing.t | Infeasible | Node_budget_exhausted

val default_node_limit : int
(** Node cap applied when the caller gives none (20,000,000). *)

val decide :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> height:int -> outcome
(** Is there a packing with peak at most [height]?  The optional
    [budget] adds cooperative cancellation (a checkpoint per node):
    {!Dsp_util.Budget.Expired} escapes to the caller. *)

val solve :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> Packing.t option
(** Optimal packing via binary search on the peak between
    {!Instance.lower_bound} and a greedy upper bound; [None] only on
    node-budget exhaustion.  @raise Dsp_util.Budget.Expired when the
    optional [budget] runs out mid-search. *)

val optimal_height :
  ?node_limit:int -> ?budget:Dsp_util.Budget.t -> Instance.t -> int option

type par_stats = {
  domains : int;  (** worker domains used (0 on trivial early returns) *)
  nodes_per_domain : int array;
      (** search nodes each worker expanded; their spread is the
          load-balance signal *)
  steals : int;  (** successful FIFO steals across all workers *)
  steal_fails : int;  (** steal attempts on empty/contended victims *)
  units : int;  (** frontier units executed (popped or stolen) *)
}
(** Scheduler telemetry of one {!solve_par} call, valid after it
    returns (the per-domain tallies are written without
    synchronization and only read once the workers are joined). *)

val solve_par :
  ?node_limit:int ->
  ?budget:Dsp_util.Budget.t ->
  ?jobs:int ->
  ?pool:Dsp_util.Pool.t ->
  ?stats:par_stats option ref ->
  Instance.t ->
  Packing.t option
(** Parallel exact search: the same move generator and symmetry
    reductions as {!solve}, but incumbent-driven — the greedy packing
    seeds a shared atomic bound and every worker prunes against the
    global best, re-read at each node.  Work is balanced by stealing:
    each of the [jobs] domains (default {!Dsp_util.Pool.default_jobs};
    an existing [pool] can be supplied instead and overrides [jobs])
    owns a {!Dsp_util.Wsdeque} of search-frontier units seeded from
    the first item's start columns, pops its own units LIFO, pushes
    shallow children back as stealable units, and when idle steals the
    shallowest (largest) unit FIFO from a random victim.  Returns the
    optimal packing, or [None] when the *shared* node cap
    ([node_limit], counted across all workers) is exhausted.  The
    caller's [budget] supplies the wall-clock deadline and the
    cooperative cancel flag; its node cap is ignored in favour of
    [node_limit].  Deterministic in its result (the optimum is the
    optimum from any search order) but not in its node count.  When
    [stats] is given it is filled with this solve's {!par_stats}.
    @raise Dsp_util.Budget.Expired when the budget runs out or is
    cancelled mid-search. *)

val solve_par_dealt :
  ?node_limit:int ->
  ?budget:Dsp_util.Budget.t ->
  ?jobs:int ->
  ?pool:Dsp_util.Pool.t ->
  Instance.t ->
  Packing.t option
(** The pre-stealing parallel scheduler: root start columns dealt
    round-robin across the workers once, with no re-balancing.  Same
    contract as {!solve_par}.  Kept as the ablation baseline for the
    parallel bench experiment and the load-imbalance regression test;
    prefer {!solve_par}. *)

val optimal_height_par :
  ?node_limit:int ->
  ?budget:Dsp_util.Budget.t ->
  ?jobs:int ->
  ?pool:Dsp_util.Pool.t ->
  Instance.t ->
  int option

(** Node counts: every explored node bumps the global ["bb.nodes"]
    counter ({!Dsp_util.Instr}); callers that want the count of one
    solve diff {!Dsp_util.Instr.snapshot}s around it (the solver
    engine's reports do this automatically).  This replaces the old
    [solve_with_stats] plumbing. *)
