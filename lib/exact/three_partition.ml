let c_nodes = Dsp_util.Instr.counter Dsp_util.Instr.Sites.three_partition_nodes

let check ~numbers ~bound =
  let n = Array.length numbers in
  if n mod 3 <> 0 then invalid_arg "Three_partition: need a multiple of 3 numbers";
  let k = n / 3 in
  let sum = Array.fold_left ( + ) 0 numbers in
  if sum <> k * bound then
    invalid_arg
      (Printf.sprintf "Three_partition: sum %d does not equal k*bound = %d" sum
         (k * bound));
  k

let search ?budget ~numbers ~bound () =
  let n = Array.length numbers in
  let _k = check ~numbers ~bound in
  let used = Array.make n false in
  let triples = ref [] in
  let nodes = ref 0 in
  (* Always extend the triple of the first unused index: this breaks
     the symmetry between triples. *)
  (* lint: ok R3 — bounded O(n) scan; [go] checkpoints every node *)
  let rec first_unused i = if i >= n || not used.(i) then i else first_unused (i + 1) in
  let rec go () =
    incr nodes;
    Dsp_util.Instr.bump c_nodes;
    (* This search has no native node limit (the hardness experiments
       want the full blow-up), so the budget checkpoint is the only way
       to cancel it. *)
    Dsp_util.Budget.check_opt budget;
    let a = first_unused 0 in
    if a >= n then true
    else begin
      used.(a) <- true;
      let ok = ref false in
      let b = ref (a + 1) in
      while (not !ok) && !b < n do
        if (not used.(!b)) && numbers.(a) + numbers.(!b) < bound then begin
          (* Skip duplicates of a previously tried b value. *)
          let dup = ref false in
          for b' = a + 1 to !b - 1 do
            if (not used.(b')) && numbers.(b') = numbers.(!b) then dup := true
          done;
          if not !dup then begin
            used.(!b) <- true;
            let target = bound - numbers.(a) - numbers.(!b) in
            let c = ref (!b + 1) in
            while (not !ok) && !c < n do
              if (not used.(!c)) && numbers.(!c) = target then begin
                used.(!c) <- true;
                triples := (a, !b, !c) :: !triples;
                if go () then ok := true
                else begin
                  triples := List.tl !triples;
                  used.(!c) <- false;
                  (* All equal values of c behave identically. *)
                  while !c < n - 1 && numbers.(!c + 1) = target do
                    incr c
                  done
                end
              end;
              incr c
            done;
            if not !ok then used.(!b) <- false
          end
        end;
        incr b
      done;
      if not !ok then used.(a) <- false;
      !ok
    end
  in
  let found = go () in
  (found, (if found then Some (Array.of_list (List.rev !triples)) else None), !nodes)

let solve ?budget ~numbers ~bound () =
  let _, triples, _ = search ?budget ~numbers ~bound () in
  triples

let solvable ?budget ~numbers ~bound () =
  let found, _, _ = search ?budget ~numbers ~bound () in
  found

let count_nodes ?budget ~numbers ~bound () =
  let found, _, nodes = search ?budget ~numbers ~bound () in
  (found, nodes)
