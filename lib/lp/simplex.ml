module Rat = Dsp_util.Rat

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Unbounded
  | Infeasible

(* Tableau with basis tracking.  [tab] is (m+1) x (n+1): row 0..m-1
   are constraints with the rhs in the last column; row m is the
   objective row (reduced costs, negated objective value in the last
   column).  [basis.(r)] is the column basic in row r. *)
type tableau = {
  m : int;
  n : int;
  tab : Rat.t array array;
  basis : int array;
}

(* One bump per tableau pivot (both phases): the unit of simplex work
   the engine's reports aggregate. *)
let c_pivots = Dsp_util.Instr.counter Dsp_util.Instr.Sites.simplex_pivots

let pivot t ~row ~col =
  Dsp_util.Instr.bump c_pivots;
  let piv = t.tab.(row).(col) in
  assert (Rat.sign piv <> 0);
  let inv = Rat.inv piv in
  for j = 0 to t.n do
    t.tab.(row).(j) <- Rat.mul t.tab.(row).(j) inv
  done;
  for r = 0 to t.m do
    if r <> row && Rat.sign t.tab.(r).(col) <> 0 then begin
      let factor = t.tab.(r).(col) in
      for j = 0 to t.n do
        t.tab.(r).(j) <- Rat.sub t.tab.(r).(j) (Rat.mul factor t.tab.(row).(j))
      done
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest index with positive reduced
   cost (we maximize, objective row stores c - z so positive means
   improving); leaving = smallest ratio, ties by smallest basis
   index. *)
let rec iterate ?max_col ?budget t =
  (* Pivots are not search nodes, so a deadline-only poll: Bland's
     rule guarantees termination, but a degenerate configuration LP
     can still outlive a runner stage's deadline slice. *)
  Dsp_util.Budget.poll_opt budget;
  let limit = match max_col with Some l -> l | None -> t.n in
  let enter = ref (-1) in
  (try
     for j = 0 to limit - 1 do
       if Rat.sign t.tab.(t.m).(j) > 0 then begin
         enter := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !enter < 0 then `Optimal
  else begin
    let col = !enter in
    let row = ref (-1) and best = ref Rat.zero in
    for r = 0 to t.m - 1 do
      if Rat.sign t.tab.(r).(col) > 0 then begin
        let ratio = Rat.div t.tab.(r).(t.n) t.tab.(r).(col) in
        let better =
          !row < 0
          || Rat.compare ratio !best < 0
          || (Rat.equal ratio !best && t.basis.(r) < t.basis.(!row))
        in
        if better then begin
          row := r;
          best := ratio
        end
      end
    done;
    if !row < 0 then `Unbounded
    else begin
      pivot t ~row:!row ~col;
      iterate ?max_col ?budget t
    end
  end

let extract_solution t n_orig =
  let x = Array.make n_orig Rat.zero in
  for r = 0 to t.m - 1 do
    if t.basis.(r) < n_orig then x.(t.basis.(r)) <- t.tab.(r).(t.n)
  done;
  x

(* Phase 1: artificial variable per row; drive their sum to zero. *)
let phase1 ?budget ~a ~b () =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  let total = n + m in
  let tab = Array.make_matrix (m + 1) (total + 1) Rat.zero in
  for r = 0 to m - 1 do
    let flip = Rat.sign b.(r) < 0 in
    for j = 0 to n - 1 do
      tab.(r).(j) <- (if flip then Rat.neg a.(r).(j) else a.(r).(j))
    done;
    tab.(r).(n + r) <- Rat.one;
    tab.(r).(total) <- (if flip then Rat.neg b.(r) else b.(r))
  done;
  (* Maximize -(sum of artificials): objective row = sum of
     constraint rows restricted to original columns. *)
  for j = 0 to total do
    let s = ref Rat.zero in
    for r = 0 to m - 1 do
      s := Rat.add !s tab.(r).(j)
    done;
    tab.(m).(j) <- !s
  done;
  for r = 0 to m - 1 do
    tab.(m).(n + r) <- Rat.zero
  done;
  let t = { m; n = total; tab; basis = Array.init m (fun r -> n + r) } in
  match iterate ?budget t with
  | `Unbounded -> None (* cannot happen: phase-1 objective bounded *)
  | `Optimal ->
      if Rat.sign t.tab.(m).(total) <> 0 then None
      else begin
        (* Pivot any artificial variable out of the basis when its row
           has a non-zero original column; rows that are all zero are
           redundant and harmless. *)
        for r = 0 to m - 1 do
          if t.basis.(r) >= n then begin
            let j = ref 0 in
            while !j < n && Rat.sign t.tab.(r).(!j) = 0 do
              incr j
            done;
            if !j < n then pivot t ~row:r ~col:!j
          end
        done;
        Some t
      end

let solve ?budget ~a ~b ~c () =
  let m = Array.length a in
  if Array.length b <> m then invalid_arg "Simplex.solve: b length mismatch";
  let n = if m = 0 then Array.length c else Array.length a.(0) in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Simplex.solve: ragged a")
    a;
  if Array.length c <> n then invalid_arg "Simplex.solve: c length mismatch";
  match phase1 ?budget ~a ~b () with
  | None -> Infeasible
  | Some t ->
      (* Phase 2.  Artificial columns keep cost zero but are barred from
         entering the basis (see the [max_col] bound below); any that
         remain basic are degenerate at value zero. *)
      let costs = Array.init t.n (fun j -> if j < n then c.(j) else Rat.zero) in
      (* Reduced-cost row: c_j - c_B^T B^{-1} A_j, computed from the
         current tableau: row m := costs - sum_r costs(basis r) * row r. *)
      for j = 0 to t.n do
        let v = if j < t.n then costs.(j) else Rat.zero in
        let s = ref v in
        for r = 0 to t.m - 1 do
          s := Rat.sub !s (Rat.mul costs.(t.basis.(r)) t.tab.(r).(j))
        done;
        t.tab.(t.m).(j) <- !s
      done;
      (* The rhs cell of the objective row accumulates -objective. *)
      let s = ref Rat.zero in
      for r = 0 to t.m - 1 do
        s := Rat.add !s (Rat.mul costs.(t.basis.(r)) t.tab.(r).(t.n))
      done;
      t.tab.(t.m).(t.n) <- Rat.neg !s;
      (match iterate ~max_col:n ?budget t with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = extract_solution t n in
          let objective = ref Rat.zero in
          Array.iteri (fun j v -> objective := Rat.add !objective (Rat.mul c.(j) v)) x;
          Optimal { objective = !objective; solution = x })

let feasible_point ?budget ~a ~b () =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  match phase1 ?budget ~a ~b () with
  | None -> None
  | Some t -> Some (extract_solution t n)

let count_nonzero x =
  Array.fold_left (fun acc v -> if Rat.sign v <> 0 then acc + 1 else acc) 0 x
