(** Exact two-phase primal simplex over rationals.

    Solves [max cᵀx  s.t.  Ax = b, x >= 0] with exact {!Dsp_util.Rat}
    arithmetic and Bland's anti-cycling rule, so termination and
    exactness are guaranteed.  This is the substrate behind the
    configuration LPs of the (5/4+ε) algorithm's Step 5 (Lemmas 10 and
    11); basic solutions matter there because the rounding argument
    charges one overflowing item per non-zero basic variable.

    Dense-tableau implementation: fine for the experiment sizes
    (tens of rows, up to a few thousand columns). *)

module Rat = Dsp_util.Rat

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Unbounded
  | Infeasible

val solve :
  ?budget:Dsp_util.Budget.t ->
  a:Rat.t array array ->
  b:Rat.t array ->
  c:Rat.t array ->
  unit ->
  result
(** [a] is row-major [m x n]; [b] length [m]; [c] length [n].  Rows
    with negative [b] are negated internally.  The optional [budget]
    is polled once per pivot (deadline only — pivots are not search
    nodes); {!Dsp_util.Budget.Expired} escapes to the caller.
    @raise Invalid_argument on dimension mismatch. *)

val feasible_point :
  ?budget:Dsp_util.Budget.t ->
  a:Rat.t array array ->
  b:Rat.t array ->
  unit ->
  Rat.t array option
(** Phase 1 only: a basic feasible solution of [Ax = b, x >= 0], or
    [None].  The returned solution is basic: at most [m] non-zero
    entries, the property Lemmas 10–11 rely on. *)

val count_nonzero : Rat.t array -> int
