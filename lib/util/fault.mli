(** Deterministic fault injection at counted {!Instr} sites.

    Every instrumented hot-loop site (["bb.nodes"],
    ["segtree.range_add"], ["simplex.pivots"], …) doubles as a fault
    point: arming a {!plan} installs an {!Instr} per-hit hook that
    counts hits on the chosen site and, on the [after]-th hit, fires
    the planned action exactly once:

    - {!Raise} aborts the solve with {!Injected} — models a solver bug
      or a crashed worker;
    - [Stall s] sleeps [s] seconds — models a hang, detected by the
      cooperative {!Budget} deadline at the next checkpoint;
    - {!Corrupt} flags the solve so the runner hands a structurally
      corrupted packing to [Report] validation — models a solver
      returning garbage.  At the WAL's append site the same action
      instead flips a byte of the record before it is written
      (corrupt-on-write), which recovery must detect by checksum;
    - {!Short} flags the next WAL append to write only a prefix of its
      record and then raise {!Injected} — models a crash mid-write,
      leaving the torn tail that recovery must truncate cleanly.

    Plans are one-shot and process-global; the hit count and the
    fired flag are atomic, so a plan fires {e exactly once} even when
    the instrumented site is hit concurrently from several pool
    worker domains (every hit draws a unique ordinal, and only the
    [after]-th fires).  Always {!disarm} in a [Fun.protect]
    finalizer.  The harness exists to prove the PR 2 "fail loudly"
    boundary and the {!Dsp_engine.Runner} fallback chains actually
    absorb faults instead of crashing. *)

type action =
  | Raise
  | Stall of float  (** seconds *)
  | Corrupt
  | Short  (** short write: the next WAL append is cut mid-record *)

type plan = {
  site : string;  (** an {!Instr} counter name *)
  action : action;
  after : int;  (** fire on the [after]-th hit of [site]; 1-based *)
}

exception Injected of string
(** Raised out of the instrumented site by a fired {!Raise} plan. *)

val arm : plan -> unit
(** Install the plan (replacing any previous one) and clear pending
    corruption.  @raise Invalid_argument if [after < 1]. *)

val disarm : unit -> unit
(** Remove the plan and clear pending corruption. *)

val armed : unit -> plan option

val fired : unit -> bool
(** Whether the armed plan has triggered (plans are one-shot). *)

val hits : unit -> int
(** Hits recorded on the armed plan's site so far. *)

val take_corruption : unit -> bool
(** Consume the pending-corruption flag set by a fired {!Corrupt}
    plan.  The runner calls this once per completed solve and, when
    true, corrupts the returned packing before validation.  The WAL
    calls it at its append site and, when true, flips a byte of the
    record on its way to disk instead. *)

val take_short_write : unit -> bool
(** Consume the pending short-write flag set by a fired {!Short} plan.
    The WAL calls this once per append and, when true, writes only a
    prefix of the record and raises {!Injected} — a deterministic
    crash mid-write. *)

val parse_spec : string -> (plan, string) result
(** Parse a CLI fault spec [SITE:ACTION[:AFTER]] where [ACTION] is
    [raise], [corrupt], [short], or [stall[MS]] (default 200 ms) and [AFTER]
    defaults to 1 — e.g. ["bb.nodes:raise:100"],
    ["segtree.range_add:stall50"], ["budget_fit.best_fit_probes:corrupt"].
    [SITE] must be a canonical {!Instr.Sites} name; unknown sites are
    rejected (a typo would arm a plan that can never fire).  {!arm}
    itself stays open-vocabulary for test-only counters. *)

val spec_to_string : plan -> string
(** Inverse of {!parse_spec} (canonical form). *)
