type t = { n : int; d : int }

exception Overflow = Xutil.Overflow

exception Division_by_zero

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let mul_check = Xutil.checked_mul
let add_check = Xutil.checked_add

let make n d =
  if d = 0 then raise Division_by_zero
  else
    let s = if d < 0 then -1 else 1 in
    (* [min_int] has no native negation: a sign flip would wrap, and
       normalization's gcd walk turns its negative remainders into a
       negative divisor.  Reject the boundary value outright. *)
    if n = min_int || d = min_int then raise Overflow;
    let n = mul_check s n and d = mul_check s d in
    let g = gcd (abs n) d in
    if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.n
let den t = t.d

let add a b =
  let g = gcd a.d b.d in
  let da = a.d / g and db = b.d / g in
  (* a.n/(da*g) + b.n/(db*g) = (a.n*db + b.n*da) / (da*db*g) *)
  let n = add_check (mul_check a.n db) (mul_check b.n da) in
  make n (mul_check (mul_check da db) g)

let neg a = if a.n = min_int then raise Overflow else { a with n = -a.n }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = gcd (abs a.n) b.d and g2 = gcd (abs b.n) a.d in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  let n = mul_check (a.n / g1) (b.n / g2) in
  let d = mul_check (a.d / g2) (b.d / g1) in
  make n d

let inv a = if a.n = 0 then raise Division_by_zero else make a.d a.n
let div a b = mul a (inv b)
let abs a =
  if a.n = min_int then raise Overflow else { a with n = Stdlib.abs a.n }

let compare a b =
  (* Compare via subtraction sign; exact because [sub] is exact. *)
  match sub a b with { n; _ } -> Stdlib.compare n 0

let equal a b = a.n = b.n && a.d = b.d
let sign a = Stdlib.compare a.n 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = a.d = 1

let floor a =
  if a.n >= 0 then a.n / a.d
  else
    let q = a.n / a.d in
    if Stdlib.( = ) (a.n mod a.d) 0 then q else Stdlib.( - ) q 1

let ceil a = Stdlib.( ~- ) (floor (neg a))
let to_float a = float_of_int a.n /. float_of_int a.d

let of_float_approx ?(max_den = 1_000_000) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    (* Stern-Brocot style continued-fraction convergents. *)
    let neg_input = Stdlib.( < ) x 0.0 in
    let x = Float.abs x in
    let rec go x (p0, q0) (p1, q1) depth =
      let a = int_of_float (Float.floor x) in
      let p2 = add_check (mul_check a p1) p0
      and q2 = add_check (mul_check a q1) q0 in
      if q2 > max_den || depth > 40 then (p1, q1)
      else
        let frac = x -. Float.of_int a in
        if Stdlib.( < ) frac 1e-12 then (p2, q2)
        else go (1.0 /. frac) (p1, q1) (p2, q2) (Stdlib.( + ) depth 1)
    in
    let p, q = go x (0, 1) (1, 0) 0 in
    let q = if q = 0 then 1 else q in
    make (if neg_input then Stdlib.( ~- ) p else p) q
  end

let pp fmt a =
  if a.d = 1 then Format.fprintf fmt "%d" a.n
  else Format.fprintf fmt "%d/%d" a.n a.d

let to_string a = Format.asprintf "%a" pp a

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
