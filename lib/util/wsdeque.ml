(* Bounded Chase–Lev deque specialised to fixed-width int records on a
   flat backing array.  The owner works at [bottom] (push/pop, LIFO),
   thieves at [top] (steal, FIFO).  Indices grow monotonically and are
   mapped onto the ring with [land mask]; both live in [Atomic.t]s
   whose sequentially consistent semantics supply every fence the
   textbook algorithm needs.

   Safety of the bounded ring without ABA tagging: a push writes slot
   [bottom land mask], and for that physical slot to be one a thief is
   concurrently reading at index [t], [bottom] must equal [t + cap] —
   which the occupancy check only permits once [top > t].  [top] never
   decreases, so that thief's compare-and-set on [top = t] is already
   doomed and its (possibly torn) read is discarded.  Hence data reads
   are validated-by-CAS, never trusted raw. *)

type t = {
  buf : int array;
  rw : int;  (* ints per record *)
  mask : int;  (* slots - 1; slots is a power of two *)
  top : int Atomic.t;  (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
}

let create ~slots ~record_width =
  if slots < 1 then invalid_arg "Wsdeque.create: slots must be >= 1";
  if record_width < 1 then
    invalid_arg "Wsdeque.create: record_width must be >= 1";
  let cap = ref 2 in
  while !cap < slots do
    cap := !cap * 2
  done;
  {
    buf = Array.make (!cap * record_width) 0;
    rw = record_width;
    mask = !cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity t = t.mask + 1
let record_width t = t.rw

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let check_buf t buf op =
  if Array.length buf < t.rw then
    invalid_arg (Printf.sprintf "Wsdeque.%s: buffer narrower than a record" op)

let push t src =
  check_buf t src "push";
  let b = Atomic.get t.bottom in
  (* A stale [top] only under-reports the free space (top is
     monotone), so a race can refuse a push that would have fit —
     never accept one that overwrites live records. *)
  if b - Atomic.get t.top > t.mask then false
  else begin
    Array.blit src 0 t.buf ((b land t.mask) * t.rw) t.rw;
    (* SC store: the record contents above happen-before any thief
       that observes the new bottom. *)
    Atomic.set t.bottom (b + 1);
    true
  end

let pop t dst =
  check_buf t dst "pop";
  let b = Atomic.get t.bottom - 1 in
  (* Reserve the slot first, then look at [top]: a thief racing for
     the same record must now win a CAS against us. *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Deque was empty; undo the reservation. *)
    Atomic.set t.bottom tp;
    false
  end
  else if b > tp then begin
    (* More than one record: the bottom one is ours uncontended. *)
    Array.blit t.buf ((b land t.mask) * t.rw) dst 0 t.rw;
    true
  end
  else begin
    (* Last record: decide against the thieves on [top]. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    if won then Array.blit t.buf ((b land t.mask) * t.rw) dst 0 t.rw;
    Atomic.set t.bottom (tp + 1);
    won
  end

let steal t dst =
  check_buf t dst "steal";
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then false
  else begin
    (* Read before the CAS: success proves the slot was not recycled
       while we were reading (see the header note); failure discards
       whatever we copied. *)
    Array.blit t.buf ((tp land t.mask) * t.rw) dst 0 t.rw;
    Atomic.compare_and_set t.top tp (tp + 1)
  end
