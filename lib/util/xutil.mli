(** Small general-purpose helpers shared across the libraries. *)

exception Overflow
(** Raised by the checked integer operations when a result would wrap
    around the native integer range.  {!Rat.Overflow} is the same
    exception, rebound. *)

val checked_add : int -> int -> int
(** Native-int addition that raises {!Overflow} instead of wrapping. *)

val checked_mul : int -> int -> int
(** Native-int multiplication that raises {!Overflow} instead of
    wrapping. *)

val sum_by : ('a -> int) -> 'a list -> int
(** Integer sum of [f] over a list. *)

val max_by : ('a -> int) -> 'a list -> int
(** Maximum of [f] over a list; 0 on the empty list. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the smallest [k] with [k * b >= a]; requires
    [b > 0] and [a >= 0]. *)

val group_sorted : ('a -> 'a -> bool) -> 'a list -> 'a list list
(** Group adjacent equal elements of an already-sorted list. *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1]. *)

val array_max : int array -> int
(** Maximum of a non-empty int array. *)

val binary_search_min : int -> int -> (int -> bool) -> int option
(** [binary_search_min lo hi ok] finds the smallest [x] in [lo..hi]
    with [ok x], assuming [ok] is monotone (false then true).  Returns
    [None] if no such value exists. *)

val timeit : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with elapsed wall-clock
    seconds. *)

val pp_int_list : Format.formatter -> int list -> unit
