(** Small general-purpose helpers shared across the libraries. *)

exception Overflow
(** Raised by the checked integer operations when a result would wrap
    around the native integer range.  {!Rat.Overflow} is the same
    exception, rebound. *)

val checked_add : int -> int -> int
(** Native-int addition that raises {!Overflow} instead of wrapping. *)

val checked_mul : int -> int -> int
(** Native-int multiplication that raises {!Overflow} instead of
    wrapping. *)

val sum_by : ('a -> int) -> 'a list -> int
(** Integer sum of [f] over a list. *)

val max_by : ('a -> int) -> 'a list -> int
(** Maximum of [f] over a list; 0 on the empty list. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the smallest [k] with [k * b >= a]; requires
    [b > 0] and [a >= 0]. *)

val group_sorted : ('a -> 'a -> bool) -> 'a list -> 'a list list
(** Group adjacent equal elements of an already-sorted list. *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1]. *)

val array_max : int array -> int
(** Maximum of a non-empty int array. *)

val binary_search_min : int -> int -> (int -> bool) -> int option
(** [binary_search_min lo hi ok] finds the smallest [x] in [lo..hi]
    with [ok x], assuming [ok] is monotone (false then true).  Returns
    [None] if no such value exists. *)

val timeit : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with elapsed wall-clock
    seconds. *)

val pp_int_list : Format.formatter -> int list -> unit

val sat_sub : int -> int -> int
(** Saturating native-int subtraction: clamps to [max_int]/[min_int]
    instead of wrapping.  Used for comparison thresholds (e.g.
    [limit - height] with [limit = max_int]) where a conservative
    clamp is correct and an exception would be wrong. *)

type gc_stats = {
  minor_words : float;  (** words allocated on the minor heap *)
  promoted_words : float;  (** words promoted to the major heap *)
  minor_collections : int;
  major_collections : int;
}
(** GC activity attributable to one timed region (deltas of
    [Gc.quick_stat] counters). *)

val timeit_gc : (unit -> 'a) -> 'a * float * gc_stats
(** Like {!timeit}, additionally reporting the GC counter deltas across
    the run.  The sampling itself allocates a handful of words (the
    [Gc.quick_stat] records); amortize over enough work when asserting
    zero-allocation properties. *)
