(* Counters are domain-safe without hot-path synchronization: each
   counter owns a slot index, and every domain keeps its own slot
   array in domain-local storage.  A bump touches only the calling
   domain's cell (one DLS load, one bounds check, one unboxed add);
   [value]/[snapshot] aggregate by summing the slot across every
   domain's array.  The arrays of exited domains stay registered (the
   global list keeps them alive), so totals never lose work done by a
   pool worker that has since terminated.

   Aggregates read concurrently with running workers are racy-but-
   monotone approximations; they are exact once the workers have been
   joined (the join is the synchronization point).  Everything the
   engine does — snapshot before a solve, snapshot after the solve and
   any pool joins — reads at quiescence. *)

(* The canonical counter-site vocabulary.  Every counter the library
   tree creates must take its name from this table — `dsp_lint` rule
   R4 enforces both directions (no literal outside the table, no dead
   table entry), and [Fault.parse_spec] rejects injection specs naming
   sites that are not listed here.  Tests may still mint ad-hoc
   "test.*" counters through [counter]; only string literals inside
   lib/ bin/ bench/ are policed. *)
module Sites = struct
  (* Segment-tree kernel entry points (lib/core/segtree.ml). *)
  let segtree_range_add = "segtree.range_add"
  let segtree_range_max = "segtree.range_max"
  let segtree_first_fit = "segtree.first_fit"
  let segtree_find_last_above = "segtree.find_last_above"
  let segtree_best_start = "segtree.best_start"

  (* Placement probes of the budgeted fitters (lib/dsp/budget_fit.ml). *)
  let budget_fit_first_fit_probes = "budget_fit.first_fit_probes"
  let budget_fit_best_fit_probes = "budget_fit.best_fit_probes"

  (* Search nodes: DSP branch-and-bound, classical strip packing,
     and the 3-Partition reduction (lib/exact). *)
  let bb_nodes = "bb.nodes"
  let sp_bb_nodes = "sp_bb.nodes"
  let three_partition_nodes = "three_partition.nodes"

  (* Work-stealing scheduler of the parallel B&B (lib/exact/dsp_bb.ml):
     successful steals and failed steal attempts (empty or contended
     victims).  Their ratio is the load-balance signal the parallel
     bench experiment records. *)
  let bb_steals = "bb.steals"
  let bb_steal_fails = "bb.steal_fails"

  (* Portfolio autotuner (lib/engine/tuner.ml): plans computed from
     instance features, and outcomes appended to the feedback file. *)
  let tuner_plans = "tuner.plans"
  let tuner_feedback = "tuner.feedback"

  (* Tableau pivots, both simplex phases (lib/lp/simplex.ml). *)
  let simplex_pivots = "simplex.pivots"

  (* The (5/4+eps) algorithm: binary-search guesses on H' and
     per-target packing attempts (lib/dsp/approx54.ml). *)
  let approx54_guesses = "approx54.guesses"
  let approx54_attempts = "approx54.attempts"

  (* Incremental session events and bounded-migration work
     (lib/engine/session.ml). *)
  let session_arrivals = "session.arrivals"
  let session_departures = "session.departures"
  let session_migrations = "session.migrations"
  let session_migration_trials = "session.migration_trials"

  (* Write-ahead-log IO (lib/serve/wal.ml).  These double as the
     IO-layer fault points: a Raise at [wal_fsyncs] models a failed
     fsync, Corrupt at [wal_appends] is corrupt-on-write, Short at
     [wal_appends] is a crash mid-append. *)
  let wal_appends = "wal.appends"
  let wal_fsyncs = "wal.fsyncs"
  let wal_records_recovered = "wal.records_recovered"
  let wal_compactions = "wal.compactions"

  (* Service daemon request handling (lib/serve/server.ml). *)
  let serve_requests = "serve.requests"
  let serve_errors = "serve.errors"
  let serve_shed = "serve.shed"
  let serve_solves = "serve.solves"

  let all =
    [
      segtree_range_add;
      segtree_range_max;
      segtree_first_fit;
      segtree_find_last_above;
      segtree_best_start;
      budget_fit_first_fit_probes;
      budget_fit_best_fit_probes;
      bb_nodes;
      bb_steals;
      bb_steal_fails;
      sp_bb_nodes;
      three_partition_nodes;
      tuner_plans;
      tuner_feedback;
      simplex_pivots;
      approx54_guesses;
      approx54_attempts;
      session_arrivals;
      session_departures;
      session_migrations;
      session_migration_trials;
      wal_appends;
      wal_fsyncs;
      wal_records_recovered;
      wal_compactions;
      serve_requests;
      serve_errors;
      serve_shed;
      serve_solves;
    ]

  let mem name = List.mem name all
end

type counter = { cname : string; key : int }

let mutex = Mutex.create ()

(* Registries are tiny (tens of entries, one array per domain) and
   every access below locks [mutex], so the bare containers are safe
   under domain sharing. *)
let by_name : (string, counter) Hashtbl.t = Hashtbl.create 32 (* lint: local *)
let registered : counter list ref = ref [] (* lint: local *)
let next_key = ref 0 (* lint: local *)
let domain_cells : int array ref list ref = ref [] (* lint: local *)
let phase_seconds : (string, float ref) Hashtbl.t = Hashtbl.create 8 (* lint: local *)

let counter name =
  Mutex.lock mutex;
  let c =
    match Hashtbl.find_opt by_name name with
    | Some c -> c
    | None ->
        let c = { cname = name; key = !next_key } in
        incr next_key;
        Hashtbl.add by_name name c;
        registered := c :: !registered;
        c
  in
  Mutex.unlock mutex;
  c

(* This domain's slot array, grown (by replacement, old values
   blitted) when a counter created later than the array is bumped. *)
let slots : int array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let box = ref (Array.make 64 0) in
      Mutex.lock mutex;
      domain_cells := box :: !domain_cells;
      Mutex.unlock mutex;
      box)

let cells key =
  let box = Domain.DLS.get slots in
  let a = !box in
  if key < Array.length a then a
  else begin
    (* one-time growth when a counter key outgrows the slot array;
       after warm-up every bump takes the `key < length` fast path *)
    (* lint: ok R7 — warm-up-only growth, not a steady-state alloc *)
    let b = Array.make (max (key + 1) (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    box := b;
    b
  end

(* Per-hit hook: the fault-injection harness (Fault) registers itself
   here, turning every counted site into a fault point.  Disarmed (the
   overwhelmingly common case) the cost is one load and branch.  The
   hook is installed before workers start and removed after they are
   joined; the atomic makes the handoff well-defined either way. *)
let on_hit : (string -> unit) option Atomic.t = Atomic.make None
let set_on_hit f = Atomic.set on_hit f

let hit c = match Atomic.get on_hit with None -> () | Some f -> f c.cname

let bump c =
  let a = cells c.key in
  a.(c.key) <- a.(c.key) + 1;
  hit c

let add c n =
  if n < 0 then invalid_arg "Instr.add: counters are monotone";
  let a = cells c.key in
  a.(c.key) <- a.(c.key) + n;
  hit c

let all_cells () =
  Mutex.lock mutex;
  let cs = !domain_cells in
  Mutex.unlock mutex;
  cs

let sum_slot cells key =
  List.fold_left
    (fun acc box ->
      let a = !box in
      acc + if key < Array.length a then a.(key) else 0)
    0 cells

let value c = sum_slot (all_cells ()) c.key
let name c = c.cname

type snapshot = (string * int) list

let snapshot () =
  Mutex.lock mutex;
  let counters = !registered and cells = !domain_cells in
  Mutex.unlock mutex;
  List.map (fun c -> (c.cname, sum_slot cells c.key)) counters
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let delta ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (List.assoc_opt name before) ~default:0 in
      if v > v0 then Some (name, v - v0) else None)
    after

let reset () =
  Mutex.lock mutex;
  List.iter (fun box -> Array.fill !box 0 (Array.length !box) 0) !domain_cells;
  Hashtbl.reset phase_seconds;
  Mutex.unlock mutex

let time phase f =
  let cell =
    Mutex.lock mutex;
    let r =
      match Hashtbl.find_opt phase_seconds phase with
      | Some r -> r
      | None ->
          let r = ref 0.0 in
          Hashtbl.add phase_seconds phase r;
          r
    in
    Mutex.unlock mutex;
    r
  in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> cell := !cell +. (Unix.gettimeofday () -. t0))
    f

let timers () =
  Mutex.lock mutex;
  let bindings = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) phase_seconds [] in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) bindings
