type counter = { cname : string; mutable count : int }

(* Registries are tiny (tens of entries) and touched only at module
   initialisation and on snapshot/reset, so a Hashtbl is plenty. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let phase_seconds : (string, float ref) Hashtbl.t = Hashtbl.create 8

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.add counters name c;
      c

(* Per-hit hook: the fault-injection harness (Fault) registers itself
   here, turning every counted site into a fault point.  Disarmed (the
   overwhelmingly common case) the cost is one load and branch. *)
let on_hit : (string -> unit) option ref = ref None
let set_on_hit f = on_hit := f

let hit c = match !on_hit with None -> () | Some f -> f c.cname

let bump c =
  c.count <- c.count + 1;
  hit c

let add c n =
  if n < 0 then invalid_arg "Instr.add: counters are monotone";
  c.count <- c.count + n;
  hit c

let value c = c.count
let name c = c.cname

type snapshot = (string * int) list

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () = sorted_bindings counters (fun c -> c.count)

let delta ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (List.assoc_opt name before) ~default:0 in
      if v > v0 then Some (name, v - v0) else None)
    after

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.reset phase_seconds

let time phase f =
  let cell =
    match Hashtbl.find_opt phase_seconds phase with
    | Some r -> r
    | None ->
        let r = ref 0.0 in
        Hashtbl.add phase_seconds phase r;
        r
  in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> cell := !cell +. (Unix.gettimeofday () -. t0))
    f

let timers () = sorted_bindings phase_seconds (fun r -> !r)
