type reason = Deadline | Nodes | Cancelled

exception Expired of reason

type t = {
  started : float;
  deadline : float option; (* absolute gettimeofday *)
  nodes : int option;
  cancel : bool Atomic.t option;
  mutable ticks : int;
  mutable fuse : int; (* checkpoints until the next wall-clock read *)
}

let clock_interval = 64

let create ?timeout_ms ?nodes ?cancel () =
  let started = Unix.gettimeofday () in
  (match timeout_ms with
  | Some ms when ms < 0 -> invalid_arg "Budget.create: negative timeout"
  | _ -> ());
  (match nodes with
  | Some n when n < 0 -> invalid_arg "Budget.create: negative node cap"
  | _ -> ());
  {
    started;
    deadline = Option.map (fun ms -> started +. (float_of_int ms /. 1000.)) timeout_ms;
    nodes;
    cancel;
    ticks = 0;
    fuse = clock_interval;
  }

let unlimited () = create ()

(* A worker-side view of [t] for fan-out across domains: same absolute
   deadline and (optionally overridden) cancel flag, fresh mutable
   checkpoint state so domains never share unsynchronized fields.  The
   node cap is dropped — parallel callers account nodes in one shared
   [Atomic.t] instead of k independent caps. *)
let child ?cancel t =
  {
    started = t.started;
    deadline = t.deadline;
    nodes = None;
    cancel = (match cancel with Some _ -> cancel | None -> t.cancel);
    ticks = 0;
    fuse = clock_interval;
  }

let past_deadline t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () > d
  | None -> false

let cancelled t =
  match t.cancel with Some c -> Atomic.get c | None -> false

(* Cancellation is polled at every checkpoint (an atomic load and a
   branch), not just on clock reads: a racing loser should stop within
   a handful of nodes of the winner validating. *)
let poll_cancel t = if cancelled t then raise (Expired Cancelled)

(* The fuse batches clock reads: gettimeofday is ~20ns but the hot
   loops checkpoint every node, so pay for it only once per
   [clock_interval] checkpoints. *)
let burn_fuse t =
  t.fuse <- t.fuse - 1;
  if t.fuse <= 0 then begin
    t.fuse <- clock_interval;
    if past_deadline t then raise (Expired Deadline)
  end

let check t =
  poll_cancel t;
  t.ticks <- t.ticks + 1;
  (match t.nodes with
  | Some cap when t.ticks > cap -> raise (Expired Nodes)
  | _ -> ());
  burn_fuse t

let poll t =
  poll_cancel t;
  burn_fuse t

let check_opt = function Some t -> check t | None -> ()
let poll_opt = function Some t -> poll t | None -> ()

let expired t =
  if cancelled t then Some Cancelled
  else
    match t.nodes with
    | Some cap when t.ticks > cap -> Some Nodes
    | _ -> if past_deadline t then Some Deadline else None

let node_cap t = t.nodes
let ticks t = t.ticks
let elapsed t = Unix.gettimeofday () -. t.started

let remaining_ms t =
  Option.map
    (fun d -> Float.max 0.0 ((d -. Unix.gettimeofday ()) *. 1000.))
    t.deadline

let reason_name = function
  | Deadline -> "deadline"
  | Nodes -> "nodes"
  | Cancelled -> "cancelled"

let pp_reason fmt r = Format.pp_print_string fmt (reason_name r)
