type action = Raise | Stall of float | Corrupt | Short
type plan = { site : string; action : action; after : int }

exception Injected of string

(* Hit and fired state is atomic so a plan stays one-shot when the
   instrumented site is being hammered from several pool workers at
   once: fetch_and_add hands every hit a unique ordinal, so exactly
   one worker observes ordinal = after, and the compare_and_set on
   [fired] is belt-and-braces on top. *)
type state = { plan : plan; hits : int Atomic.t; fired : bool Atomic.t }

let current : state option Atomic.t = Atomic.make None
let pending_corruption = Atomic.make false

(* IO-layer twin of [pending_corruption]: a fired Short plan asks the
   next WAL append to write only a prefix of its record and then die,
   modelling a crash mid-write (torn tail). *)
let pending_short = Atomic.make false

let fire (p : plan) =
  match p.action with
  | Raise -> raise (Injected (Printf.sprintf "injected fault at %s (hit %d)" p.site p.after))
  | Stall s -> Unix.sleepf s
  | Corrupt -> Atomic.set pending_corruption true
  | Short -> Atomic.set pending_short true

let on_hit name =
  match Atomic.get current with
  | None -> ()
  | Some st ->
      if (not (Atomic.get st.fired)) && String.equal name st.plan.site then begin
        let ordinal = 1 + Atomic.fetch_and_add st.hits 1 in
        if ordinal = st.plan.after && Atomic.compare_and_set st.fired false true
        then fire st.plan
      end

let arm plan =
  if plan.after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  Atomic.set current
    (Some { plan; hits = Atomic.make 0; fired = Atomic.make false });
  Atomic.set pending_corruption false;
  Atomic.set pending_short false;
  Instr.set_on_hit (Some on_hit)

let disarm () =
  Atomic.set current None;
  Atomic.set pending_corruption false;
  Atomic.set pending_short false;
  Instr.set_on_hit None

let armed () = Option.map (fun st -> st.plan) (Atomic.get current)

let fired () =
  match Atomic.get current with Some st -> Atomic.get st.fired | None -> false

let hits () =
  match Atomic.get current with Some st -> Atomic.get st.hits | None -> 0

let take_corruption () = Atomic.exchange pending_corruption false
let take_short_write () = Atomic.exchange pending_short false

let default_stall_ms = 200

let parse_action s =
  if s = "raise" then Ok Raise
  else if s = "corrupt" then Ok Corrupt
  else if s = "short" then Ok Short
  else if s = "stall" then Ok (Stall (float_of_int default_stall_ms /. 1000.))
  else if String.length s > 5 && String.sub s 0 5 = "stall" then
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0 -> Ok (Stall (float_of_int ms /. 1000.))
    | _ -> Error (Printf.sprintf "bad stall duration in %S" s)
  else
    Error
      (Printf.sprintf "unknown fault action %S (raise|stall[MS]|corrupt|short)" s)

(* Site names in user-facing specs are validated against the
   canonical [Instr.Sites] table: a typo'd site would otherwise arm a
   plan that can never fire and read as "the fault was absorbed".
   [arm] stays open-vocabulary so tests can instrument ad-hoc
   "test.*" counters. *)
let parse_site site =
  if Instr.Sites.mem site then Ok site
  else
    Error
      (Printf.sprintf "unknown instrumentation site %S (known: %s)" site
         (String.concat ", " Instr.Sites.all))

let parse_spec spec =
  match String.split_on_char ':' spec with
  | ([ site; action ] | [ site; action; _ ]) when site = "" || action = "" ->
      Error (Printf.sprintf "bad fault spec %S (want SITE:ACTION[:AFTER])" spec)
  | [ site; action ] -> (
      match (parse_site site, parse_action action) with
      | Ok site, Ok action -> Ok { site; action; after = 1 }
      | Error e, _ | _, Error e -> Error e)
  | [ site; action; after ] -> (
      match (parse_site site, parse_action action, int_of_string_opt after) with
      | Ok site, Ok action, Some after when after >= 1 -> Ok { site; action; after }
      | Ok _, Ok _, _ -> Error (Printf.sprintf "bad fault trigger count %S" after)
      | (Error e, _, _ | _, Error e, _) -> Error e)
  | _ -> Error (Printf.sprintf "bad fault spec %S (want SITE:ACTION[:AFTER])" spec)

let action_to_string = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Short -> "short"
  | Stall s -> Printf.sprintf "stall%d" (int_of_float (Float.round (s *. 1000.)))

let spec_to_string p =
  Printf.sprintf "%s:%s:%d" p.site (action_to_string p.action) p.after
