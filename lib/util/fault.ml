type action = Raise | Stall of float | Corrupt
type plan = { site : string; action : action; after : int }

exception Injected of string

type state = { plan : plan; mutable hits : int; mutable fired : bool }

let current : state option ref = ref None
let pending_corruption = ref false

let fire (p : plan) =
  match p.action with
  | Raise -> raise (Injected (Printf.sprintf "injected fault at %s (hit %d)" p.site p.after))
  | Stall s -> Unix.sleepf s
  | Corrupt -> pending_corruption := true

let on_hit name =
  match !current with
  | None -> ()
  | Some st ->
      if (not st.fired) && String.equal name st.plan.site then begin
        st.hits <- st.hits + 1;
        if st.hits >= st.plan.after then begin
          st.fired <- true;
          fire st.plan
        end
      end

let arm plan =
  if plan.after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  current := Some { plan; hits = 0; fired = false };
  pending_corruption := false;
  Instr.set_on_hit (Some on_hit)

let disarm () =
  current := None;
  pending_corruption := false;
  Instr.set_on_hit None

let armed () = Option.map (fun st -> st.plan) !current
let fired () = match !current with Some st -> st.fired | None -> false
let hits () = match !current with Some st -> st.hits | None -> 0

let take_corruption () =
  let c = !pending_corruption in
  pending_corruption := false;
  c

let default_stall_ms = 200

let parse_action s =
  if s = "raise" then Ok Raise
  else if s = "corrupt" then Ok Corrupt
  else if s = "stall" then Ok (Stall (float_of_int default_stall_ms /. 1000.))
  else if String.length s > 5 && String.sub s 0 5 = "stall" then
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0 -> Ok (Stall (float_of_int ms /. 1000.))
    | _ -> Error (Printf.sprintf "bad stall duration in %S" s)
  else Error (Printf.sprintf "unknown fault action %S (raise|stall[MS]|corrupt)" s)

let parse_spec spec =
  match String.split_on_char ':' spec with
  | ([ site; action ] | [ site; action; _ ]) when site = "" || action = "" ->
      Error (Printf.sprintf "bad fault spec %S (want SITE:ACTION[:AFTER])" spec)
  | [ site; action ] -> (
      match parse_action action with
      | Ok action -> Ok { site; action; after = 1 }
      | Error e -> Error e)
  | [ site; action; after ] -> (
      match (parse_action action, int_of_string_opt after) with
      | Ok action, Some after when after >= 1 -> Ok { site; action; after }
      | Ok _, _ -> Error (Printf.sprintf "bad fault trigger count %S" after)
      | (Error e, _) -> Error e)
  | _ -> Error (Printf.sprintf "bad fault spec %S (want SITE:ACTION[:AFTER])" spec)

let action_to_string = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Stall s -> Printf.sprintf "stall%d" (int_of_float (Float.round (s *. 1000.)))

let spec_to_string p =
  Printf.sprintf "%s:%s:%d" p.site (action_to_string p.action) p.after
