(** A fixed-size domain pool with futures — the repo's multicore
    substrate, built from scratch on [Domain] + [Mutex]/[Condition] +
    [Atomic] (no domainslib, matching the no-external-deps ethos).

    One pool = [jobs] worker domains pulling packed tasks off a shared
    FIFO.  {!submit} returns a {!future}; {!await} blocks the caller
    until the task ran and re-raises whatever it raised (with its
    backtrace).  Workers catch every task exception into the future,
    so a crashing task — including an injected
    {!Dsp_util.Fault.Injected} — can never kill a worker or wedge the
    queue: the pool stays usable and {!shutdown} always joins.

    Cancellation is cooperative and rides on {!Budget}: give racing
    tasks budgets created with the same [cancel : bool Atomic.t]
    ({!Budget.create}/{!Budget.child}), and flip the flag once —
    every checkpoint in every worker raises
    [Budget.Expired Cancelled] at its next poll.  The pool itself
    never kills a domain preemptively.

    Do not {!await} from inside a pool task of the same pool: with
    every worker blocked on a queued task the wait can deadlock.
    Nested parallelism gets its own (short-lived) pool. *)

type t

val create : jobs:int -> t
(** Spawn [jobs] worker domains (>= 1).  Domains are an OS-level
    resource; prefer one pool per run over one per solve, and
    {!shutdown} when done. *)

val size : t -> int
(** Worker count the pool was created with. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completed; re-raises the task's exception
    (original backtrace preserved) if it failed. *)

val await_result : 'a future -> ('a, exn) result
(** Non-raising {!await}. *)

val poll : 'a future -> ('a, exn) result option
(** Non-blocking completion probe: [None] while the task is still
    pending or queued, [Some] once it finished.  The serve daemon's
    event loop drains completed solves between socket wakeups with
    this — it must never block on one client's future while another
    client waits. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one task per element, await in order.  Re-raises the first
    (in list order) failing task's exception. *)

val run_all : t -> (unit -> 'a) list -> ('a, exn) result list
(** Submit every thunk, await all, return per-task outcomes in order —
    no exception escapes, so one poisoned task cannot hide the
    others' results. *)

val shutdown : t -> unit
(** Stop accepting tasks, drain the queue, join every worker.
    Idempotent.  Already-queued tasks still run. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exceptions). *)

val default_jobs : unit -> int
(** The parallelism degree everything defaults to: an explicit
    {!set_default_jobs} (the CLI's [--jobs]) if any, else the
    [DSP_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for this process (>= 1). *)
