(* A fixed-size domain pool built directly on Domain + Mutex /
   Condition (the repo carries no external deps, so no domainslib): a
   shared FIFO of packed tasks, [jobs] worker domains blocking on a
   condition, and per-future mutexes for completion signalling.
   Workers catch everything a task raises and park it in the future,
   so a crashing task (including an injected Fault.Injected) can never
   take a worker down or wedge the queue. *)

type task = unit -> unit

type t = {
  m : Mutex.t;
  wake : Condition.t; (* queue became non-empty, or shutdown *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable st : 'a state;
}

let rec worker pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.wake pool.m
  done;
  match Queue.take_opt pool.queue with
  | None ->
      (* stopping and drained *)
      Mutex.unlock pool.m
  | Some task ->
      Mutex.unlock pool.m;
      task ();
      worker pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      m = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      size = jobs;
    }
  in
  pool.domains <-
    List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); st = Pending } in
  let task () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fm;
    fut.st <- r;
    Condition.broadcast fut.fc;
    Mutex.unlock fut.fm
  in
  Mutex.lock pool.m;
  if pool.stopping then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.wake;
  Mutex.unlock pool.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  while (match fut.st with Pending -> true | _ -> false) do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.st in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await_result fut =
  match await fut with v -> Ok v | exception e -> Error e

(* Non-blocking probe: the serve daemon's select loop holds a bounded
   set of in-flight solve futures and harvests whichever completed
   between two socket wakeups, so it must never park on one future
   while another client is waiting for its answer. *)
let poll fut =
  Mutex.lock fut.fm;
  let st = fut.st in
  Mutex.unlock fut.fm;
  match st with
  | Pending -> None
  | Done v -> Some (Ok v)
  | Failed (e, _) -> Some (Error e)

let run_all pool fs =
  List.map await_result (List.map (fun f -> submit pool f) fs)

let map pool f xs =
  List.map await (List.map (fun x -> submit pool (fun () -> f x)) xs)

let shutdown pool =
  Mutex.lock pool.m;
  if pool.stopping then Mutex.unlock pool.m
  else begin
    pool.stopping <- true;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Default parallelism: an explicit [set_default_jobs] (the CLI's
   --jobs) wins, then the DSP_JOBS environment variable, then
   whatever the hardware advertises. *)

let default_override = Atomic.make 0

let env_jobs () =
  match Sys.getenv_opt "DSP_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let default_jobs () =
  let o = Atomic.get default_override in
  if o >= 1 then o
  else
    match env_jobs () with
    | Some j -> j
    | None -> Domain.recommended_domain_count ()

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default_override j
