(** Unified solve budgets: a wall-clock deadline, a node cap, and a
    cooperative cancellation flag in one value, enforced by
    cancellation checkpoints.

    The paper's exact solvers and the (5/4+ε) binary search are
    pseudo-polynomial or exponential; on the 3-Partition hardness
    families a solve can run effectively forever.  A [Budget.t] is
    created once per solve (by {!Dsp_engine.Solver.run} or a
    {!Dsp_engine.Runner} stage) and threaded into every hot loop, which
    calls {!check} (search loops whose iterations are "nodes") or
    {!poll} (loops with no node semantics, e.g. simplex pivots).  Both
    raise {!Expired} when the budget runs out; the engine boundary
    converts the exception into a typed outcome.

    Multicore: budgets are single-domain values (the checkpoint state
    is unsynchronized); what crosses domains is the shared [cancel]
    flag, a [bool Atomic.t] that every checkpoint polls.  A racing
    runner or a parallel search hands the same atomic to many worker
    budgets ({!child}) and flips it once to stop them all at their
    next checkpoint.

    Cost model: a checkpoint is an increment, a compare, and (when a
    cancel flag is attached) one atomic load; the wall clock is only
    read every {!clock_interval} checkpoints, so checkpoints are cheap
    enough for branch-and-bound inner loops. *)

type reason = Deadline | Nodes | Cancelled

exception Expired of reason
(** Raised by {!check}/{!poll} at the first checkpoint past the
    budget.  Escapes the solver wholesale (cooperative cancellation);
    catch it only at the engine boundary. *)

type t

val create : ?timeout_ms:int -> ?nodes:int -> ?cancel:bool Atomic.t -> unit -> t
(** A budget starting now.  [timeout_ms] is a wall-clock deadline
    relative to creation; [nodes] caps the number of {!check}
    checkpoints (search nodes); [cancel] is a shared flag that, once
    set (from any domain), makes every checkpoint raise
    [Expired Cancelled].  Omitted components are unlimited. *)

val unlimited : unit -> t
(** A budget that never expires (checkpoints still count ticks). *)

val child : ?cancel:bool Atomic.t -> t -> t
(** A worker-side copy for fanning a solve out across domains: same
    absolute deadline, fresh checkpoint state (budgets themselves must
    not be shared between domains), and the parent's cancel flag
    unless [cancel] overrides it.  The node cap is dropped — parallel
    searches account nodes in one shared [Atomic.t], not k independent
    caps. *)

val check : t -> unit
(** Node-counting checkpoint: one tick; raises [Expired Nodes] when
    the tick count exceeds the node cap, [Expired Cancelled] when the
    shared cancel flag is set, and [Expired Deadline] when a (batched)
    clock read lands past the deadline.  Call it once per search
    node. *)

val poll : t -> unit
(** Deadline/cancellation-only checkpoint for loops whose iterations
    are not search nodes (simplex pivots, placement passes): never
    consumes the node cap, still raises [Expired Deadline] and
    [Expired Cancelled].  Clock reads are batched exactly as in
    {!check}. *)

val check_opt : t option -> unit
(** {!check} when a budget is present, no-op otherwise — for solver
    internals that take [?budget]. *)

val poll_opt : t option -> unit
(** {!poll} when a budget is present, no-op otherwise. *)

val expired : t -> reason option
(** Non-raising probe (always reads the clock and the cancel flag). *)

val node_cap : t -> int option
(** The node cap, for solvers with native node accounting (the
    branch-and-bound keeps its own per-call counter shared across the
    binary search on the height). *)

val ticks : t -> int
(** Checkpoints counted so far by {!check}. *)

val elapsed : t -> float
(** Seconds since creation. *)

val remaining_ms : t -> float option
(** Milliseconds until the deadline ([None] when unlimited); clamped
    at 0. *)

val clock_interval : int
(** Checkpoints between wall-clock reads (64). *)

val reason_name : reason -> string
(** ["deadline"] / ["nodes"] / ["cancelled"]. *)

val pp_reason : Format.formatter -> reason -> unit
