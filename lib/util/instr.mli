(** Lightweight, always-on instrumentation: named monotonic counters
    and phase timers.

    The solver engine ({!module:Dsp_engine} in [lib/engine]) snapshots
    these around every solve and reports the deltas, so the hot paths
    — {!Dsp_core.Segtree} ops, [Budget_fit] probes, [Dsp_bb] nodes,
    [Simplex] pivots, [Approx54] binary-search iterations — carry one
    shared counter vocabulary instead of ad-hoc per-module stats
    plumbing.

    Cost model: a counter handle is obtained once at module
    initialisation; bumping it touches only the calling domain's cell
    (a domain-local load, a bounds check, and an unboxed add), cheap
    enough to stay enabled in production and inside O(log n)
    kernels.  The global registry is only touched on {!counter}
    creation and on {!snapshot}/{!reset}.

    Multicore: counters are sharded per domain.  Each domain
    increments its own cell with no synchronization; {!value} and
    {!snapshot} aggregate by summing the cell across every domain that
    ever bumped (cells of exited pool workers are retained, so their
    work is never lost).  Aggregates read while workers are still
    running are racy-but-monotone approximations; after the workers
    are joined they are exact — the engine only snapshots at such
    quiescent points, which is what makes "serial totals = sum of
    per-domain deltas" hold. *)

(** The canonical counter-site vocabulary: one binding per site the
    library tree may instrument, with the wire name as its value.

    This is the single source of truth rule R4 of [dsp_lint] enforces:
    a string literal handed to {!counter} from lib/ bin/ bench/ must
    appear here, and every entry must be referenced somewhere (no dead
    sites).  {!Fault.parse_spec} also validates injection-spec site
    names against {!Sites.all}.  Test suites may still create ad-hoc
    counters (conventionally ["test.*"]); only literals in the audited
    tree are policed. *)
module Sites : sig
  val segtree_range_add : string
  val segtree_range_max : string
  val segtree_first_fit : string
  val segtree_find_last_above : string
  val segtree_best_start : string
  val budget_fit_first_fit_probes : string
  val budget_fit_best_fit_probes : string
  val bb_nodes : string
  val bb_steals : string
  val bb_steal_fails : string
  val sp_bb_nodes : string
  val three_partition_nodes : string
  val tuner_plans : string
  val tuner_feedback : string
  val simplex_pivots : string
  val approx54_guesses : string
  val approx54_attempts : string
  val session_arrivals : string
  val session_departures : string
  val session_migrations : string
  val session_migration_trials : string
  val wal_appends : string
  val wal_fsyncs : string
  val wal_records_recovered : string
  val wal_compactions : string
  val serve_requests : string
  val serve_errors : string
  val serve_shed : string
  val serve_solves : string

  val all : string list
  (** Every canonical site name, in registration order. *)

  val mem : string -> bool
  (** [mem name] is true iff [name] is a canonical site. *)
end

type counter
(** A named monotonic counter.  Counters are process-global: two
    {!counter} calls with the same name share state (each domain
    bumping its own cell of it). *)

val counter : string -> counter
(** Find or create the counter with this name.  Call it once at module
    initialisation and keep the handle; do not call it in a hot
    loop. *)

val bump : counter -> unit
(** Increment by one. *)

val add : counter -> int -> unit
(** Increment by [n] (negative [n] is rejected: counters are
    monotone). *)

val value : counter -> int
(** Sum of the counter's per-domain cells (exact at quiescence). *)

val name : counter -> string

val set_on_hit : (string -> unit) option -> unit
(** Install (or clear) the per-hit hook, called with the counter name
    on every {!bump}/{!add}.  This is how {!Fault} turns every counted
    site into a deterministic fault point; the hook may raise, and the
    raise propagates out of the instrumented hot loop.  Disarmed, a
    hit costs one load and branch.  Exactly one hook at a time —
    installing replaces the previous one. *)

type snapshot = (string * int) list
(** Counter values at one instant, sorted by name. *)

val snapshot : unit -> snapshot

val delta : before:snapshot -> after:snapshot -> (string * int) list
(** Per-counter increase between two snapshots, restricted to counters
    that moved (all deltas are [> 0]); sorted by name.  Counters
    created after [before] count from zero. *)

val reset : unit -> unit
(** Zero every counter (in every domain's cells) and drop every
    timer.  For test isolation; the engine itself only ever diffs
    snapshots.  Do not call while worker domains are mid-solve. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f], accumulating its wall-clock seconds under
    [phase].  Re-entrant on distinct phases; nested calls on the same
    phase double-count and are the caller's responsibility. *)

val timers : unit -> (string * float) list
(** Accumulated seconds per phase, sorted by name. *)
