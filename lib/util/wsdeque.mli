(** Bounded Chase–Lev work-stealing deque of fixed-width int records.

    One owner domain pushes and pops at the bottom (LIFO); any other
    domain steals from the top (FIFO), so thieves take the {e oldest} —
    in a branch-and-bound frontier, the shallowest and therefore
    largest — records first.  Records are [record_width] consecutive
    ints in one flat backing array: the deque itself never allocates
    after {!create} (PR 6's zero-allocation discipline), and the only
    shared mutable state is the pair of [Atomic] indices, which is what
    keeps the structure domain-safe under dsp_lint rule R2.

    The deque is {e bounded by design} — there is no resize.  A full
    deque refuses the push and the caller keeps the record (the B&B
    worker expands the subtree inline instead).  This keeps the hot
    path allocation-free and makes slot reuse safe: a slot can only be
    overwritten once [top] has advanced past it, so a thief that read
    a torn record always loses its compare-and-set and discards the
    read.

    Memory-model note: record payloads live in a plain [int array]
    written by the owner and read by thieves.  Every publication is
    ordered by a sequentially consistent [Atomic] operation on
    [bottom]/[top] (push publishes with the [bottom] store, a steal
    validates its read with the [top] CAS), so the only racy reads are
    ones the CAS then rejects. *)

type t

val create : slots:int -> record_width:int -> t
(** [create ~slots ~record_width] is an empty deque with room for at
    least [slots] records of exactly [record_width] ints each.
    [slots] is rounded up to a power of two (minimum 2).
    @raise Invalid_argument if [slots < 1] or [record_width < 1]. *)

val capacity : t -> int
(** Number of record slots (the rounded-up power of two). *)

val record_width : t -> int

val push : t -> int array -> bool
(** Owner only.  Copy [record_width] ints from the buffer into the
    bottom of the deque.  Returns [false] (and copies nothing) when
    the deque is full.
    @raise Invalid_argument if the buffer is shorter than
    [record_width]. *)

val pop : t -> int array -> bool
(** Owner only.  Move the newest record (LIFO) into the buffer;
    [false] when the deque is empty (a concurrent thief may win the
    last record, which also answers [false]). *)

val steal : t -> int array -> bool
(** Any domain.  Move the oldest record (FIFO) into the buffer;
    [false] when the deque is empty or another thief (or the owner,
    on the last record) won the race.  Callers treat [false] as "try
    another victim", not as emptiness. *)

val size : t -> int
(** Racy snapshot of the current occupancy — exact only at
    quiescence; useful for "is it worth stealing here" heuristics and
    tests. *)
