exception Overflow

let checked_add a b =
  let s = a + b in
  (* Overflow iff both operands share a sign that the sum lost. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

(* Saturating subtraction: thresholds like [limit - height] (limit may
   be max_int) must not wrap; clamping to the representable range keeps
   every downstream comparison conservative. *)
let sat_sub a b =
  let d = a - b in
  if a >= 0 && b < 0 && d < 0 then max_int
  else if a < 0 && b >= 0 && d >= 0 then min_int
  else d

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
let max_by f xs = List.fold_left (fun acc x -> max acc (f x)) 0 xs

let ceil_div a b =
  if b <= 0 then invalid_arg "Xutil.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Xutil.ceil_div: negative dividend";
  (a + b - 1) / b

let group_sorted eq xs =
  let rec go acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | x :: rest -> (
        match cur with
        | y :: _ when eq x y -> go acc (x :: cur) rest
        | _ :: _ -> go (List.rev cur :: acc) [ x ] rest
        | [] -> go acc [ x ] rest)
  in
  match xs with [] -> [] | x :: rest -> go [] [ x ] rest

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n xs =
  if n <= 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let array_max arr =
  if Array.length arr = 0 then invalid_arg "Xutil.array_max: empty array";
  Array.fold_left max arr.(0) arr

let binary_search_min lo hi ok =
  if lo > hi then None
  else if not (ok hi) then None
  else
    let rec go lo hi =
      (* Invariant: ok hi holds; forall x < lo, not (ok x) unless x was
         never tested below the initial lo. *)
      if lo >= hi then hi
      else
        let mid = lo + ((hi - lo) / 2) in
        if ok mid then go lo mid else go (mid + 1) hi
    in
    Some (go lo hi)

let timeit f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type gc_stats = {
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let timeit_gc f =
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  ( r,
    dt,
    {
      minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
      major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
    } )

let pp_int_list fmt xs =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       Format.pp_print_int)
    xs
