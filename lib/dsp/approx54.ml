open Dsp_core
module Rat = Dsp_util.Rat

type stats = {
  guesses : int;
  final_target : int;
  delta : Rat.t;
  mu : Rat.t;
  class_sizes : (string * int) list;
  configurations_used : int;
  lp_fallbacks : int;
}

let floor_frac frac scale = Rat.floor (Rat.mul frac (Rat.of_int scale))

(* One bump per binary-search iteration on the guessed optimum H'
   (and one per decision attempt), mirroring [stats.guesses] into the
   shared counter vocabulary of the engine's reports. *)
let c_guesses = Dsp_util.Instr.counter Dsp_util.Instr.Sites.approx54_guesses
let c_attempts = Dsp_util.Instr.counter Dsp_util.Instr.Sites.approx54_attempts

let attempt ?(eps = Rat.make 1 4) ?budget (inst : Instance.t) ~target =
  Dsp_util.Instr.bump c_attempts;
  Dsp_util.Budget.poll_opt budget;
  if target < Instance.lower_bound inst then None
  else begin
    let params = Classify.choose_params inst ~target ~eps in
    let rounding = Rounding.round_heights inst params in
    let rounded = rounding.Rounding.rounded in
    let cls = Classify.classify rounded params in
    (* Budget accounting mirroring the Lemma 12 height bound: the
       large/tall backbone must stay within (1+ε)H' (the rounded
       optimal region), while everything else may additionally use
       the H'/4 restructuring band — the hard cap (5/4+ε)H' that the
       final packing never exceeds. *)
    let b_total =
      max (target + 1)
        (floor_frac Rat.(add (make 5 4) eps) target)
    in
    let b_main = min b_total (target + floor_frac eps target) in
    let b_band = b_total in
    let configurations_used = ref 0 and lp_fallbacks = ref 0 in
    let backbone =
      cls.Classify.large @ cls.Classify.medium_vertical @ cls.Classify.tall
    in
    (* The non-backbone stages: vertical items via the configuration
       LP (Lemma 10) with greedy fallback and overflow into the band,
       then horizontal leveling, then small items into gaps and medium
       items on top (Step 6). *)
    let rest_stages st =
      let place_class items ~budget ~order =
        Budget_fit.place_all_best_fit st items ~budget ~order
      in
      let ok =
        begin
          let boxes = Budget_fit.free_boxes st ~cap:b_band in
          let vertical = cls.Classify.vertical in
          match Config_fill.fill ?budget ~boxes ~items:vertical () with
          | Some r ->
              configurations_used := r.Config_fill.configurations_used;
              List.iter
                (fun { Config_fill.item; start } -> Budget_fit.place st item ~start)
                r.Config_fill.placements;
              List.for_all
                (fun it -> Budget_fit.best_fit st it ~budget:b_band)
                (List.sort Item.compare_by_height_desc r.Config_fill.overflow)
          | None ->
              incr lp_fallbacks;
              place_class vertical ~budget:b_band ~order:Item.compare_by_height_desc
        end
        && place_class cls.Classify.horizontal ~budget:b_band
             ~order:Item.compare_by_width_desc
        && place_class cls.Classify.small ~budget:b_total
             ~order:Item.compare_by_area_desc
        && place_class cls.Classify.medium ~budget:b_total
             ~order:Item.compare_by_height_desc
      in
      if ok then Some (Budget_fit.to_packing st) else None
    in
    (* Greedy pass: best-fit the backbone in a fixed order, then run
       the remaining stages. *)
    let run_pass backbone_order =
      let st = Budget_fit.create rounded in
      if
        Budget_fit.place_all_best_fit st backbone ~budget:b_main
          ~order:backbone_order
      then rest_stages st
      else None
    in
    (* Step 4 proper: enumerate backbone placements (the practical
       analogue of "guess the partition of the optimal packing into
       boxes") and attempt to fill each guess, keeping the best fill
       and discarding guesses whose fill fails.  Candidate starts are
       explored lowest-window-peak first so good partitions are found
       within the node/leaf budget; a fill reaching the guessed
       optimum [target] stops the search. *)
    let exact_backbone_pass () =
      let sorted = List.sort Item.compare_by_height_desc backbone in
      if List.length sorted > 12 then None
      else begin
        let st = Budget_fit.create rounded in
        let width = rounded.Instance.width in
        let nodes = ref 0 and leaves = ref 0 in
        let best = ref None in
        let record pk =
          match !best with
          | Some b when Packing.height b <= Packing.height pk -> ()
          | _ -> best := Some pk
        in
        let exception Stop in
        let rec go prev items =
          incr nodes;
          if !nodes > 200_000 then raise Stop;
          (* Deadline-only poll: these enumeration nodes have their own
             cap above and must not consume the budget's node ticks. *)
          Dsp_util.Budget.poll_opt budget;
          match items with
          | [] ->
              incr leaves;
              (match rest_stages (Budget_fit.copy st) with
              | Some pk ->
                  record pk;
                  if Packing.height pk <= target then raise Stop
              | None -> ());
              if !leaves > 200 then raise Stop
          | (it : Item.t) :: more ->
              let min_start =
                (* identical backbone items in non-decreasing order *)
                match prev with
                | Some (p : Item.t) when p.Item.w = it.Item.w && p.Item.h = it.Item.h
                  ->
                    Budget_fit.start_of st p
                | _ -> 0
              in
              let candidates = ref [] in
              for s = min_start to width - it.Item.w do
                let pk =
                  Profile.peak_in (Budget_fit.profile st) ~start:s ~len:it.Item.w
                in
                if pk + it.Item.h <= b_main then candidates := (pk, s) :: !candidates
              done;
              List.iter
                (fun (_, s) ->
                  Budget_fit.place st it ~start:s;
                  go (Some it) more;
                  Budget_fit.unplace st it)
                (List.sort compare !candidates)
        in
        (match go None sorted with () -> () | exception Stop -> ());
        !best
      end
    in
    let orders =
      [
        Item.compare_by_height_desc;
        Item.compare_by_area_desc;
        Item.compare_by_width_desc;
      ]
    in
    let best_of passes =
      List.fold_left
        (fun acc pass ->
          match (acc, pass ()) with
          | None, r -> r
          | r, None -> r
          | Some a, Some b -> if Packing.height a <= Packing.height b then Some a else Some b)
        None passes
    in
    let greedy_passes = List.map (fun o () -> run_pass o) orders in
    let result =
      match best_of greedy_passes with
      | Some pk when Packing.height pk <= target -> Some pk
      | greedy_best -> (
          (* Greedy did not reach the guessed optimum: spend the
             enumeration budget of Step 4. *)
          match best_of [ exact_backbone_pass ] with
          | None -> greedy_best
          | Some pk -> (
              match greedy_best with
              | Some g when Packing.height g <= Packing.height pk -> Some g
              | _ -> Some pk))
    in
    match result with
    | None -> None
    | Some rounded_pk ->
        let pk = Rounding.restore rounding rounded_pk in
        let stats =
          {
            guesses = 1;
            final_target = target;
            delta = params.Classify.delta;
            mu = params.Classify.mu;
            class_sizes = Classify.class_sizes cls;
            configurations_used = !configurations_used;
            lp_fallbacks = !lp_fallbacks;
          }
        in
        Some (pk, stats)
  end

let solve_with_stats ?eps ?budget (inst : Instance.t) =
  if Instance.n_items inst = 0 then
    ( Packing.make inst [||],
      {
        guesses = 0;
        final_target = 0;
        delta = Rat.zero;
        mu = Rat.zero;
        class_sizes = [];
        configurations_used = 0;
        lp_fallbacks = 0;
      } )
  else begin
    let lb = Instance.lower_bound inst in
    let steinberg = Baselines.steinberg2 inst in
    let ub = max lb (Packing.height steinberg) in
    let guesses = ref 0 in
    (* Keep the minimum-peak packing over every successful guess: the
       peak a guess achieves is not monotone in the guess, so the last
       feasible target is not necessarily the best witness. *)
    let best = ref None in
    let ok t =
      incr guesses;
      Dsp_util.Instr.bump c_guesses;
      match attempt ?eps ?budget inst ~target:t with
      | Some (pk, stats) ->
          (match !best with
          | Some (bpk, _, _) when Packing.height bpk <= Packing.height pk -> ()
          | _ -> best := Some (pk, stats, t));
          true
      | None -> false
    in
    match Dsp_util.Xutil.binary_search_min lb ub ok with
    | Some _ ->
        let pk, stats, t = Option.get !best in
        (pk, { stats with guesses = !guesses; final_target = t })
    | None ->
        (* No guess up to the Steinberg height worked (the greedy
           stages are not monotone in pathological cases): fall back
           to the Steinberg packing itself. *)
        ( steinberg,
          {
            guesses = !guesses;
            final_target = ub;
            delta = Rat.zero;
            mu = Rat.zero;
            class_sizes = [];
            configurations_used = 0;
            lp_fallbacks = 0;
          } )
  end

let solve ?eps ?budget inst = fst (solve_with_stats ?eps ?budget inst)
let height ?eps ?budget inst = Packing.height (solve ?eps ?budget inst)
