open Dsp_core
module Rat = Dsp_util.Rat
module Simplex = Dsp_lp.Simplex

type placement = { item : Item.t; start : int }

type result = {
  placements : placement list;
  overflow : Item.t list;
  configurations_used : int;
}

type config = { counts : int array; total_height : int }

(* Enumerate all multisets of heights with total at most [cap];
   heights processed in order with a bound on the result count. *)
let enumerate_configs heights cap limit =
  let k = Array.length heights in
  let acc = ref [] and n = ref 0 in
  let counts = Array.make k 0 in
  let exception Too_many in
  let rec go i remaining =
    if i = k then begin
      incr n;
      if !n > limit then raise Too_many;
      acc := { counts = Array.copy counts; total_height = cap - remaining } :: !acc
    end
    else begin
      let h = heights.(i) in
      let maxc = remaining / h in
      for c = maxc downto 0 do
        counts.(i) <- c;
        go (i + 1) (remaining - (c * h))
      done;
      counts.(i) <- 0
    end
  in
  match go 0 cap with () -> Some !acc | exception Too_many -> None

let fill ?(max_configs = 4000) ?budget ~boxes ~items () =
  let boxes = Array.of_list boxes in
  let items = List.filter (fun (it : Item.t) -> it.Item.h > 0) items in
  if items = [] then
    Some { placements = []; overflow = []; configurations_used = 0 }
  else begin
    let heights =
      List.map (fun (it : Item.t) -> it.Item.h) items
      |> List.sort_uniq compare |> List.rev |> Array.of_list
    in
    let k = Array.length heights in
    let max_box_h =
      Array.fold_left (fun acc (b : Budget_fit.free_box) -> max acc b.height) 0 boxes
    in
    if k > 15 || Array.length boxes = 0 || max_box_h = 0 then None
    else begin
      match enumerate_configs heights max_box_h max_configs with
      | None -> None
      | Some configs ->
          let configs = Array.of_list configs in
          (* Variables: (box, config) pairs where the config fits. *)
          let vars = ref [] in
          Array.iteri
            (fun j (b : Budget_fit.free_box) ->
              Array.iteri
                (fun c (cfg : config) ->
                  if cfg.total_height <= b.height then vars := (j, c) :: !vars)
                configs)
            boxes;
          let vars = Array.of_list (List.rev !vars) in
          let nv = Array.length vars in
          if nv = 0 || nv > 6000 then None
          else begin
            let nb = Array.length boxes in
            let rows = nb + k in
            let a = Array.make_matrix rows nv Rat.zero in
            let b_vec = Array.make rows Rat.zero in
            Array.iteri
              (fun v (j, c) ->
                a.(j).(v) <- Rat.one;
                Array.iteri
                  (fun i cnt ->
                    if cnt > 0 then a.(nb + i).(v) <- Rat.of_int cnt)
                  configs.(c).counts)
              vars;
            Array.iteri
              (fun j (bx : Budget_fit.free_box) -> b_vec.(j) <- Rat.of_int bx.len)
              boxes;
            let class_width = Array.make k 0 in
            List.iter
              (fun (it : Item.t) ->
                let rec idx i = if heights.(i) = it.Item.h then i else idx (i + 1) in
                let i = idx 0 in
                class_width.(i) <- class_width.(i) + it.Item.w)
              items;
            for i = 0 to k - 1 do
              b_vec.(nb + i) <- Rat.of_int class_width.(i)
            done;
            match Simplex.feasible_point ?budget ~a ~b:b_vec () with
            | None -> None
            | Some x ->
                (* Greedy fill of the basic solution, flooring config
                   widths to integers; queues per height class ordered
                   by decreasing width. *)
                let queues =
                  Array.init k (fun i ->
                      ref
                        (List.filter (fun (it : Item.t) -> it.Item.h = heights.(i)) items
                        |> List.sort Item.compare_by_width_desc))
                in
                let placements = ref [] in
                let cursors =
                  Array.map (fun (bx : Budget_fit.free_box) -> ref bx.x) boxes
                in
                let used_configs = ref 0 in
                Array.iteri
                  (fun v (j, c) ->
                    let wc = Rat.floor x.(v) in
                    if wc > 0 then begin
                      incr used_configs;
                      let x0 = !(cursors.(j)) in
                      cursors.(j) := x0 + wc;
                      Array.iteri
                        (fun i cnt ->
                          for _ = 1 to cnt do
                            (* One lane of height class i across
                               [x0, x0 + wc). *)
                            let used = ref 0 in
                            let continue_lane = ref true in
                            while !continue_lane do
                              match !(queues.(i)) with
                              | [] -> continue_lane := false
                              | it :: rest ->
                                  if !used + it.Item.w <= wc then begin
                                    placements :=
                                      { item = it; start = x0 + !used } :: !placements;
                                    used := !used + it.Item.w;
                                    queues.(i) := rest
                                  end
                                  else continue_lane := false
                            done
                          done)
                        configs.(c).counts
                    end)
                  vars;
                let overflow =
                  Array.to_list queues |> List.concat_map (fun q -> !q)
                in
                Some
                  {
                    placements = !placements;
                    overflow;
                    configurations_used = !used_configs;
                  }
          end
    end
  end
