(** Shared profile-placement primitives for the DSP algorithms.

    All DSP heuristics in this library work on a mutable demand
    profile and place items subject to a peak budget; this module
    collects the placement rules they share. *)

open Dsp_core

type state
(** A partially built packing: instance, profile, chosen starts. *)

val create : Instance.t -> state
val profile : state -> Profile.t
val peak : state -> int

val place : state -> Item.t -> start:int -> unit
(** Unconditional placement (records the start and updates the
    profile). *)

val unplace : state -> Item.t -> unit
(** Remove a previously placed item (for backtracking searches). *)

val copy : state -> state
(** Independent snapshot of the partial packing. *)

val starts : state -> int array
(** Current starts; -1 for unplaced items. *)

val start_of : state -> Item.t -> int
(** Recorded start of one item; -1 if unplaced. *)

val to_packing : state -> Packing.t
(** @raise Invalid_argument if some item is still unplaced. *)

val first_fit : state -> Item.t -> budget:int -> bool
(** Place at the leftmost start keeping the item's window peak within
    [budget]; false if no start qualifies (immediately so when the
    item is wider than the strip).  Runs on the segment-tree kernel's
    skip-ahead descent ({!Dsp_core.Profile.first_fit_start}) instead
    of an O(width * w) scan. *)

val best_fit : state -> Item.t -> budget:int -> bool
(** Place at the start minimizing the window peak (ties to the left);
    false if even the best start exceeds [budget].  O(width) via the
    kernel's sliding-window maximum ({!Dsp_core.Profile.best_start}). *)

val place_all_best_fit :
  state -> Item.t list -> budget:int -> order:(Item.t -> Item.t -> int) -> bool
(** Sort then best-fit each; stops and returns false on the first
    failure (partial placements remain recorded). *)

type free_box = { x : int; len : int; base : int; height : int }
(** A maximal free rectangle sitting on the current profile: columns
    [x, x + len), vertical space [base, base + height) where [base] is
    the profile load (constant on the range) and
    [base + height = cap]. *)

val free_boxes : state -> cap:int -> free_box list
(** Decompose the free space between the profile and the horizontal
    line [cap] into maximal constant-load boxes, left to right.  Boxes
    of zero height are omitted. *)
