(** Lemma 10: configuration-LP placement of vertical items into free
    boxes.

    A configuration is a multiset of (rounded) vertical item heights
    that fits within a box's height.  The LP assigns each box a
    fractional mix of configurations whose widths exactly exhaust the
    box and whose lanes exactly cover the total width of every height
    class; a basic feasible solution has at most
    [#heights + #boxes] non-zero entries, and rounding it down leaves
    at most one overflowing item per lane, which the caller re-places
    separately (the paper parks them in 7(|H_V| + |B_P|) extra boxes
    of height H/4).

    Returns [None] when the configuration space exceeds the
    enumeration cap or the LP is infeasible — callers fall back to
    greedy placement, preserving correctness (the LP only improves
    packing quality). *)

open Dsp_core

type placement = { item : Item.t; start : int }

type result = {
  placements : placement list;
  overflow : Item.t list;  (** items to re-place elsewhere *)
  configurations_used : int;
}

val fill :
  ?max_configs:int ->
  ?budget:Dsp_util.Budget.t ->
  boxes:Budget_fit.free_box list ->
  items:Item.t list ->
  unit ->
  result option
(** All [items] appear exactly once in [placements + overflow].  Every
    placement keeps the per-column sum of placed item heights within
    its box's height, and items never cross box borders. *)
