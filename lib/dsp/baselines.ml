open Dsp_core

type order = By_height | By_area | By_width

let comparator = function
  | By_height -> Item.compare_by_height_desc
  | By_area -> Item.compare_by_area_desc
  | By_width -> Item.compare_by_width_desc

let best_fit_decreasing ?(order = By_height) (inst : Instance.t) =
  let st = Budget_fit.create inst in
  let ok =
    Budget_fit.place_all_best_fit st
      (Array.to_list inst.Instance.items)
      ~budget:max_int ~order:(comparator order)
  in
  assert ok;
  Budget_fit.to_packing st

let try_budget (inst : Instance.t) budget =
  let st = Budget_fit.create inst in
  let sorted =
    Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc
  in
  if List.for_all (fun it -> Budget_fit.first_fit st it ~budget) sorted then
    Some (Budget_fit.to_packing st)
  else None

let first_fit_doubling (inst : Instance.t) =
  let lb = Instance.lower_bound inst in
  (* Find a working budget by doubling from the lower bound... *)
  let rec grow b = match try_budget inst b with Some pk -> (b, pk) | None -> grow (2 * b) in
  let hi, hi_pk = grow (max 1 lb) in
  (* ... then binary search the smallest working budget. *)
  let best = ref hi_pk in
  let ok b =
    match try_budget inst b with
    | Some pk ->
        best := pk;
        true
    | None -> false
  in
  ignore (Dsp_util.Xutil.binary_search_min lb hi ok);
  !best

let steinberg2 inst = Rect_packing.to_dsp (Dsp_sp.Steinberg.pack inst)
let lpt inst = best_fit_decreasing ~order:By_width inst
