(** Baseline DSP algorithms from the related-work lineage.

    - {!best_fit_decreasing}: sort by height (area, width) descending
      and put each item where the profile is lowest — the natural
      greedy, in the spirit of Ranjan et al.'s first-fit algorithms.
    - {!first_fit_doubling}: Yaw et al. style budget first fit — try a
      peak budget, first-fit every item left to right, double the
      budget on failure; returns the first fully successful packing,
      then binary-searches the budget down between the last failure
      and the success.
    - {!steinberg2}: Steinberg's classical packing reinterpreted as a
      DSP solution (forget the y coordinates), the paper's source of
      the 2·OPT upper bound.
    - {!lpt}: longest (widest) processing time first; the natural
      translation of the scheduling heuristic. *)

open Dsp_core

type order = By_height | By_area | By_width

val best_fit_decreasing : ?order:order -> Instance.t -> Packing.t
val first_fit_doubling : Instance.t -> Packing.t
val steinberg2 : Instance.t -> Packing.t
val lpt : Instance.t -> Packing.t

(** The old [all] table of named algorithms is gone: the solver
    registry ([Dsp_engine.Registry], [lib/engine]) is the single
    source of named solvers; [Registry.filter ~family:Baseline ()] is
    the equivalent view. *)
