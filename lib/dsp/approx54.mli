(** The (5/4+ε) pseudo-polynomial DSP algorithm (Theorem 5).

    Faithful skeleton of the paper's seven steps:

    + Step 1 — lower bound from area/height/column arguments, upper
      bound from the Steinberg packing (≤ 2·OPT).
    + Step 2 — binary search on the guessed optimum H' (the
      Hochbaum–Shmoys dual-approximation frame).
    + Step 3 — Lemma 2 δ/μ selection, Lemma 3 height rounding,
      classification into L/T/V/Mv/H/S/M ({!Classify}, {!Rounding}).
    + Steps 4–5 — structured placement: the O_ε(1)-many large and
      medium-vertical items first; tall items into the bottom
      region; vertical items into the free boxes of the resulting
      profile via the Lemma 10 configuration LP ({!Config_fill}),
      overflow re-placed into the +H'/4 band that Lemmas 9/12
      reserve; horizontal items leveled into the remaining free
      space.
    + Step 6 — small items into leftover gaps, then the discarded
      medium items on top (NFDH/best-fit bands, Lemmas 13/14).
    + Step 7 — return the packing for the smallest feasible H'.

    Substitution (DESIGN.md §3): Step 4's exhaustive guessing of the
    optimal box partition is replaced by the deterministic
    construction above — same per-step code paths, constants that fit
    in a computer.  Consequently the (5/4+ε) ratio is *measured*
    (experiment E8) rather than inherited from the paper's proof; the
    per-class peak budgets below mirror the proof's accounting
    ((1+2ε)H' for the main region, +H'/4 for the tall/vertical
    restructuring band, +O(ε)H' for medium and leftovers). *)

open Dsp_core
module Rat = Dsp_util.Rat

type stats = {
  guesses : int;  (** binary-search iterations *)
  final_target : int;  (** smallest feasible H' *)
  delta : Rat.t;
  mu : Rat.t;
  class_sizes : (string * int) list;
  configurations_used : int;  (** non-zero configuration-LP variables *)
  lp_fallbacks : int;  (** vertical fillings that fell back to greedy *)
}

val attempt :
  ?eps:Rat.t ->
  ?budget:Dsp_util.Budget.t ->
  Instance.t ->
  target:int ->
  (Packing.t * stats) option
(** One decision round at guess [target]: [Some] iff every class fit
    within its budget.  Default ε = 1/4.  The optional [budget] is
    polled (deadline only) in the backbone enumeration and the
    configuration-LP pivots; {!Dsp_util.Budget.Expired} escapes to the
    caller. *)

val solve_with_stats :
  ?eps:Rat.t -> ?budget:Dsp_util.Budget.t -> Instance.t -> Packing.t * stats

val solve : ?eps:Rat.t -> ?budget:Dsp_util.Budget.t -> Instance.t -> Packing.t
val height : ?eps:Rat.t -> ?budget:Dsp_util.Budget.t -> Instance.t -> int
