open Dsp_core

type state = { inst : Instance.t; profile : Profile.t; starts : int array }

(* Per-probe counters: a probe is one placement attempt (successful or
   not), the unit the engine's reports aggregate. *)
let c_first_fit = Dsp_util.Instr.counter Dsp_util.Instr.Sites.budget_fit_first_fit_probes
let c_best_fit = Dsp_util.Instr.counter Dsp_util.Instr.Sites.budget_fit_best_fit_probes

let create (inst : Instance.t) =
  {
    inst;
    profile = Profile.create inst.Instance.width;
    starts = Array.make (Instance.n_items inst) (-1);
  }

let profile t = t.profile
let peak t = Profile.peak t.profile

let place t (it : Item.t) ~start =
  if t.starts.(it.id) >= 0 then invalid_arg "Budget_fit.place: item already placed";
  Profile.add_item t.profile it ~start;
  t.starts.(it.id) <- start

let unplace t (it : Item.t) =
  let s = t.starts.(it.id) in
  if s < 0 then invalid_arg "Budget_fit.unplace: item not placed";
  Profile.remove_item t.profile it ~start:s;
  t.starts.(it.id) <- -1

let copy t =
  { inst = t.inst; profile = Profile.copy t.profile; starts = Array.copy t.starts }

let starts t = Array.copy t.starts
let start_of t (it : Item.t) = t.starts.(it.id)

let to_packing t =
  Array.iteri
    (fun i s ->
      if s < 0 then
        invalid_arg (Printf.sprintf "Budget_fit.to_packing: item %d unplaced" i))
    t.starts;
  Packing.make t.inst t.starts

let first_fit t (it : Item.t) ~budget =
  Dsp_util.Instr.bump c_first_fit;
  if it.w > t.inst.Instance.width then false
  else
    match Profile.first_fit_start t.profile ~len:it.w ~height:it.h ~budget with
    | Some s ->
        place t it ~start:s;
        true
    | None -> false

let best_fit t (it : Item.t) ~budget =
  Dsp_util.Instr.bump c_best_fit;
  if it.w > t.inst.Instance.width then false
  else
    match Profile.best_start t.profile ~len:it.w with
    | Some (s, p) when p + it.h <= budget ->
        place t it ~start:s;
        true
    | _ -> false

let place_all_best_fit t items ~budget ~order =
  let sorted = List.sort order items in
  List.for_all (fun it -> best_fit t it ~budget) sorted

type free_box = { x : int; len : int; base : int; height : int }

let free_boxes t ~cap =
  let width = t.inst.Instance.width in
  let loads = Profile.to_array t.profile in
  let boxes = ref [] in
  let run_start = ref 0 in
  let flush until =
    if until > !run_start then begin
      let base = loads.(!run_start) in
      if base < cap then
        boxes :=
          { x = !run_start; len = until - !run_start; base; height = cap - base }
          :: !boxes
    end;
    run_start := until
  in
  for x = 1 to width - 1 do
    if loads.(x) <> loads.(!run_start) then flush x
  done;
  flush width;
  List.rev !boxes
