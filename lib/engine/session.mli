(** Incremental solve sessions: online DSP with pluggable placement
    policies and bounded migration.

    A session owns a live {!Dsp_core.Profile} over a strip, the set of
    currently-placed items, and an event log.  Items {!arrive} one at
    a time and are placed immediately by the session's policy — the
    online setting: no knowledge of future events — and may later
    {!depart}, freeing their demand.  The objective is the peak the
    profile ever reaches, measured against offline yardsticks by the
    [online] bench experiment.

    Policies are first-class values; the built-ins are incremental
    first-fit, incremental best-fit ({!Dsp_core.Profile.best_start}),
    and a bounded-migration repair policy that may re-place at most
    [k] already-placed items per arrival.  Migration trials run inside
    kernel checkpoints ({!Dsp_core.Profile.checkpoint}), so an
    abandoned trial costs O(updates tried), never a full profile copy.

    Sessions are single-domain values, like the budgets that meter
    them; create one per domain. *)

open Dsp_core

type t

(** What a policy decided for one arrival: the start of the new item
    and the already-placed items it moved ([(id, new_start)] pairs, in
    the order the moves were committed). *)
type placement = { start : int; migrations : (int * int) list }

(** A placement policy.  [place ~budget session item] must leave
    [profile session] equal to its pre-call state plus [item] placed
    at the returned start and each listed migration applied, moving
    migrated items in the item table as it goes ({!set_start}); the
    session itself only records the new item and the log entry.
    Policies may explore transactionally via
    {!Dsp_core.Profile.checkpoint} / [rollback], and long repair loops
    must poll [budget]. *)
type policy = {
  pname : string;
  pdoc : string;
  place : budget:Dsp_util.Budget.t option -> t -> Item.t -> placement;
}

val first_fit : policy
(** Leftmost start that keeps the new peak at [max peak h] (the lower
    bound any placement of this arrival must reach); falls back to the
    best window when none exists. *)

val best_fit : policy
(** Leftmost start minimizing the new item's window peak
    ({!Dsp_core.Profile.best_start}). *)

val bounded_migration : k:int -> policy
(** Best-fit placement, then up to [k] repair moves: while the global
    peak can be lowered, pick a live item under the peak column,
    remove it and re-place it first-fit under [peak - 1], keeping the
    move only when the global peak strictly drops.  [k = 0] is exactly
    {!best_fit}. *)

val policies : k:int -> policy list
(** The built-in policies, with [k] for the migration policy. *)

val find_policy : ?k:int -> string -> policy option
(** Look up ["first-fit"], ["best-fit"] or ["migrate"] (with [?k],
    default 1) — the CLI/bench vocabulary. *)

(** {2 Session lifecycle} *)

val create : ?policy:policy -> width:int -> unit -> t
(** Fresh empty session ([policy] defaults to {!best_fit}). *)

val reset : t -> unit
(** Forget every item and event, reusing the allocated profile
    storage ({!Dsp_core.Profile.reset}). *)

val width : t -> int
val policy : t -> policy

val arrive : ?budget:Dsp_util.Budget.t -> t -> w:int -> h:int -> int
(** Place a new item with the session's policy and return its id (ids
    count arrivals from 0).  Raises [Invalid_argument] on dimensions
    outside the strip, mirroring {!Dsp_instance.Io}'s checks.  May
    raise [Dsp_util.Budget.Expired] from a migration loop. *)

(** Why a departure was refused: the id was never handed out by
    {!arrive}, or its item already departed.  Stale ids are expected
    input at the service boundary (a client may retry a departure after
    a reconnect), so they get a typed result instead of an exception. *)
type depart_error = Never_arrived of int | Already_departed of int

val depart_error_to_string : depart_error -> string

val depart_result : t -> int -> (int, depart_error) result
(** Remove a live item by id; [Ok start] gives the start the item
    occupied.  Total: every int is a valid argument. *)

val depart : t -> int -> unit
(** {!depart_result}, raising [Invalid_argument] (with the
    {!depart_error_to_string} message) on a stale id — the in-process
    convenience used by trace replay, where a stale id means a
    malformed trace. *)

val peak : t -> int
(** Current peak of the live profile. *)

val profile : t -> Profile.t
(** The live profile (shared, mutable — treat as read-only outside
    policies). *)

val snapshot : t -> Packing.t
(** A validated packing of the currently-live items (ids re-numbered
    densely in arrival order).  O(live items). *)

val live_items : t -> (int * Item.t * int) list
(** [(id, item, start)] for every live item, in arrival order. *)

val start_of : t -> int -> int option
(** Start of a live item, [None] once departed / never arrived. *)

val set_start : t -> int -> int -> unit
(** Move a live item in the item table — policy-side API for committed
    migrations; the caller has already moved its demand in the
    profile.  Raises [Invalid_argument] on a non-live id. *)

(** {2 Trace replay} *)

val apply : ?budget:Dsp_util.Budget.t -> t -> Dsp_instance.Trace.event -> unit
(** Feed one trace event to the session ({!arrive} or {!depart}). *)

val replay :
  ?policy:policy -> ?budget:Dsp_util.Budget.t -> Dsp_instance.Trace.t -> t
(** Run a whole trace through a fresh session. *)

val restore :
  ?policy:policy ->
  width:int ->
  n_arrived:int ->
  n_migrations:int ->
  live:(int * int * int * int) list ->
  unit ->
  t
(** Rebuild a session from snapshot state — the WAL's compaction path.
    [live] lists [(id, w, h, start)] for every live item; placements
    are applied verbatim (no policy involved), so the restored profile
    equals the snapshotted one exactly.  Ids in [\[0, n_arrived)] not
    listed live are marked departed; the event log restarts empty.
    Raises [Invalid_argument] on out-of-range ids, duplicate ids,
    non-positive dimensions, or a placement overflowing the strip. *)

(** {2 Introspection} *)

type entry =
  | Arrived of { id : int; start : int; migrations : (int * int) list }
  | Departed of { id : int; start : int }

val log : t -> entry list
(** Chronological event log, including the migrations each arrival
    triggered. *)

type stats = {
  arrivals : int;
  departures : int;
  live : int;
  migrations : int;  (** committed repair moves, all arrivals *)
  peak_now : int;
}

val stats : t -> stats
