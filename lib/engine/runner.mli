(** Fault-tolerant solver execution: typed outcomes and declarative
    fallback chains over the {!Registry}.

    {!Solver.run} answers "what did this solver produce"; [Runner]
    answers the operational question "get me a validated packing
    within this deadline, no matter what".  {!run_one} classifies
    every way a solve can go wrong — deadline, node budget, escaped
    exception (including {!Dsp_util.Fault.Injected} faults), invalid
    result — into a typed {!failure} that still carries the partial
    {!Dsp_util.Instr} deltas and elapsed time, so crashed solves
    remain observable.  {!solve} runs a fallback chain (e.g.
    [exact-bb -> approx54 -> bfd-height]), giving each stage a slice
    of the remaining deadline, and is total: the final heuristic
    stages cannot time out (no cancellation checkpoints) or fail
    validation without raising, so a validated report always comes
    back, annotated with the full failure provenance of the stages
    that fell through. *)

open Dsp_core

type failure_kind =
  | Timeout  (** cooperative deadline cancellation fired *)
  | Budget_exhausted of string  (** node budget ran out (native or budget cap) *)
  | Solver_error of string  (** an exception escaped the solver *)
  | Invalid_result of string  (** {!Report.make} rejected the packing *)

type failure = {
  solver : string;
  kind : failure_kind;
  seconds : float;  (** elapsed up to the failure *)
  counters : (string * int) list;
      (** partial {!Dsp_util.Instr} deltas — work done before dying *)
}

type outcome = (Report.t, failure) result

val kind_name : failure_kind -> string
(** ["timeout"] / ["budget"] / ["error"] / ["invalid"]. *)

val pp_failure : Format.formatter -> failure -> unit

val run_one :
  ?timeout_ms:int -> ?node_budget:int -> Solver.t -> Instance.t -> outcome
(** One budgeted solve with the full outcome taxonomy.  Never raises
    for solver-induced reasons: {!Dsp_util.Budget.Expired},
    {!Solver.Budget_exhausted}, and arbitrary solver exceptions all
    map to [Error].  A pending {!Dsp_util.Fault} corruption is applied
    to the returned packing before validation, which then rejects it
    ([Invalid_result]) — proving the validation boundary holds. *)

type resolution = {
  report : Report.t;
  winner : string;  (** solver that produced [report] *)
  failures : failure list;  (** stages that fell through, in order *)
  safety_net : bool;
      (** [report] came from the implicit final heuristic, not the
          chain *)
}

val solve :
  ?timeout_ms:int ->
  ?node_budget:int ->
  ?chain:Solver.t list ->
  Instance.t ->
  resolution
(** Run the fallback chain (default {!default_chain}) under one
    overall deadline.  Stage [i] of the [k] remaining gets
    [remaining/(k - i)] of the deadline (equal slices of whatever is
    left, so an early finisher donates its unused time downstream).
    If every stage fails, a last-resort un-budgeted ["bfd-height"]
    solve (polynomial, checkpoint-free — it cannot time out) makes the
    function total.
    @raise Invalid_argument on an empty [chain]. *)

val default_chain : unit -> Solver.t list
(** [exact-bb -> approx54 -> bfd-height]: exact within the budget,
    else the (5/4+ε) approximation, else the greedy baseline. *)

val parse_chain : string -> (Solver.t list, string) result
(** Comma-separated registry names, e.g.
    ["exact-bb,approx54,bfd-height"].  Unknown names are an [Error]
    listing the registry. *)

val chain_to_string : Solver.t list -> string
