(** Fault-tolerant solver execution: typed outcomes, declarative
    fallback chains, and parallel racing over the {!Registry}.

    {!Solver.run} answers "what did this solver produce"; [Runner]
    answers the operational question "get me a validated packing
    within this deadline, no matter what".  {!run_one} classifies
    every way a solve can go wrong — deadline, node budget,
    cooperative cancellation, escaped exception (including
    {!Dsp_util.Fault.Injected} faults), invalid result — into a typed
    {!failure} that still carries the partial {!Dsp_util.Instr} deltas
    and elapsed time, so crashed solves remain observable.  {!solve}
    runs a fallback chain (e.g. [exact-bb -> approx54 -> bfd-height])
    sequentially, giving each stage a slice of the remaining deadline;
    {!race} runs the same chain concurrently on a domain pool under
    one shared wall-clock deadline — the first stage to produce a
    {e validated} report wins and the losers are cancelled
    cooperatively.  Both are total: the final heuristic safety net
    cannot time out or fail validation without raising, so a validated
    report always comes back, annotated with the full failure
    provenance of the stages that fell through. *)

open Dsp_core

type failure_kind =
  | Timeout  (** cooperative deadline cancellation fired *)
  | Budget_exhausted of string  (** node budget ran out (native or budget cap) *)
  | Solver_error of string  (** an exception escaped the solver *)
  | Invalid_result of string  (** {!Report.make} rejected the packing *)
  | Cancelled
      (** the shared cancel flag was flipped — a racing sibling won *)

type failure = {
  solver : string;
  kind : failure_kind;
  seconds : float;  (** elapsed up to the failure *)
  counters : (string * int) list;
      (** partial {!Dsp_util.Instr} deltas — work done before dying *)
}

type outcome = (Report.t, failure) result

val kind_name : failure_kind -> string
(** ["timeout"] / ["budget"] / ["error"] / ["invalid"] /
    ["cancelled"]. *)

val pp_failure : Format.formatter -> failure -> unit

val run_one :
  ?timeout_ms:int ->
  ?node_budget:int ->
  ?cancel:bool Atomic.t ->
  Solver.t ->
  Instance.t ->
  outcome
(** One budgeted solve with the full outcome taxonomy.  Never raises
    for solver-induced reasons: {!Dsp_util.Budget.Expired},
    {!Solver.Budget_exhausted}, and arbitrary solver exceptions all
    map to [Error].  A pending {!Dsp_util.Fault} corruption is applied
    to the returned packing before validation, which then rejects it
    ([Invalid_result]) — proving the validation boundary holds.  The
    optional [cancel] flag threads into the solve's budget: flipping
    it (from any domain) surfaces as a [Cancelled] failure at the next
    checkpoint — this is how {!race} reels in its losers. *)

type resolution = {
  report : Report.t;
  winner : string;  (** solver that produced [report] *)
  failures : failure list;  (** stages that fell through, in order *)
  safety_net : bool;
      (** [report] came from the implicit final heuristic, not the
          chain *)
}

val solve :
  ?timeout_ms:int ->
  ?node_budget:int ->
  ?chain:Solver.t list ->
  ?weights:float list ->
  Instance.t ->
  resolution
(** Run the fallback chain (default {!default_chain}) sequentially
    under one overall deadline.  Each stage gets a share of whatever
    deadline remains, proportional to its weight among the stages
    still to run (so an early finisher donates its unused time
    downstream — a policy that is only correct because the stages run
    one after another; the concurrent path is {!race}).  [weights]
    defaults to all-equal, i.e. the historic [remaining/(k - i)]
    split; {!Tuner.plan} supplies feature-driven uneven ones.  If
    every stage fails, a last-resort un-budgeted ["bfd-height"] solve
    (polynomial, checkpoint-free — it cannot time out) makes the
    function total.
    @raise Invalid_argument on an empty [chain], or when [weights] is
    given with a different length than [chain] or a non-positive
    entry. *)

val race :
  ?timeout_ms:int ->
  ?node_budget:int ->
  ?chain:Solver.t list ->
  pool:Dsp_util.Pool.t ->
  Instance.t ->
  resolution
(** Run the chain concurrently on [pool] under a {e single} shared
    wall-clock deadline — every racer gets whatever truly remains of
    [timeout_ms] when a worker picks it up, never a per-stage slice.
    The first solver to return a {e validated} report wins
    ([resolution.winner]); the rest are cancelled cooperatively
    through the shared budget flag and show up in
    [resolution.failures] as [Cancelled] (or whatever genuinely
    failed first).  Pool workers absorb all task exceptions, so a
    poisoned stage cannot hang or crash the race.  If no stage
    validates, the same safety net as {!solve} applies.  The winner is
    timing-dependent by nature (the answer is always a validated
    report, but which stage produced it is not deterministic), and a
    raced report's counter deltas measure the whole portfolio's
    concurrent work, not just the winner's.
    @raise Invalid_argument on an empty [chain]. *)

val default_chain : unit -> Solver.t list
(** [exact-bb -> approx54 -> bfd-height]: exact within the budget,
    else the (5/4+ε) approximation, else the greedy baseline. *)

val parse_chain : string -> (Solver.t list, string) result
(** Comma-separated registry names, e.g.
    ["exact-bb,approx54,bfd-height"].  Unknown names are an [Error]
    listing the registry. *)

val chain_to_string : Solver.t list -> string
