open Dsp_core

type failure_kind =
  | Timeout
  | Budget_exhausted of string
  | Solver_error of string
  | Invalid_result of string
  | Cancelled

type failure = {
  solver : string;
  kind : failure_kind;
  seconds : float;
  counters : (string * int) list;
}

type outcome = (Report.t, failure) result

let kind_name = function
  | Timeout -> "timeout"
  | Budget_exhausted _ -> "budget"
  | Solver_error _ -> "error"
  | Invalid_result _ -> "invalid"
  | Cancelled -> "cancelled"

let kind_detail = function
  | Timeout | Cancelled -> None
  | Budget_exhausted m | Solver_error m | Invalid_result m -> Some m

let pp_failure fmt f =
  Format.fprintf fmt "%s: %s" f.solver (kind_name f.kind);
  (match kind_detail f.kind with
  | Some m -> Format.fprintf fmt " (%s)" m
  | None -> ());
  Format.fprintf fmt " after %.1f ms" (f.seconds *. 1000.)

(* A fired Corrupt fault asks us to hand Report validation a packing
   that cannot be right.  Rebuilding the same starts on a
   one-column-wider instance always trips the instance-identity check
   — even for empty packings, where height-scaling tricks would
   compare equal. *)
let corrupt_packing (pk : Packing.t) =
  let inst = Packing.instance pk in
  let wider =
    Instance.make ~width:(inst.Instance.width + 1)
      (Array.copy inst.Instance.items)
  in
  Packing.make wider (Packing.starts pk)

let run_one ?timeout_ms ?(node_budget = Solver.default_node_budget) ?cancel
    (s : Solver.t) inst =
  let budget = Dsp_util.Budget.create ?timeout_ms ~nodes:node_budget ?cancel () in
  let before = Dsp_util.Instr.snapshot () in
  let finish_counters () =
    Dsp_util.Instr.delta ~before ~after:(Dsp_util.Instr.snapshot ())
  in
  let fail kind =
    Error
      {
        solver = s.Solver.name;
        kind;
        seconds = Dsp_util.Budget.elapsed budget;
        counters = finish_counters ();
      }
  in
  match s.Solver.solve ~budget inst with
  | packing ->
      let packing =
        if Dsp_util.Fault.take_corruption () then corrupt_packing packing
        else packing
      in
      let seconds = Dsp_util.Budget.elapsed budget in
      let counters = finish_counters () in
      (match
         Report.make ~solver:s.Solver.name ~instance:inst ~packing ~seconds
           ~counters
       with
      | Ok r -> Ok r
      | Error msg -> fail (Invalid_result msg))
  | exception Dsp_util.Budget.Expired Dsp_util.Budget.Deadline -> fail Timeout
  | exception Dsp_util.Budget.Expired Dsp_util.Budget.Nodes ->
      fail (Budget_exhausted (Printf.sprintf "budget node cap %d" node_budget))
  | exception Dsp_util.Budget.Expired Dsp_util.Budget.Cancelled -> fail Cancelled
  | exception Solver.Budget_exhausted msg -> fail (Budget_exhausted msg)
  | exception Dsp_util.Fault.Injected msg -> fail (Solver_error msg)
  | exception e -> fail (Solver_error (Printexc.to_string e))

type resolution = {
  report : Report.t;
  winner : string;
  failures : failure list;
  safety_net : bool;
}

let default_chain () =
  List.map Registry.find_exn [ "exact-bb"; "approx54"; "bfd-height" ]

let parse_chain spec =
  let names =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then Error "empty fallback chain"
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Registry.find n with
          | Some s -> resolve (s :: acc) rest
          | None ->
              Error
                (Printf.sprintf "unknown solver %S in chain (known: %s)" n
                   (String.concat ", " (Registry.names ()))))
    in
    resolve [] names

let chain_to_string chain =
  String.concat "," (List.map (fun (s : Solver.t) -> s.Solver.name) chain)

(* Safety net: an un-budgeted greedy solve.  bfd-height is polynomial
   with no cancellation checkpoints, so this cannot time out; if even
   it fails, that is an engine bug worth a loud crash. *)
let safety_net_resolution failures inst =
  let bfd = Registry.find_exn "bfd-height" in
  match run_one bfd inst with
  | Ok report ->
      { report; winner = bfd.Solver.name; failures; safety_net = true }
  | Error f ->
      failwith
        (Format.asprintf "Runner: safety net failed: %a" pp_failure f)

let solve ?timeout_ms ?node_budget ?chain ?weights inst =
  let chain = match chain with Some c -> c | None -> default_chain () in
  if chain = [] then invalid_arg "Runner.solve: empty chain";
  let weights =
    match weights with
    | None -> List.map (fun _ -> 1.0) chain
    | Some ws ->
        if List.length ws <> List.length chain then
          invalid_arg "Runner.solve: one weight per chain stage required";
        if List.exists (fun w -> not (Float.is_finite w) || w <= 0.) ws then
          invalid_arg "Runner.solve: weights must be finite and positive";
        ws
  in
  let overall = Dsp_util.Budget.create ?timeout_ms () in
  (* Weighted slices of the remaining deadline: with the stages still
     to run carrying weights w :: rest, the next stage gets the
     fraction w / (w + sum rest) of whatever is left, so time a stage
     leaves unused flows to the stages after it.  The default weights
     are all-equal, reproducing the historic remaining/(k-i) split;
     the tuner supplies uneven ones.  (This slicing is only correct
     because the stages run one after another — the racing path below
     shares the single wall-clock deadline instead.) *)
  let stage_timeout w rest_ws =
    match Dsp_util.Budget.remaining_ms overall with
    | None -> None
    | Some ms ->
        let total = List.fold_left ( +. ) w rest_ws in
        Some (max 1 (int_of_float (ms *. w /. total)))
  in
  let rec go failures chain weights =
    match (chain, weights) with
    | [], _ | _, [] -> safety_net_resolution (List.rev failures) inst
    | s :: rest, w :: rest_ws ->
        let timeout_ms = stage_timeout w rest_ws in
        (match run_one ?timeout_ms ?node_budget s inst with
        | Ok report ->
            {
              report;
              winner = s.Solver.name;
              failures = List.rev failures;
              safety_net = false;
            }
        | Error f -> go (f :: failures) rest rest_ws)
  in
  go [] chain weights

let race ?timeout_ms ?node_budget ?chain ~pool inst =
  let chain = match chain with Some c -> c | None -> default_chain () in
  if chain = [] then invalid_arg "Runner.race: empty chain";
  (* One wall-clock deadline shared by every racer: stages run
     concurrently, so per-stage slicing (the sequential path's
     policy) would be wrong — it would hand each racer only a
     fraction of the time the user granted.  The absolute deadline is
     fixed here, and each stage computes its remaining milliseconds
     when a worker actually picks it up (a stage queued behind busy
     workers must not restart the clock). *)
  let overall = Dsp_util.Budget.create ?timeout_ms () in
  let cancel = Atomic.make false in
  let win_m = Mutex.create () in
  let winner = ref None in
  let task (s : Solver.t) () =
    if Atomic.get cancel then
      Error { solver = s.Solver.name; kind = Cancelled; seconds = 0.; counters = [] }
    else begin
      let timeout_ms =
        Option.map
          (fun ms -> max 1 (int_of_float ms))
          (Dsp_util.Budget.remaining_ms overall)
      in
      let outcome = run_one ?timeout_ms ?node_budget ~cancel s inst in
      (match outcome with
      | Ok r ->
          (* First *validated* report wins; the losers' budgets are
             cancelled and they unwind at their next checkpoint. *)
          Mutex.lock win_m;
          if !winner = None then begin
            winner := Some (s.Solver.name, r);
            Atomic.set cancel true
          end;
          Mutex.unlock win_m
      | Error _ -> ());
      outcome
    end
  in
  let outcomes = Dsp_util.Pool.run_all pool (List.map task chain) in
  let failures =
    List.filter_map
      (function
        | Ok (Error f) -> Some f
        | Ok (Ok _) -> None
        | Error e ->
            (* A task exception would mean run_one's taxonomy leaked;
               surface it as a failure rather than crashing the race. *)
            Some
              {
                solver = "race";
                kind = Solver_error (Printexc.to_string e);
                seconds = 0.;
                counters = [];
              })
      outcomes
  in
  match !winner with
  | Some (name, report) ->
      { report; winner = name; failures; safety_net = false }
  | None -> safety_net_resolution failures inst
