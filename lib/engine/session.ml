(* Incremental solve sessions.  The profile is the only geometric
   state; the slots table maps arrival ids to live placements, so
   departures and migrations are O(1) table updates plus O(log width)
   kernel updates.  Bounded-migration trials run inside kernel
   checkpoints: an abandoned trial is undone by replaying its journal,
   never by copying the profile. *)

open Dsp_core

let c_arrivals = Dsp_util.Instr.counter Dsp_util.Instr.Sites.session_arrivals

let c_departures =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.session_departures

let c_migrations =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.session_migrations

let c_trials =
  Dsp_util.Instr.counter Dsp_util.Instr.Sites.session_migration_trials

type slot = Empty | Live of Item.t * int | Gone

type entry =
  | Arrived of { id : int; start : int; migrations : (int * int) list }
  | Departed of { id : int; start : int }

type t = {
  swidth : int;
  sprofile : Profile.t;
  mutable slots : slot array;
  mutable n_arrived : int;
  mutable n_live : int;
  mutable n_departed : int;
  mutable n_migrations : int;
  mutable entries : entry list; (* newest first *)
  mutable spolicy : policy;
}

and placement = { start : int; migrations : (int * int) list }

and policy = {
  pname : string;
  pdoc : string;
  place : budget:Dsp_util.Budget.t option -> t -> Item.t -> placement;
}

let width t = t.swidth
let policy t = t.spolicy
let profile t = t.sprofile
let peak t = Profile.peak t.sprofile

let start_of t id =
  if id < 0 || id >= t.n_arrived then None
  else match t.slots.(id) with Live (_, s) -> Some s | Empty | Gone -> None

let set_start t id s =
  if id < 0 || id >= t.n_arrived then
    invalid_arg "Session.set_start: unknown id";
  match t.slots.(id) with
  | Live (it, _) -> t.slots.(id) <- Live (it, s)
  | Empty | Gone -> invalid_arg "Session.set_start: item not live"

let live_items t =
  let acc = ref [] in
  for id = t.n_arrived - 1 downto 0 do
    match t.slots.(id) with
    | Live (it, s) -> acc := (id, it, s) :: !acc
    | Empty | Gone -> ()
  done;
  !acc

(* ----- built-in policies -------------------------------------------- *)

(* Leftmost window whose peak is minimal; total because items are
   validated against the strip width before placement. *)
let best_start_exn p (it : Item.t) =
  match Profile.best_start p ~len:it.w with
  | Some (s, _) -> s
  | None -> invalid_arg "Session: item wider than the strip"

let first_fit =
  {
    pname = "first-fit";
    pdoc =
      "leftmost start keeping the peak at max(current peak, item height); \
       best window as fallback";
    place =
      (fun ~budget:_ t it ->
        let p = t.sprofile in
        let limit = max (Profile.peak p) it.h in
        let s =
          match Profile.first_fit_start p ~len:it.w ~height:it.h ~budget:limit with
          | Some s -> s
          | None -> best_start_exn p it
        in
        Profile.add_item p it ~start:s;
        { start = s; migrations = [] });
  }

let best_fit_place ~budget:_ t (it : Item.t) =
  let p = t.sprofile in
  let s = best_start_exn p it in
  Profile.add_item p it ~start:s;
  { start = s; migrations = [] }

let best_fit =
  {
    pname = "best-fit";
    pdoc = "leftmost start minimizing the item's window peak (best_start)";
    place = best_fit_place;
  }

(* Live items whose span covers [col], the tallest first: removing a
   tall culprit from the peak column is the move most likely to lower
   the global peak. *)
let covering t col =
  let acc = ref [] in
  for id = t.n_arrived - 1 downto 0 do
    match t.slots.(id) with
    | Live (it, s) when s <= col && col < s + it.Item.w ->
        acc := (id, it, s) :: !acc
    | _ -> ()
  done;
  List.sort
    (fun (_, (a : Item.t), _) (_, (b : Item.t), _) -> compare b.h a.h)
    !acc

(* One repair move: find a live item under the peak column that can be
   re-placed first-fit with its window peak under [pk - 1], and keep
   the move iff the global peak strictly drops.  Trials are
   transactional (kernel checkpoint), so a rejected candidate costs
   only its own updates. *)
let try_repair t pk =
  let p = t.sprofile in
  match Profile.peak_column p with
  | None -> None
  | Some col ->
      let rec attempt = function
        | [] -> None
        | (id, (it : Item.t), cur) :: rest -> (
            Dsp_util.Instr.bump c_trials;
            let mark = Profile.checkpoint p in
            Profile.remove_item p it ~start:cur;
            match Profile.first_fit_start p ~len:it.w ~height:it.h ~budget:(pk - 1) with
            | Some dest -> (
                Profile.add_item p it ~start:dest;
                if Profile.peak p < pk then begin
                  Profile.commit p mark;
                  set_start t id dest;
                  Dsp_util.Instr.bump c_migrations;
                  Some (id, dest)
                end
                else begin
                  Profile.rollback p mark;
                  attempt rest
                end)
            | None ->
                Profile.rollback p mark;
                attempt rest)
      in
      attempt (covering t col)

let bounded_migration ~k =
  if k < 0 then invalid_arg "Session.bounded_migration: k must be >= 0";
  {
    pname = Printf.sprintf "migrate-%d" k;
    pdoc =
      Printf.sprintf
        "best-fit, then up to %d repair moves of placed items while the peak \
         improves"
        k;
    place =
      (fun ~budget t it ->
        let pl = best_fit_place ~budget t it in
        let migs = ref [] and n = ref 0 and improving = ref true in
        while !n < k && !improving do
          Dsp_util.Budget.poll_opt budget;
          let pk = Profile.peak t.sprofile in
          if pk <= it.h then improving := false
          else
            match try_repair t pk with
            | Some mv ->
                migs := mv :: !migs;
                incr n
            | None -> improving := false
        done;
        { pl with migrations = List.rev !migs });
  }

let policies ~k = [ first_fit; best_fit; bounded_migration ~k ]

let find_policy ?(k = 1) name =
  match name with
  | "first-fit" -> Some first_fit
  | "best-fit" -> Some best_fit
  | "migrate" -> Some (bounded_migration ~k)
  | _ -> None

(* ----- lifecycle ---------------------------------------------------- *)

let create ?(policy = best_fit) ~width () =
  if width < 1 then invalid_arg "Session.create: width must be >= 1";
  {
    swidth = width;
    sprofile = Profile.create width;
    slots = Array.make 16 Empty;
    n_arrived = 0;
    n_live = 0;
    n_departed = 0;
    n_migrations = 0;
    entries = [];
    spolicy = policy;
  }

let reset t =
  Profile.reset t.sprofile;
  Array.fill t.slots 0 (Array.length t.slots) Empty;
  t.n_arrived <- 0;
  t.n_live <- 0;
  t.n_departed <- 0;
  t.n_migrations <- 0;
  t.entries <- []

let ensure_capacity t n =
  let cap = Array.length t.slots in
  if n > cap then begin
    let grown = Array.make (max n (2 * cap)) Empty in
    Array.blit t.slots 0 grown 0 cap;
    t.slots <- grown
  end

let arrive ?budget t ~w ~h =
  (* Mirror Io's hardened checks so a hand-built event stream fails
     exactly like a malformed trace file. *)
  if w < 1 || h < 1 then
    invalid_arg
      (Printf.sprintf "Session.arrive: dimensions must be >= 1, got %d x %d" w h);
  if w > t.swidth then
    invalid_arg
      (Printf.sprintf
         "Session.arrive: demand %d exceeds the strip width %d" w t.swidth);
  let id = t.n_arrived in
  let it = Item.make ~id ~w ~h in
  let pl = t.spolicy.place ~budget t it in
  ensure_capacity t (id + 1);
  t.slots.(id) <- Live (it, pl.start);
  t.n_arrived <- id + 1;
  t.n_live <- t.n_live + 1;
  t.n_migrations <- t.n_migrations + List.length pl.migrations;
  t.entries <-
    Arrived { id; start = pl.start; migrations = pl.migrations } :: t.entries;
  Dsp_util.Instr.bump c_arrivals;
  id

type depart_error = Never_arrived of int | Already_departed of int

let depart_error_to_string = function
  | Never_arrived id ->
      Printf.sprintf "Session.depart: arrival %d has not arrived" id
  | Already_departed id ->
      Printf.sprintf "Session.depart: arrival %d already departed" id

let depart_result t id =
  if id < 0 || id >= t.n_arrived then Error (Never_arrived id)
  else
    match t.slots.(id) with
    | Live (it, s) ->
        Profile.remove_item t.sprofile it ~start:s;
        t.slots.(id) <- Gone;
        t.n_live <- t.n_live - 1;
        t.n_departed <- t.n_departed + 1;
        t.entries <- Departed { id; start = s } :: t.entries;
        Dsp_util.Instr.bump c_departures;
        Ok s
    | Gone -> Error (Already_departed id)
    | Empty -> Error (Never_arrived id)

let depart t id =
  match depart_result t id with
  | Ok _ -> ()
  | Error e -> invalid_arg (depart_error_to_string e)

let snapshot t =
  let live = live_items t in
  let dims = List.map (fun (_, (it : Item.t), _) -> (it.w, it.h)) live in
  let inst = Instance.of_dims ~width:t.swidth dims in
  let starts = Array.of_list (List.map (fun (_, _, s) -> s) live) in
  Packing.make inst starts

let apply ?budget t (ev : Dsp_instance.Trace.event) =
  match ev with
  | Dsp_instance.Trace.Arrive { w; h } -> ignore (arrive ?budget t ~w ~h)
  | Dsp_instance.Trace.Depart { arrival } -> depart t arrival

let replay ?policy ?budget (tr : Dsp_instance.Trace.t) =
  let t = create ?policy ~width:tr.Dsp_instance.Trace.width () in
  List.iter (apply ?budget t) tr.Dsp_instance.Trace.events;
  t

(* Rebuild a session from snapshot state (the WAL's compaction
   records): explicit placements bypass the policy, so the restored
   profile is bit-identical to the snapshotted one no matter which
   policy produced it.  Ids below [n_arrived] that are not listed live
   are marked departed; the event log restarts empty. *)
let restore ?(policy = best_fit) ~width ~n_arrived ~n_migrations ~live () =
  if width < 1 then invalid_arg "Session.restore: width must be >= 1";
  if n_arrived < 0 then invalid_arg "Session.restore: n_arrived must be >= 0";
  if n_migrations < 0 then
    invalid_arg "Session.restore: n_migrations must be >= 0";
  let t = create ~policy ~width () in
  ensure_capacity t n_arrived;
  t.n_arrived <- n_arrived;
  for id = 0 to n_arrived - 1 do
    t.slots.(id) <- Gone
  done;
  List.iter
    (fun (id, w, h, start) ->
      if id < 0 || id >= n_arrived then
        invalid_arg
          (Printf.sprintf "Session.restore: live id %d outside [0, %d)" id
             n_arrived);
      (match t.slots.(id) with
      | Gone -> ()
      | Empty | Live _ ->
          invalid_arg (Printf.sprintf "Session.restore: duplicate live id %d" id));
      if w < 1 || h < 1 then
        invalid_arg
          (Printf.sprintf
             "Session.restore: dimensions must be >= 1, got %d x %d" w h);
      if start < 0 || start + w > width then
        invalid_arg
          (Printf.sprintf
             "Session.restore: item %d at start %d width %d overflows strip %d"
             id start w width);
      let it = Item.make ~id ~w ~h in
      Profile.add_item t.sprofile it ~start;
      t.slots.(id) <- Live (it, start);
      t.n_live <- t.n_live + 1)
    live;
  t.n_departed <- n_arrived - t.n_live;
  t.n_migrations <- n_migrations;
  t

let log t = List.rev t.entries

type stats = {
  arrivals : int;
  departures : int;
  live : int;
  migrations : int;
  peak_now : int;
}

let stats t =
  {
    arrivals = t.n_arrived;
    departures = t.n_departed;
    live = t.n_live;
    migrations = t.n_migrations;
    peak_now = peak t;
  }
