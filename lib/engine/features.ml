open Dsp_core

type t = {
  n : int;
  width : int;
  lower_bound : int;
  slack : float;
  area_ratio : float;
  height_spread : float;
  demand_skew : float;
  wide_fraction : float;
}

let extract (inst : Instance.t) =
  let n = Instance.n_items inst in
  let width = inst.Instance.width in
  if n = 0 then
    {
      n;
      width;
      lower_bound = 0;
      slack = 0.;
      area_ratio = 0.;
      height_spread = 0.;
      demand_skew = 0.;
      wide_fraction = 0.;
    }
  else begin
    let lb = Instance.lower_bound inst in
    let total_area = Instance.total_area inst in
    let max_h = ref 0 and max_area = ref 0 and wide = ref 0 in
    Array.iter
      (fun (it : Item.t) ->
        if it.h > !max_h then max_h := it.h;
        let a = Item.area it in
        if a > !max_area then max_area := a;
        if 2 * it.w > width then incr wide)
      inst.Instance.items;
    let fn = float_of_int n in
    let mean_h = float_of_int (Array.fold_left (fun acc (it : Item.t) -> acc + it.h) 0 inst.Instance.items) /. fn in
    let mean_area = float_of_int total_area /. fn in
    let capacity = float_of_int (width * lb) in
    {
      n;
      width;
      lower_bound = lb;
      slack = (capacity -. float_of_int total_area) /. capacity;
      area_ratio = mean_area /. capacity;
      height_spread = float_of_int !max_h /. mean_h;
      demand_skew = float_of_int !max_area /. mean_area;
      wide_fraction = float_of_int !wide /. fn;
    }
  end

let to_assoc f =
  [
    ("n", float_of_int f.n);
    ("width", float_of_int f.width);
    ("lower_bound", float_of_int f.lower_bound);
    ("slack", f.slack);
    ("area_ratio", f.area_ratio);
    ("height_spread", f.height_spread);
    ("demand_skew", f.demand_skew);
    ("wide_fraction", f.wide_fraction);
  ]

let bucket f =
  let size =
    if f.n <= 12 then "tiny"
    else if f.n <= 28 then "small"
    else if f.n <= 64 then "mid"
    else "large"
  in
  let slack = if f.slack < 0.08 then "tight" else "loose" in
  let shape =
    if f.height_spread > 2.5 || f.demand_skew > 4.0 then "spiky" else "flat"
  in
  Printf.sprintf "%s-%s-%s" size slack shape

let pp fmt f =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.fprintf fmt "%-14s %d@," k (int_of_float v)
      else Format.fprintf fmt "%-14s %.3f@," k v)
    (to_assoc f);
  Format.fprintf fmt "bucket         %s@]" (bucket f)
