(** Solver descriptions and the instrumented solve wrapper.

    A solver is a named, tagged packing algorithm.  {!run} is the only
    sanctioned way to execute one: it snapshots the {!Dsp_util.Instr}
    counters, times the solve, and builds a validated {!Report.t}, so
    every pipeline gets validation-by-default and per-solve counters
    for free. *)

open Dsp_core

type family =
  | Baseline  (** greedy / classical heuristics (BFD, first fit, Steinberg) *)
  | Approx  (** the paper's structured approximation algorithms *)
  | Exact  (** complete search for the true optimum *)
  | Pts  (** solvers routed through the PTS duality of Theorem 1 *)

type complexity = Poly | Pseudo_poly | Exponential

exception Budget_exhausted of string
(** Raised by a solver whose search budget (e.g. branch-and-bound
    nodes) ran out before an answer was found.  {!run} converts it
    into [Error]. *)

type t = {
  name : string;
  family : family;
  complexity : complexity;
  doc : string;  (** one-line description for [dsp list] *)
  solve : budget:Dsp_util.Budget.t -> Instance.t -> Packing.t;
      (** [budget] carries the wall-clock deadline and node cap.
          Exponential solvers read {!Dsp_util.Budget.node_cap} as
          their native node limit (raising {!Budget_exhausted} when it
          runs out) and thread the budget into their hot loops, whose
          checkpoints raise {!Dsp_util.Budget.Expired} past the
          deadline; polynomial solvers may ignore it (they terminate
          fast regardless). *)
}

val family_name : family -> string
val complexity_name : complexity -> string

val default_node_budget : int
(** Node cap {!run} applies when the caller gives none (2,000,000 —
    small enough to return promptly on small instances, large enough
    to solve them). *)

val run :
  ?timeout_ms:int -> ?node_budget:int -> t -> Instance.t -> (Report.t, string) result
(** Execute the solver on the instance: time it, attribute
    {!Dsp_util.Instr} counter deltas, validate the packing, and build
    the report.  [Error] carries the budget-exhaustion message when
    the solver gave up (native node budget or the [timeout_ms]
    deadline); an {e invalid} packing instead raises
    [Invalid_argument] — that is a bug in the solver, not a result.
    For a typed outcome and fallback chains use
    {!Dsp_engine.Runner}. *)
