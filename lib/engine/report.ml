open Dsp_core

type t = {
  solver : string;
  packing : Packing.t;
  peak : int;
  lower_bound : int;
  ratio : float;
  seconds : float;
  counters : (string * int) list;
}

let validate_packing ~solver ~instance packing =
  let got = Packing.instance packing in
  if not (Instance.equal got instance) then
    Error
      (Printf.sprintf
         "solver %S answered a different instance (width %d, %d items) than was \
          posed (width %d, %d items)"
         solver got.Instance.width (Instance.n_items got) instance.Instance.width
         (Instance.n_items instance))
  else
    match Packing.validate packing with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "solver %S produced an invalid packing: %s" solver e)

let make ~solver ~instance ~packing ~seconds ~counters =
  match validate_packing ~solver ~instance packing with
  | Error _ as e -> e
  | Ok () ->
      let peak = Packing.height packing in
      let lower_bound = Instance.lower_bound instance in
      let ratio =
        if peak = 0 && lower_bound = 0 then 1.0
        else float_of_int peak /. float_of_int (max 1 lower_bound)
      in
      Ok
        {
          solver;
          packing;
          peak;
          lower_bound;
          ratio;
          seconds;
          counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
        }

let make_exn ~solver ~instance ~packing ~seconds ~counters =
  match make ~solver ~instance ~packing ~seconds ~counters with
  | Ok r -> r
  | Error e -> invalid_arg ("Report.make: " ^ e)

let counter t name = Option.value (List.assoc_opt name t.counters) ~default:0

let pp fmt t =
  Format.fprintf fmt "@[<v>%s: peak=%d lb=%d ratio=%.3f time=%.4fs" t.solver
    t.peak t.lower_bound t.ratio t.seconds;
  List.iter (fun (k, v) -> Format.fprintf fmt "@,  %-28s %d" k v) t.counters;
  Format.fprintf fmt "@]"
