open Dsp_core

exception Duplicate of string

(* Registration order is display order; the table is small, a list is
   fine.  The cell is atomic, not a bare ref: registration happens at
   module initialisation on the main domain, but Runner.race and the
   pooled compare path read the table from worker domains (dsp_lint
   rule R2 polices exactly this kind of toplevel mutable state). *)
let solvers : Solver.t list Atomic.t = Atomic.make []

let rec register (s : Solver.t) =
  let cur = Atomic.get solvers in
  if List.exists (fun (r : Solver.t) -> r.Solver.name = s.Solver.name) cur then
    raise (Duplicate s.Solver.name);
  (* CAS retry keeps concurrent registration sound without a lock. *)
  if not (Atomic.compare_and_set solvers cur (cur @ [ s ])) then register s

let all () = Atomic.get solvers

let find name =
  List.find_opt (fun (s : Solver.t) -> s.Solver.name = name) (all ())

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find_exn: unknown solver %S (known: %s)" name
           (String.concat ", "
              (List.map (fun (s : Solver.t) -> s.Solver.name) (all ()))))

let names () = List.map (fun (s : Solver.t) -> s.Solver.name) (all ())

let filter ?family ?complexity () =
  List.filter
    (fun (s : Solver.t) ->
      (match family with None -> true | Some f -> s.Solver.family = f)
      && match complexity with None -> true | Some c -> s.Solver.complexity = c)
    (all ())

let heuristics () =
  List.filter (fun (s : Solver.t) -> s.Solver.complexity <> Solver.Exponential) (all ())

(* Built-in solvers. *)

let ignore_budget f ~budget inst =
  let _ = budget in
  f inst

(* The Theorem 1 duality put to work as a solver: items become PTS
   jobs (p = w, q = h), a machine count m is guessed, and Garey–Graham
   list scheduling is asked for a schedule with makespan <= W; job
   start times are exactly item start columns, and the peak is at most
   m.  The smallest workable m is found by binary search (feasibility
   of the heuristic is not strictly monotone in m, so the best packing
   seen is kept, as in first-fit doubling). *)
let pts_duality (inst : Instance.t) =
  if Instance.n_items inst = 0 then Packing.make inst [||]
  else begin
    let width = inst.Instance.width in
    let lb = max 1 (Instance.lower_bound inst) in
    let ub =
      Array.fold_left
        (fun acc (it : Item.t) -> acc + it.Item.h)
        0 inst.Instance.items
    in
    let best = ref None in
    let ok m =
      let pts = Dsp_instance.Generators.pts_of_dsp inst ~height:m in
      let sched =
        Dsp_pts.List_scheduling.schedule
          ~order:Dsp_pts.List_scheduling.Longest_first pts
      in
      if Pts.Schedule.makespan sched <= width then begin
        let pk = Packing.make inst (Array.copy sched.Pts.Schedule.sigma) in
        (match !best with
        | Some b when Packing.height b <= Packing.height pk -> ()
        | _ -> best := Some pk);
        true
      end
      else false
    in
    (* ok (sum of heights) always holds: with m = Σh every job can
       start at time 0, so the makespan is max w <= W. *)
    ignore (Dsp_util.Xutil.binary_search_min lb (max lb ub) ok);
    Option.get !best
  end

let exact_bb ~budget inst =
  (* The budget's node cap doubles as the native node limit; native
     accounting fires first (its checkpoint precedes the budget's in
     the search loop), keeping the classic exhaustion message, while
     the budget adds the wall-clock deadline. *)
  let node_limit =
    Option.value
      (Dsp_util.Budget.node_cap budget)
      ~default:Dsp_exact.Dsp_bb.default_node_limit
  in
  match Dsp_exact.Dsp_bb.solve ~node_limit ~budget inst with
  | Some pk -> pk
  | None ->
      raise
        (Solver.Budget_exhausted
           (Printf.sprintf "exact-bb: node budget %d exhausted" node_limit))

let exact_bb_par ~budget inst =
  (* Same budget contract as exact-bb, fanned out across
     Pool.default_jobs domains; the node cap is shared across the
     workers, so k domains never multiply the budget by k. *)
  let node_limit =
    Option.value
      (Dsp_util.Budget.node_cap budget)
      ~default:Dsp_exact.Dsp_bb.default_node_limit
  in
  let jobs = Dsp_util.Pool.default_jobs () in
  match Dsp_exact.Dsp_bb.solve_par ~node_limit ~budget ~jobs inst with
  | Some pk -> pk
  | None ->
      raise
        (Solver.Budget_exhausted
           (Printf.sprintf "exact-bb-par: node budget %d exhausted (%d domains)"
              node_limit jobs))

let () =
  List.iter register
    [
      {
        Solver.name = "bfd-height";
        family = Baseline;
        complexity = Poly;
        doc = "best-fit decreasing by item height";
        solve =
          ignore_budget
            (Dsp_algo.Baselines.best_fit_decreasing
               ~order:Dsp_algo.Baselines.By_height);
      };
      {
        Solver.name = "bfd-area";
        family = Baseline;
        complexity = Poly;
        doc = "best-fit decreasing by item area";
        solve =
          ignore_budget
            (Dsp_algo.Baselines.best_fit_decreasing
               ~order:Dsp_algo.Baselines.By_area);
      };
      {
        Solver.name = "lpt-width";
        family = Baseline;
        complexity = Poly;
        doc = "widest-first best fit (LPT translated to DSP)";
        solve = ignore_budget Dsp_algo.Baselines.lpt;
      };
      {
        Solver.name = "ff-doubling";
        family = Baseline;
        complexity = Poly;
        doc = "budgeted first fit, doubling then binary-searching the budget";
        solve = ignore_budget Dsp_algo.Baselines.first_fit_doubling;
      };
      {
        Solver.name = "steinberg2";
        family = Baseline;
        complexity = Poly;
        doc = "Steinberg's classical packing read as DSP (the 2*OPT bound)";
        solve = ignore_budget Dsp_algo.Baselines.steinberg2;
      };
      {
        Solver.name = "pts-duality";
        family = Pts;
        complexity = Poly;
        doc = "list scheduling through the Theorem 1 PTS duality";
        solve = ignore_budget pts_duality;
      };
      {
        Solver.name = "approx53";
        family = Approx;
        complexity = Poly;
        doc = "the (5/3)-style structured polynomial algorithm";
        solve = ignore_budget Dsp_algo.Approx53.solve;
      };
      {
        Solver.name = "approx54";
        family = Approx;
        complexity = Pseudo_poly;
        doc = "the (5/4+eps) pseudo-polynomial algorithm (Theorem 5)";
        (* Deadline-only: the binary search polls the budget but has
           no node semantics, so the node cap is ignored. *)
        solve = (fun ~budget inst -> Dsp_algo.Approx54.solve ~budget inst);
      };
      {
        Solver.name = "exact-bb";
        family = Exact;
        complexity = Exponential;
        doc = "exact branch and bound (true OPT; node-budgeted)";
        solve = exact_bb;
      };
      {
        Solver.name = "exact-bb-par";
        family = Exact;
        complexity = Exponential;
        doc = "parallel exact B&B (work-stealing, shared incumbent; --jobs domains)";
        solve = exact_bb_par;
      };
    ]
