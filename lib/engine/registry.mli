(** The central solver registry — the single source of truth for
    "which algorithms exist".

    The CLI ([dsp list]/[solve]/[compare]), the benchmark harness, and
    the registry-wide test suite all enumerate this table; registering
    a solver here is the only step needed for it to appear everywhere.
    The built-in solvers (baselines, [approx53]/[approx54], the exact
    branch and bound, and the PTS-duality solver) are registered at
    module initialisation.

    This registry subsumes the per-consumer algorithm tables that the
    CLI, [Baselines.all], and the bench harness used to keep. *)

exception Duplicate of string

val register : Solver.t -> unit
(** @raise Duplicate if a solver with the same name is already
    registered — names are the registry key. *)

val all : unit -> Solver.t list
(** Every registered solver, in registration order. *)

val find : string -> Solver.t option
val find_exn : string -> Solver.t
val names : unit -> string list

val filter :
  ?family:Solver.family -> ?complexity:Solver.complexity -> unit -> Solver.t list

val heuristics : unit -> Solver.t list
(** Solvers that always terminate quickly: everything not tagged
    [Exponential].  The replacement for the deprecated
    [Dsp_algo.Baselines.all] plus the approximation algorithms. *)
