open Dsp_core

type family = Baseline | Approx | Exact | Pts
type complexity = Poly | Pseudo_poly | Exponential

exception Budget_exhausted of string

type t = {
  name : string;
  family : family;
  complexity : complexity;
  doc : string;
  solve : node_budget:int -> Instance.t -> Packing.t;
}

let family_name = function
  | Baseline -> "baseline"
  | Approx -> "approx"
  | Exact -> "exact"
  | Pts -> "pts"

let complexity_name = function
  | Poly -> "poly"
  | Pseudo_poly -> "pseudo-poly"
  | Exponential -> "exponential"

let default_node_budget = 2_000_000

let run ?(node_budget = default_node_budget) t inst =
  let before = Dsp_util.Instr.snapshot () in
  match Dsp_util.Xutil.timeit (fun () -> t.solve ~node_budget inst) with
  | packing, seconds ->
      let counters =
        Dsp_util.Instr.delta ~before ~after:(Dsp_util.Instr.snapshot ())
      in
      Ok (Report.make_exn ~solver:t.name ~instance:inst ~packing ~seconds ~counters)
  | exception Budget_exhausted msg -> Error msg
