open Dsp_core

type family = Baseline | Approx | Exact | Pts
type complexity = Poly | Pseudo_poly | Exponential

exception Budget_exhausted of string

type t = {
  name : string;
  family : family;
  complexity : complexity;
  doc : string;
  solve : budget:Dsp_util.Budget.t -> Instance.t -> Packing.t;
}

let family_name = function
  | Baseline -> "baseline"
  | Approx -> "approx"
  | Exact -> "exact"
  | Pts -> "pts"

let complexity_name = function
  | Poly -> "poly"
  | Pseudo_poly -> "pseudo-poly"
  | Exponential -> "exponential"

let default_node_budget = 2_000_000

let run ?timeout_ms ?(node_budget = default_node_budget) t inst =
  let budget = Dsp_util.Budget.create ?timeout_ms ~nodes:node_budget () in
  let before = Dsp_util.Instr.snapshot () in
  match Dsp_util.Xutil.timeit (fun () -> t.solve ~budget inst) with
  | packing, seconds ->
      let counters =
        Dsp_util.Instr.delta ~before ~after:(Dsp_util.Instr.snapshot ())
      in
      Ok (Report.make_exn ~solver:t.name ~instance:inst ~packing ~seconds ~counters)
  | exception Budget_exhausted msg -> Error msg
  | exception Dsp_util.Budget.Expired reason ->
      Error
        (Printf.sprintf "%s: budget expired (%s) after %.0f ms" t.name
           (Dsp_util.Budget.reason_name reason)
           (Dsp_util.Budget.elapsed budget *. 1000.))
