(** Portfolio autotuner: instance features to solver chain and budget
    split.

    {!Runner.solve} slices the deadline equally between the stages of
    its fallback chain and {!Runner.race} races a fixed default chain.
    The tuner replaces both policies with a feature-driven one: extract
    {!Features} from the instance, map its {!Features.bucket} through a
    prior table seeded from the checked-in bench history
    ([bench/results/], see EXPERIMENTS.md), and optionally sharpen the
    priors with recorded outcomes of earlier tuned solves.

    The feedback store is a plain append-only text file (one outcome
    per line: [bucket solver won ms]); its path comes from the
    [DSP_TUNER_FEEDBACK] environment variable or an explicit argument.
    No file, no problem — the priors alone drive the plan.  Malformed
    lines are skipped, so a torn append cannot poison the store. *)

open Dsp_core

type plan = {
  features : Features.t;
  bucket : string;  (** {!Features.bucket} of [features] *)
  chain : Solver.t list;
      (** stages in attempt order, always ending in a polynomial
          safety solver *)
  weights : float list;
      (** one weight per stage, positive, summing to 1: stage [i] of a
          sequential solve gets fraction [w_i] of the remaining
          deadline (see {!Runner.solve}'s [weights]) *)
}

type outcome = {
  bucket : string;
  solver : string;
  won : bool;  (** did this solver produce the winning report? *)
  ms : float;  (** wall-clock the solver used *)
}

val default_feedback_path : unit -> string option
(** [Sys.getenv_opt "DSP_TUNER_FEEDBACK"]. *)

val plan : ?feedback_path:string -> Instance.t -> plan
(** Compute the tuned plan for an instance.  [feedback_path] overrides
    the environment variable; a missing or unreadable file falls back
    to the priors.  Recorded outcomes for the instance's bucket
    re-rank the prior chain by observed win rate (ties broken by mean
    winning time) — solvers never seen in feedback keep their prior
    rank below the observed ones.  Bumps the ["tuner.plans"]
    counter. *)

val record_outcome : ?feedback_path:string -> outcome -> unit
(** Append one outcome to the feedback file (creating it if needed);
    a no-op when no path is configured.  Bumps ["tuner.feedback"]. *)

val load_feedback : string -> outcome list
(** Parse a feedback file, skipping malformed lines; [[]] when the
    file does not exist. *)

val pp_plan : Format.formatter -> plan -> unit
