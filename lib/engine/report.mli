(** Validated solve reports.

    A [Report.t] is the one result type every solver pipeline —
    CLI, benchmarks, tests — produces and consumes.  Construction
    re-validates the packing ({!Dsp_core.Packing.validate}) and checks
    it answers the instance that was actually posed, so an invalid
    packing escaping any algorithm fails loudly at the engine boundary
    instead of silently scoring. *)

open Dsp_core

type t = private {
  solver : string;  (** registry name of the producing solver *)
  packing : Packing.t;
  peak : int;  (** profile peak of [packing] — the DSP objective *)
  lower_bound : int;  (** {!Dsp_core.Instance.lower_bound} of the instance *)
  ratio : float;  (** [peak / max 1 lower_bound]; 1.0 for empty instances *)
  seconds : float;  (** wall-clock of the solve *)
  counters : (string * int) list;
      (** {!Dsp_util.Instr} counter deltas attributed to this solve,
          sorted by name (e.g. ["segtree.range_add"], ["bb.nodes"],
          ["simplex.pivots"], ["approx54.guesses"]). *)
}

val make :
  solver:string ->
  instance:Instance.t ->
  packing:Packing.t ->
  seconds:float ->
  counters:(string * int) list ->
  (t, string) result
(** Validates before constructing: the packing must (1) belong to
    [instance] — same width and item multiset, so a solver cannot
    drop, duplicate, or resize items — and (2) pass
    {!Dsp_core.Packing.validate}.  The [Error] carries a descriptive
    message naming the solver and the violated invariant. *)

val make_exn :
  solver:string ->
  instance:Instance.t ->
  packing:Packing.t ->
  seconds:float ->
  counters:(string * int) list ->
  t
(** {!make}, raising [Invalid_argument] on validation failure — the
    fail-loudly entry used by {!Solver.run}. *)

val counter : t -> string -> int
(** Value of one counter delta; 0 when absent. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering (peak, bound, ratio, time,
    then counters). *)
