(** Instance features for the portfolio autotuner.

    A handful of cheap (one pass over the items) numeric summaries of
    a DSP instance that correlate with which solver chain wins and how
    the time budget should be split between its stages — the inputs of
    {!Tuner.plan}.  All ratios are dimensionless so instances of
    different absolute scale land in the same buckets. *)

open Dsp_core

type t = {
  n : int;  (** number of items *)
  width : int;  (** strip width *)
  lower_bound : int;  (** {!Instance.lower_bound} *)
  slack : float;
      (** fraction of the area box [width * lower_bound] left empty:
          [0] means the area bound is tight (a perfect packing must
          fill every cell), larger values mean more placement
          freedom *)
  area_ratio : float;
      (** mean item area / strip capacity at the lower bound — how
          coarse the items are relative to the space *)
  height_spread : float;
      (** max item height / mean item height ([1] = uniform) *)
  demand_skew : float;
      (** max item area / mean item area — a few dominant items make
          the B&B root heavy and favour exact search with stealing *)
  wide_fraction : float;
      (** fraction of items wider than half the strip (these stack
          vertically, which tightens the column bound) *)
}

val extract : Instance.t -> t
(** One pass over the items; [n = 0] yields all-zero ratios. *)

val to_assoc : t -> (string * float) list
(** Stable name/value view (ints coerced), for printing and for the
    bench recorder. *)

val bucket : t -> string
(** The coarse portfolio bucket this instance falls into, a string of
    the form ["<size>-<slack>-<shape>"] (e.g. ["small-tight-spiky"]):

    - size: [tiny] (n <= 12), [small] (<= 28), [mid] (<= 64),
      [large];
    - slack: [tight] ([slack < 0.08]) or [loose];
    - shape: [spiky] ([height_spread > 2.5] or [demand_skew > 4.0]) or
      [flat].

    Buckets are the keys of the tuner's prior table and of its
    recorded-outcome feedback file. *)

val pp : Format.formatter -> t -> unit
