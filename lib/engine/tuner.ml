type plan = {
  features : Features.t;
  bucket : string;
  chain : Solver.t list;
  weights : float list;
}

type outcome = { bucket : string; solver : string; won : bool; ms : float }

let c_plans = Dsp_util.Instr.counter Dsp_util.Instr.Sites.tuner_plans
let c_feedback = Dsp_util.Instr.counter Dsp_util.Instr.Sites.tuner_feedback

let default_feedback_path () = Sys.getenv_opt "DSP_TUNER_FEEDBACK"

(* Prior chains per bucket, seeded from the checked-in bench history
   (bench/results/baseline-*.json and the solvers/parallel experiment
   write-ups in EXPERIMENTS.md):

   - tiny instances: exact-bb explores the whole tree in well under a
     stage slice, so it gets nearly the full deadline;
   - small/tight: the area bound leaves no slack, so greedy rarely
     proves optimality and exact search (parallel, stealing keeps the
     domains busy on the skewed trees tight instances tend to have)
     deserves the long slice, approx54 as the rigorous fallback;
   - small/loose: greedy upper bounds are near-optimal and serial
     exact search usually closes the gap fast;
   - mid: exact search only pays off when a few dominant items make
     the root heavy (spiky) — otherwise approx54 leads;
   - large: exact search is hopeless, the (5/4+eps) and (5/3)
     algorithms split the deadline.

   Every chain ends in bfd-height: Runner's safety net never expires,
   and giving it an explicit (small) slice keeps the weight list in
   one-to-one correspondence with the chain. *)
let priors ~size ~slack ~shape =
  match (size, slack, shape) with
  | "tiny", _, _ -> [ ("exact-bb", 0.85); ("bfd-height", 0.15) ]
  | "small", "tight", _ ->
      [ ("exact-bb-par", 0.6); ("approx54", 0.3); ("bfd-height", 0.1) ]
  | "small", _, _ ->
      [ ("exact-bb", 0.5); ("approx54", 0.35); ("bfd-height", 0.15) ]
  | "mid", _, "spiky" ->
      [ ("exact-bb-par", 0.45); ("approx54", 0.4); ("bfd-height", 0.15) ]
  | "mid", _, _ ->
      [ ("approx54", 0.55); ("exact-bb-par", 0.3); ("bfd-height", 0.15) ]
  | _ -> [ ("approx54", 0.6); ("approx53", 0.25); ("bfd-height", 0.15) ]

let parse_line line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [ bucket; solver; won; ms ] -> (
      match (bool_of_string_opt won, float_of_string_opt ms) with
      | Some won, Some ms -> Some { bucket; solver; won; ms }
      | _ -> None)
  | _ -> None

let load_feedback path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (match parse_line line with Some o -> o :: acc | None -> acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

(* Observed win rate (with a +1 pseudo-count so one lucky win does not
   dominate) and mean winning time per solver within one bucket. *)
let scores outcomes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let wins, runs, win_ms =
        Option.value (Hashtbl.find_opt tbl o.solver) ~default:(0, 0, 0.)
      in
      Hashtbl.replace tbl o.solver
        ( (wins + if o.won then 1 else 0),
          runs + 1,
          (win_ms +. if o.won then o.ms else 0.) ))
    outcomes;
  Hashtbl.fold
    (fun solver (wins, runs, win_ms) acc ->
      let rate = float_of_int wins /. float_of_int (runs + 1) in
      let mean_ms = if wins = 0 then infinity else win_ms /. float_of_int wins in
      (solver, (rate, mean_ms)) :: acc)
    tbl []

(* Re-rank the prior chain by observed performance: higher win rate
   first, faster mean winning time breaking ties, solvers without
   feedback after the observed ones in prior order.  The prior weights
   travel with their solver, so re-ranking shifts which stage gets the
   long slice. *)
let rerank prior outcomes =
  if outcomes = [] then prior
  else begin
    let sc = scores outcomes in
    let key name =
      match List.assoc_opt name sc with
      | Some (rate, ms) -> (1, rate, -.ms)
      | None -> (0, 0., 0.)
    in
    List.stable_sort
      (fun (a, _) (b, _) ->
        let (oa, ra, ta) = key a and (ob, rb, tb) = key b in
        match compare ob oa with
        | 0 -> ( match compare rb ra with 0 -> compare tb ta | c -> c)
        | c -> c)
      prior
  end

(* Keep every stage's slice meaningful: floor at 5% then renormalize. *)
let normalize ws =
  let ws = List.map (fun w -> Float.max w 0.05) ws in
  let total = List.fold_left ( +. ) 0. ws in
  List.map (fun w -> w /. total) ws

let plan ?feedback_path inst =
  let features = Features.extract inst in
  let bucket = Features.bucket features in
  let prior =
    match String.split_on_char '-' bucket with
    | [ size; slack; shape ] -> priors ~size ~slack ~shape
    | _ -> priors ~size:"large" ~slack:"loose" ~shape:"flat"
  in
  let path =
    match feedback_path with Some p -> Some p | None -> default_feedback_path ()
  in
  let outcomes =
    match path with
    | Some p ->
        List.filter (fun o -> o.bucket = bucket) (load_feedback p)
    | None -> []
  in
  let ranked =
    (* Only keep stages whose solver is actually registered: the prior
       table names the built-ins, but a stripped-down embedder may
       register fewer. *)
    List.filter (fun (name, _) -> Registry.find name <> None)
      (rerank prior outcomes)
  in
  let ranked =
    if ranked = [] then [ ("bfd-height", 1.0) ] else ranked
  in
  Dsp_util.Instr.bump c_plans;
  {
    features;
    bucket;
    chain = List.map (fun (name, _) -> Registry.find_exn name) ranked;
    weights = normalize (List.map snd ranked);
  }

let record_outcome ?feedback_path o =
  let path =
    match feedback_path with Some p -> Some p | None -> default_feedback_path ()
  in
  match path with
  | None -> ()
  | Some path ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Printf.fprintf oc "%s %s %b %.3f\n" o.bucket o.solver o.won o.ms);
      Dsp_util.Instr.bump c_feedback

let pp_plan fmt p =
  Format.fprintf fmt "@[<v>%a@,@," Features.pp p.features;
  Format.fprintf fmt "chain (deadline share per stage):@,";
  List.iter2
    (fun (s : Solver.t) w ->
      Format.fprintf fmt "  %-14s %4.0f%%  %s@," s.Solver.name (100. *. w)
        s.Solver.doc)
    p.chain p.weights;
  Format.fprintf fmt "@]"
