(* The packing kernel: a lazy range-add / range-max segment tree in
   two implementations.

   [Boxed] is the original recursive kernel over an OCaml record of
   two int arrays — kept verbatim as the differential-testing
   reference and as the ablation baseline of the [kernel] bench
   experiment.

   The default implementation below it is a flat, implicit-layout
   kernel on a single [Bigarray] in [c_layout]: nodes are 1-based
   (root 1, children 2v / 2v+1, leaves at [size, 2*size)), and node
   [v]'s two cells live interleaved at offsets [2v] (subtree max,
   inclusive of the node's own pending add) and [2v+1] (pending add
   for the whole subtree).  All traversals are iterative: bottom-up
   leaf-interval climbs for updates (boundary root paths rebuilt in
   one merged climb above their common ancestor), top-down
   boundary-path descents for queries, and a dirty-tracked flatten
   for [best_start] / [to_array] — updates log which subtrees took a
   pending add and which column span they cover, so a flatten pushes
   lazies down just those subtrees and re-reads just that span,
   instead of sweeping all O(n) nodes per call.
   Local [ref] cursors compile to mutable stack variables
   (Simplif.eliminate_ref), so the steady-state ops — [range_add],
   [range_max], [first_fit_from_i], [find_last_above_i] — allocate
   nothing: no closures, no tuples, no exceptions, no boxed returns.
   The [kernel] bench experiment measures this invariant
   (words-per-op) and scripts/perf_gate.sh gates on it.

   Element kind: the cells are an untagged native-[int] Bigarray
   ([Bigarray.int], 63-bit payload), not boxed [int64]: without
   flambda every [int64] Bigarray read allocates its box, which would
   reintroduce per-op GC pressure — the exact cost this kernel
   removes.  The public interface is native [int] throughout, and the
   overflow discipline of the boxed kernel is preserved unchanged: a
   positive [range_add] proves [root max + value] representable via
   [Xutil.checked_add] (so accumulated maxima never wrap), and
   comparison thresholds are built with the saturating
   [Xutil.sat_sub].  dsp_lint rule R1 audits this file; the remaining
   raw [+]/[-] sites are index arithmetic or accumulations covered by
   the root guard, each carrying its waiver and justification. *)

module A1 = Bigarray.Array1

(* Kernel op counters (Dsp_util.Instr): one handle per entry point,
   bumped per public call, so the engine's per-solve reports show how
   hard each algorithm leans on the kernel.  Both implementations bump
   the same handles — the [counters] experiment attributes kernel
   traffic identically whichever kernel a solver runs on. *)
let c_range_add = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_range_add
let c_range_max = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_range_max
let c_first_fit = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_first_fit
let c_last_above = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_find_last_above
let c_best_start = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_best_start

module Boxed = struct
  type t = {
    n : int;
    size : int; (* smallest power of two >= n *)
    tree : int array; (* max of subtree, including pending adds below *)
    lazy_ : int array; (* pending add for the whole subtree *)
  }

  let create n =
    if n < 1 then invalid_arg "Segtree.create: size must be >= 1";
    let size = ref 1 in
    while !size < n do
      size := !size * 2
    done;
    { n; size = !size; tree = Array.make (2 * !size) 0; lazy_ = Array.make (2 * !size) 0 }

  let size t = t.n
  let copy t = { t with tree = Array.copy t.tree; lazy_ = Array.copy t.lazy_ }

  (* Node [v] covers columns [node_lo, node_hi). The displayed value of a
     node is tree.(v) + sum of lazy_ on its ancestors; we keep tree.(v)
     inclusive of the node's own lazy, which makes queries top-down
     accumulate only strictly-above lazies. *)

  let rec add_rec t v node_lo node_hi lo hi value =
    if hi <= node_lo || node_hi <= lo then ()
    else if lo <= node_lo && node_hi <= hi then begin
      (* range_add's O(1) root pre-check already proved max + value
         fits, and every node value is <= the root max. *)
      t.tree.(v) <- t.tree.(v) + value; (* lint: ok R1 — root guard *)
      t.lazy_.(v) <- t.lazy_.(v) + value (* lint: ok R1 — same root guard *)
    end
    else begin
      let mid = (node_lo + node_hi) / 2 in (* lint: ok R1 — indices <= 2*size *)
      add_rec t (2 * v) node_lo mid lo hi value;
      add_rec t ((2 * v) + 1) mid node_hi lo hi value;
      (* lint: ok R1 — rebuilt from guarded child values *)
      t.tree.(v) <- t.lazy_.(v) + max t.tree.(2 * v) t.tree.((2 * v) + 1)
    end

  let range_add t ~lo ~hi value =
    if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_add: bad range";
    Dsp_util.Instr.bump c_range_add;
    if lo < hi then begin
      (* O(1) accumulation overflow guard: a positive add can only push
         an int past [max_int] through the running maximum, and the root
         carries exactly that maximum.  (Negative adds cannot raise the
         max; underflow of untracked minima is out of scope.) *)
      if value > 0 then ignore (Dsp_util.Xutil.checked_add t.tree.(1) value);
      add_rec t 1 0 t.size lo hi value
    end

  let rec max_rec t v node_lo node_hi lo hi acc_lazy =
    if hi <= node_lo || node_hi <= lo then min_int
    else if lo <= node_lo && node_hi <= hi then acc_lazy + t.tree.(v)
    else
      let mid = (node_lo + node_hi) / 2 in
      let acc = acc_lazy + t.lazy_.(v) in
      max
        (max_rec t (2 * v) node_lo mid lo hi acc)
        (max_rec t ((2 * v) + 1) mid node_hi lo hi acc)

  let range_max t ~lo ~hi =
    if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_max: bad range";
    Dsp_util.Instr.bump c_range_max;
    if lo >= hi then 0 else max_rec t 1 0 t.size lo hi 0

  let max_all t = range_max t ~lo:0 ~hi:t.n
  let get t i = range_max t ~lo:i ~hi:(i + 1)

  let of_array arr =
    let t = create (Array.length arr) in
    Array.iteri (fun i v -> range_add t ~lo:i ~hi:(i + 1) v) arr;
    t

  (* Flatten in O(n) with a single lazy-accumulating walk (get-per-index
     would be O(n log n) and dominates the profile renderers). *)
  let to_array t =
    let out = Array.make t.n 0 in
    let rec go v node_lo node_hi acc =
      if node_lo < t.n then
        if node_hi - node_lo = 1 then out.(node_lo) <- acc + t.tree.(v)
        else begin
          let mid = (node_lo + node_hi) / 2 in
          let acc = acc + t.lazy_.(v) in
          go (2 * v) node_lo mid acc;
          go ((2 * v) + 1) mid node_hi acc
        end
    in
    go 1 0 t.size 0;
    out

  (* Rightmost leaf in [lo, hi) whose value is strictly above the
     threshold, or -1.  Subtrees whose max is already <= threshold are
     pruned wholesale (valid even on partial overlap, since the subtree
     max dominates the max of any intersection), so the descent visits
     O(log n) nodes amortized. *)
  let rec last_above_rec t v node_lo node_hi lo hi thr acc =
    if hi <= node_lo || node_hi <= lo then -1
    else if acc + t.tree.(v) <= thr then -1
    else if node_hi - node_lo = 1 then node_lo
    else
      let mid = (node_lo + node_hi) / 2 in
      let acc = acc + t.lazy_.(v) in
      let r = last_above_rec t ((2 * v) + 1) mid node_hi lo hi thr acc in
      if r >= 0 then r else last_above_rec t (2 * v) node_lo mid lo hi thr acc

  let find_last_above t ~lo ~hi threshold =
    if lo < 0 || hi > t.n || lo > hi then
      invalid_arg "Segtree.find_last_above: bad range";
    Dsp_util.Instr.bump c_last_above;
    let r = last_above_rec t 1 0 t.size lo hi threshold 0 in
    if r < 0 then None else Some r

  (* Skip-ahead first fit: test the window at [s]; on violation, jump
     past the *last* violating column instead of stepping to [s + 1].
     Every violating column is skipped exactly once across the whole
     scan, so a full placement costs O((k + 1) log n) where k is the
     number of violating columns encountered, instead of O(n * len). *)
  let first_fit_from t ~from ~len ~height ~limit =
    Dsp_util.Instr.bump c_first_fit;
    if len < 1 || len > t.n then None
    else begin
      let thr = Dsp_util.Xutil.sat_sub limit height in
      let rec go s =
        if s + len > t.n then None (* lint: ok R1 — s, len <= n *)
        else
          match last_above_rec t 1 0 t.size s (s + len) thr 0 with (* lint: ok R1 — s + len <= n *)
          | -1 -> Some s
          | j -> go (j + 1)
      in
      go (max 0 from)
    end

  let first_fit_pos t ~len ~height ~limit =
    first_fit_from t ~from:0 ~len ~height ~limit

  (* Sliding-window maximum (monotonic deque) over an O(n) flatten:
     all window peaks in O(n), versus n range-max queries. *)
  let best_start t ~len =
    Dsp_util.Instr.bump c_best_start;
    if len < 1 || len > t.n then None
    else begin
      let loads = to_array t in
      let n = t.n in
      let dq = Array.make n 0 in
      let head = ref 0 and tail = ref 0 in
      let best_s = ref 0 and best_peak = ref max_int in
      for x = 0 to n - 1 do
        while !tail > !head && loads.(dq.(!tail - 1)) <= loads.(x) do
          decr tail
        done;
        dq.(!tail) <- x;
        incr tail;
        let s = x - len + 1 in (* lint: ok R1 — window index < n *)
        if s >= 0 then begin
          while dq.(!head) < s do
            incr head
          done;
          let wmax = loads.(dq.(!head)) in
          if wmax < !best_peak then begin
            best_peak := wmax;
            best_s := s
          end
        end
      done;
      Some (!best_s, !best_peak)
    end
end

(* ----- the flat kernel (default) ----------------------------------- *)

type t = {
  n : int; (* columns *)
  size : int; (* smallest power of two >= n *)
  cells : (int, Bigarray.int_elt, Bigarray.c_layout) A1.t;
      (* 4*size interleaved node cells; see the header comment *)
  flat : int array; (* per-column flatten buffer (best_start) *)
  deque : int array; (* monotone deque (best_start) *)
  dirty : int array; (* nodes given a pending add since the last flatten *)
  mutable dirty_n : int; (* entries in [dirty]; -1 = overflowed, full sweep *)
  mutable dirty_lo : int; (* column span touched since the last flatten: *)
  mutable dirty_hi : int; (* [dirty_lo, dirty_hi), empty when lo >= hi *)
  pstack : int array; (* push-down DFS scratch (max one path per level) *)
  mutable jrn : int array; (* checkpoint journal: (lo, hi, value) triples *)
  mutable jrn_n : int; (* used cells in [jrn] (always a multiple of 3) *)
  mutable jrn_depth : int; (* outstanding checkpoints; 0 = journal off *)
}

(* Node cell accessors.  Indices are [2v] / [2v+1] for v in
   [1, 2*size), always within the 4*size buffer; the unsafe accessors
   keep a bounds check out of every hot-loop load. *)
let tget t v = A1.unsafe_get t.cells (2 * v)
let lget t v = A1.unsafe_get t.cells ((2 * v) + 1)
let tset t v x = A1.unsafe_set t.cells (2 * v) x
let lset t v x = A1.unsafe_set t.cells ((2 * v) + 1) x

let create n =
  if n < 1 then invalid_arg "Segtree.create: size must be >= 1";
  let size = ref 1 in
  while !size < n do
    size := !size * 2
  done;
  let cells = A1.create Bigarray.int Bigarray.c_layout (4 * !size) in
  A1.fill cells 0;
  {
    n;
    size = !size;
    cells;
    flat = Array.make n 0; (* all-zero: consistent with the empty tree *)
    deque = Array.make n 0;
    dirty = Array.make 256 0;
    dirty_n = 0;
    dirty_lo = n;
    dirty_hi = 0;
    pstack = Array.make 128 0;
    jrn = [||]; (* grown on first journaled update *)
    jrn_n = 0;
    jrn_depth = 0;
  }

let size t = t.n

let copy t =
  let cells = A1.create Bigarray.int Bigarray.c_layout (A1.dim t.cells) in
  A1.blit t.cells cells;
  (* [flat] and the dirty state carry over: entries outside the dirty
     span are valid flatten results for the copied tree too.  The
     checkpoint journal carries over as well, so a copy taken inside a
     checkpointed region can itself be rolled back. *)
  {
    t with
    cells;
    flat = Array.copy t.flat;
    deque = Array.make t.n 0;
    dirty = Array.copy t.dirty;
    pstack = Array.make 128 0;
    jrn = Array.copy t.jrn;
  }

(* Add [value] to node [v]'s whole subtree: both the subtree max and
   the pending-add cell move together (the max cell is inclusive of
   the node's own lazy). *)
let apply_add t v value =
  tset t v (tget t v + value); (* lint: ok R1 — root guard *)
  lset t v (lget t v + value) (* lint: ok R1 — same root guard *)

(* Remember that node [v] holds a pending add, so the next flatten can
   push down just the touched subtrees instead of sweeping every
   node.  Leaves carry no pushable lazy; on overflow the list degrades
   to a full-sweep marker, never to wrong answers. *)
let mark_dirty t v =
  if v < t.size && t.dirty_n >= 0 then
    if t.dirty_n < Array.length t.dirty then begin
      t.dirty.(t.dirty_n) <- v;
      t.dirty_n <- t.dirty_n + 1
    end
    else t.dirty_n <- -1

(* Recompute one node's max from its (already correct) children,
   re-applying the node's own lazy. *)
let pull t v =
  let l = tget t (2 * v) and r = tget t ((2 * v) + 1) in
  tset t v ((if l >= r then l else r) + lget t v) (* lint: ok R1 — root guard *)

(* The range_add workhorse, shared with checkpoint rollback (which
   replays journal entries negated).  Callers have validated the range
   and run the O(1) overflow guard; rollback re-applies only values
   whose effect was previously on the tree, so its intermediate states
   are exactly the earlier (guarded) states in reverse. *)
let apply_range t lo hi value =
  if lo < hi then begin
    (* Bottom-up over the leaf interval [lo+size, hi+size): apply to
       the O(log n) maximal covered nodes, then rebuild the two
       boundary root paths — merged into one climb above their lowest
       common ancestor, so shared ancestors are pulled once, not
       twice. *)
    let l = ref (lo + t.size) in (* lint: ok R1 — leaf index < 2*size *)
    let r = ref (hi + t.size) in (* lint: ok R1 — leaf index <= 2*size *)
    let l0 = !l and r0 = !r - 1 in
    while !l < !r do
      if !l land 1 = 1 then begin
        apply_add t !l value;
        mark_dirty t !l;
        l := !l + 1
      end;
      if !r land 1 = 1 then begin
        r := !r - 1;
        apply_add t !r value;
        mark_dirty t !r
      end;
      l := !l lsr 1;
      r := !r lsr 1
    done;
    if lo < t.dirty_lo then t.dirty_lo <- lo;
    if hi > t.dirty_hi then t.dirty_hi <- hi;
    let x = ref (l0 lsr 1) and y = ref (r0 lsr 1) in
    while !x <> !y do
      pull t !x;
      pull t !y;
      x := !x lsr 1;
      y := !y lsr 1
    done;
    while !x >= 1 do
      pull t !x;
      x := !x lsr 1
    done
  end

(* Append one (lo, hi, value) triple to the checkpoint journal,
   doubling the backing array as needed.  Only called while a
   checkpoint is outstanding, so steady-state range_adds pay a single
   depth test. *)
let journal_push t lo hi value =
  let n = t.jrn_n in
  if n + 3 > Array.length t.jrn then begin
    let cap = Array.length t.jrn in
    (* amortized journal doubling, only reachable while a checkpoint
       is outstanding; steady-state range_adds never enter this branch *)
    (* lint: ok R7 — bounded, amortized, off the steady-state path *)
    let grown = Array.make (if cap = 0 then 96 else 2 * cap) 0 in
    Array.blit t.jrn 0 grown 0 n;
    t.jrn <- grown
  end;
  t.jrn.(n) <- lo;
  t.jrn.(n + 1) <- hi;
  t.jrn.(n + 2) <- value;
  t.jrn_n <- n + 3

let range_add t ~lo ~hi value =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_add: bad range";
  Dsp_util.Instr.bump c_range_add;
  if lo < hi then begin
    (* O(1) accumulation overflow guard, identical to Boxed: a
       positive add can only push an int past [max_int] through the
       running maximum, and the root cell carries exactly that
       maximum. *)
    if value > 0 then ignore (Dsp_util.Xutil.checked_add (tget t 1) value);
    if t.jrn_depth > 0 then journal_push t lo hi value;
    apply_range t lo hi value
  end

let checkpoint t =
  t.jrn_depth <- t.jrn_depth + 1;
  t.jrn_n

let rollback t mark =
  if t.jrn_depth <= 0 then invalid_arg "Segtree.rollback: no outstanding checkpoint";
  if mark < 0 || mark > t.jrn_n || mark mod 3 <> 0 then
    invalid_arg "Segtree.rollback: bad mark";
  (* Undo newest-first: range adds commute, but replaying in reverse
     keeps every intermediate state equal to an earlier live state, so
     the root-max overflow argument carries over unchanged. *)
  let i = ref (t.jrn_n - 3) in
  while !i >= mark do
    apply_range t t.jrn.(!i) t.jrn.(!i + 1) (0 - t.jrn.(!i + 2));
    i := !i - 3
  done;
  t.jrn_n <- mark;
  t.jrn_depth <- t.jrn_depth - 1

let commit t mark =
  if t.jrn_depth <= 0 then invalid_arg "Segtree.commit: no outstanding checkpoint";
  if mark < 0 || mark > t.jrn_n then invalid_arg "Segtree.commit: bad mark";
  t.jrn_depth <- t.jrn_depth - 1;
  if t.jrn_depth = 0 then t.jrn_n <- 0

let reset t =
  A1.fill t.cells 0;
  Array.fill t.flat 0 t.n 0;
  t.dirty_n <- 0;
  t.dirty_lo <- t.n;
  t.dirty_hi <- 0;
  t.jrn_n <- 0;
  t.jrn_depth <- 0

(* range_max via two iterative boundary descents: walk down from the
   root to the node where [lo, hi) splits, then resolve the suffix
   query on the left child and the prefix query on the right child,
   folding in covered siblings as they peel off.  Every step moves one
   level down, so the whole query is O(log n) with zero allocation. *)
let range_max t ~lo ~hi =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_max: bad range";
  Dsp_util.Instr.bump c_range_max;
  if lo >= hi then 0
  else begin
    let v = ref 1 and nlo = ref 0 and nhi = ref t.size and acc = ref 0 in
    let res = ref min_int and descending = ref true in
    while !descending do
      if lo <= !nlo && !nhi <= hi then begin
        res := !acc + tget t !v; (* lint: ok R1 — root guard *)
        descending := false
      end
      else begin
        let mid = (!nlo + !nhi) / 2 in (* lint: ok R1 — node bounds <= size *)
        acc := !acc + lget t !v; (* lint: ok R1 — root guard *)
        if hi <= mid then begin
          v := 2 * !v;
          nhi := mid
        end
        else if lo >= mid then begin
          v := (2 * !v) + 1;
          nlo := mid
        end
        else begin
          descending := false;
          (* Split: suffix [lo, mid) on the left child... *)
          let u = ref (2 * !v) and ulo = ref !nlo and au = ref !acc in
          let uhi = ref mid in
          let walking = ref true in
          while !walking do
            if lo <= !ulo then begin
              let m = !au + tget t !u in (* lint: ok R1 — root guard *)
              if m > !res then res := m;
              walking := false
            end
            else begin
              let m = (!ulo + !uhi) / 2 in (* lint: ok R1 — node bounds <= size *)
              au := !au + lget t !u; (* lint: ok R1 — root guard *)
              if lo < m then begin
                (* right child fully covered by the suffix *)
                let c = !au + tget t ((2 * !u) + 1) in (* lint: ok R1 — root guard *)
                if c > !res then res := c;
                u := 2 * !u;
                uhi := m
              end
              else begin
                u := (2 * !u) + 1;
                ulo := m
              end
            end
          done;
          (* ... and prefix [mid, hi) on the right child. *)
          let u = ref ((2 * !v) + 1) and uhi = ref !nhi and au = ref !acc in
          let ulo = ref mid in
          let walking = ref true in
          while !walking do
            if hi >= !uhi then begin
              let m = !au + tget t !u in (* lint: ok R1 — root guard *)
              if m > !res then res := m;
              walking := false
            end
            else begin
              let m = (!ulo + !uhi) / 2 in (* lint: ok R1 — node bounds <= size *)
              au := !au + lget t !u; (* lint: ok R1 — root guard *)
              if hi > m then begin
                (* left child fully covered by the prefix *)
                let c = !au + tget t (2 * !u) in (* lint: ok R1 — root guard *)
                if c > !res then res := c;
                u := (2 * !u) + 1;
                ulo := m
              end
              else begin
                u := 2 * !u;
                uhi := m
              end
            end
          done
        end
      end
    done;
    !res
  end

let max_all t = range_max t ~lo:0 ~hi:t.n
let get t i = range_max t ~lo:i ~hi:(i + 1)

(* Rightmost leaf of [v0]'s subtree strictly above [thr]; requires the
   adjusted subtree max ([acc0] = lazies strictly above [v0]) to
   exceed [thr], which guarantees a qualifying child at every step. *)
let descend_above t v0 acc0 thr =
  let v = ref v0 and acc = ref acc0 in
  while !v < t.size do
    acc := !acc + lget t !v; (* lint: ok R1 — root guard *)
    if !acc + tget t ((2 * !v) + 1) > thr (* lint: ok R1 — root guard *)
    then v := (2 * !v) + 1
    else v := 2 * !v
  done;
  !v - t.size (* lint: ok R1 — leaf index < 2*size *)

(* Core of find_last_above, shared with the first-fit skip-ahead (no
   counter bump, no bounds check): rightmost column of [lo, hi) whose
   value is strictly above [thr], or -1.  Iterative mirror of Boxed's
   right-then-left recursion: descend to the split node pruning
   subtrees whose adjusted max is <= thr, search the right (prefix)
   part remembering the deepest fully-covered left sibling that could
   still answer — deeper fallbacks lie strictly right of shallower
   ones, so one register suffices — then fall back to the left
   (suffix) part. *)
let last_above t lo hi thr =
  if lo >= hi then -1
  else begin
    let v = ref 1 and nlo = ref 0 and nhi = ref t.size and acc = ref 0 in
    let res = ref (-2) in
    while !res = -2 do
      if !acc + tget t !v <= thr then res := -1 (* lint: ok R1 — root guard *)
      else if lo <= !nlo && !nhi <= hi then res := descend_above t !v !acc thr
      else begin
        let mid = (!nlo + !nhi) / 2 in (* lint: ok R1 — node bounds <= size *)
        acc := !acc + lget t !v; (* lint: ok R1 — root guard *)
        if hi <= mid then begin
          v := 2 * !v;
          nhi := mid
        end
        else if lo >= mid then begin
          v := (2 * !v) + 1;
          nlo := mid
        end
        else begin
          (* Split node: right part first. *)
          let u = ref ((2 * !v) + 1) and ulo = ref mid and uhi = ref !nhi in
          let au = ref !acc in
          let fb = ref (-1) and fb_acc = ref 0 in
          let r = ref (-2) in
          while !r = -2 do
            if hi >= !uhi then
              if !au + tget t !u > thr (* lint: ok R1 — root guard *)
              then r := descend_above t !u !au thr
              else r := -1
            else if !au + tget t !u <= thr then r := -1 (* lint: ok R1 — root guard *)
            else begin
              let m = (!ulo + !uhi) / 2 in (* lint: ok R1 — node bounds <= size *)
              au := !au + lget t !u; (* lint: ok R1 — root guard *)
              if hi > m then begin
                (* Left child fully covered: the deepest such sibling
                   whose max clears the threshold is the fallback. *)
                if !au + tget t (2 * !u) > thr then begin (* lint: ok R1 — root guard *)
                  fb := 2 * !u;
                  fb_acc := !au
                end;
                u := (2 * !u) + 1;
                ulo := m
              end
              else begin
                u := 2 * !u;
                uhi := m
              end
            end
          done;
          if !r < 0 && !fb >= 0 then r := descend_above t !fb !fb_acc thr;
          if !r >= 0 then res := !r
          else begin
            (* Left part: suffix [lo, mid) on the left child. *)
            let u = ref (2 * !v) and ulo = ref !nlo and uhi = ref mid in
            let au = ref !acc in
            let r = ref (-2) in
            while !r = -2 do
              if lo <= !ulo then
                if !au + tget t !u > thr (* lint: ok R1 — root guard *)
                then r := descend_above t !u !au thr
                else r := -1
              else if !au + tget t !u <= thr then r := -1 (* lint: ok R1 — root guard *)
              else begin
                let m = (!ulo + !uhi) / 2 in (* lint: ok R1 — node bounds <= size *)
                au := !au + lget t !u; (* lint: ok R1 — root guard *)
                if lo < m then begin
                  (* Right child fully covered by the suffix: if it
                     clears the threshold the answer is inside it. *)
                  if !au + tget t ((2 * !u) + 1) > thr (* lint: ok R1 — root guard *)
                  then r := descend_above t ((2 * !u) + 1) !au thr
                  else begin
                    u := 2 * !u;
                    uhi := m
                  end
                end
                else begin
                  u := (2 * !u) + 1;
                  ulo := m
                end
              end
            done;
            res := !r
          end
        end
      end
    done;
    !res
  end

let find_last_above_i t ~lo ~hi threshold =
  if lo < 0 || hi > t.n || lo > hi then
    invalid_arg "Segtree.find_last_above: bad range";
  Dsp_util.Instr.bump c_last_above;
  last_above t lo hi threshold

let find_last_above t ~lo ~hi threshold =
  let r = find_last_above_i t ~lo ~hi threshold in
  if r < 0 then None else Some r

(* Skip-ahead first fit, as in Boxed: a failed window jumps directly
   past its last violating column.  The [_i] form returns -1 for "no
   fit" so the branch-and-bound hot loop never allocates an option. *)
let first_fit_from_i t ~from ~len ~height ~limit =
  Dsp_util.Instr.bump c_first_fit;
  if len < 1 || len > t.n then -1
  else begin
    let thr = Dsp_util.Xutil.sat_sub limit height in
    let s = ref (if from > 0 then from else 0) in
    let res = ref (-2) in
    while !res = -2 do
      if !s + len > t.n then res := -1 (* lint: ok R1 — s, len <= n *)
      else begin
        let j = last_above t !s (!s + len) thr in (* lint: ok R1 — s + len <= n *)
        if j < 0 then res := !s else s := j + 1
      end
    done;
    !res
  end

let first_fit_from t ~from ~len ~height ~limit =
  let r = first_fit_from_i t ~from ~len ~height ~limit in
  if r < 0 then None else Some r

let first_fit_pos t ~len ~height ~limit =
  first_fit_from t ~from:0 ~len ~height ~limit

let min_peak_start t ~len ~height ~limit = first_fit_pos t ~len ~height ~limit

(* O(n) flatten into the preallocated buffer, by destructive lazy
   push-down: moving every pending add one level toward the leaves
   preserves the represented profile exactly (the parent's tree cell
   already included its lazy; the children absorb it into both their
   cells), after which the leaf cells hold final values and the whole
   pass is two sequential sweeps.  Processing nodes in increasing
   index order pushes ancestors before descendants, and a node whose
   lazy is already 0 costs one read — so back-to-back flattens (the
   best-fit placement loop) touch only the O(log n) lazies the
   interleaved updates re-introduced.  Leaf lazy cells are never read
   by any query, so the leaf level needs no lazy bookkeeping. *)
let push_down_sweep t =
  let a = t.cells and half = t.size / 2 in
  for v = 1 to half - 1 do
    let lz = A1.unsafe_get a ((2 * v) + 1) in
    if lz <> 0 then begin
      let l = 4 * v and r = (4 * v) + 2 in
      A1.unsafe_set a l (A1.unsafe_get a l + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a (l + 1) (A1.unsafe_get a (l + 1) + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a r (A1.unsafe_get a r + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a (r + 1) (A1.unsafe_get a (r + 1) + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a ((2 * v) + 1) 0
    end
  done;
  (* Deepest internal level: children are leaves, whose lazy cells no
     query reads, so only the tree cells absorb the push.  (max 1
     guards the size = 1 tree, which has no internal nodes.) *)
  for v = max 1 half to t.size - 1 do
    let lz = A1.unsafe_get a ((2 * v) + 1) in
    if lz <> 0 then begin
      let l = 4 * v and r = (4 * v) + 2 in
      A1.unsafe_set a l (A1.unsafe_get a l + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a r (A1.unsafe_get a r + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a ((2 * v) + 1) 0
    end
  done

(* Push node [v0]'s pending add all the way to its leaves, iteratively
   on the preallocated scratch stack.  The cascade stops wherever a
   lazy cancels to zero, so the work is O(nodes holding or receiving
   a pending add), not O(subtree): deferring one sibling per level
   bounds the stack by the tree height (pstack is sized well past
   62-bit depth). *)
let push_subtree t v0 =
  let a = t.cells and stack = t.pstack and half = t.size / 2 in
  stack.(0) <- v0;
  let top = ref 1 in
  while !top > 0 do
    top := !top - 1;
    let u = stack.(!top) in
    let lz = A1.unsafe_get a ((2 * u) + 1) in
    if lz <> 0 then begin
      A1.unsafe_set a ((2 * u) + 1) 0;
      let l = 4 * u and r = (4 * u) + 2 in
      A1.unsafe_set a l (A1.unsafe_get a l + lz); (* lint: ok R1 — root guard *)
      A1.unsafe_set a r (A1.unsafe_get a r + lz); (* lint: ok R1 — root guard *)
      if u < half then begin
        (* internal children: lazies absorb the push and cascade *)
        A1.unsafe_set a (l + 1) (A1.unsafe_get a (l + 1) + lz); (* lint: ok R1 — root guard *)
        A1.unsafe_set a (r + 1) (A1.unsafe_get a (r + 1) + lz); (* lint: ok R1 — root guard *)
        stack.(!top) <- 2 * u;
        stack.(!top + 1) <- (2 * u) + 1;
        top := !top + 2
      end
    end
  done

(* Resolve every pending add down to the leaf cells.  The common case
   walks just the subtrees dirtied since the last flatten (a few
   range_adds between best-fit placements); an overflowed dirty list
   degrades to the full sweep. *)
let push_down t =
  if t.dirty_n < 0 then push_down_sweep t
  else
    for k = 0 to t.dirty_n - 1 do
      push_subtree t t.dirty.(k)
    done;
  t.dirty_n <- 0

(* After [push_down], column [i]'s final value sits in its leaf cell. *)
let leaf_get t i = A1.unsafe_get t.cells (2 * (t.size + i))

(* Refresh [t.flat]: columns outside the dirty span kept their values
   from the previous flatten, so only the touched span is re-read. *)
let flatten_into t =
  push_down t;
  for i = t.dirty_lo to t.dirty_hi - 1 do
    t.flat.(i) <- leaf_get t i
  done;
  t.dirty_lo <- t.n;
  t.dirty_hi <- 0

let to_array t =
  flatten_into t;
  Array.sub t.flat 0 t.n

let of_array arr =
  let t = create (Array.length arr) in
  Array.iteri (fun i v -> range_add t ~lo:i ~hi:(i + 1) v) arr;
  t

(* Sliding-window maximum (monotonic deque) over the preallocated
   flatten: all window peaks in O(n) with no per-call buffers.  The
   deque compares against the [t.flat] copy rather than the leaf
   cells directly: a Bigarray element read is two dependent loads
   (header, then data), so one sequential copy pass plus plain-array
   comparisons beats re-reading leaves inside the loop (measured). *)
let best_start t ~len =
  Dsp_util.Instr.bump c_best_start;
  if len < 1 || len > t.n then None
  else begin
    flatten_into t;
    let loads = t.flat and dq = t.deque in
    let n = t.n in
    let head = ref 0 and tail = ref 0 in
    let best_s = ref 0 and best_peak = ref max_int in
    for x = 0 to n - 1 do
      while !tail > !head && loads.(dq.(!tail - 1)) <= loads.(x) do
        tail := !tail - 1
      done;
      dq.(!tail) <- x;
      tail := !tail + 1;
      let s = x + 1 - len in (* lint: ok R1 — window index < n *)
      if s >= 0 then begin
        while dq.(!head) < s do
          head := !head + 1
        done;
        let wmax = loads.(dq.(!head)) in
        if wmax < !best_peak then begin
          best_peak := wmax;
          best_s := s
        end
      end
    done;
    Some (!best_s, !best_peak)
  end
