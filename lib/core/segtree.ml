type t = {
  n : int;
  size : int; (* smallest power of two >= n *)
  tree : int array; (* max of subtree, including pending adds below *)
  lazy_ : int array; (* pending add for the whole subtree *)
}

(* Kernel op counters (Dsp_util.Instr): one handle per entry point,
   bumped per public call, so the engine's per-solve reports show how
   hard each algorithm leans on the kernel. *)
let c_range_add = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_range_add
let c_range_max = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_range_max
let c_first_fit = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_first_fit
let c_last_above = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_find_last_above
let c_best_start = Dsp_util.Instr.counter Dsp_util.Instr.Sites.segtree_best_start

let create n =
  if n < 1 then invalid_arg "Segtree.create: size must be >= 1";
  let size = ref 1 in
  while !size < n do
    size := !size * 2
  done;
  { n; size = !size; tree = Array.make (2 * !size) 0; lazy_ = Array.make (2 * !size) 0 }

let size t = t.n
let copy t = { t with tree = Array.copy t.tree; lazy_ = Array.copy t.lazy_ }

(* Node [v] covers columns [node_lo, node_hi). The displayed value of a
   node is tree.(v) + sum of lazy_ on its ancestors; we keep tree.(v)
   inclusive of the node's own lazy, which makes queries top-down
   accumulate only strictly-above lazies. *)

let rec add_rec t v node_lo node_hi lo hi value =
  if hi <= node_lo || node_hi <= lo then ()
  else if lo <= node_lo && node_hi <= hi then begin
    (* range_add's O(1) root pre-check already proved max + value
       fits, and every node value is <= the root max. *)
    t.tree.(v) <- t.tree.(v) + value; (* lint: ok R1 — root guard *)
    t.lazy_.(v) <- t.lazy_.(v) + value (* lint: ok R1 — same root guard *)
  end
  else begin
    let mid = (node_lo + node_hi) / 2 in (* lint: ok R1 — indices <= 2*size *)
    add_rec t (2 * v) node_lo mid lo hi value;
    add_rec t ((2 * v) + 1) mid node_hi lo hi value;
    (* lint: ok R1 — rebuilt from guarded child values *)
    t.tree.(v) <- t.lazy_.(v) + max t.tree.(2 * v) t.tree.((2 * v) + 1)
  end

let range_add t ~lo ~hi value =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_add: bad range";
  Dsp_util.Instr.bump c_range_add;
  if lo < hi then begin
    (* O(1) accumulation overflow guard: a positive add can only push
       an int past [max_int] through the running maximum, and the root
       carries exactly that maximum.  (Negative adds cannot raise the
       max; underflow of untracked minima is out of scope.) *)
    if value > 0 then ignore (Dsp_util.Xutil.checked_add t.tree.(1) value);
    add_rec t 1 0 t.size lo hi value
  end

let rec max_rec t v node_lo node_hi lo hi acc_lazy =
  if hi <= node_lo || node_hi <= lo then min_int
  else if lo <= node_lo && node_hi <= hi then acc_lazy + t.tree.(v)
  else
    let mid = (node_lo + node_hi) / 2 in
    let acc = acc_lazy + t.lazy_.(v) in
    max
      (max_rec t (2 * v) node_lo mid lo hi acc)
      (max_rec t ((2 * v) + 1) mid node_hi lo hi acc)

let range_max t ~lo ~hi =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Segtree.range_max: bad range";
  Dsp_util.Instr.bump c_range_max;
  if lo >= hi then 0 else max_rec t 1 0 t.size lo hi 0

let max_all t = range_max t ~lo:0 ~hi:t.n
let get t i = range_max t ~lo:i ~hi:(i + 1)

let of_array arr =
  let t = create (Array.length arr) in
  Array.iteri (fun i v -> range_add t ~lo:i ~hi:(i + 1) v) arr;
  t

(* Flatten in O(n) with a single lazy-accumulating walk (get-per-index
   would be O(n log n) and dominates the profile renderers). *)
let to_array t =
  let out = Array.make t.n 0 in
  let rec go v node_lo node_hi acc =
    if node_lo < t.n then
      if node_hi - node_lo = 1 then out.(node_lo) <- acc + t.tree.(v)
      else begin
        let mid = (node_lo + node_hi) / 2 in
        let acc = acc + t.lazy_.(v) in
        go (2 * v) node_lo mid acc;
        go ((2 * v) + 1) mid node_hi acc
      end
  in
  go 1 0 t.size 0;
  out

(* Rightmost leaf in [lo, hi) whose value is strictly above the
   threshold, or -1.  Subtrees whose max is already <= threshold are
   pruned wholesale (valid even on partial overlap, since the subtree
   max dominates the max of any intersection), so the descent visits
   O(log n) nodes amortized. *)
let rec last_above_rec t v node_lo node_hi lo hi thr acc =
  if hi <= node_lo || node_hi <= lo then -1
  else if acc + t.tree.(v) <= thr then -1
  else if node_hi - node_lo = 1 then node_lo
  else
    let mid = (node_lo + node_hi) / 2 in
    let acc = acc + t.lazy_.(v) in
    let r = last_above_rec t ((2 * v) + 1) mid node_hi lo hi thr acc in
    if r >= 0 then r else last_above_rec t (2 * v) node_lo mid lo hi thr acc

let find_last_above t ~lo ~hi threshold =
  if lo < 0 || hi > t.n || lo > hi then
    invalid_arg "Segtree.find_last_above: bad range";
  Dsp_util.Instr.bump c_last_above;
  let r = last_above_rec t 1 0 t.size lo hi threshold 0 in
  if r < 0 then None else Some r

(* Skip-ahead first fit: test the window at [s]; on violation, jump
   past the *last* violating column instead of stepping to [s + 1].
   Every violating column is skipped exactly once across the whole
   scan, so a full placement costs O((k + 1) log n) where k is the
   number of violating columns encountered, instead of O(n * len). *)
let first_fit_from t ~from ~len ~height ~limit =
  Dsp_util.Instr.bump c_first_fit;
  if len < 1 || len > t.n then None
  else begin
    let thr = limit - height in
    let rec go s =
      if s + len > t.n then None
      else
        match last_above_rec t 1 0 t.size s (s + len) thr 0 with
        | -1 -> Some s
        | j -> go (j + 1)
    in
    go (max 0 from)
  end

let first_fit_pos t ~len ~height ~limit =
  first_fit_from t ~from:0 ~len ~height ~limit

let min_peak_start t ~len ~height ~limit = first_fit_pos t ~len ~height ~limit

(* Sliding-window maximum (monotonic deque) over an O(n) flatten:
   all window peaks in O(n), versus n range-max queries. *)
let best_start t ~len =
  Dsp_util.Instr.bump c_best_start;
  if len < 1 || len > t.n then None
  else begin
    let loads = to_array t in
    let n = t.n in
    let dq = Array.make n 0 in
    let head = ref 0 and tail = ref 0 in
    let best_s = ref 0 and best_peak = ref max_int in
    for x = 0 to n - 1 do
      while !tail > !head && loads.(dq.(!tail - 1)) <= loads.(x) do
        decr tail
      done;
      dq.(!tail) <- x;
      incr tail;
      let s = x - len + 1 in
      if s >= 0 then begin
        while dq.(!head) < s do
          incr head
        done;
        let wmax = loads.(dq.(!head)) in
        if wmax < !best_peak then begin
          best_peak := wmax;
          best_s := s
        end
      end
    done;
    Some (!best_s, !best_peak)
  end
