(** Demand profiles (skylines) over the discrete strip [0, width).

    A profile records, for every unit column of the strip, the total
    height of items covering it.  It is the central object of Demand
    Strip Packing: the objective value of a packing is exactly the peak
    of its profile.  The implementation is backed by the lazy segment
    tree ({!Segtree}): range updates and window-peak queries are
    O(log width), and the placement queries {!first_fit_start} /
    {!best_start} replace whole O(width * len) scan loops.  The
    pre-kernel flat-array implementation survives as {!Naive} for
    differential testing and as the baseline of the kernel
    benchmark. *)

type t

val create : int -> t
(** [create width] is the all-zero profile over [0, width). *)

val width : t -> int

val add : t -> start:int -> len:int -> height:int -> unit
(** Add [height] to all columns in [start, start + len); [height] may
    be negative (removal).
    @raise Invalid_argument if the range leaves the strip. *)

val add_item : t -> Item.t -> start:int -> unit
val remove_item : t -> Item.t -> start:int -> unit

val load : t -> int -> int
(** Load of one column. *)

val peak : t -> int
(** Maximum load over all columns; 0 for an empty strip. *)

val peak_in : t -> start:int -> len:int -> int
(** Maximum load over the window [start, start + len). *)

val copy : t -> t
val to_array : t -> int array

val reset : t -> unit
(** Zero every column in place, reusing the allocated storage
    ({!Segtree.reset}).  Cheaper than [create] for session reuse. *)

val checkpoint : t -> int
(** Open a transactional region over the profile and return its mark;
    see {!Segtree.checkpoint}.  Migration trials in the incremental
    session use this instead of {!copy} — undoing a trial costs
    O(updates tried), not O(width). *)

val rollback : t -> int -> unit
(** Undo every update since the matching {!checkpoint} (LIFO) and
    close it; see {!Segtree.rollback}. *)

val commit : t -> int -> unit
(** Keep every update since the matching {!checkpoint} and close it;
    see {!Segtree.commit}. *)

val peak_column : t -> int option
(** A column attaining the peak (the rightmost one), or [None] when
    the profile has no positive load.  O(log width). *)

val first_fit_start :
  ?from:int -> t -> len:int -> height:int -> budget:int -> int option
(** [first_fit_start t ~len ~height ~budget] is the leftmost start [s]
    (at least [from], default 0) where placing an item of the given
    footprint keeps the window peak within [budget]
    ([peak_in s len + height <= budget]); [None] if no start
    qualifies.  Skip-ahead segment-tree descent — see
    {!Segtree.first_fit_from}. *)

val best_start : t -> len:int -> (int * int) option
(** [best_start t ~len] is [(s, peak)] for the leftmost start [s]
    minimizing the window peak, together with that peak; [None] when
    [len] exceeds the strip width.  O(width) sliding-window maximum. *)

val of_starts : Instance.t -> int array -> t
(** Profile of the packing that starts item [i] at [starts.(i)]. *)

val pp : Format.formatter -> t -> unit

val render : ?max_rows:int -> t -> string
(** ASCII skyline, one character column per strip column, for the
    examples and the CLI. *)

(** The pre-kernel flat-array profile, kept as a reference
    implementation.  Differential property tests
    ([test/test_kernel.ml]) drive both implementations with the same
    operation streams and require identical answers; the kernel
    benchmark uses it as the naive baseline. *)
module Naive : sig
  type t

  val create : int -> t
  val width : t -> int
  val add : t -> start:int -> len:int -> height:int -> unit
  val add_item : t -> Item.t -> start:int -> unit
  val remove_item : t -> Item.t -> start:int -> unit
  val load : t -> int -> int
  val peak : t -> int
  val peak_in : t -> start:int -> len:int -> int
  val copy : t -> t
  val to_array : t -> int array
  val of_starts : Instance.t -> int array -> t
end
