(** Lazy segment tree with range-add updates and range-max queries —
    the packing kernel behind {!Profile} and the placement loops.

    The incremental DSP algorithms (first-fit placement, branch and
    bound) repeatedly ask "what is the peak load in this window?",
    "add h to this window", and "where is the leftmost window whose
    peak stays under a budget?".  All three are O(log width) here
    versus O(width) on a flat load array; {!first_fit_from} further
    skips past the column that caused a violation instead of advancing
    one start at a time.  The kernel micro-experiment
    ([bench/main.exe -- kernel]) measures both structures side by
    side and writes the result to [BENCH.json].

    The default implementation is a flat, implicit-layout kernel over
    a single native-[int] [Bigarray]: iterative traversals with
    preallocated scratch, so the steady-state operations ({!range_add},
    {!range_max}, {!find_last_above_i}, {!first_fit_from_i}) allocate
    nothing.  The original recursive array-of-[int] kernel is kept as
    {!Boxed} for differential testing and as the ablation baseline of
    the kernel experiment; both expose the same operations and bump
    the same [segtree.*] instrumentation counters. *)

type t

val create : int -> t
(** [create n] is the all-zero tree over columns [0, n). *)

val size : t -> int

val copy : t -> t
(** Independent snapshot (for backtracking searches that fork). *)

val range_add : t -> lo:int -> hi:int -> int -> unit
(** Add a value to all columns in [lo, hi) — [hi] exclusive. *)

val reset : t -> unit
(** Zero every column in place, reusing the allocated storage.  Also
    discards any outstanding checkpoints.  O(size), allocation-free —
    cheaper than [create] for session reuse. *)

val checkpoint : t -> int
(** Open a transactional region and return its mark.  While at least
    one checkpoint is outstanding, every {!range_add} is journaled
    ((lo, hi, value) triples) so it can be undone without copying the
    tree.  Checkpoints nest with LIFO discipline: resolve the most
    recent mark first, via {!rollback} or {!commit}. *)

val rollback : t -> int -> unit
(** [rollback t mark] undoes every {!range_add} performed since
    [checkpoint t] returned [mark] (newest first) and closes that
    checkpoint.  O(updates since the mark) — independent of tree
    size.  Raises [Invalid_argument] when no checkpoint is outstanding
    or the mark does not match the LIFO discipline. *)

val commit : t -> int -> unit
(** [commit t mark] keeps every update since [mark] and closes the
    checkpoint.  The journal is retained while outer checkpoints
    remain open (so an enclosing {!rollback} still undoes the
    committed inner region) and dropped when the last one closes. *)

val range_max : t -> lo:int -> hi:int -> int
(** Maximum over [lo, hi); 0 when the range is empty. *)

val max_all : t -> int
val get : t -> int -> int
val of_array : int array -> t

val to_array : t -> int array
(** Flatten to per-column values in O(n) (single lazy-accumulating
    walk, not n point queries). *)

val find_last_above : t -> lo:int -> hi:int -> int -> int option
(** [find_last_above t ~lo ~hi threshold] is the rightmost column in
    [lo, hi) whose value is strictly greater than [threshold]; [None]
    if the whole window is at most [threshold].  O(log n) tree
    descent. *)

val find_last_above_i : t -> lo:int -> hi:int -> int -> int
(** {!find_last_above} with a [-1] sentinel instead of [None] — the
    allocation-free form for hot loops (an option result boxes). *)

val first_fit_from : t -> from:int -> len:int -> height:int -> limit:int -> int option
(** [first_fit_from t ~from ~len ~height ~limit] is the smallest start
    [s >= from] such that [range_max t s (s+len) + height <= limit],
    or [None].  Skip-ahead descent: a failed window jumps directly
    past its last violating column, so a whole scan is
    O((violations + 1) log n) amortized rather than O(n * len). *)

val first_fit_from_i : t -> from:int -> len:int -> height:int -> limit:int -> int
(** {!first_fit_from} with a [-1] sentinel instead of [None] — the
    allocation-free form for hot loops (an option result boxes). *)

val first_fit_pos : t -> len:int -> height:int -> limit:int -> int option
(** [first_fit_from] with [from = 0]. *)

val min_peak_start : t -> len:int -> height:int -> limit:int -> int option
(** Historical alias of {!first_fit_pos} (kept for callers of the
    pre-kernel interface). *)

val best_start : t -> len:int -> (int * int) option
(** [best_start t ~len] is [(s, peak)] where [s] is the leftmost start
    minimizing the window peak [range_max t s (s+len)] and [peak] that
    minimum; [None] when no window of length [len] fits.  O(n) via a
    sliding-window maximum over a flattened snapshot. *)

(** The original recursive kernel over boxed OCaml arrays, kept as the
    differential-testing reference for the flat kernel and as the
    ablation baseline of the [kernel] bench experiment.  Same
    semantics, same counters, same overflow guards. *)
module Boxed : sig
  type t

  val create : int -> t
  val size : t -> int
  val copy : t -> t
  val range_add : t -> lo:int -> hi:int -> int -> unit
  val range_max : t -> lo:int -> hi:int -> int
  val max_all : t -> int
  val get : t -> int -> int
  val of_array : int array -> t
  val to_array : t -> int array
  val find_last_above : t -> lo:int -> hi:int -> int -> int option
  val first_fit_from : t -> from:int -> len:int -> height:int -> limit:int -> int option
  val first_fit_pos : t -> len:int -> height:int -> limit:int -> int option
  val best_start : t -> len:int -> (int * int) option
end
