(* The flat-array implementation, kept verbatim as a reference for
   differential testing and for the naive side of the kernel
   benchmark.  The production profile below is backed by the lazy
   segment tree and must agree with this module on every operation. *)
module Naive = struct
  type t = { loads : int array }

  let create width =
    if width < 1 then invalid_arg "Profile.create: width must be >= 1";
    { loads = Array.make width 0 }

  let width t = Array.length t.loads

  let add t ~start ~len ~height =
    let stop = Dsp_util.Xutil.checked_add start len in
    if start < 0 || len < 0 || stop > width t then
      invalid_arg
        (Printf.sprintf "Profile.add: range [%d,%d) outside strip of width %d"
           start stop (width t));
    for x = start to stop - 1 do
      t.loads.(x) <- Dsp_util.Xutil.checked_add t.loads.(x) height
    done

  let add_item t (it : Item.t) ~start = add t ~start ~len:it.w ~height:it.h
  let remove_item t (it : Item.t) ~start = add t ~start ~len:it.w ~height:(-it.h)
  let load t x = t.loads.(x)
  let peak t = Array.fold_left max 0 t.loads

  let peak_in t ~start ~len =
    let stop = Dsp_util.Xutil.checked_add start len in
    if start < 0 || len < 0 || stop > width t then
      invalid_arg "Profile.peak_in: range outside strip";
    let m = ref 0 in
    for x = start to stop - 1 do
      if t.loads.(x) > !m then m := t.loads.(x)
    done;
    !m

  let copy t = { loads = Array.copy t.loads }
  let to_array t = Array.copy t.loads

  let of_starts (inst : Instance.t) starts =
    if Array.length starts <> Instance.n_items inst then
      invalid_arg "Profile.of_starts: starts array does not match instance";
    let p = create inst.Instance.width in
    Array.iteri (fun i s -> add_item p (Instance.item inst i) ~start:s) starts;
    p
end

type t = { tree : Segtree.t }

let create width =
  if width < 1 then invalid_arg "Profile.create: width must be >= 1";
  { tree = Segtree.create width }

let width t = Segtree.size t.tree

let add t ~start ~len ~height =
  let stop = Dsp_util.Xutil.checked_add start len in
  if start < 0 || len < 0 || stop > width t then
    invalid_arg
      (Printf.sprintf "Profile.add: range [%d,%d) outside strip of width %d"
         start stop (width t));
  Segtree.range_add t.tree ~lo:start ~hi:stop height

let add_item t (it : Item.t) ~start = add t ~start ~len:it.w ~height:it.h
let remove_item t (it : Item.t) ~start = add t ~start ~len:it.w ~height:(-it.h)
let load t x = Segtree.get t.tree x

(* Like the naive reference, peaks are clamped at 0: loads can only go
   negative through explicit negative adds, and the empty window has
   peak 0. *)
let peak t = max 0 (Segtree.max_all t.tree)

let peak_in t ~start ~len =
  let stop = Dsp_util.Xutil.checked_add start len in
  if start < 0 || len < 0 || stop > width t then
    invalid_arg "Profile.peak_in: range outside strip";
  max 0 (Segtree.range_max t.tree ~lo:start ~hi:stop)

let copy t = { tree = Segtree.copy t.tree }
let to_array t = Segtree.to_array t.tree
let reset t = Segtree.reset t.tree
let checkpoint t = Segtree.checkpoint t.tree
let rollback t mark = Segtree.rollback t.tree mark
let commit t mark = Segtree.commit t.tree mark

(* A column attaining the (positive) peak: the rightmost column whose
   load is strictly above peak - 1, i.e. equal to the peak. *)
let peak_column t =
  let pk = Segtree.max_all t.tree in
  if pk <= 0 then None
  else Some (Segtree.find_last_above_i t.tree ~lo:0 ~hi:(width t) (pk - 1))

let first_fit_start ?(from = 0) t ~len ~height ~budget =
  Segtree.first_fit_from t.tree ~from ~len ~height ~limit:budget

let best_start t ~len = Segtree.best_start t.tree ~len

let of_starts (inst : Instance.t) starts =
  if Array.length starts <> Instance.n_items inst then
    invalid_arg "Profile.of_starts: starts array does not match instance";
  let p = create inst.Instance.width in
  Array.iteri (fun i s -> add_item p (Instance.item inst i) ~start:s) starts;
  p

let pp fmt t =
  Format.fprintf fmt "@[profile(peak=%d): %a@]" (peak t) Dsp_util.Xutil.pp_int_list
    (Array.to_list (to_array t))

let render ?(max_rows = 20) t =
  let loads = to_array t in
  let pk = peak t in
  if pk = 0 then "(empty strip)"
  else
    let rows = min pk max_rows in
    (* Each text row represents a band of loads of size [band]. *)
    let band = Dsp_util.Xutil.ceil_div pk rows in
    let buf = Buffer.create ((width t + 1) * rows) in
    for r = rows downto 1 do
      let threshold = (r - 1) * band in
      for x = 0 to width t - 1 do
        Buffer.add_char buf (if loads.(x) > threshold then '#' else '.')
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make (width t) '-');
    Buffer.add_string buf (Printf.sprintf "\npeak = %d (1 row ~ %d units)" pk band);
    Buffer.contents buf
