(** Arrival/departure traces for online (incremental) DSP.

    A trace is the input of an incremental solve session
    ([Dsp_engine.Session]): a strip width and an ordered stream of
    events — items arriving (to be placed immediately, without
    knowledge of the future) and items departing (freeing their
    demand).  Departures name the 0-based position of the arrival they
    cancel, counted over the [Arrive] events of the trace, so a trace
    is self-contained and replayable without any session state.

    Serialization is line oriented, in the style of {!Io} ([#] starts
    a comment):
    {v
    trace <width>
    + <w> <h>      an item of width w and height h arrives
    - <k>          the k-th arrival (0-based) departs
    v}
    Parsing mirrors {!Io}'s hardened parsing: typed errors carrying
    the 1-based line number of the offending line in the original
    text, dimension and capacity checks against the header width, and
    stream-consistency checks (departures must name an arrival that
    exists and is still live). *)

open Dsp_core

type event =
  | Arrive of { w : int; h : int }
  | Depart of { arrival : int }
      (** 0-based index into the trace's [Arrive] events *)

type t = { width : int; events : event list }

type error_kind =
  | Empty_input  (** no non-comment lines at all *)
  | Bad_header of string  (** first line is not [trace <width>] *)
  | Bad_cap of int  (** header width below 1 *)
  | Bad_event of string  (** a line that is neither [+ w h] nor [- k] *)
  | Bad_number of string  (** a token that is not an integer *)
  | Bad_dimension of int * int  (** a non-positive arrival width or height *)
  | Too_wide of int * int  (** [(w, width)]: arrival wider than the strip *)
  | Unknown_arrival of int  (** departure of an arrival not yet seen *)
  | Departed_twice of int  (** departure of an already-departed arrival *)

type error = { line : int; kind : error_kind }

val error_to_string : error -> string
(** Human-readable rendering, prefixed with ["line N: "] when
    [line > 0]. *)

val validate : t -> (unit, error) result
(** Check the stream invariants of an in-memory trace (dimensions,
    capacity, departure references).  Errors carry [line = 0];
    generated traces satisfy this by construction. *)

val to_string : t -> string
val of_string : string -> (t, error) result

val n_arrivals : t -> int
val n_departures : t -> int

val to_instance : t -> Instance.t
(** The batch instance of {e all} arrivals, in arrival order (item ids
    equal arrival indices) — the offline yardstick for arrivals-only
    traces. *)

val live_instance : t -> Instance.t * int list
(** The instance of the arrivals still live after the whole trace,
    paired with their original arrival indices (in arrival order) —
    the offline yardstick for traces with departures.  Item ids are
    re-numbered densely. *)

(** {2 Generators}

    All generators draw exclusively from the given {!Dsp_util.Rng.t},
    so traces replay bit-identically from a seed. *)

val of_instance : ?shuffle:Dsp_util.Rng.t -> Instance.t -> t
(** Arrivals-only trace of the instance's items, in item order, or in
    a uniformly random order when [shuffle] is given. *)

val gap_arrivals : Dsp_util.Rng.t -> scale:int -> t
(** The {!Gap_family} witness instance at the given height scale,
    arriving in a uniformly random order (arrivals only) — the
    adversarial family where greedy online placement pays for not
    knowing the future. *)

val smartgrid : Dsp_util.Rng.t -> households:int -> departures:bool -> t
(** A replayed smart-grid day ({!Dsp_smartgrid.Smartgrid}): appliance
    runs arrive in the order their owners press the button.  With
    [departures = true] each run also switches off a few multiples of
    its duration later (when that falls within the day), so the live
    demand set churns; departures at a slot precede that slot's
    arrivals. *)

val churn : Dsp_util.Rng.t -> width:int -> n:int -> t
(** [n] uniform random arrivals (width up to a third of the strip);
    after each, with probability ~1/3, a uniformly chosen live item
    departs.  Exercises the full event vocabulary for tests and
    smoke runs. *)
