open Dsp_core

type event = Arrive of { w : int; h : int } | Depart of { arrival : int }
type t = { width : int; events : event list }

type error_kind =
  | Empty_input
  | Bad_header of string
  | Bad_cap of int
  | Bad_event of string
  | Bad_number of string
  | Bad_dimension of int * int
  | Too_wide of int * int
  | Unknown_arrival of int
  | Departed_twice of int

type error = { line : int; kind : error_kind }

let error_to_string { line; kind } =
  let at = if line > 0 then Printf.sprintf "line %d: " line else "" in
  let body =
    match kind with
    | Empty_input -> "empty input"
    | Bad_header h -> Printf.sprintf "bad header %S (want \"trace <width>\")" h
    | Bad_cap c -> Printf.sprintf "width must be >= 1, got %d" c
    | Bad_event l ->
        Printf.sprintf "expected \"+ <w> <h>\" or \"- <arrival>\", got %S" l
    | Bad_number tok -> Printf.sprintf "not an integer: %S" tok
    | Bad_dimension (w, h) ->
        Printf.sprintf "dimensions must be >= 1, got %d x %d" w h
    | Too_wide (v, cap) ->
        Printf.sprintf "demand %d exceeds the capacity %d of the header" v cap
    | Unknown_arrival k ->
        Printf.sprintf "departure of arrival %d, which has not arrived" k
    | Departed_twice k ->
        Printf.sprintf "departure of arrival %d, which already departed" k
  in
  at ^ body

let err ~line kind = Error { line; kind }

(* One pass over the events checking what the parser checks, with the
   given per-event source lines for attribution (line 0 for in-memory
   traces). *)
let check_events ~width events lines =
  let departed = Hashtbl.create 16 in
  let rec go arrivals events lines =
    match events with
    | [] -> Ok ()
    | ev :: rest ->
        let line, lines =
          match lines with [] -> (0, []) | l :: ls -> (l, ls)
        in
        let continue arrivals = go arrivals rest lines in
        (match ev with
        | Arrive { w; h } ->
            if w < 1 || h < 1 then err ~line (Bad_dimension (w, h))
            else if w > width then err ~line (Too_wide (w, width))
            else continue (arrivals + 1)
        | Depart { arrival } ->
            if arrival < 0 || arrival >= arrivals then
              err ~line (Unknown_arrival arrival)
            else if Hashtbl.mem departed arrival then
              err ~line (Departed_twice arrival)
            else begin
              Hashtbl.add departed arrival ();
              continue arrivals
            end)
  in
  go 0 events lines

let validate t =
  if t.width < 1 then err ~line:0 (Bad_cap t.width)
  else check_events ~width:t.width t.events []

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "trace %d\n" t.width);
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (match ev with
        | Arrive { w; h } -> Printf.sprintf "+ %d %d\n" w h
        | Depart { arrival } -> Printf.sprintf "- %d\n" arrival))
    t.events;
  Buffer.contents buf

let of_string s =
  match Io.relevant_lines s with
  | [] -> err ~line:0 Empty_input
  | (line_no, header) :: rest -> (
      match Io.tokens header with
      | [ "trace"; v ] -> (
          match int_of_string_opt v with
          | None -> err ~line:line_no (Bad_number v)
          | Some width when width < 1 -> err ~line:line_no (Bad_cap width)
          | Some width -> (
              let parse_line (line_no, line) =
                match Io.tokens line with
                | [ "+"; a; b ] -> (
                    match (int_of_string_opt a, int_of_string_opt b) with
                    | Some w, Some h -> Ok (line_no, Arrive { w; h })
                    | None, _ -> err ~line:line_no (Bad_number a)
                    | _, None -> err ~line:line_no (Bad_number b))
                | [ "-"; a ] -> (
                    match int_of_string_opt a with
                    | Some k -> Ok (line_no, Depart { arrival = k })
                    | None -> err ~line:line_no (Bad_number a))
                | _ -> err ~line:line_no (Bad_event line)
              in
              let rec parse acc = function
                | [] -> Ok (List.rev acc)
                | l :: ls -> (
                    match parse_line l with
                    | Error e -> Error e
                    | Ok ev -> parse (ev :: acc) ls)
              in
              match parse [] rest with
              | Error e -> Error e
              | Ok tagged -> (
                  let events = List.map snd tagged in
                  let lines = List.map fst tagged in
                  match check_events ~width events lines with
                  | Error e -> Error e
                  | Ok () -> Ok { width; events })))
      | _ -> err ~line:line_no (Bad_header header))

let n_arrivals t =
  List.length
    (List.filter (function Arrive _ -> true | Depart _ -> false) t.events)

let n_departures t =
  List.length
    (List.filter (function Arrive _ -> false | Depart _ -> true) t.events)

let arrival_dims t =
  List.filter_map
    (function Arrive { w; h } -> Some (w, h) | Depart _ -> None)
    t.events

let to_instance t = Instance.of_dims ~width:t.width (arrival_dims t)

let live_instance t =
  let dims = Array.of_list (arrival_dims t) in
  let live = Array.make (Array.length dims) true in
  List.iter
    (function Depart { arrival } -> live.(arrival) <- false | Arrive _ -> ())
    t.events;
  let idx = ref [] and kept = ref [] in
  Array.iteri
    (fun i d ->
      if live.(i) then begin
        idx := i :: !idx;
        kept := d :: !kept
      end)
    dims;
  (Instance.of_dims ~width:t.width (List.rev !kept), List.rev !idx)

(* ----- generators --------------------------------------------------- *)

let of_instance ?shuffle (inst : Instance.t) =
  let items = Array.map (fun (it : Item.t) -> (it.w, it.h)) inst.Instance.items in
  (match shuffle with None -> () | Some rng -> Dsp_util.Rng.shuffle rng items);
  {
    width = inst.Instance.width;
    events = Array.to_list (Array.map (fun (w, h) -> Arrive { w; h }) items);
  }

let gap_arrivals rng ~scale = of_instance ~shuffle:rng (Gap_family.instance ~scale)

let smartgrid rng ~households ~departures =
  let module Sg = Dsp_smartgrid.Smartgrid in
  let runs =
    List.stable_sort
      (fun (a : Sg.run) (b : Sg.run) -> compare a.arrival b.arrival)
      (Sg.simulate_day rng ~households)
  in
  let width = Sg.slots_per_day in
  (* Timestamped stream: each run arrives at its arrival slot; with
     churn enabled it departs a few multiples of its duration later,
     when that still falls within the day.  At a given slot departures
     free demand before new arrivals claim it.  The sort key
     (slot, class, sequence) keeps the construction deterministic. *)
  let stamped = ref [] in
  List.iteri
    (fun k (r : Sg.run) ->
      let d = r.appliance.duration and p = r.appliance.power in
      stamped := (r.arrival, 1, k, Arrive { w = d; h = p }) :: !stamped;
      if departures then begin
        let off = r.arrival + (d * Dsp_util.Rng.int_in rng 2 4) in
        if off < width then
          stamped := (off, 0, k, Depart { arrival = k }) :: !stamped
      end)
    runs;
  let stamped =
    List.sort
      (fun (t1, c1, s1, _) (t2, c2, s2, _) -> compare (t1, c1, s1) (t2, c2, s2))
      !stamped
  in
  { width; events = List.map (fun (_, _, _, ev) -> ev) stamped }

let churn rng ~width ~n =
  if width < 1 then invalid_arg "Trace.churn: width must be >= 1";
  if n < 0 then invalid_arg "Trace.churn: n must be >= 0";
  let events = ref [] and live = ref [] in
  for k = 0 to n - 1 do
    let w = Dsp_util.Rng.int_in rng 1 (max 1 (width / 3)) in
    let h = Dsp_util.Rng.int_in rng 1 50 in
    events := Arrive { w; h } :: !events;
    live := k :: !live;
    if Dsp_util.Rng.int rng 3 = 0 then begin
      let alive = Array.of_list !live in
      let victim = Dsp_util.Rng.choose rng alive in
      live := List.filter (fun i -> i <> victim) !live;
      events := Depart { arrival = victim } :: !events
    end
  done;
  { width; events = List.rev !events }
