(** Plain-text serialization of DSP and PTS instances.

    Format (line oriented; [#] starts a comment):
    {v
    dsp <width>
    <w> <h>        one line per item
    v}
    and analogously [pts <machines>] with [<p> <q>] lines.

    Parsing returns typed errors carrying the 1-based line number of
    the offending line in the {e original} text (comments and blank
    lines count), so a message like "line 7: not an integer" points at
    what the user actually wrote.  [line = 0] marks whole-file errors
    (empty input, constructor rejections with no single line to
    blame). *)

open Dsp_core

type error_kind =
  | Empty_input  (** no non-comment lines at all *)
  | Bad_header of string
      (** first line is not [dsp <width>] / [pts <machines>] *)
  | Bad_cap of int  (** header width / machine count below 1 *)
  | Truncated_line of string  (** a data line without exactly two tokens *)
  | Bad_number of string  (** a token that is not an integer *)
  | Bad_dimension of int * int  (** a non-positive width or height *)
  | Too_wide of int * int
      (** [(value, cap)]: an item demand exceeding the header capacity *)
  | Invalid of string  (** rejection raised by the instance constructor *)

type error = { line : int; kind : error_kind }

val error_to_string : error -> string
(** Human-readable rendering, prefixed with ["line N: "] when [line > 0]. *)

val instance_to_string : Instance.t -> string
val instance_of_string : string -> (Instance.t, error) result
val pts_to_string : Pts.Inst.t -> string
val pts_of_string : string -> (Pts.Inst.t, error) result
val write_file : string -> string -> unit
val read_file : string -> string

(** {2 Parsing toolkit}

    Shared by {!Trace}'s parser so every line-oriented format in this
    library reports errors the same way. *)

val relevant_lines : string -> (int * string) list
(** Non-blank, non-comment lines paired with their 1-based position in
    the original text. *)

val tokens : string -> string list
(** Whitespace-split tokens of one line. *)
