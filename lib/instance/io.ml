open Dsp_core

type error_kind =
  | Empty_input
  | Bad_header of string
  | Bad_cap of int
  | Truncated_line of string
  | Bad_number of string
  | Bad_dimension of int * int
  | Too_wide of int * int
  | Invalid of string

type error = { line : int; kind : error_kind }

let error_to_string { line; kind } =
  let at = if line > 0 then Printf.sprintf "line %d: " line else "" in
  let body =
    match kind with
    | Empty_input -> "empty input"
    | Bad_header h ->
        Printf.sprintf "bad header %S (want \"dsp <width>\" or \"pts <machines>\")"
          h
    | Bad_cap c -> Printf.sprintf "width/machine count must be >= 1, got %d" c
    | Truncated_line l ->
        Printf.sprintf "expected two integers per line, got %S" l
    | Bad_number tok -> Printf.sprintf "not an integer: %S" tok
    | Bad_dimension (w, h) ->
        Printf.sprintf "dimensions must be >= 1, got %d x %d" w h
    | Too_wide (v, cap) ->
        Printf.sprintf "demand %d exceeds the capacity %d of the header" v cap
    | Invalid msg -> msg
  in
  at ^ body

let err ~line kind = Error { line; kind }

let instance_to_string (inst : Instance.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dsp %d\n" inst.Instance.width);
  Array.iter
    (fun (it : Item.t) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" it.w it.h))
    inst.Instance.items;
  Buffer.contents buf

let pts_to_string (inst : Pts.Inst.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pts %d\n" inst.Pts.Inst.machines);
  Array.iter
    (fun (j : Pts.Job.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" j.Pts.Job.p j.Pts.Job.q))
    inst.Pts.Inst.jobs;
  Buffer.contents buf

(* Lines paired with their 1-based position in the original text, so
   every parse error can point at the offending line; blanks and [#]
   comments are dropped here. *)
let relevant_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_pairs lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (line_no, line) :: rest -> (
        match tokens line with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b ->
                if a < 1 || b < 1 then err ~line:line_no (Bad_dimension (a, b))
                else go ((line_no, (a, b)) :: acc) rest
            | None, _ -> err ~line:line_no (Bad_number a)
            | _, None -> err ~line:line_no (Bad_number b))
        | _ -> err ~line:line_no (Truncated_line line))
  in
  go [] lines

let parse_header keyword s =
  match relevant_lines s with
  | [] -> err ~line:0 Empty_input
  | (line_no, header) :: rest -> (
      match tokens header with
      | [ kw; v ] when kw = keyword -> (
          match int_of_string_opt v with
          | Some v when v >= 1 -> Ok (v, rest)
          | Some v -> err ~line:line_no (Bad_cap v)
          | None -> err ~line:line_no (Bad_number v))
      | _ -> err ~line:line_no (Bad_header header))

(* The capacity check ([w <= width] / [q <= machines]) re-implements
   what the constructors enforce, purely to attribute the error to a
   line; the constructor stays the source of truth and any remaining
   rejection is wrapped as [Invalid]. *)
let check_capacity ~cap pairs =
  let rec go = function
    | [] -> Ok ()
    | (line_no, (a, _)) :: rest ->
        if a > cap then err ~line:line_no (Too_wide (a, cap)) else go rest
  in
  go pairs

let parse_with ~keyword ~cap_field ~build s =
  match parse_header keyword s with
  | Error e -> Error e
  | Ok (cap, rest) -> (
      match parse_pairs rest with
      | Error e -> Error e
      | Ok pairs -> (
          match
            if cap_field then check_capacity ~cap pairs else Ok ()
          with
          | Error e -> Error e
          | Ok () -> (
              try Ok (build ~cap (List.map snd pairs))
              with Invalid_argument msg -> err ~line:0 (Invalid msg))))

let instance_of_string s =
  parse_with ~keyword:"dsp" ~cap_field:true
    ~build:(fun ~cap dims -> Instance.of_dims ~width:cap dims)
    s

let pts_of_string s =
  parse_with ~keyword:"pts" ~cap_field:false
    ~build:(fun ~cap dims -> Pts.Inst.of_dims ~machines:cap dims)
    s

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
