(* The Theorem 1 hardness pipeline and the sliced-vs-unsliced gap.

   3-Partition -> PTS on 4 machines -> DSP: a yes-instance packs to
   height exactly 4; deciding that is as hard as 3-Partition, which is
   why no pseudo-polynomial algorithm can approximate DSP below 5/4.

   Run with: dune exec examples/hardness_gap.exe *)

open Dsp_core
module Hardness = Dsp_instance.Hardness

let () =
  let rng = Dsp_util.Rng.create 7 in
  let tp = Hardness.yes_instance rng ~k:3 ~bound:16 in
  Printf.printf "3-Partition instance (k=%d, B=%d): %s\n" tp.Hardness.k
    tp.Hardness.bound
    (String.concat " "
       (Array.to_list (Array.map string_of_int tp.Hardness.numbers)));

  (* Solve it exactly and build the witness schedule. *)
  (match Dsp_exact.Three_partition.solve ~numbers:tp.Hardness.numbers ~bound:tp.Hardness.bound () with
  | None -> print_endline "unexpectedly unsolvable!"
  | Some triples ->
      let sched = Hardness.schedule_of_partition tp ~triples in
      Printf.printf "witness schedule on 4 machines, makespan %d (target %d):\n%s\n\n"
        (Pts.Schedule.makespan sched)
        (Hardness.target_makespan tp)
        (Pts.Schedule.render sched));

  (* The same structure as a DSP instance: optimum 4 iff solvable. *)
  let dsp = Hardness.to_dsp tp in
  Printf.printf "as a DSP instance: width %d, %d items\n" dsp.Instance.width
    (Instance.n_items dsp);
  (match Dsp_exact.Dsp_bb.optimal_height ~node_limit:5_000_000 dsp with
  | Some h -> Printf.printf "exact optimal peak: %d (4 = yes-instance)\n\n" h
  | None -> print_endline "exact search exhausted its budget\n");

  (* The integrality gap between classical and demand strip packing:
     slicing can genuinely lower the optimum. *)
  let gap = Dsp_instance.Gap_family.instance ~scale:1 in
  Printf.printf "gap instance (width %d, %d items):\n" gap.Instance.width
    (Instance.n_items gap);
  match
    ( Dsp_exact.Dsp_bb.optimal_height gap,
      Dsp_exact.Sp_exact.optimal_height gap )
  with
  | Some dsp_opt, Some sp_opt ->
      Printf.printf "OPT with slicing = %d, OPT without slicing = %d: gap %.4f\n"
        dsp_opt sp_opt
        (float_of_int sp_opt /. float_of_int dsp_opt)
  | _ -> print_endline "exact search exhausted its budget"
