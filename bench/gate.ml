(* Perf-regression gate: compare a candidate BENCH.json against a
   baseline (--baseline PATH, default the checked-in
   bench/results/baseline-kernel-smoke.json) for one experiment
   (default kernel-smoke) and fail on regressions.  Driven by
   scripts/perf_gate.sh in check.sh and CI.

   Checks, in order:
   - both files parse and validate under the Bench_json loader;
   - the experiment ran to "ok" status in the candidate;
   - every "*_seconds" metric present in both files: the candidate may
     not exceed baseline * (1 + TOLERANCE) once past an absolute floor
     (small timings are pure noise — an 0.002s -> 0.004s move is not a
     2x regression worth failing CI over);
   - every "*_us" percentile inside a latency group present in both
     files (the serve experiment's SLA figures): same shape of check
     with a wider tolerance and a microsecond floor, because tail
     percentiles of a few hundred socket round trips are noisy —
     the gate is after order-of-magnitude regressions, not jitter
     ("max_us" is a single sample and is never gated);
   - "flat_alloc_zero" = 1 and "flat_alloc_words_per_op" below the
     zero-allocation threshold, whenever the baseline experiment
     carries them (the kernel's steady-state allocation invariant is
     exact, so it gates with no tolerance; experiments without the
     invariant — serve-smoke — simply don't record the metric);
   - every "*agree" correctness cross-check = 1 in the candidate
     (kernel agreement, the serve experiment's peak_agree /
     recover_agree).

   Exit 0 clean, 1 on regression, 2 on usage or unreadable input. *)

open Dsp_bench

let tolerance = 0.30 (* +30% wall-clock *)
let abs_floor = 0.05 (* seconds; below this, deltas are noise *)
let alloc_threshold = 0.01 (* words per kernel op *)
let lat_tolerance = 2.0 (* +200% on latency percentiles *)
let lat_floor_us = 500. (* microseconds; tail noise below this *)

let default_baseline =
  Filename.concat
    (Filename.concat "bench" "results")
    "baseline-kernel-smoke.json"

let usage () =
  prerr_endline
    "usage: gate [--baseline baseline.json] <candidate.json> [experiment-id]";
  prerr_endline "       gate <baseline.json> <candidate.json> [experiment-id]";
  Printf.eprintf "(default baseline: %s)\n" default_baseline;
  exit 2

let load path =
  match Bench_json.load path with
  | Ok p -> p
  | Error msg ->
      Printf.eprintf "gate: %s\n" msg;
      exit 2

let metrics_of (p : Bench_json.parsed) experiment path =
  match List.assoc_opt experiment p.Bench_json.parsed_experiments with
  | Some m -> m
  | None ->
      Printf.eprintf "gate: %s: no experiment %S\n" path experiment;
      exit 2

let as_float = function
  | Bench_json.Float f -> Some f
  | Bench_json.Int i -> Some (float_of_int i)
  | _ -> None

let has_suffix sfx s =
  let n = String.length s and m = String.length sfx in
  n >= m && String.sub s (n - m) m = sfx

let () =
  let baseline_path, candidate_path, experiment =
    (* --baseline PATH names the reference explicitly; without it a
       single positional compares against the checked-in default, and
       the legacy two-positional form still reads as
       <baseline> <candidate>. *)
    let rec split_baseline acc = function
      | "--baseline" :: path :: rest -> (Some path, List.rev_append acc rest)
      | "--baseline" :: [] -> usage ()
      | arg :: rest -> split_baseline (arg :: acc) rest
      | [] -> (None, List.rev acc)
    in
    match split_baseline [] (Array.to_list Sys.argv |> List.tl) with
    | Some b, [ c ] -> (b, c, "kernel-smoke")
    | Some b, [ c; e ] -> (b, c, e)
    | None, [ c ] -> (default_baseline, c, "kernel-smoke")
    | None, [ b; c ] -> (b, c, "kernel-smoke")
    | None, [ b; c; e ] -> (b, c, e)
    | _ -> usage ()
  in
  let base = metrics_of (load baseline_path) experiment baseline_path in
  let cand = metrics_of (load candidate_path) experiment candidate_path in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.printf fmt
  in
  (* A crashed candidate experiment is an automatic gate failure. *)
  (match List.assoc_opt "status" cand with
  | Some (Bench_json.String "ok") -> ()
  | Some (Bench_json.String s) ->
      fail "FAIL %s: status %S (expected \"ok\")\n" experiment s
  | _ -> fail "FAIL %s: no status metric in candidate\n" experiment);
  (* Wall-clock: every timing both files carry. *)
  List.iter
    (fun (k, bv) ->
      if has_suffix "_seconds" k then
        match (as_float bv, Option.bind (List.assoc_opt k cand) as_float) with
        | Some b, Some c ->
            let limit = b *. (1. +. tolerance) in
            if c > limit && c -. b > abs_floor then
              fail "FAIL %-28s %.4fs vs baseline %.4fs (> +%.0f%% and > %.2fs)\n"
                k c b (100. *. tolerance) abs_floor
            else
              Printf.printf "ok   %-28s %.4fs (baseline %.4fs)\n" k c b
        | Some _, None -> fail "FAIL %-28s missing from candidate\n" k
        | None, _ -> ())
    base;
  (* Latency percentiles: every "*_us" field of a group both files
     carry, except the single-sample "max_us".  Wider tolerance and a
     microsecond floor — tail percentiles over a few hundred socket
     round trips jitter; the gate is for order-of-magnitude moves. *)
  List.iter
    (fun (gk, bv) ->
      match (bv, List.assoc_opt gk cand) with
      | Bench_json.Group bfields, Some (Bench_json.Group cfields) ->
          List.iter
            (fun (fk, bfv) ->
              if has_suffix "_us" fk && fk <> "max_us" then
                let name = gk ^ "." ^ fk in
                match (as_float bfv, Option.bind (List.assoc_opt fk cfields) as_float) with
                | Some b, Some c ->
                    let limit = b *. (1. +. lat_tolerance) in
                    if c > limit && c -. b > lat_floor_us then
                      fail
                        "FAIL %-28s %.1fus vs baseline %.1fus (> +%.0f%% and > %.0fus)\n"
                        name c b (100. *. lat_tolerance) lat_floor_us
                    else Printf.printf "ok   %-28s %.1fus (baseline %.1fus)\n" name c b
                | Some _, None -> fail "FAIL %-28s missing from candidate\n" name
                | None, _ -> ())
            bfields
      | Bench_json.Group _, _ ->
          (* a whole group the candidate dropped: only gate it when it
             holds latency fields, silence would hide an SLA metric *)
          if
            List.exists
              (fun (fk, _) -> has_suffix "_us" fk)
              (match bv with Bench_json.Group f -> f | _ -> [])
          then fail "FAIL %-28s latency group missing from candidate\n" gk
      | _ -> ())
    base;
  (* Allocation invariant: exact, no tolerance — gated whenever the
     baseline experiment records it (kernel-smoke does, serve-smoke
     has no flat kernel loop to measure). *)
  if List.mem_assoc "flat_alloc_words_per_op" base then begin
    (match
       Option.bind (List.assoc_opt "flat_alloc_words_per_op" cand) as_float
     with
    | Some w when w < alloc_threshold ->
        Printf.printf "ok   %-28s %.6f words/op\n" "flat_alloc_words_per_op" w
    | Some w ->
        fail "FAIL %-28s %.6f words/op (steady-state allocation must be ~0)\n"
          "flat_alloc_words_per_op" w
    | None -> fail "FAIL flat_alloc_words_per_op missing from candidate\n");
    match List.assoc_opt "flat_alloc_zero" cand with
    | Some (Bench_json.Int 1) -> ()
    | _ -> fail "FAIL flat_alloc_zero is not 1 in candidate\n"
  end;
  (* Correctness cross-checks recorded by the experiment itself. *)
  List.iter
    (fun (k, v) ->
      if has_suffix "agree" k then
        match v with
        | Bench_json.Int 1 -> ()
        | _ -> fail "FAIL %-28s not 1 (implementations disagree)\n" k)
    cand;
  if !failures > 0 then begin
    Printf.printf "gate: %d failure%s against %s\n" !failures
      (if !failures = 1 then "" else "s")
      baseline_path;
    exit 1
  end
  else Printf.printf "gate: clean against %s\n" baseline_path
