(* Benchmark harness dispatcher.  The experiments themselves live in
   bench/experiments/ (library dsp_bench), one module per paper
   table/figure; each exports an association list of (id, thunk).
   This file only assembles the registry-style list, parses argv, and
   writes BENCH.json.

   Usage:
     dune exec bench/main.exe                 # all experiments + kernel + micro
     dune exec bench/main.exe -- E8 E10       # a subset
     dune exec bench/main.exe -- kernel       # packing-kernel ablation only
     dune exec bench/main.exe -- kernel-smoke # tiny kernel run for CI
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks only
     dune exec bench/main.exe -- counters     # per-solver Instr counters only

   Every run also writes BENCH.json (override the path with the
   BENCH_JSON environment variable) under schema dsp-bench/2:
   per-experiment wall-clock, the metrics individual experiments
   record (kernel speedups and peaks, E4 node counts), and the
   per-solver instrumentation counters of the "counters" experiment. *)

open Dsp_bench

let experiments =
  Exp_gap.experiments @ Exp_transform.experiments @ Exp_hardness.experiments
  @ Exp_augment.experiments @ Exp_ratios.experiments @ Exp_scaling.experiments
  @ Exp_smartgrid.experiments @ Exp_steinberg.experiments
  @ Exp_ablation.experiments @ Exp_extensions.experiments
  @ Exp_structure.experiments @ Exp_kernel.experiments @ Exp_micro.experiments
  @ Exp_counters.experiments

let run_experiment (name, f) =
  let (), seconds = Dsp_util.Xutil.timeit f in
  Bench_json.record ~experiment:name "seconds" (Bench_json.Float seconds)

let () =
  let ran =
    match Array.to_list Sys.argv |> List.tl with
    | [] ->
        (* kernel-smoke is the CI-sized variant of kernel; skip it in
           a full run. *)
        List.iter
          (fun (name, f) ->
            if name <> "kernel-smoke" then run_experiment (name, f))
          experiments;
        print_newline ();
        true
    | names ->
        List.fold_left
          (fun ran name ->
            match List.assoc_opt name experiments with
            | Some f ->
                run_experiment (name, f);
                ran || true
            | None ->
                Printf.eprintf "unknown experiment %s\n" name;
                ran)
          false names
  in
  if ran then begin
    let path = Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH.json" in
    Bench_json.write path;
    Printf.printf "\nwrote %s\n" path
  end
