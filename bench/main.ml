(* Benchmark harness dispatcher.  The experiments themselves live in
   bench/experiments/ (library dsp_bench), one module per paper
   table/figure; each exports an association list of (id, thunk).
   This file only assembles the registry-style list, parses argv, runs
   each experiment fault-tolerantly, and writes BENCH.json.

   Usage:
     dune exec bench/main.exe                 # all experiments + kernel + micro
     dune exec bench/main.exe -- E8 E10       # a subset
     dune exec bench/main.exe -- kernel       # packing-kernel ablation only
     dune exec bench/main.exe -- kernel-smoke # tiny kernel run for CI
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks only
     dune exec bench/main.exe -- counters     # per-solver Instr counters only
     dune exec bench/main.exe -- faults       # fault-injection robustness matrix
     dune exec bench/main.exe -- faults-smoke # CI-sized fault matrix
     dune exec bench/main.exe -- parallel     # work-stealing B&B domain curve
     dune exec bench/main.exe -- parallel-smoke # CI-sized stealing run
     dune exec bench/main.exe -- online       # incremental sessions vs offline
     dune exec bench/main.exe -- online-smoke # CI-sized online run
     dune exec bench/main.exe -- serve        # service daemon over its socket
     dune exec bench/main.exe -- serve-smoke  # CI-sized daemon run

   DSP_JOBS=k runs the coarse experiments k at a time on a domain pool
   (and fans out per-instance work inside E8/E9); timing-sensitive
   experiments stay sequential regardless (see [serial_only]).
   Concurrent experiments may interleave their stdout — BENCH.json is
   the authoritative record either way, and its writes are
   domain-safe.  Without DSP_JOBS everything runs exactly as the
   serial harness always has.

   Results files: the canonical record of a run is
   bench/results/latest.json (plus its timestamped sibling); the
   BENCH.json written at the repo root is a documented convenience
   copy of the same data for quick inspection.  BENCH_JSON overrides
   the convenience path, BENCH_JSON=none suppresses it entirely (the
   archive still lands under bench/results/ unless that is disabled
   too).  The schema is dsp-bench/7:
   per-experiment wall-clock and status, the metrics individual
   experiments record (kernel speedups and peaks, E4 node counts,
   fault-matrix outcomes, the "parallel" experiment's domain curve
   and steal telemetry, the
   "online" experiment's competitive ratios and latency percentiles,
   the "serve" experiment's socket throughput and SLA latency groups),
   the per-solver instrumentation counters of the "counters"
   experiment, the one-level "gc"/"latency" sub-records, and the
   "seed" metric every randomized experiment pins (DSP_BENCH_SEED
   shifts all generated workloads at once; default 0 reproduces the
   historical fixed-seed runs).  Crash safety: an experiment that raises is recorded
   as a degraded entry (status "crashed" plus the error) instead of
   aborting the run, and the file is checkpointed atomically after
   every experiment, so a killed harness leaves the last completed
   state on disk, never a truncated file.

   Trending: each completed run is also archived under bench/results/
   as BENCH-<YYYYMMDD-HHMMSS>.json next to a refreshed latest.json
   pointer (both written atomically).  DSP_BENCH_RESULTS overrides the
   directory, DSP_BENCH_RESULTS=none disables archiving (the perf gate
   uses this to keep probe runs out of the trend line), and
   DSP_BENCH_REPS=k makes each timing the best of k repetitions.  The
   checked-in bench/results/baseline-kernel-smoke.json is the
   reference scripts/perf_gate.sh compares against in CI. *)

open Dsp_bench

let experiments =
  Exp_gap.experiments @ Exp_transform.experiments @ Exp_hardness.experiments
  @ Exp_augment.experiments @ Exp_ratios.experiments @ Exp_scaling.experiments
  @ Exp_smartgrid.experiments @ Exp_steinberg.experiments
  @ Exp_ablation.experiments @ Exp_extensions.experiments
  @ Exp_structure.experiments @ Exp_kernel.experiments @ Exp_micro.experiments
  @ Exp_counters.experiments @ Exp_faults.experiments @ Exp_parallel.experiments
  @ Exp_online.experiments @ Exp_serve.experiments

(* Experiments that must not share the process with concurrent load:
   micro/kernel timings and the parallel experiment's serial-vs-pool
   comparison would be skewed, the counters experiment asserts exact
   Instr deltas for a single solve at a time, the fault matrix arms
   process-global fault plans, and the online and serve experiments
   report per-event / per-request latency percentiles (serve also
   spawns its own daemon domain). *)
let serial_only =
  [ "kernel"; "kernel-smoke"; "micro"; "counters"; "faults"; "faults-smoke";
    "parallel"; "parallel-smoke"; "online"; "online-smoke"; "serve";
    "serve-smoke" ]

(* None when BENCH_JSON=none: the bench/results/ archive is the
   canonical record; the root BENCH.json is a convenience copy that
   can be turned off. *)
let bench_path () =
  match Sys.getenv_opt "BENCH_JSON" with
  | Some "none" -> None
  | Some p -> Some p
  | None -> Some "BENCH.json"

(* ----- trending archive (bench/results/) ------------------------------ *)

let results_dir () =
  match Sys.getenv_opt "DSP_BENCH_RESULTS" with
  | Some "none" -> None
  | Some dir -> Some dir
  | None -> Some (Filename.concat "bench" "results")

let rec mkdirs dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let timestamp () =
  let t = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

(* Archive the run: a timestamped snapshot plus the latest.json
   pointer, both via Bench_json.write so each lands atomically (a
   killed run leaves the previous latest.json intact, never a torn
   one). *)
let write_trend () =
  match results_dir () with
  | None -> ()
  | Some dir -> (
      match mkdirs dir with
      | () when Sys.is_directory dir ->
          let snap =
            Filename.concat dir ("BENCH-" ^ timestamp () ^ ".json")
          in
          Bench_json.write snap;
          Bench_json.write (Filename.concat dir "latest.json");
          Printf.printf "archived %s (and %s)\n" snap
            (Filename.concat dir "latest.json")
      | () -> Printf.eprintf "bench: cannot archive into %s\n" dir
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "bench: cannot archive into %s: %s\n" dir
            (Unix.error_message e))

let run_experiment (name, f) =
  let checkpoint () =
    match bench_path () with None -> () | Some p -> Bench_json.write p
  in
  match Dsp_util.Xutil.timeit f with
  | (), seconds ->
      (* Under DSP_JOBS this wall-clock overlaps with concurrent
         experiments; read it relative to the serial baseline only. *)
      Bench_json.record ~experiment:name "seconds" (Bench_json.Float seconds);
      Common.record_seed ~experiment:name;
      Bench_json.record ~experiment:name "status" (Bench_json.String "ok");
      checkpoint ()
  | exception e ->
      (* A crashed experiment degrades to a machine-readable entry;
         the rest of the run proceeds.  Fault injection must not leak
         into subsequent experiments. *)
      Dsp_util.Fault.disarm ();
      let msg = Printexc.to_string e in
      Printf.printf "\n[%s CRASHED: %s]\n" name msg;
      Bench_json.record ~experiment:name "status" (Bench_json.String "crashed");
      Bench_json.record ~experiment:name "error" (Bench_json.String msg);
      checkpoint ()

(* Coarse-grained scheduling: pooled experiments first (k at a time
   under DSP_JOBS=k), then the serial-only tail one by one.  With no
   DSP_JOBS both lists run sequentially in registration order. *)
let run_selected selected =
  let jobs =
    match Option.bind (Sys.getenv_opt "DSP_JOBS") int_of_string_opt with
    | Some j when j > 1 -> j
    | _ -> 1
  in
  let pooled, serial =
    List.partition (fun (name, _) -> not (List.mem name serial_only)) selected
  in
  (if jobs > 1 && List.length pooled > 1 then begin
     Printf.printf
       "[DSP_JOBS=%d: %d experiments on the pool; stdout may interleave, \
        BENCH.json is authoritative]\n"
       jobs (List.length pooled);
     Dsp_util.Pool.with_pool
       ~jobs:(min jobs (List.length pooled))
       (fun pool -> ignore (Dsp_util.Pool.map pool run_experiment pooled))
   end
   else List.iter run_experiment pooled);
  List.iter run_experiment serial

let () =
  let ran =
    match Array.to_list Sys.argv |> List.tl with
    | [] ->
        (* The *-smoke experiments are CI-sized variants of kernel,
           faults and online; skip them in a full run. *)
        run_selected
          (List.filter
             (fun (name, _) ->
               not (Filename.check_suffix name "-smoke"))
             experiments);
        print_newline ();
        true
    | names ->
        let selected =
          List.filter_map
            (fun name ->
              match List.assoc_opt name experiments with
              | Some f -> Some (name, f)
              | None ->
                  Printf.eprintf "unknown experiment %s\n" name;
                  None)
            names
        in
        run_selected selected;
        selected <> []
  in
  if ran then begin
    (match bench_path () with
    | Some path ->
        Bench_json.write path;
        Printf.printf "\nwrote %s\n" path
    | None -> ());
    write_trend ()
  end
