(* Benchmark harness: one experiment per table/figure of the
   reproduction (see DESIGN.md section 4 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe                 # all experiments + kernel + micro
     dune exec bench/main.exe -- E8 E10       # a subset
     dune exec bench/main.exe -- kernel       # packing-kernel ablation only
     dune exec bench/main.exe -- kernel-smoke # tiny kernel run for CI
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks only

   Every run also writes BENCH.json (override the path with the
   BENCH_JSON environment variable): per-experiment wall-clock plus
   the metrics individual experiments record (kernel speedups and
   peaks, E4 node counts), so subsequent changes have a machine-
   readable perf baseline to regress against. *)

open Dsp_core
module Rng = Dsp_util.Rng
module Rat = Dsp_util.Rat

let section id title = Printf.printf "\n=== %s: %s ===\n" id title

let algorithms =
  [
    ("bfd-height", fun i -> Dsp_algo.Baselines.best_fit_decreasing i);
    ("ff-doubling", Dsp_algo.Baselines.first_fit_doubling);
    ("steinberg2", Dsp_algo.Baselines.steinberg2);
    ("approx53", Dsp_algo.Approx53.solve);
    ("approx54", fun i -> Dsp_algo.Approx54.solve i);
  ]

(* E1: the sliced-vs-unsliced integrality gap (Figure 1 / Bladek et
   al.).  Exact optima of the discovered gap witnesses at several
   height scales; the literature bound is 5/4. *)
let e1 () =
  section "E1" "integrality gap: OPT_SP vs OPT_DSP (paper: family with gap 5/4)";
  Printf.printf "%-28s %8s %8s %8s\n" "instance" "OPT_DSP" "OPT_SP" "gap";
  let report name inst =
    match
      ( Dsp_exact.Dsp_bb.optimal_height ~node_limit:30_000_000 inst,
        Dsp_exact.Sp_exact.optimal_height ~node_limit:30_000_000 inst )
    with
    | Some d, Some s ->
        Printf.printf "%-28s %8d %8d %8.4f\n" name d s
          (float_of_int s /. float_of_int d)
    | _ -> Printf.printf "%-28s %8s\n" name "budget exhausted"
  in
  List.iteri
    (fun i inst -> report (Printf.sprintf "witness-%d" i) inst)
    Dsp_instance.Gap_family.slicing_wins;
  List.iter
    (fun scale ->
      report
        (Printf.sprintf "gap-family scale=%d" scale)
        (Dsp_instance.Gap_family.instance ~scale))
    [ 2; 3 ];
  print_endline
    "(literature: a family with gap exactly 5/4 exists [Bladek et al.];\n\
    \ the witnesses above are the largest gaps verifiable exactly at this size)"

(* E2: transformation running times (Lemma 1). *)
let e2 () =
  section "E2" "transformation runtimes (Lemma 1: O(n^2 log n) / O(n^2) bounds)";
  Printf.printf "%-8s %18s %18s\n" "n" "sched->layout (s)" "packing->sched (s)";
  List.iter
    (fun n ->
      let rng = Rng.create (1000 + n) in
      let pts = Dsp_instance.Generators.uniform_pts rng ~n ~machines:20 ~max_p:30 in
      let sched = Dsp_pts.List_scheduling.schedule pts in
      let _, t_layout =
        Dsp_util.Xutil.timeit (fun () ->
            Dsp_transform.Transform.schedule_to_layout sched)
      in
      let pk = Dsp_transform.Transform.schedule_to_packing sched in
      let _, t_sched =
        Dsp_util.Xutil.timeit (fun () ->
            Dsp_transform.Transform.packing_to_schedule pk ~machines:20)
      in
      Printf.printf "%-8d %18.4f %18.4f\n" n t_layout t_sched)
    [ 64; 128; 256; 512; 1024; 2048 ]

(* E3: Theorem 1 round-trip soundness at scale. *)
let e3 () =
  section "E3" "round-trip soundness (Theorem 1)";
  Printf.printf "%-8s %8s %10s %14s\n" "n" "trials" "valid" "non-worsening";
  List.iter
    (fun n ->
      let trials = 30 in
      let ok = ref 0 and preserved = ref 0 in
      for seed = 1 to trials do
        let rng = Rng.create ((n * 131) + seed) in
        let m = 3 + Rng.int rng 10 in
        let pts = Dsp_instance.Generators.uniform_pts rng ~n ~machines:m ~max_p:20 in
        let sched = Dsp_pts.List_scheduling.schedule pts in
        match Dsp_transform.Transform.roundtrip_schedule sched with
        | Ok back ->
            if Result.is_ok (Pts.Schedule.validate back) then incr ok;
            if Pts.Schedule.makespan back <= Pts.Schedule.makespan sched then
              incr preserved
        | Error _ -> ()
      done;
      Printf.printf "%-8d %8d %9.1f%% %13.1f%%\n" n trials
        (100.0 *. float_of_int !ok /. float_of_int trials)
        (100.0 *. float_of_int !preserved /. float_of_int trials))
    [ 16; 64; 256; 512 ]

(* E4: the hardness pipeline — exact cost and approximation behaviour
   on 3-Partition-derived instances (Theorem 1).  The simplified frame
   is a relaxation (see Hardness), so 3P solvability is reported next
   to the exact DSP optimum. *)
let e4 () =
  section "E4" "hardness family: 3-Partition -> PTS(m=4) -> DSP (Theorem 1)";
  Printf.printf "%-18s %5s %5s %9s %11s %6s %6s %6s\n" "instance" "3P?" "OPT"
    "3P-nodes" "bb-nodes" "bfd" "a53" "a54";
  let report name tp =
    let dsp = Dsp_instance.Hardness.to_dsp tp in
    let solvable, tp_nodes =
      Dsp_exact.Three_partition.count_nodes
        ~numbers:tp.Dsp_instance.Hardness.numbers
        ~bound:tp.Dsp_instance.Hardness.bound
    in
    let opt_str, bb_nodes =
      match Dsp_exact.Dsp_bb.solve_with_stats ~node_limit:50_000_000 dsp with
      | Some (pk, nodes) -> (string_of_int (Packing.height pk), nodes)
      | None -> ("?", 50_000_000)
    in
    Bench_json.record ~experiment:"E4" (name ^ ".bb_nodes") (Bench_json.Int bb_nodes);
    Bench_json.record ~experiment:"E4" (name ^ ".tp_nodes") (Bench_json.Int tp_nodes);
    let h algo = Packing.height (algo dsp) in
    Printf.printf "%-18s %5s %5s %9d %11d %6d %6d %6d\n" name
      (if solvable then "yes" else "no")
      opt_str tp_nodes bb_nodes
      (h (fun i -> Dsp_algo.Baselines.best_fit_decreasing i))
      (h Dsp_algo.Approx53.solve)
      (h (fun i -> Dsp_algo.Approx54.solve i))
  in
  List.iter
    (fun (k, seed) ->
      let rng = Rng.create seed in
      report (Printf.sprintf "yes k=%d" k)
        (Dsp_instance.Hardness.yes_instance rng ~k ~bound:16))
    [ (2, 1); (3, 2); (4, 3); (5, 4) ];
  report "no k=3 (mod-3)" (Dsp_instance.Hardness.no_instance ~k:3);
  report "no k=6 (mod-3)" (Dsp_instance.Hardness.no_instance ~k:6);
  print_endline
    "(forward direction of Theorem 1: every 3P yes-instance packs to peak 4;\n\
    \ recovering 4 exactly is what a pseudo-polynomial ratio < 5/4 would\n\
    \ need on the full Henning et al. gadget -- see DESIGN.md s3)"

(* E5: Corollary 2 — optimal height under width augmentation. *)
let e5 () =
  section "E5" "Corollary 2: optimal-height DSP with width augmentation";
  Printf.printf "%-8s %8s %8s %11s %10s\n" "n" "height" "OPT(W)" "width-fac"
    "optimal?";
  List.iter
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let inst =
        Dsp_instance.Generators.uniform rng ~n ~width:12 ~max_w:6 ~max_h:6
      in
      let r = Dsp_augment.Augment.dsp_with_width_augmentation inst in
      let opt = Dsp_exact.Dsp_bb.optimal_height ~node_limit:5_000_000 inst in
      Printf.printf "%-8d %8d %8s %11.3f %10s\n" n r.Dsp_augment.Augment.height
        (match opt with Some o -> string_of_int o | None -> "?")
        r.Dsp_augment.Augment.width_factor
        (match opt with
        | Some o -> if r.Dsp_augment.Augment.height <= o then "yes" else "NO"
        | None -> "-"))
    [ (6, 1); (8, 2); (10, 3); (12, 4); (14, 5) ];
  print_endline
    "(paper: factor 3/2+eps with the Jansen-Thoele inner solver; ours uses\n\
    \ 2-approximate list scheduling, so the certificate is 2 -- DESIGN.md s3)"

(* E6/E7: Corollaries 3 and 4 — optimal makespan under machine
   augmentation. *)
let e67 which name solver_result =
  section which (Printf.sprintf "optimal-makespan PTS, %s" name);
  Printf.printf "%-10s %10s %8s %10s %10s\n" "n,m" "makespan" "OPT(m)"
    "mach-fac" "optimal?";
  List.iter
    (fun (n, m, seed) ->
      let rng = Rng.create seed in
      let pts = Dsp_instance.Generators.uniform_pts rng ~n ~machines:m ~max_p:6 in
      let r = solver_result pts in
      let opt = Dsp_exact.Pts_exact.optimal_makespan ~node_limit:3_000_000 pts in
      Printf.printf "%-10s %10d %8s %10.3f %10s\n"
        (Printf.sprintf "%d,%d" n m)
        r.Dsp_augment.Augment.makespan
        (match opt with Some o -> string_of_int o | None -> "?")
        r.Dsp_augment.Augment.machine_factor
        (match opt with
        | Some o -> if r.Dsp_augment.Augment.makespan <= o then "yes" else "NO"
        | None -> "-"))
    [ (5, 3, 1); (6, 4, 2); (7, 4, 3); (8, 5, 4); (9, 5, 5) ]

let e6 () =
  e67 "E6" "(5/3)-style polynomial inner solver" Dsp_augment.Augment.pts_53

let e7 () =
  e67 "E7" "(5/4+eps) pseudo-polynomial inner solver" Dsp_augment.Augment.pts_54

(* E8: approximation ratios against exact optima (Theorem 5). *)
let e8 () =
  section "E8" "approximation ratios vs exact optimum (Theorem 5)";
  let families =
    [
      ( "uniform",
        fun seed ->
          let rng = Rng.create seed in
          Dsp_instance.Generators.uniform rng
            ~n:(5 + (seed mod 5))
            ~width:(8 + (seed mod 6))
            ~max_w:6 ~max_h:8 );
      ( "tall-flat",
        fun seed ->
          let rng = Rng.create seed in
          Dsp_instance.Generators.tall_and_flat rng
            ~n:(5 + (seed mod 4))
            ~width:12 ~max_h:8 );
      ( "correlated",
        fun seed ->
          let rng = Rng.create seed in
          Dsp_instance.Generators.correlated rng
            ~n:(5 + (seed mod 4))
            ~width:10 ~max_w:6 ~max_h:6 );
    ]
  in
  Printf.printf "%-12s %-12s %8s %8s %8s\n" "family" "algorithm" "avg" "max"
    "solved";
  List.iter
    (fun (fam, gen) ->
      let instances =
        List.filter_map
          (fun seed ->
            let inst = gen seed in
            match Dsp_exact.Dsp_bb.optimal_height ~node_limit:2_000_000 inst with
            | Some opt when opt > 0 -> Some (inst, opt)
            | _ -> None)
          (Dsp_util.Xutil.range 0 25)
      in
      List.iter
        (fun (name, algo) ->
          let ratios =
            List.map
              (fun (inst, opt) ->
                float_of_int (Packing.height (algo inst)) /. float_of_int opt)
              instances
          in
          let avg =
            List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
          in
          Printf.printf "%-12s %-12s %8.3f %8.3f %8d\n" fam name avg
            (List.fold_left max 1.0 ratios)
            (List.length ratios))
        algorithms)
    families;
  Printf.printf "\napprox54 eps sensitivity (uniform family):\n";
  Printf.printf "%-8s %8s %8s\n" "eps" "avg" "max";
  List.iter
    (fun (label, eps) ->
      let ratios =
        List.filter_map
          (fun seed ->
            let rng = Rng.create seed in
            let inst =
              Dsp_instance.Generators.uniform rng ~n:7 ~width:10 ~max_w:6 ~max_h:8
            in
            match Dsp_exact.Dsp_bb.optimal_height ~node_limit:2_000_000 inst with
            | Some opt when opt > 0 ->
                Some
                  (float_of_int
                     (Packing.height (Dsp_algo.Approx54.solve ~eps inst))
                  /. float_of_int opt)
            | _ -> None)
          (Dsp_util.Xutil.range 0 20)
      in
      let avg =
        List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
      in
      Printf.printf "%-8s %8.3f %8.3f\n" label avg (List.fold_left max 1.0 ratios))
    [ ("1/4", Rat.make 1 4); ("1/8", Rat.make 1 8); ("1/16", Rat.make 1 16) ]

(* E9: running-time scaling of the (5/4+eps) algorithm. *)
let e9 () =
  section "E9" "approx54 runtime scaling (Theorem 5: O(n log n) * W^{O_eps(1)})";
  Printf.printf "n sweep at W=60:\n%-8s %10s %8s\n" "n" "seconds" "guesses";
  List.iter
    (fun n ->
      let rng = Rng.create (77 + n) in
      let inst =
        Dsp_instance.Generators.uniform rng ~n ~width:60 ~max_w:20 ~max_h:30
      in
      let (_, stats), secs =
        Dsp_util.Xutil.timeit (fun () -> Dsp_algo.Approx54.solve_with_stats inst)
      in
      Printf.printf "%-8d %10.4f %8d\n" n secs stats.Dsp_algo.Approx54.guesses)
    [ 50; 100; 200; 400; 800 ];
  Printf.printf "W sweep at n=100:\n%-8s %10s\n" "W" "seconds";
  List.iter
    (fun w ->
      let rng = Rng.create (99 + w) in
      let inst =
        Dsp_instance.Generators.uniform rng ~n:100 ~width:w ~max_w:(max 1 (w / 3))
          ~max_h:30
      in
      let _, secs = Dsp_util.Xutil.timeit (fun () -> Dsp_algo.Approx54.solve inst) in
      Printf.printf "%-8d %10.4f\n" w secs)
    [ 30; 60; 120; 240; 480 ]

(* E10: the smart-grid case study (the paper's motivation). *)
let e10 () =
  section "E10" "smart-grid peak shaving (paper section 1)";
  Printf.printf "%-12s %6s %8s %-10s %8s %10s\n" "households" "runs" "naive"
    "algorithm" "peak" "reduction";
  List.iter
    (fun households ->
      let rng = Rng.create (2024 + households) in
      let runs = Dsp_smartgrid.Smartgrid.simulate_day rng ~households in
      List.iter
        (fun (name, algo) ->
          let r = Dsp_smartgrid.Smartgrid.evaluate runs ~scheduler:algo in
          Printf.printf "%-12d %6d %8d %-10s %8d %9.1f%%\n" households
            r.Dsp_smartgrid.Smartgrid.runs r.Dsp_smartgrid.Smartgrid.naive_peak
            name r.Dsp_smartgrid.Smartgrid.scheduled_peak
            r.Dsp_smartgrid.Smartgrid.reduction_percent)
        [
          ("bfd", fun i -> Dsp_algo.Baselines.best_fit_decreasing i);
          ("approx53", Dsp_algo.Approx53.solve);
          ("approx54", fun i -> Dsp_algo.Approx54.solve i);
        ])
    [ 10; 25; 50 ]

(* E11: the Steinberg substrate — measured height vs the theorem's
   bound. *)
let e11 () =
  section "E11" "Steinberg packer vs the Steinberg bound (substrate check)";
  Printf.printf "%-10s %8s %8s %10s\n" "family" "avg" "max" "valid";
  List.iter
    (fun (fam, max_w, max_h) ->
      let ratios = ref [] and valid = ref 0 and total = ref 0 in
      for seed = 0 to 40 do
        let rng = Rng.create (seed * 13) in
        let inst =
          Dsp_instance.Generators.uniform rng ~n:(8 + (seed mod 8)) ~width:20
            ~max_w ~max_h
        in
        let pk = Dsp_sp.Steinberg.pack inst in
        incr total;
        if Result.is_ok (Rect_packing.validate pk) then incr valid;
        let bound = max 1 (Dsp_sp.Steinberg.height_bound inst) in
        ratios :=
          (float_of_int (Rect_packing.height pk) /. float_of_int bound)
          :: !ratios
      done;
      let avg =
        List.fold_left ( +. ) 0.0 !ratios /. float_of_int (List.length !ratios)
      in
      Printf.printf "%-10s %8.3f %8.3f %7d/%d\n" fam avg
        (List.fold_left max 0.0 !ratios)
        !valid !total)
    [ ("small", 5, 5); ("wide", 15, 4); ("tall", 4, 15) ];
  print_endline "(ratio <= 1 means the packer met Steinberg's theorem bound)"

(* E12: ablation — how much slicing buys, and the structured
   algorithm vs plain greedy. *)
let e12 () =
  section "E12" "ablation: slicing benefit and structured vs greedy";
  let gaps = ref [] and strict = ref 0 and total = ref 0 in
  for seed = 0 to 120 do
    let rng = Rng.create (seed * 7) in
    let inst =
      Dsp_instance.Generators.uniform rng
        ~n:(5 + (seed mod 4))
        ~width:(5 + (seed mod 3))
        ~max_w:4 ~max_h:6
    in
    match
      ( Dsp_exact.Dsp_bb.optimal_height ~node_limit:1_000_000 inst,
        Dsp_exact.Sp_exact.optimal_height ~node_limit:2_000_000 inst )
    with
    | Some d, Some s when d > 0 ->
        incr total;
        if s > d then incr strict;
        gaps := (float_of_int s /. float_of_int d) :: !gaps
    | _ -> ()
  done;
  let avg = List.fold_left ( +. ) 0.0 !gaps /. float_of_int (List.length !gaps) in
  Printf.printf
    "random tiny instances: mean gap %.4f, max gap %.4f, strict gap on %d/%d\n"
    avg
    (List.fold_left max 1.0 !gaps)
    !strict !total;
  Printf.printf
    "curated witnesses (Gap_family.slicing_wins): %d instances, all with a\n\
    \ strict gap (verified by E1) -- strict gaps are adversarial corners\n"
    (List.length Dsp_instance.Gap_family.slicing_wins);
  let structured = ref 0.0 and greedy = ref 0.0 and cnt = ref 0 in
  for seed = 0 to 15 do
    let rng = Rng.create (seed * 31) in
    let inst =
      Dsp_instance.Generators.tall_and_flat rng ~n:40 ~width:40 ~max_h:20
    in
    let h54 = float_of_int (Packing.height (Dsp_algo.Approx54.solve inst)) in
    let hbfd =
      float_of_int (Packing.height (Dsp_algo.Baselines.best_fit_decreasing inst))
    in
    let lb = float_of_int (Instance.lower_bound inst) in
    structured := !structured +. (h54 /. lb);
    greedy := !greedy +. (hbfd /. lb);
    incr cnt
  done;
  Printf.printf
    "tall-flat n=40: approx54 %.3f x LB vs plain greedy %.3f x LB (avg of %d)\n"
    (!structured /. float_of_int !cnt)
    (!greedy /. float_of_int !cnt)
    !cnt

(* E13: the future-work extensions — 90-degree rotations and
   moldable jobs (paper conclusion). *)
let e13 () =
  section "E13" "extensions: 90-degree rotations and moldable jobs";
  Printf.printf "rotations (exact optima, small instances):\n";
  Printf.printf "%-8s %10s %12s %10s\n" "seed" "fixed-OPT" "rotated-OPT" "greedy";
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let inst =
        Dsp_instance.Generators.uniform rng ~n:5 ~width:8 ~max_w:5 ~max_h:7
      in
      match Dsp_algo.Rotations.rotation_gain ~node_limit:500_000 inst with
      | Some (fixed, rotated) ->
          let greedy, _ = Dsp_algo.Rotations.best_fit_rotating inst in
          Printf.printf "%-8d %10d %12d %10d\n" seed fixed rotated
            (Packing.height greedy)
      | None -> Printf.printf "%-8d %10s\n" seed "budget exhausted")
    [ 1; 2; 3; 4; 5; 6 ];
  Printf.printf "moldable jobs (work-based tables):\n";
  Printf.printf "%-8s %8s %12s %12s %12s\n" "m" "jobs" "rigid-q1" "two-phase"
    "exact-mold";
  List.iter
    (fun (m, works, seed) ->
      let _ = seed in
      let t = Dsp_pts.Moldable.make_work_based ~machines:m ~work:works in
      let rigid = Dsp_pts.Moldable.allot t (Array.make (List.length works) 1) in
      let rigid_opt =
        match Dsp_exact.Pts_exact.optimal_makespan ~node_limit:500_000 rigid with
        | Some v -> string_of_int v
        | None -> "?"
      in
      let exact =
        match Dsp_pts.Moldable.optimal_makespan ~node_limit:300_000 t with
        | Some (v, _) -> string_of_int v
        | None -> "?"
      in
      Printf.printf "%-8d %8d %12s %12d %12s\n" m (List.length works) rigid_opt
        (Dsp_pts.Moldable.makespan t)
        exact)
    [
      (3, [ 9; 7; 5; 4 ], 1);
      (4, [ 12; 9; 6; 5; 4 ], 2);
      (4, [ 16; 16; 4; 4 ], 3);
      (5, [ 20; 10; 10; 5 ], 4);
    ]

(* E14: the structure theorem in practice — Lemma 4's start-point
   reduction and Lemma 5's box partition applied to exact optimal
   packings. *)
let e14 () =
  section "E14" "structural lemmas 4/5 on exact optimal packings";
  Printf.printf "%-6s %8s %8s %10s %8s %8s %8s %10s\n" "seed" "peak" "snapped"
    "h-starts" "largeB" "horizB" "tvB" "tv-bound";
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      (* A mix with genuinely horizontal items (flat and wide): the
         horizontal class needs h <= mu*OPT, so the optimum must be
         large relative to the flat items' heights. *)
      let tall =
        List.init 5 (fun _ -> (Rng.int_in rng 2 6, Rng.int_in rng 40 70))
      in
      let flats =
        List.init (4 + (seed mod 3)) (fun _ ->
            (Rng.int_in rng 12 20, 1))
      in
      let inst = Instance.of_dims ~width:24 (tall @ flats) in
      match Dsp_exact.Dsp_bb.solve ~node_limit:3_000_000 inst with
      | None -> Printf.printf "%-6d budget exhausted\n" seed
      | Some pk ->
          let target = Packing.height pk in
          let p =
            Dsp_algo.Classify.choose_params inst ~target ~eps:(Rat.make 1 4)
          in
          let s = Dsp_algo.Boxes.partition_stats pk p in
          Printf.printf "%-6d %8d %8d %10d %8d %8d %8d %10d\n" seed
            s.Dsp_algo.Boxes.peak_before s.Dsp_algo.Boxes.peak_after
            s.Dsp_algo.Boxes.horizontal_start_points
            s.Dsp_algo.Boxes.n_large_boxes s.Dsp_algo.Boxes.n_horizontal_boxes
            s.Dsp_algo.Boxes.n_tall_vertical_boxes s.Dsp_algo.Boxes.tv_box_bound)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  print_endline
    "(Lemma 4: snapped peak <= peak + O(eps)*OPT; Lemma 5: box counts are\n\
    \ instance-independent, bounded by the O_eps(1) expressions shown)"

(* E15: Lemma 8's three-line assignment on random feasible tall
   boxes: how often the normalized schedule satisfies all properties
   and how many repair swaps it needs. *)
let e15 () =
  section "E15" "Lemma 8 tall-item assignment on random boxes";
  Printf.printf "%-10s %8s %8s %10s\n" "quarter" "boxes" "verified" "avg-swaps";
  List.iter
    (fun quarter ->
      let rng = Rng.create (40 + quarter) in
      let ok = ref 0 and total = ref 0 and swaps = ref 0 in
      for _ = 1 to 200 do
        let box_height = (3 * quarter) + Rng.int_in rng 1 quarter in
        let len = Rng.int_in rng 6 16 in
        let profile = Array.make len 0 in
        let items = ref [] in
        let id = ref 0 in
        for _ = 1 to 8 do
          let w = Rng.int_in rng 1 (max 1 (len / 2)) in
          let h = Rng.int_in rng (quarter + 1) box_height in
          let rec try_start s =
            if s + w > len then ()
            else begin
              let fits = ref true in
              for x = s to s + w - 1 do
                if profile.(x) + h > box_height then fits := false
              done;
              if !fits then begin
                for x = s to s + w - 1 do
                  profile.(x) <- profile.(x) + h
                done;
                items := (Item.make ~id:!id ~w ~h, s) :: !items;
                incr id
              end
              else try_start (s + 1)
            end
          in
          try_start 0
        done;
        if !items <> [] then begin
          incr total;
          let a =
            Dsp_algo.Tall_assignment.assign ~box_height ~quarter ~items:!items
          in
          swaps := !swaps + a.Dsp_algo.Tall_assignment.repairs;
          match
            Dsp_algo.Tall_assignment.verify ~box_height ~quarter ~items:!items a
          with
          | Ok () -> incr ok
          | Error _ -> ()
        end
      done;
      Printf.printf "%-10d %8d %7d%% %10.2f\n" quarter !total
        (100 * !ok / max 1 !total)
        (float_of_int !swaps /. float_of_int (max 1 !total)))
    [ 2; 3; 4; 5 ]

(* kernel: ablation of the segment-tree packing kernel against the
   naive flat-array profile on identical workloads.  Best-fit
   decreasing is the acceptance metric (the kernel replaces an
   O(W * w) scan per item by an O(W) sliding-window maximum); first
   fit additionally exercises the skip-ahead descent.  Both sides
   place items in the same order with the same tie-breaks, so the
   resulting peaks must agree exactly. *)
let kernel_at ~experiment widths () =
  section "kernel" "segment-tree packing kernel vs naive profile (same placements)";
  Printf.printf "%-8s %6s | %11s %11s %8s | %11s %11s %8s | %6s\n" "W" "n"
    "bfd-naive" "bfd-kernel" "speedup" "ff-naive" "ff-kernel" "speedup" "peak";
  List.iter
    (fun w ->
      let n = max 40 (w / 16) in
      let rng = Rng.create (555 + w) in
      let inst =
        Dsp_instance.Generators.uniform rng ~n ~width:w ~max_w:(max 2 (w / 10))
          ~max_h:50
      in
      let order =
        Array.to_list inst.Instance.items |> List.sort Item.compare_by_height_desc
      in
      (* Best-fit decreasing, naive reference: full window scan per start. *)
      let bfd_naive () =
        let p = Profile.Naive.create w in
        List.iter
          (fun (it : Item.t) ->
            let best = ref 0 and best_peak = ref max_int in
            for s = 0 to w - it.Item.w do
              let pk = Profile.Naive.peak_in p ~start:s ~len:it.Item.w in
              if pk < !best_peak then begin
                best_peak := pk;
                best := s
              end
            done;
            Profile.Naive.add_item p it ~start:!best)
          order;
        Profile.Naive.peak p
      in
      let bfd_kernel () =
        let st = Dsp_algo.Budget_fit.create inst in
        List.iter
          (fun it -> ignore (Dsp_algo.Budget_fit.best_fit st it ~budget:max_int))
          order;
        Dsp_algo.Budget_fit.peak st
      in
      let kernel_peak, bfd_kernel_s = Dsp_util.Xutil.timeit bfd_kernel in
      let naive_peak, bfd_naive_s = Dsp_util.Xutil.timeit bfd_naive in
      (* First fit under a finite budget (the greedy peak), naive s+1
         stepping vs kernel skip-ahead; same budget, same order. *)
      let budget = kernel_peak in
      let ff_naive () =
        let p = Profile.Naive.create w in
        let placed = ref 0 in
        List.iter
          (fun (it : Item.t) ->
            let rec go s =
              if s > w - it.Item.w then ()
              else if
                Profile.Naive.peak_in p ~start:s ~len:it.Item.w + it.Item.h
                <= budget
              then begin
                Profile.Naive.add_item p it ~start:s;
                incr placed
              end
              else go (s + 1)
            in
            go 0)
          order;
        !placed
      in
      let ff_kernel () =
        let st = Dsp_algo.Budget_fit.create inst in
        let placed = ref 0 in
        List.iter
          (fun it -> if Dsp_algo.Budget_fit.first_fit st it ~budget then incr placed)
          order;
        !placed
      in
      let ff_kernel_placed, ff_kernel_s = Dsp_util.Xutil.timeit ff_kernel in
      let ff_naive_placed, ff_naive_s = Dsp_util.Xutil.timeit ff_naive in
      let bfd_speedup = bfd_naive_s /. Float.max 1e-9 bfd_kernel_s in
      let ff_speedup = ff_naive_s /. Float.max 1e-9 ff_kernel_s in
      Printf.printf "%-8d %6d | %10.4fs %10.4fs %7.1fx | %10.4fs %10.4fs %7.1fx | %6d\n"
        w n bfd_naive_s bfd_kernel_s bfd_speedup ff_naive_s ff_kernel_s ff_speedup
        kernel_peak;
      if naive_peak <> kernel_peak then
        Printf.printf "  !! peak mismatch: naive=%d kernel=%d\n" naive_peak
          kernel_peak;
      if ff_naive_placed <> ff_kernel_placed then
        Printf.printf "  !! first-fit placement mismatch: naive=%d kernel=%d\n"
          ff_naive_placed ff_kernel_placed;
      let key fmt = Printf.sprintf "W%d.%s" w fmt in
      let rec_f k v = Bench_json.record ~experiment (key k) (Bench_json.Float v) in
      let rec_i k v = Bench_json.record ~experiment (key k) (Bench_json.Int v) in
      rec_i "n" n;
      rec_f "bfd_naive_seconds" bfd_naive_s;
      rec_f "bfd_kernel_seconds" bfd_kernel_s;
      rec_f "bfd_speedup" bfd_speedup;
      rec_f "ff_naive_seconds" ff_naive_s;
      rec_f "ff_kernel_seconds" ff_kernel_s;
      rec_f "ff_speedup" ff_speedup;
      rec_i "peak" kernel_peak;
      rec_i "peaks_agree" (if naive_peak = kernel_peak then 1 else 0))
    widths

let kernel () = kernel_at ~experiment:"kernel" [ 1000; 5000 ] ()
let kernel_smoke () = kernel_at ~experiment:"kernel-smoke" [ 200 ] ()

(* Bechamel micro-benchmarks: data-structure and primitive costs. *)
let micro () =
  section "micro" "bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let rng = Rng.create 7 in
  let inst =
    Dsp_instance.Generators.uniform rng ~n:200 ~width:500 ~max_w:60 ~max_h:30
  in
  let starts =
    Array.map
      (fun (it : Item.t) -> Rng.int rng (500 - it.Item.w + 1))
      inst.Instance.items
  in
  let seg_filled () =
    let t = Segtree.create 500 in
    Array.iteri
      (fun i s ->
        let it = Instance.item inst i in
        Segtree.range_add t ~lo:s ~hi:(s + it.Item.w) it.Item.h)
      starts;
    t
  in
  let profile = Profile.of_starts inst starts in
  let segtree = seg_filled () in
  let tests =
    [
      Test.make ~name:"profile-array-rebuild"
        (Staged.stage (fun () -> ignore (Profile.of_starts inst starts)));
      Test.make ~name:"segtree-rebuild" (Staged.stage (fun () -> ignore (seg_filled ())));
      Test.make ~name:"profile-peak-scan"
        (Staged.stage (fun () -> ignore (Profile.peak profile)));
      Test.make ~name:"segtree-range-max"
        (Staged.stage (fun () -> ignore (Segtree.max_all segtree)));
      Test.make ~name:"profile-window-peak"
        (Staged.stage (fun () -> ignore (Profile.peak_in profile ~start:100 ~len:60)));
      Test.make ~name:"segtree-window-max"
        (Staged.stage (fun () ->
             ignore (Segtree.range_max segtree ~lo:100 ~hi:160)));
      Test.make ~name:"bfd-n200"
        (Staged.stage (fun () ->
             ignore (Dsp_algo.Baselines.best_fit_decreasing inst)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let res = Analyze.all ols (List.hd instances) raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] -> Printf.printf "%-28s %14.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        res)
    tests

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15);
    ("kernel", kernel); ("kernel-smoke", kernel_smoke); ("micro", micro);
  ]

let run_experiment (name, f) =
  let (), seconds = Dsp_util.Xutil.timeit f in
  Bench_json.record ~experiment:name "seconds" (Bench_json.Float seconds)

let () =
  let ran =
    match Array.to_list Sys.argv |> List.tl with
    | [] ->
        (* kernel-smoke is the CI-sized variant of kernel; skip it in
           a full run. *)
        List.iter
          (fun (name, f) ->
            if name <> "kernel-smoke" then run_experiment (name, f))
          experiments;
        print_newline ();
        true
    | names ->
        List.fold_left
          (fun ran name ->
            match List.assoc_opt name experiments with
            | Some f ->
                run_experiment (name, f);
                ran || true
            | None ->
                Printf.eprintf "unknown experiment %s\n" name;
                ran)
          false names
  in
  if ran then begin
    let path = Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH.json" in
    Bench_json.write path;
    Printf.printf "\nwrote %s\n" path
  end
