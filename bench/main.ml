(* Benchmark harness dispatcher.  The experiments themselves live in
   bench/experiments/ (library dsp_bench), one module per paper
   table/figure; each exports an association list of (id, thunk).
   This file only assembles the registry-style list, parses argv, runs
   each experiment fault-tolerantly, and writes BENCH.json.

   Usage:
     dune exec bench/main.exe                 # all experiments + kernel + micro
     dune exec bench/main.exe -- E8 E10       # a subset
     dune exec bench/main.exe -- kernel       # packing-kernel ablation only
     dune exec bench/main.exe -- kernel-smoke # tiny kernel run for CI
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks only
     dune exec bench/main.exe -- counters     # per-solver Instr counters only
     dune exec bench/main.exe -- faults       # fault-injection robustness matrix
     dune exec bench/main.exe -- faults-smoke # CI-sized fault matrix

   Every run also writes BENCH.json (override the path with the
   BENCH_JSON environment variable) under schema dsp-bench/3:
   per-experiment wall-clock and status, the metrics individual
   experiments record (kernel speedups and peaks, E4 node counts,
   fault-matrix outcomes), and the per-solver instrumentation counters
   of the "counters" experiment.  Crash safety: an experiment that
   raises is recorded as a degraded entry (status "crashed" plus the
   error) instead of aborting the run, and the file is checkpointed
   atomically after every experiment, so a killed harness leaves the
   last completed state on disk, never a truncated file. *)

open Dsp_bench

let experiments =
  Exp_gap.experiments @ Exp_transform.experiments @ Exp_hardness.experiments
  @ Exp_augment.experiments @ Exp_ratios.experiments @ Exp_scaling.experiments
  @ Exp_smartgrid.experiments @ Exp_steinberg.experiments
  @ Exp_ablation.experiments @ Exp_extensions.experiments
  @ Exp_structure.experiments @ Exp_kernel.experiments @ Exp_micro.experiments
  @ Exp_counters.experiments @ Exp_faults.experiments

let bench_path () =
  Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH.json"

let run_experiment (name, f) =
  let checkpoint () = Bench_json.write (bench_path ()) in
  match Dsp_util.Xutil.timeit f with
  | (), seconds ->
      Bench_json.record ~experiment:name "seconds" (Bench_json.Float seconds);
      Bench_json.record ~experiment:name "status" (Bench_json.String "ok");
      checkpoint ()
  | exception e ->
      (* A crashed experiment degrades to a machine-readable entry;
         the rest of the run proceeds.  Fault injection must not leak
         into subsequent experiments. *)
      Dsp_util.Fault.disarm ();
      let msg = Printexc.to_string e in
      Printf.printf "\n[%s CRASHED: %s]\n" name msg;
      Bench_json.record ~experiment:name "status" (Bench_json.String "crashed");
      Bench_json.record ~experiment:name "error" (Bench_json.String msg);
      checkpoint ()

let () =
  let ran =
    match Array.to_list Sys.argv |> List.tl with
    | [] ->
        (* kernel-smoke and faults-smoke are the CI-sized variants of
           kernel and faults; skip them in a full run. *)
        List.iter
          (fun (name, f) ->
            if name <> "kernel-smoke" && name <> "faults-smoke" then
              run_experiment (name, f))
          experiments;
        print_newline ();
        true
    | names ->
        List.fold_left
          (fun ran name ->
            match List.assoc_opt name experiments with
            | Some f ->
                run_experiment (name, f);
                ran || true
            | None ->
                Printf.eprintf "unknown experiment %s\n" name;
                ran)
          false names
  in
  if ran then begin
    let path = bench_path () in
    Bench_json.write path;
    Printf.printf "\nwrote %s\n" path
  end
