(* counters: the standard instrumentation experiment.  Every
   registered solver runs over a fixed instance set; the per-solve
   Instr counter deltas (already attributed by Solver.run) are summed
   per solver and emitted into BENCH.json under the dotted
   "<solver>.<counter>" keys of schema dsp-bench/2.  The set includes
   a tall-and-flat instance (drives approx53/approx54 through the
   configuration LP, so simplex pivots show up) and a tiny instance
   the exact branch-and-bound can finish within budget. *)

module Registry = Dsp_engine.Registry
module Solver = Dsp_engine.Solver
module Report = Dsp_engine.Report
module Rng = Dsp_util.Rng

let standard_set () =
  let mk f seed = f (Rng.create (Common.seed_for seed)) in
  [
    ( "uniform-60",
      mk (fun rng ->
          Dsp_instance.Generators.uniform rng ~n:60 ~width:80 ~max_w:20 ~max_h:30)
        11 );
    ( "tall-flat-40",
      mk (fun rng ->
          Dsp_instance.Generators.tall_and_flat rng ~n:40 ~width:40 ~max_h:20)
        12 );
    ( "correlated-30",
      mk (fun rng ->
          Dsp_instance.Generators.correlated rng ~n:30 ~width:40 ~max_w:12
            ~max_h:12)
        13 );
    ( "tiny-8",
      mk (fun rng ->
          Dsp_instance.Generators.uniform rng ~n:8 ~width:10 ~max_w:6 ~max_h:8)
        14 );
    (* A wide strip with many narrow mid-height items: approx54's
       vertical class is non-empty (w <= mu*W, delta*H' < h < H'/2),
       so the Lemma 10 configuration LP — and its simplex pivot
       counter — is exercised. *)
    ( "vertical-lp",
      Dsp_core.Instance.of_dims ~width:128
        (List.init 4 (fun _ -> (3, 40))
        @ List.init 40 (fun _ -> (2, 15))
        @ List.init 10 (fun _ -> (20, 3))) );
  ]

let counters () =
  Common.section "counters"
    "per-solver Instr counters over the standard instance set";
  let set = standard_set () in
  Printf.printf "instances: %s\n"
    (String.concat ", " (List.map fst set));
  List.iter
    (fun (s : Solver.t) ->
      let totals = Hashtbl.create 16 in
      let solved = ref 0 in
      (* GC cost of the whole per-solver sweep, emitted as a
         dsp-bench/4 sub-record next to the op counters: kernel ops
         per solve and words allocated per solve trend together. *)
      let (), _, gc =
        Dsp_util.Xutil.timeit_gc (fun () ->
            List.iter
              (fun (_, inst) ->
                match Solver.run ~node_budget:2_000_000 s inst with
                | Ok r ->
                    incr solved;
                    List.iter
                      (fun (name, v) ->
                        let prev =
                          Option.value (Hashtbl.find_opt totals name) ~default:0
                        in
                        Hashtbl.replace totals name (prev + v))
                      r.Report.counters
                | Error _ -> ())
              set)
      in
      Common.record_gc ~experiment:"counters" (s.Solver.name ^ ".gc") gc;
      let merged =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
        |> List.sort compare
      in
      (* Every counter a solve moved must come from the canonical
         Instr.Sites vocabulary: an unregistered name here means a
         counter was minted outside the table (the static side of this
         guard is dsp_lint rule R4). *)
      let unregistered =
        List.filter (fun (k, _) -> not (Dsp_util.Instr.Sites.mem k)) merged
      in
      List.iter
        (fun (k, _) ->
          Printf.printf "  WARNING: counter %S is not in Instr.Sites\n" k)
        unregistered;
      Bench_json.record ~experiment:"counters"
        (s.Solver.name ^ ".unregistered_sites")
        (Bench_json.Int (List.length unregistered));
      Bench_json.record ~experiment:"counters" (s.Solver.name ^ ".solved")
        (Bench_json.Int !solved);
      Bench_json.record_counters ~experiment:"counters" ~solver:s.Solver.name
        merged;
      Printf.printf "\n%s (%d/%d instances within budget):\n" s.Solver.name
        !solved (List.length set);
      if merged = [] then print_endline "  (no counters bumped)"
      else
        List.iter (fun (k, v) -> Printf.printf "  %-32s %12d\n" k v) merged)
    (Registry.all ())

let experiments = [ ("counters", counters) ]
