(* Online DSP: replay generated traces through incremental sessions
   and measure the empirical competitive ratio against offline
   registry solvers, per-event latency percentiles, and GC pressure.

   Trace families: a smart-grid day with churn (arrivals and
   departures), the gap-family lower-bound instance in a shuffled
   arrival order, and a synthetic churn stream.  Policies: incremental
   first-fit, incremental best-fit, and bounded migration with
   k in {0, 1, 3} repair moves per arrival — migrate-0 doubles as the
   no-migration control the k-sweep is read against.

   Ratios compare the session's final peak with each offline solver's
   peak on the set of items still live at the end of the trace (for
   arrivals-only families that is the whole instance).  [max_peak]
   additionally tracks the worst peak the session ever held, which is
   the online objective proper. *)

module Rng = Dsp_util.Rng
module Trace = Dsp_instance.Trace
module Session = Dsp_engine.Session

let offline_solvers = [ "bfd-height"; "approx54" ]

let policies () =
  [
    Session.first_fit;
    Session.best_fit;
    Session.bounded_migration ~k:0;
    Session.bounded_migration ~k:1;
    Session.bounded_migration ~k:3;
  ]

(* Nearest-rank percentile over an ascending array of seconds. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let us s = 1e6 *. s

(* Replay [trace] under [policy], timing every event.  Returns the
   final session, the worst peak ever held, and the per-event
   latencies of the (last) replay. *)
let replay_timed policy trace =
  let events = Array.of_list trace.Trace.events in
  let lats = Array.make (max 1 (Array.length events)) 0. in
  let run () =
    let s = Session.create ~policy ~width:trace.Trace.width () in
    let maxpk = ref 0 in
    Array.iteri
      (fun i ev ->
        let (), dt = Dsp_util.Xutil.timeit (fun () -> Session.apply s ev) in
        lats.(i) <- dt;
        let pk = Session.peak s in
        if pk > !maxpk then maxpk := pk)
      events;
    (s, !maxpk)
  in
  let (s, maxpk), seconds, gc = Common.time_reps run in
  Array.sort compare lats;
  (s, maxpk, lats, seconds, gc)

let run_policy ~experiment ~family ~offline trace policy =
  let s, maxpk, lats, seconds, gc = replay_timed policy trace in
  let st = Session.stats s in
  (* [snapshot] validates the packing of the live items; an invalid
     final state raises and crashes the experiment, which is what the
     smoke stage greps for. *)
  let _ = Session.snapshot s in
  let key k = Printf.sprintf "%s.%s.%s" family policy.Session.pname k in
  Bench_json.record ~experiment (key "final_peak") (Bench_json.Int st.Session.peak_now);
  Bench_json.record ~experiment (key "max_peak") (Bench_json.Int maxpk);
  Bench_json.record ~experiment (key "migrations") (Bench_json.Int st.Session.migrations);
  Bench_json.record ~experiment (key "replay_seconds") (Bench_json.Float seconds);
  Common.record_gc ~experiment (key "gc") gc;
  Bench_json.record_group ~experiment (key "latency")
    [
      ("p50_us", Bench_json.Float (us (percentile lats 0.50)));
      ("p95_us", Bench_json.Float (us (percentile lats 0.95)));
      ("p99_us", Bench_json.Float (us (percentile lats 0.99)));
      ("max_us", Bench_json.Float (us (percentile lats 1.0)));
    ];
  let ratios =
    List.map
      (fun (name, off_pk) ->
        let r = float_of_int st.Session.peak_now /. float_of_int off_pk in
        Bench_json.record ~experiment
          (key ("ratio_" ^ name))
          (Bench_json.Float r);
        (name, r))
      offline
  in
  Printf.printf "%-12s %7d %7d %6d %8.3f %8.3f %9.1f\n" policy.Session.pname
    st.Session.peak_now maxpk st.Session.migrations
    (List.assoc (List.nth offline_solvers 0) ratios)
    (List.assoc (List.nth offline_solvers 1) ratios)
    (us (percentile lats 0.95));
  (policy.Session.pname, List.nth ratios 0 |> snd)

let run_family ~experiment (family, trace) =
  Printf.printf "\n-- %s: %d events (%d arrivals, %d departures), width %d\n"
    family
    (List.length trace.Trace.events)
    (Trace.n_arrivals trace) (Trace.n_departures trace) trace.Trace.width;
  let live, _ = Trace.live_instance trace in
  Bench_json.record ~experiment (family ^ ".events")
    (Bench_json.Int (List.length trace.Trace.events));
  Bench_json.record ~experiment (family ^ ".lower_bound")
    (Bench_json.Int (Dsp_core.Instance.lower_bound live));
  let offline =
    List.map (fun name -> (name, Common.height_by_name name live)) offline_solvers
  in
  List.iter
    (fun (name, pk) ->
      Bench_json.record ~experiment
        (Printf.sprintf "%s.offline_%s" family name)
        (Bench_json.Int pk))
    offline;
  Printf.printf "offline:";
  List.iter (fun (name, pk) -> Printf.printf " %s=%d" name pk) offline;
  Printf.printf "\n%-12s %7s %7s %6s %8s %8s %9s\n" "policy" "final" "max"
    "migr" "r/bfd" "r/a54" "p95(us)";
  let ratios =
    List.map (run_policy ~experiment ~family ~offline trace) (policies ())
  in
  (* The k-sweep acceptance signal: how much bounded migration buys
     over the k=0 control, in ratio points against the first offline
     yardstick.  Greedy repair is not monotone in k, so the family
     gain is the best over the non-zero budgets. *)
  let gain_of k =
    List.assoc "migrate-0" ratios
    -. List.assoc (Printf.sprintf "migrate-%d" k) ratios
  in
  let g1 = gain_of 1 and g3 = gain_of 3 in
  Bench_json.record ~experiment (family ^ ".migration_gain_k1")
    (Bench_json.Float g1);
  Bench_json.record ~experiment (family ^ ".migration_gain_k3")
    (Bench_json.Float g3);
  Printf.printf "migration gain vs k=0: k=1 %+.3f, k=3 %+.3f ratio points\n" g1
    g3;
  Float.max g1 g3

let traces ~smoke =
  let seed site = Rng.create (Common.seed_for site) in
  if smoke then
    [
      ("smartgrid", Trace.smartgrid (seed 9101) ~households:8 ~departures:true);
      ("gap", Trace.gap_arrivals (seed 9102) ~scale:1);
      ("churn", Trace.churn (seed 9103) ~width:60 ~n:60);
    ]
  else
    [
      ("smartgrid", Trace.smartgrid (seed 9001) ~households:30 ~departures:true);
      ("gap", Trace.gap_arrivals (seed 9002) ~scale:6);
      ("churn", Trace.churn (seed 9003) ~width:200 ~n:400);
    ]

let run ~experiment ~smoke () =
  Common.section experiment
    (if smoke then "online sessions, CI-sized traces"
     else "online sessions vs offline solvers");
  let gains = List.map (run_family ~experiment) (traces ~smoke) in
  let best = List.fold_left max neg_infinity gains in
  Bench_json.record ~experiment "migration_gain_best" (Bench_json.Float best);
  Bench_json.record ~experiment "migration_improves"
    (Bench_json.Int (if best > 0. then 1 else 0));
  Printf.printf "\nbest migration gain across families: %+.3f\n" best

let experiments =
  [
    ("online", run ~experiment:"online" ~smoke:false);
    ("online-smoke", run ~experiment:"online-smoke" ~smoke:true);
  ]
